"""Quickstart: dynamic truth discovery on a hand-built report stream.

A single claim ("the bridge is closed") becomes true halfway through the
observation period.  Unreliable sources and a couple of rumor-spreaders
muddy the stream; SSTD's HMM decodes the evolving truth anyway.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro import SSTD, Attitude, Report, SSTDConfig, TruthValue
from repro.core.acs import ACSConfig


def build_reports(seed: int = 0) -> list[Report]:
    """600 reports over 2 hours; the claim flips FALSE -> TRUE at t=3600."""
    rng = np.random.default_rng(seed)
    reports = []
    for k in range(600):
        t = float(rng.uniform(0, 7200))
        truth_now = t >= 3600.0
        reliability = 0.85 if k % 10 else 0.2  # every 10th source is bad
        tells_truth = rng.random() < reliability
        says_true = truth_now if tells_truth else not truth_now
        reports.append(
            Report(
                source_id=f"user-{k % 150}",
                claim_id="bridge-closed",
                timestamp=t,
                attitude=Attitude.AGREE if says_true else Attitude.DISAGREE,
                uncertainty=float(rng.uniform(0.0, 0.3)),
                independence=float(rng.uniform(0.8, 1.0)),
            )
        )
    return reports


def main() -> None:
    reports = build_reports()
    config = SSTDConfig(acs=ACSConfig(window=600.0, step=300.0))
    engine = SSTD(config)
    estimates = engine.discover(reports)

    print(f"Decoded {len(estimates)} truth estimates for 'bridge-closed':\n")
    print(f"{'time (min)':>10}  {'estimate':<8} {'confidence':>10}")
    for estimate in estimates:
        marker = "TRUE " if estimate.value is TruthValue.TRUE else "false"
        print(
            f"{estimate.timestamp / 60:>10.0f}  {marker:<8} "
            f"{estimate.confidence:>10.2f}"
        )

    flips = [
        estimates[i].timestamp
        for i in range(1, len(estimates))
        if estimates[i].value != estimates[i - 1].value
    ]
    print(f"\nGround truth flips at t=3600s (60 min).")
    print(f"SSTD detected transition(s) at: {[f'{t/60:.0f} min' for t in flips]}")


if __name__ == "__main__":
    main()
