"""Tour of the paper's future-work extensions (Section VII).

The paper closes with three research directions; this repository
implements all three, and this example exercises each:

1. claim-dependency modeling (`repro.core.dependencies`);
2. refined NLP — lexicon polarity analysis (`repro.text.polarity`);
3. ILP-style real-time optimization of workers and task counts
   (`repro.control.rto`).

Run:
    python examples/extensions_tour.py
"""

import numpy as np

from repro.control import JobDemand, RTOAllocator, WCETModel
from repro.core import (
    ClaimDependencyGraph,
    CorrelatedSSTD,
    CorrelationConfig,
    SSTD,
    SSTDConfig,
    TruthValue,
)
from repro.core.acs import ACSConfig
from repro.core.types import Attitude, Report
from repro.text import PolarityAnalyzer


def correlated_claims_demo() -> None:
    print("=" * 64)
    print("1. Claim dependencies: a sparse claim borrows its neighbor's")
    print("   evidence (weather at city A ~ weather at nearby city B)")
    print("=" * 64)
    rng = np.random.default_rng(4)
    reports = []
    # City A: richly observed, rain starts at t=5000.
    for k in range(1200):
        t = float(rng.uniform(0, 10_000))
        raining = t >= 5_000
        says = raining if rng.random() < 0.85 else not raining
        reports.append(
            Report(
                f"s{k % 250}", "rain-city-a", t,
                attitude=Attitude.AGREE if says else Attitude.DISAGREE,
            )
        )
    # City B: three early reports, then silence.
    for k in range(3):
        reports.append(
            Report(
                f"q{k}", "rain-city-b", float(200 + 300 * k),
                attitude=Attitude.DISAGREE,
            )
        )
    reports.sort(key=lambda r: r.timestamp)
    config = SSTDConfig(acs=ACSConfig(window=400.0, step=200.0))

    span = (reports[0].timestamp, reports[-1].timestamp)
    plain = SSTD(config).discover(reports, start=span[0], end=span[1])
    graph = ClaimDependencyGraph.from_edges(
        [("rain-city-a", "rain-city-b", 0.9)]
    )
    correlated = CorrelatedSSTD(
        graph, config, CorrelationConfig(blend=0.5)
    ).discover(reports)

    def verdict_at(estimates, claim, t):
        series = [
            e for e in estimates
            if e.claim_id == claim and e.timestamp <= t
        ]
        return series[-1].value.name if series else "?"

    for t in (2_000, 8_000):
        print(
            f"  t={t:>5}: city B independent={verdict_at(plain, 'rain-city-b', t):<6}"
            f" with-dependency={verdict_at(correlated, 'rain-city-b', t)}"
        )
    print("  (city B's late TRUE comes entirely from city A's evidence)\n")


def polarity_demo() -> None:
    print("=" * 64)
    print("2. Polarity analysis: lexicon + negation + intensifiers")
    print("=" * 64)
    analyzer = PolarityAnalyzer()
    for text in (
        "officials confirmed the evacuation, verified by witnesses",
        "that evacuation story is totally fake, a hoax",
        "the evacuation report is not true",
        "possibly fake, waiting for confirmation",
        "traffic on the bridge",
    ):
        result = analyzer.analyze(text)
        print(
            f"  {result.score:+.2f}  {result.attitude.name:<9} {text[:52]}"
        )
    print()


def rto_demo() -> None:
    print("=" * 64)
    print("3. Real-time optimization: minimum workers meeting deadlines")
    print("=" * 64)
    allocator = RTOAllocator(
        WCETModel(theta2=0.002), max_workers=64, max_tasks_per_job=8
    )
    jobs = [
        JobDemand("viral-rumor", data_size=50_000, deadline=10.0),
        JobDemand("local-claim", data_size=4_000, deadline=10.0),
        JobDemand("breaking-news", data_size=20_000, deadline=2.0),
    ]
    solution = allocator.solve(jobs)
    print(f"  feasible: {solution.feasible}, workers: {solution.n_workers}")
    for job in jobs:
        share = solution.priority_share(job.job_id)
        finish = allocator.wcet.job_wcet_simplified(
            job.data_size, share, solution.n_workers
        )
        print(
            f"  {job.job_id:<14} tasks={solution.task_counts[job.job_id]:>2} "
            f"share={share:5.1%}  finish={finish:5.2f}s  "
            f"deadline={job.deadline:.1f}s"
        )
    tight = allocator.solve(
        [JobDemand(j.job_id, j.data_size, j.deadline / 20) for j in jobs]
    )
    print(
        f"  20x tighter deadlines -> workers: {tight.n_workers} "
        f"(feasible: {tight.feasible})"
    )


def model_selection_demo() -> None:
    print("=" * 64)
    print("4. Bonus: does the data support 2 hidden states? (BIC)")
    print("=" * 64)
    from repro.core.acs import ACSConfig, acs_sequence
    from repro.hmm import GaussianHMM, select_n_states

    rng = np.random.default_rng(8)
    reports = []
    for k in range(2000):
        t = float(rng.uniform(0, 20_000))
        truth = 7_000 <= t < 14_000  # false -> true -> false
        says = truth if rng.random() < 0.85 else not truth
        reports.append(
            Report(
                f"s{k % 300}", "c", t,
                attitude=Attitude.AGREE if says else Attitude.DISAGREE,
            )
        )
    _, values = acs_sequence(
        sorted(reports, key=lambda r: r.timestamp),
        ACSConfig(window=800.0, step=400.0),
        start=0.0,
        end=20_000.0,
    )
    observed = values[~np.isnan(values)]
    result = select_n_states(
        observed, candidates=(1, 2, 3), factory=lambda n: GaussianHMM(n)
    )
    for entry in result.entries:
        print(
            f"  n_states={entry.n_states}: logL={entry.log_likelihood:8.1f}"
            f"  AIC={entry.aic:8.1f}  BIC={entry.bic:8.1f}"
        )
    print(
        f"  BIC selects {result.best_by_bic} states - the binary-claim"
        " assumption (paper §II) holds on this data.\n"
    )


if __name__ == "__main__":
    correlated_claims_demo()
    polarity_demo()
    model_selection_demo()
    rto_demo()
