"""Distributed deployment: SSTD on the simulated Work Queue / HTCondor stack.

Demonstrates the three system-side claims of the paper:

1. per-claim TD jobs parallelize — makespan shrinks with workers while
   truth estimates stay bit-identical to the serial engine;
2. the elastic pool + PID control meet more deadlines than a static
   deployment under bursty traffic;
3. heterogeneous nodes (different speeds) are handled transparently.

Run:
    python examples/distributed_cluster.py
"""

from repro.cluster import heterogeneous_pool
from repro.core import SSTD
from repro.core.sstd import SSTDConfig
from repro.core.acs import ACSConfig
from repro.streams import generate_trace, paris_shooting
from repro.system import DTMConfig, DistributedSSTD, SSTDSystemConfig
from repro.workqueue import CostModel


def main() -> None:
    trace = generate_trace(paris_shooting().scaled(0.01), seed=5)
    print(
        f"Trace: {len(trace.reports):,} reports, "
        f"{len(trace.claims)} claims (= TD jobs)\n"
    )
    sstd_config = SSTDConfig(acs=ACSConfig(window=3600.0, step=1800.0))

    # ------------------------------------------------------------------
    # 1. Scaling: same estimates, shrinking makespan
    # ------------------------------------------------------------------
    serial = sorted(
        SSTD(sstd_config).discover(
            trace.reports, start=trace.start, end=trace.end
        ),
        key=lambda e: (e.claim_id, e.timestamp),
    )
    print("Workers  Makespan(virtual s)  Speedup  Estimates match serial?")
    base = None
    for workers in (1, 2, 4, 8, 16):
        system = DistributedSSTD(
            SSTDSystemConfig(
                n_workers=workers,
                max_workers=workers,
                sstd=sstd_config,
                dtm=DTMConfig(elastic=False),
            )
        )
        result = system.run_batch(
            trace.reports, start=trace.start, end=trace.end
        )
        base = base or result.makespan
        match = list(result.estimates) == serial
        print(
            f"{workers:>7}  {result.makespan:>19.2f}  "
            f"{base / result.makespan:>7.2f}  {match}"
        )

    # ------------------------------------------------------------------
    # 2. Deadline control: PID on vs off under bursty intervals
    # ------------------------------------------------------------------
    print("\nDeadline-driven control (100 intervals, bursty traffic):")
    cost = CostModel(init_time=0.2, unit_cost=0.02, transfer_cost=0.0)

    def run_deadline_demo(control, elastic, deadline):
        system = DistributedSSTD(
            SSTDSystemConfig(
                n_workers=4,
                max_workers=32,
                deadline=deadline,
                cost_model=cost,
                control_enabled=control,
                dtm=DTMConfig(elastic=elastic, sample_period=deadline / 5),
            )
        )
        return system.run_intervals(trace, n_intervals=100, deadline=deadline)

    # Calibrate a *tight* deadline: 80% of the uncontrolled mean, so a
    # static pool misses often and the controller has room to help.
    baseline = run_deadline_demo(control=False, elastic=False, deadline=10.0)
    deadline = 0.8 * baseline.tracker.mean_execution_time
    print(f"  (deadline {deadline:.2f}s, mean uncontrolled interval "
          f"{baseline.tracker.mean_execution_time:.2f}s)")
    for label, control, elastic in (
        ("static pool, no control", False, False),
        ("PID control + elastic  ", True, True),
    ):
        outcome = run_deadline_demo(control, elastic, deadline)
        print(
            f"  {label}: hit rate "
            f"{outcome.hit_rate:5.1%}, final pool size "
            f"{outcome.final_worker_count}"
        )

    # ------------------------------------------------------------------
    # 3. Heterogeneous cluster
    # ------------------------------------------------------------------
    nodes = tuple(heterogeneous_pool(8, rng=1))
    speeds = sorted(spec.speed_factor for spec in nodes)
    system = DistributedSSTD(
        SSTDSystemConfig(n_workers=8, nodes=nodes, sstd=sstd_config)
    )
    result = system.run_batch(trace.reports, start=trace.start, end=trace.end)
    print(
        f"\nHeterogeneous pool (speeds {speeds[0]:.2f}x..{speeds[-1]:.2f}x): "
        f"makespan {result.makespan:.2f}s, "
        f"utilization {result.utilization:.0%}, "
        f"estimates match serial: {list(result.estimates) == serial}"
    )


if __name__ == "__main__":
    main()
