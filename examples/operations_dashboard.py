"""Operations dashboard: the full application over a replayed event.

Runs :class:`repro.system.SocialSensingApplication` — the paper's
Figure 2 wired end-to-end — over a replayed Boston-like trace, then
renders what an operator would watch: per-claim truth strips vs ground
truth, live flips, QoS hit rate, and the misinformation suspect list.

Run:
    python examples/operations_dashboard.py [--speed 300] [--duration 90]
"""

import argparse
import collections

from repro.core.acs import ACSConfig
from repro.core.sstd import SSTDConfig
from repro.report import bar_chart, side_by_side
from repro.streams import StreamReplayer, boston_bombing, generate_trace
from repro.system import ApplicationConfig, SocialSensingApplication


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--speed", type=float, default=300.0)
    parser.add_argument("--duration", type=float, default=90.0)
    parser.add_argument("--seed", type=int, default=2)
    args = parser.parse_args()

    trace = generate_trace(boston_bombing().scaled(0.02), seed=args.seed)
    replayer = StreamReplayer(trace, speed=args.speed, duration=args.duration)

    # The replay compresses days onto the replay clock; size the ACS
    # window accordingly.
    app = SocialSensingApplication(
        ApplicationConfig(
            sstd=SSTDConfig(
                acs=ACSConfig(window=8.0, step=2.0), min_observations=4
            ),
            deadline=0.25,
            retrain_every=8,
        ),
        pipeline=None,  # reports are pre-scored by the generator
    )

    print(
        f"Replaying {replayer.total_reports():,} reports at "
        f"{args.speed:.0f}/s...\n"
    )
    for batch in replayer.batches():
        app.ingest_reports(list(batch.reports), now=batch.arrival_time)

    print(f"STATUS  {app.status_line()}\n")

    # Truth strips for the busiest claims, with replay-time ground truth.
    volume = collections.Counter(r.claim_id for r in trace.reports)
    print("Busiest claims — estimate vs ground truth (replay clock):")
    shown = 0
    for claim_id, _ in volume.most_common(4):
        estimates = app.estimates_for(claim_id)
        if len(estimates) < 4:
            continue
        # Remap the ground-truth timeline onto the replay clock.
        timeline = trace.timelines[claim_id]
        span = trace.reports[-1].timestamp - trace.reports[0].timestamp
        scale = span / args.duration

        from repro.core.types import TruthLabel, TruthTimeline

        remapped = TruthTimeline(
            claim_id,
            [
                TruthLabel(
                    claim_id,
                    (label.start - trace.reports[0].timestamp) / scale,
                    (label.end - trace.reports[0].timestamp) / scale,
                    label.value,
                )
                for label in timeline
                if label.end > trace.reports[0].timestamp
            ],
        )
        print(f"\n  {trace.claims[claim_id].text[:60]}")
        strips = side_by_side(estimates, remapped, width=48)
        for line in strips.splitlines():
            print(f"    {line}")
        shown += 1
    if not shown:
        print("  (no claim accumulated enough estimates — raise --duration)")

    print(f"\nLive flips detected: {len(app.flips)}")
    for flip in app.flips[:8]:
        print(
            f"  t={flip.at:5.1f}s  {flip.claim_id} -> {flip.new_value.name}"
        )

    spreaders = app.suspected_spreaders(top_k=6)
    if spreaders:
        print("\nSuspected misinformation spreaders (posterior reliability):")
        print(
            bar_chart(
                {s.source_id: round(s.reliability, 2) for s in spreaders},
                width=30,
            )
        )
    print(
        f"\nQoS: {app.qos_hit_rate:.0%} of batches met the "
        f"{app.config.deadline * 1000:.0f} ms deadline"
    )


if __name__ == "__main__":
    main()
