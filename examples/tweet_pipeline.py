"""Raw tweets to truth: the full NLP pre-processing pipeline.

Mirrors the paper's Section V-A2 data pre-processing on a hand-written
mini event: keyword filtering, online Jaccard clustering into claims,
attitude / uncertainty / independence scoring, then SSTD truth
discovery over the resulting report stream.

Run:
    python examples/tweet_pipeline.py
"""

from repro.core import SSTD, SSTDConfig, TruthValue
from repro.core.acs import ACSConfig
from repro.text import KeywordFilter, RawTweet, TweetPipeline

# One afternoon of a simulated campus incident: a lockdown story that is
# real, and a "second shooter" rumor that gets debunked mid-stream.
TWEETS = [
    (0, "alice", "BREAKING: campus on lockdown, police everywhere"),
    (30, "bob", "campus lockdown confirmed, we are inside the library"),
    (45, "carol", "RT @alice: BREAKING: campus on lockdown, police everywhere"),
    (60, "dave", "lockdown at campus?? possibly, hearing sirens"),
    (90, "erin", "police confirm campus lockdown, stay indoors"),
    (95, "frank", "lunch was great today"),  # off-topic; filtered out
    (120, "grace", "there is a second shooter near the stadium!!"),
    (130, "heidi", "RT @grace: there is a second shooter near the stadium!!"),
    (140, "ivan", "second shooter at stadium? unconfirmed, be careful"),
    (200, "judy", "no second shooter near the stadium, police deny it, false rumor"),
    (220, "kim", "the second shooter near the stadium story is debunked, not true"),
    (240, "leo", "second shooter at the stadium is fake news, stop spreading it"),
    (300, "mallory", "lockdown still active, campus gates closed"),
    (330, "nick", "RT @erin: police confirm campus lockdown, stay indoors"),
]


def main() -> None:
    from repro.text import OnlineClaimClusterer

    pipeline = TweetPipeline(
        keyword_filter=KeywordFilter(
            ("campus", "lockdown", "shooter", "stadium"),
        ),
        # Short, diverse tweets need a permissive join threshold; the
        # evaluation traces use the stricter default.
        clusterer=OnlineClaimClusterer(
            join_threshold=0.85, split_threshold=0.95
        ),
    )
    reports = pipeline.process_stream(
        RawTweet(source_id=user, text=text, timestamp=float(t))
        for t, user, text in TWEETS
    )
    print(
        f"Pipeline: {pipeline.processed} tweets scored, "
        f"{pipeline.dropped} filtered out\n"
    )
    print(f"{'t':>4}  {'claim':<12} {'att':>4} {'unc':>5} {'ind':>4}  text")
    for report in reports:
        print(
            f"{report.timestamp:>4.0f}  {report.claim_id:<12} "
            f"{int(report.attitude):>4} {report.uncertainty:>5.2f} "
            f"{report.independence:>4.1f}  {report.text[:46]}"
        )

    config = SSTDConfig(
        acs=ACSConfig(window=120.0, step=60.0), min_observations=3
    )
    engine = SSTD(config)
    estimates = engine.discover(reports)

    print("\nSSTD verdicts over time:")
    claims = sorted({e.claim_id for e in estimates})
    for claim_id in claims:
        cluster = pipeline.clusterer.clusters[claim_id]
        series = [e for e in estimates if e.claim_id == claim_id]
        timeline = " ".join(
            "T" if e.value is TruthValue.TRUE else "f" for e in series
        )
        print(f"  {claim_id}  [{timeline}]  topic: {cluster.centroid_text(5)}")

    print(
        "\nReading: the lockdown claim stays TRUE; the second-shooter "
        "rumor starts TRUE\n(witnesses amplified it) and flips to false "
        "once denials arrive - dynamic truth."
    )


if __name__ == "__main__":
    main()
