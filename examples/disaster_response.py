"""Disaster response: SSTD vs all baselines on a Boston-Bombing-like trace.

Regenerates a small version of the paper's Table III: generate the
synthetic Boston trace, run SSTD and the six baselines, and print the
accuracy / precision / recall / F1 table.

Run:
    python examples/disaster_response.py [--scale 0.03] [--seed 1]
"""

import argparse
import time

from repro.baselines import EvaluationGrid, paper_comparison_set
from repro.core import evaluate_estimates, format_results_table
from repro.streams import boston_bombing, generate_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.03,
                        help="fraction of the full 553k-report trace")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    spec = boston_bombing().scaled(args.scale)
    print(f"Generating '{spec.name}' trace ({spec.n_reports:,} reports)...")
    trace = generate_trace(spec, seed=args.seed)
    stats = trace.stats()
    print(
        f"  {stats.n_reports:,} reports, {stats.n_sources:,} sources, "
        f"{stats.n_claims} claims, {stats.duration_days:.0f} days\n"
    )

    grid = EvaluationGrid(trace.start, trace.end, step=1800.0)
    results = []
    for algo in paper_comparison_set():
        t0 = time.perf_counter()
        estimates = algo.discover(trace.reports, grid)
        elapsed = time.perf_counter() - t0
        result = evaluate_estimates(algo.name, estimates, trace.timelines)
        results.append(result)
        print(f"  ran {algo.name:<13} in {elapsed:6.2f}s")

    print()
    print(format_results_table(results, title="Truth Discovery Results (Boston-like)"))

    best_baseline = max(results[1:], key=lambda r: r.accuracy)
    gain = (results[0].accuracy - best_baseline.accuracy) * 100
    print(
        f"\nSSTD accuracy gain over best baseline "
        f"({best_baseline.method}): {gain:+.1f} points"
    )


if __name__ == "__main__":
    main()
