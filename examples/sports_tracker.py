"""Live sports tracker: streaming SSTD over a replayed football trace.

The College Football trace is the paper's dynamic-truth stress test:
"score change" claims flip several times per game and tweet volume
spikes at every touchdown.  This example replays the trace through
:class:`repro.core.StreamingSSTD` at a fixed tweets/second rate and
reports how quickly the streaming decoder catches each ground-truth
flip.

Run:
    python examples/sports_tracker.py [--speed 200] [--duration 120]
"""

import argparse

from repro.core import SSTDConfig, StreamingSSTD, TruthValue
from repro.core.acs import ACSConfig
from repro.streams import StreamReplayer, college_football, generate_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--speed", type=float, default=200.0,
                        help="replay rate in tweets per second")
    parser.add_argument("--duration", type=float, default=120.0,
                        help="replay duration in seconds")
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    trace = generate_trace(college_football().scaled(0.02), seed=args.seed)
    replayer = StreamReplayer(trace, speed=args.speed, duration=args.duration)
    print(
        f"Replaying {replayer.total_reports():,} tweets at "
        f"{args.speed:.0f}/s for {args.duration:.0f}s...\n"
    )

    # The replay compresses the trace's multi-day span into the replay
    # window, so the ACS window must shrink accordingly.
    config = SSTDConfig(
        acs=ACSConfig(window=4.0, step=2.0), min_observations=4
    )
    engine = StreamingSSTD(config, retrain_every=5)

    # Track each claim's current estimate to spot live flips.
    current: dict[str, TruthValue] = {}
    flips: list[tuple[float, str, TruthValue]] = []
    for batch in replayer.batches():
        for report in batch.reports:
            engine.push(report)
        if batch.second % 2:
            continue  # tick every 2 replay seconds
        for estimate in engine.tick(batch.arrival_time):
            previous = current.get(estimate.claim_id)
            if previous is not None and previous != estimate.value:
                flips.append(
                    (batch.arrival_time, estimate.claim_id, estimate.value)
                )
            current[estimate.claim_id] = estimate.value

    print(f"Tracked {len(current)} claims; detected {len(flips)} live flips:")
    for at, claim_id, value in flips[:20]:
        text = trace.claims[claim_id].text
        verdict = "now TRUE " if value is TruthValue.TRUE else "now FALSE"
        print(f"  t={at:6.0f}s  {verdict}  {text[:60]}")
    if len(flips) > 20:
        print(f"  ... and {len(flips) - 20} more")

    true_now = sum(1 for v in current.values() if v is TruthValue.TRUE)
    print(f"\nFinal scoreboard: {true_now}/{len(current)} claims currently TRUE")


if __name__ == "__main__":
    main()
