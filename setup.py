"""Setup shim: lets `pip install -e .` work on environments whose
setuptools predates PEP 660 wheel-less editable installs."""

from setuptools import setup

setup()
