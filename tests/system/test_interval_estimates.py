"""Tests for interval-mode truth estimates (run_intervals with decoding)."""

import numpy as np
import pytest

from repro.core.acs import ACSConfig
from repro.core.sstd import SSTDConfig
from repro.core.types import Attitude, Report, TruthValue
from repro.streams import Trace
from repro.system import DTMConfig, DistributedSSTD, SSTDSystemConfig
from repro.workqueue import CostModel


def flip_trace(seed=0, n=1200, duration=2000.0, flip_at=1000.0):
    rng = np.random.default_rng(seed)
    reports = []
    for k in range(n):
        t = float(rng.uniform(0, duration))
        truth = t >= flip_at
        says = truth if rng.random() < 0.85 else not truth
        reports.append(
            Report(
                f"s{k % 200}", "c1", t,
                attitude=Attitude.AGREE if says else Attitude.DISAGREE,
            )
        )
    return Trace(name="flip", reports=sorted(reports, key=lambda r: r.timestamp))


class TestIntervalEstimates:
    def test_streaming_estimates_emitted_per_interval(self):
        trace = flip_trace()
        system = DistributedSSTD(
            SSTDSystemConfig(
                n_workers=2,
                sstd=SSTDConfig(
                    acs=ACSConfig(window=100.0, step=50.0),
                    min_observations=4,
                ),
                cost_model=CostModel(init_time=0.01, unit_cost=1e-4),
                dtm=DTMConfig(elastic=False),
            )
        )
        result = system.run_intervals(
            trace, n_intervals=40, compute_estimates=True
        )
        assert result.estimates
        # One estimate per interval per active claim (claim appears in
        # interval 1 onward).
        assert len(result.estimates) >= 35

    def test_interval_estimates_track_flip(self):
        trace = flip_trace()
        system = DistributedSSTD(
            SSTDSystemConfig(
                n_workers=2,
                sstd=SSTDConfig(
                    acs=ACSConfig(window=100.0, step=50.0),
                    min_observations=4,
                ),
                cost_model=CostModel(init_time=0.01, unit_cost=1e-4),
                dtm=DTMConfig(elastic=False),
            )
        )
        result = system.run_intervals(
            trace, n_intervals=40, compute_estimates=True
        )
        # Estimates are stamped with trace-time interval ends; late ones
        # (well past the flip) must read TRUE, early ones FALSE.
        early = [e for e in result.estimates if e.timestamp < 800.0]
        late = [e for e in result.estimates if e.timestamp > 1300.0]
        assert early and late
        early_false = sum(
            1 for e in early if e.value is TruthValue.FALSE
        ) / len(early)
        late_true = sum(
            1 for e in late if e.value is TruthValue.TRUE
        ) / len(late)
        assert early_false > 0.8
        assert late_true > 0.8

    def test_no_estimates_when_disabled(self):
        trace = flip_trace(n=200)
        system = DistributedSSTD(
            SSTDSystemConfig(n_workers=2, dtm=DTMConfig(elastic=False))
        )
        result = system.run_intervals(
            trace, n_intervals=10, compute_estimates=False
        )
        assert result.estimates == ()
