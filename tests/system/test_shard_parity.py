"""Acceptance: sharded batched dispatch decodes identical truth sequences.

The PR-5 hard constraint — claim-sharded, batch-kernel execution must
produce exactly the estimates of the per-claim serial engine, on every
backend and for every shard size.  Shard composition is a throughput
knob, never a semantics knob.
"""

import dataclasses
import pickle

import pytest

from repro.core.sstd import SSTD, SSTDConfig
from repro.streams.events import PopulationConfig, ScenarioSpec
from repro.streams.generator import GeneratorConfig, generate_trace
from repro.system.jobs import (
    decode_claim_payload,
    decode_shard_payload,
    shard_task_spec,
)
from repro.system import sstd_system
from repro.system.sstd_system import BACKENDS, DistributedSSTD, SSTDSystemConfig


@pytest.fixture(scope="module")
def trace():
    spec = ScenarioSpec(
        name="shard-parity",
        duration=3600.0,
        n_reports=500,
        n_claims=7,
        claim_texts=("the road is flooded",),
        topic="test",
        mean_truth_flips=1.0,
        population=PopulationConfig(n_sources=60),
    )
    return generate_trace(spec, seed=11, config=GeneratorConfig(with_text=False))


@pytest.fixture(scope="module")
def per_claim_serial(trace):
    # The reference semantics: the serial engine with batching disabled,
    # one claim at a time through the scalar kernel.
    engine = SSTD(SSTDConfig(batch_claims=False))
    estimates = engine.discover(list(trace.reports))
    estimates.sort(key=lambda e: (e.claim_id, e.timestamp))
    return estimates


class TestShardResolver:
    def test_explicit_value_wins(self):
        system = DistributedSSTD(
            SSTDSystemConfig(n_workers=4, claims_per_shard=5)
        )
        assert system._claims_per_shard(32) == 5

    def test_auto_targets_one_shard_per_lane(self, monkeypatch):
        monkeypatch.setattr(sstd_system, "_effective_cores", lambda: 4)
        system = DistributedSSTD(SSTDSystemConfig(n_workers=4))
        assert system._claims_per_shard(32) == 8  # 4 lanes -> 4 shards
        assert system._claims_per_shard(3) == 1
        assert system._claims_per_shard(0) == 1

    def test_auto_never_slices_finer_than_the_hardware(self, monkeypatch):
        # 8 configured workers on a 2-core host: 2 lanes, 2 shards —
        # extra shards would multiply kernel overhead with no extra
        # concurrency.
        monkeypatch.setattr(sstd_system, "_effective_cores", lambda: 2)
        system = DistributedSSTD(SSTDSystemConfig(n_workers=8))
        assert system._claims_per_shard(32) == 16

    def test_shard_slicing_covers_all_claims(self):
        shards = DistributedSSTD._make_shards(["a", "b", "c", "d", "e"], 2)
        assert shards == [["a", "b"], ["c", "d"], ["e"]]

    def test_config_rejects_nonpositive_shard(self):
        with pytest.raises(ValueError, match="claims_per_shard"):
            SSTDSystemConfig(claims_per_shard=0)


class TestShardPayload:
    def test_spec_survives_pickle(self, trace):
        grouped = SSTD().group_reports(list(trace.reports))
        claims = [(cid, grouped[cid]) for cid in sorted(grouped)][:3]
        spec = shard_task_spec(claims, SSTDConfig())
        clone = pickle.loads(pickle.dumps(spec))
        assert clone() == spec()

    def test_shard_output_concatenates_per_claim_payloads(self, trace):
        grouped = SSTD().group_reports(list(trace.reports))
        config = SSTDConfig()
        claims = [(cid, tuple(grouped[cid])) for cid in sorted(grouped)]
        sharded = decode_shard_payload(tuple(claims), config)
        assert [cid for cid, _ in sharded] == sorted(grouped)
        for claim_id, estimates in sharded:
            assert estimates == decode_claim_payload(
                claim_id, tuple(grouped[claim_id]), config
            )


class TestShardParityAcrossBackends:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("claims_per_shard", [1, None])
    def test_matches_per_claim_serial_engine(
        self, backend, claims_per_shard, trace, per_claim_serial
    ):
        config = SSTDSystemConfig(
            n_workers=2, backend=backend, claims_per_shard=claims_per_shard
        )
        outcome = DistributedSSTD(config).run_batch(list(trace.reports))
        assert list(outcome.estimates) == per_claim_serial

    @pytest.mark.parametrize("claims_per_shard", [2, 100])
    def test_shard_size_never_changes_estimates(
        self, claims_per_shard, trace, per_claim_serial
    ):
        config = SSTDSystemConfig(
            n_workers=2, backend="threads", claims_per_shard=claims_per_shard
        )
        outcome = DistributedSSTD(config).run_batch(list(trace.reports))
        assert list(outcome.estimates) == per_claim_serial

    def test_sharded_interval_replay_matches_per_claim(self, trace):
        base = SSTDSystemConfig(n_workers=2, backend="threads", deadline=30.0)
        sharded = DistributedSSTD(base).run_intervals(
            trace, n_intervals=3, compute_estimates=True
        )
        per_claim = DistributedSSTD(
            dataclasses.replace(base, claims_per_shard=1)
        ).run_intervals(trace, n_intervals=3, compute_estimates=True)
        assert sharded.estimates == per_claim.estimates
        seen = [(e.claim_id, e.timestamp) for e in sharded.estimates]
        assert len(seen) == len(set(seen))


class TestZeroCopyParity:
    """The shared-memory data plane is a transport, never a semantics knob."""

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_zero_copy_matches_per_claim_serial(
        self, backend, trace, per_claim_serial
    ):
        config = SSTDSystemConfig(
            n_workers=2, backend=backend, zero_copy=True
        )
        outcome = DistributedSSTD(config).run_batch(list(trace.reports))
        assert list(outcome.estimates) == per_claim_serial

    @pytest.mark.parametrize("claims_per_shard", [1, 3, 100])
    def test_zero_copy_shard_size_never_changes_estimates(
        self, claims_per_shard, trace, per_claim_serial
    ):
        config = SSTDSystemConfig(
            n_workers=2,
            backend="processes",
            zero_copy=True,
            claims_per_shard=claims_per_shard,
        )
        outcome = DistributedSSTD(config).run_batch(list(trace.reports))
        assert list(outcome.estimates) == per_claim_serial

    def test_bytes_fallback_matches_per_claim_serial(
        self, monkeypatch, trace, per_claim_serial
    ):
        monkeypatch.setenv("REPRO_SHM", "0")
        config = SSTDSystemConfig(
            n_workers=2, backend="processes", zero_copy=True
        )
        outcome = DistributedSSTD(config).run_batch(list(trace.reports))
        assert list(outcome.estimates) == per_claim_serial

    def test_forced_off_legacy_path_matches(self, trace, per_claim_serial):
        config = SSTDSystemConfig(
            n_workers=2, backend="processes", zero_copy=False
        )
        outcome = DistributedSSTD(config).run_batch(list(trace.reports))
        assert list(outcome.estimates) == per_claim_serial

    def test_auto_resolution(self):
        assert DistributedSSTD(
            SSTDSystemConfig(backend="processes")
        )._use_zero_copy()
        assert not DistributedSSTD(
            SSTDSystemConfig(backend="threads")
        )._use_zero_copy()
        assert DistributedSSTD(
            SSTDSystemConfig(backend="threads", zero_copy=True)
        )._use_zero_copy()
        assert not DistributedSSTD(
            SSTDSystemConfig(backend="processes", zero_copy=False)
        )._use_zero_copy()

    def test_zero_copy_interval_replay_matches_legacy(self, trace):
        base = SSTDSystemConfig(
            n_workers=2, backend="processes", deadline=30.0
        )
        legacy = DistributedSSTD(
            dataclasses.replace(base, zero_copy=False)
        ).run_intervals(trace, n_intervals=3, compute_estimates=True)
        zero_copy = DistributedSSTD(
            dataclasses.replace(base, zero_copy=True)
        ).run_intervals(trace, n_intervals=3, compute_estimates=True)
        assert zero_copy.estimates == legacy.estimates
        seen = [(e.claim_id, e.timestamp) for e in zero_copy.estimates]
        assert len(seen) == len(set(seen))

    def test_payload_collapse_vs_pickled_path(self, trace):
        # The acceptance bar: shipping row offsets instead of pickled
        # report stacks must shrink the per-task payload >= 10x.
        base = SSTDSystemConfig(n_workers=2, backend="processes")
        pickled = DistributedSSTD(
            dataclasses.replace(base, zero_copy=False)
        ).run_batch(list(trace.reports))
        zero_copy = DistributedSSTD(
            dataclasses.replace(base, zero_copy=True)
        ).run_batch(list(trace.reports))
        assert pickled.payload_bytes_per_task is not None
        assert zero_copy.payload_bytes_per_task is not None
        ratio = pickled.payload_bytes_per_task / zero_copy.payload_bytes_per_task
        assert ratio >= 10.0, (
            f"zero-copy payload only {ratio:.1f}x smaller "
            f"({zero_copy.payload_bytes_per_task:.0f} vs "
            f"{pickled.payload_bytes_per_task:.0f} bytes/task)"
        )
        assert zero_copy.result_bytes_per_task is not None
        assert (
            zero_copy.result_bytes_per_task < pickled.result_bytes_per_task
        )

    def test_threads_report_no_payload_bytes(self, trace):
        outcome = DistributedSSTD(
            SSTDSystemConfig(n_workers=2, backend="threads")
        ).run_batch(list(trace.reports))
        assert outcome.payload_bytes_per_task is None
        assert outcome.result_bytes_per_task is None
