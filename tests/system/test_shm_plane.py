"""Tests for the zero-copy shared-memory data plane (repro.system.shm).

Lifecycle is the whole point: a segment must exist exactly from
``publish_arrays`` to ``close_and_unlink``, across worker attachments,
worker deaths, and interrupted runs.  A leaked ``/dev/shm`` entry
outlives the interpreter, so every test here checks the filesystem, not
just Python-side state.
"""

import os

import numpy as np
import pytest

from repro.system import shm
from repro.system.shm import (
    SEGMENT_PREFIX,
    SegmentHandle,
    attach,
    publish_arrays,
    shm_available,
)
from repro.workqueue.process import ProcessWorkQueue
from repro.workqueue.task import PayloadSpec, Task

SHM_DIR = "/dev/shm"


def _segment_exists(name: str) -> bool:
    return os.path.exists(os.path.join(SHM_DIR, name))


def _sample_arrays() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(3)
    return {
        "times": rng.normal(size=(4, 9)),
        "values": rng.normal(size=(4, 9)),
        "lengths": np.array([9, 3, 0, 7], dtype=np.int64),
    }


# ---------------------------------------------------------------------------
# Module-level payloads (PayloadSpec discipline).
# ---------------------------------------------------------------------------
def read_row_sum(handle, key, row):
    with attach(handle) as segment:
        value = float(np.nansum(segment.array(key)[row]))
    return value


def attach_then_die(handle, marker):
    """Attach to the segment, then kill the worker hard on first run."""
    with attach(handle) as segment:
        total = float(np.nansum(segment.array("times")))
        if not os.path.exists(marker):
            with open(marker, "w", encoding="utf-8"):
                pass
            os._exit(17)
    return total


class TestPublishAttachRoundTrip:
    def test_shm_round_trip(self):
        arrays = _sample_arrays()
        owner = publish_arrays(arrays)
        try:
            assert owner.handle.kind == "shm"
            assert owner.handle.name.startswith(SEGMENT_PREFIX)
            assert _segment_exists(owner.handle.name)
            with attach(owner.handle) as segment:
                for key, expected in arrays.items():
                    got = segment.array(key)
                    assert got.dtype == expected.dtype
                    np.testing.assert_array_equal(got, expected)
        finally:
            owner.close_and_unlink()

    def test_views_are_read_only(self):
        owner = publish_arrays(_sample_arrays())
        try:
            with attach(owner.handle) as segment:
                view = segment.array("times")
                with pytest.raises(ValueError):
                    view[0, 0] = 1.0
        finally:
            owner.close_and_unlink()

    def test_handle_is_compact_and_picklable(self):
        import pickle

        arrays = _sample_arrays()
        owner = publish_arrays(arrays)
        try:
            blob = pickle.dumps(owner.handle)
            # The handle must not smuggle the data: it is a name + specs.
            assert len(blob) < sum(a.nbytes for a in arrays.values())
            restored = pickle.loads(blob)
            with attach(restored) as segment:
                np.testing.assert_array_equal(
                    segment.array("lengths"), arrays["lengths"]
                )
        finally:
            owner.close_and_unlink()

    def test_unknown_key_raises(self):
        owner = publish_arrays(_sample_arrays())
        try:
            with attach(owner.handle) as segment:
                with pytest.raises(KeyError, match="nope"):
                    segment.array("nope")
        finally:
            owner.close_and_unlink()


class TestBytesFallback:
    def test_env_forces_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        assert not shm_available()
        arrays = _sample_arrays()
        owner = publish_arrays(arrays)
        owner.close_and_unlink()  # no OS resource; must still be callable
        assert owner.handle.kind == "bytes"
        assert owner.handle.payload is not None
        with attach(owner.handle) as segment:
            for key, expected in arrays.items():
                np.testing.assert_array_equal(segment.array(key), expected)

    def test_fallback_views_read_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        owner = publish_arrays(_sample_arrays())
        with attach(owner.handle) as segment:
            with pytest.raises(ValueError):
                segment.array("values")[0, 0] = 1.0

    def test_handle_validation(self):
        with pytest.raises(ValueError, match="segment name"):
            SegmentHandle(kind="shm", name=None, size=1, specs=())
        with pytest.raises(ValueError, match="inline payload"):
            SegmentHandle(kind="bytes", name=None, size=1, specs=())
        with pytest.raises(ValueError, match="kind"):
            SegmentHandle(kind="mmap", name="x", size=1, specs=())


class TestLifecycle:
    def test_unlink_removes_dev_shm_entry(self):
        owner = publish_arrays(_sample_arrays())
        name = owner.handle.name
        assert _segment_exists(name)
        owner.close_and_unlink()
        assert not _segment_exists(name)

    def test_close_and_unlink_idempotent(self):
        owner = publish_arrays(_sample_arrays())
        owner.close_and_unlink()
        owner.close_and_unlink()
        assert not _segment_exists(owner.handle.name)

    def test_unlink_safe_while_attached(self):
        # POSIX semantics: the name goes away immediately; live mappings
        # keep reading valid data until they close.
        arrays = _sample_arrays()
        owner = publish_arrays(arrays)
        segment = attach(owner.handle)
        owner.close_and_unlink()
        assert not _segment_exists(owner.handle.name)
        np.testing.assert_array_equal(segment.array("times"), arrays["times"])
        segment.close()

    def test_worker_attachment_round_trip(self):
        arrays = _sample_arrays()
        owner = publish_arrays(arrays)
        wq = ProcessWorkQueue(n_workers=1, rng=0, poll_interval=0.01)
        try:
            wq.submit(
                Task(
                    job_id="read",
                    fn=PayloadSpec(read_row_sum, (owner.handle, "times", 1)),
                )
            )
            [result] = wq.drain(timeout=60.0)
        finally:
            wq.shutdown()
            owner.close_and_unlink()
        assert result.ok
        assert result.output == pytest.approx(float(np.nansum(arrays["times"][1])))
        assert not _segment_exists(owner.handle.name)

    def test_foreign_attach_skips_tracker_registration(self, monkeypatch):
        # A worker forked before the master's resource tracker started
        # would lazily spawn its own tracker on attach-registration and
        # warn about phantom leaks at exit; foreign-pid attaches must
        # therefore never register (3.13 track=False semantics).
        from multiprocessing import resource_tracker, shared_memory

        # A segment whose name claims a pid that is not ours.
        foreign_name = f"{shm.SEGMENT_PREFIX}1_feedface"
        segment = shared_memory.SharedMemory(
            name=foreign_name, create=True, size=64
        )
        handle = shm.SegmentHandle(
            kind="shm", name=foreign_name, size=64, specs=()
        )
        own = publish_arrays(_sample_arrays())
        registered = []
        monkeypatch.setattr(
            resource_tracker,
            "register",
            lambda name, rtype: registered.append((name, rtype)),
        )
        try:
            attach(handle).close()
            assert registered == []
            # Same-process attach keeps the normal (no-op re-)registration.
            attach(own.handle).close()
            assert [rtype for _, rtype in registered] == ["shared_memory"]
        finally:
            monkeypatch.undo()
            own.close_and_unlink()
            segment.close()
            segment.unlink()

    def test_cleanup_survives_worker_death(self, tmp_path):
        # A worker that dies mid-attachment must not pin or corrupt the
        # segment: the retry succeeds and the master's unlink still wins.
        arrays = _sample_arrays()
        owner = publish_arrays(arrays)
        marker = tmp_path / "attempted"
        wq = ProcessWorkQueue(n_workers=1, rng=0, poll_interval=0.01)
        try:
            wq.submit(
                Task(
                    job_id="fragile",
                    fn=PayloadSpec(attach_then_die, (owner.handle, str(marker))),
                )
            )
            [result] = wq.drain(timeout=60.0)
        finally:
            wq.shutdown()
            owner.close_and_unlink()
        assert marker.exists()
        assert result.ok
        assert result.output == pytest.approx(float(np.nansum(arrays["times"])))
        assert not _segment_exists(owner.handle.name)


class _InterruptedExecutor:
    """Stub executor whose drain simulates a mid-run interrupt."""

    def submit(self, task):
        pass

    def drain(self, timeout=None):
        raise KeyboardInterrupt

    def shutdown(self):
        pass


class TestRunScopeCleanup:
    def test_interrupted_batch_unlinks_segment(self, monkeypatch):
        from repro.streams.events import PopulationConfig, ScenarioSpec
        from repro.streams.generator import GeneratorConfig, generate_trace
        from repro.system.sstd_system import DistributedSSTD, SSTDSystemConfig

        spec = ScenarioSpec(
            name="interrupt",
            duration=600.0,
            n_reports=80,
            n_claims=3,
            claim_texts=("x",),
            topic="t",
            mean_truth_flips=1.0,
            population=PopulationConfig(n_sources=20),
        )
        trace = generate_trace(
            spec, seed=5, config=GeneratorConfig(with_text=False)
        )
        system = DistributedSSTD(
            SSTDSystemConfig(backend="processes", n_workers=2, zero_copy=True)
        )
        monkeypatch.setattr(
            system, "_make_executor", lambda *a, **k: _InterruptedExecutor()
        )
        before = {
            n for n in os.listdir(SHM_DIR) if n.startswith(SEGMENT_PREFIX)
        }
        with pytest.raises(KeyboardInterrupt):
            system.run_batch(trace.reports)
        after = {
            n for n in os.listdir(SHM_DIR) if n.startswith(SEGMENT_PREFIX)
        }
        assert after - before == set()
