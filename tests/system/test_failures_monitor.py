"""Tests for failure injection and system monitoring."""

import pytest

from repro.cluster import (
    CondorPool,
    FailureConfig,
    FailureInjector,
    NodeSpec,
    ResourceSpec,
    Simulator,
    uniform_pool,
)
from repro.system import SystemMonitor
from repro.workqueue import CostModel, ElasticWorkerPool, Task, WorkQueueMaster

COST = CostModel(init_time=0.5, unit_cost=0.05, transfer_cost=0.0)


def mortal_pool(n_nodes=3, mtbf=30.0):
    return [
        NodeSpec(
            name=f"node-{k:04d}",
            capacity=ResourceSpec(cores=2, memory_mb=4096, disk_mb=65536),
            mtbf_seconds=mtbf,
        )
        for k in range(n_nodes)
    ]


def build_stack(specs, n_workers):
    simulator = Simulator()
    condor = CondorPool(specs)
    master = WorkQueueMaster(simulator, rng=0)
    pool = ElasticWorkerPool(simulator, master, condor, COST)
    pool.scale_to(n_workers)
    return simulator, condor, master, pool


class TestFailureInjector:
    def test_all_tasks_complete_despite_failures(self):
        """Work survives node crashes: lost tasks are requeued."""
        simulator, condor, master, pool = build_stack(mortal_pool(), 4)
        injector = FailureInjector(
            simulator, condor, master, FailureConfig(mean_repair_time=20.0),
            rng=1,
        )
        injector.start()
        outputs = []
        for k in range(40):
            master.submit(Task(job_id="j", data_size=20.0, fn=lambda k=k: k))

        # Keep the pool topped up as machines recover.
        from repro.cluster.simulation import PeriodicTask

        PeriodicTask(simulator, 5.0, lambda: pool.scale_to(4))
        master.wait_all(until=100_000.0)
        results = sorted(r.output for r in master.results)
        assert results == list(range(40))
        assert injector.failures > 0, "expected at least one injected failure"

    def test_failure_log_records_requeues(self):
        simulator, condor, master, pool = build_stack(mortal_pool(mtbf=5.0), 4)
        injector = FailureInjector(
            simulator, condor, master, FailureConfig(mean_repair_time=10.0),
            rng=2,
        )
        injector.start()
        for _ in range(30):
            master.submit(Task(job_id="j", data_size=100.0))
        simulator.run(until=60.0)
        assert injector.failures >= 1
        assert injector.tasks_requeued >= 0
        events = {entry.event for entry in injector.log}
        assert "fail" in events

    def test_recovered_nodes_usable_again(self):
        simulator, condor, master, pool = build_stack(mortal_pool(n_nodes=1, mtbf=10.0), 1)
        injector = FailureInjector(
            simulator, condor, master, FailureConfig(mean_repair_time=5.0),
            rng=0,
        )
        injector.start()
        simulator.run(until=200.0)
        assert injector.recoveries >= 1
        node = condor.nodes[0]
        # After the horizon, whatever its state, claim/release must work
        # if it is alive.
        if node.alive:
            placement = condor.place()
            placement.release()

    def test_immortal_nodes_never_fail(self):
        simulator, condor, master, pool = build_stack(
            uniform_pool(2, cores=2), 2
        )
        injector = FailureInjector(simulator, condor, master, rng=0)
        injector.start()
        master.submit(Task(job_id="j", data_size=10.0))
        master.wait_all()
        simulator.run(until=10_000.0)
        assert injector.failures == 0

    def test_default_mtbf_applies(self):
        simulator, condor, master, pool = build_stack(
            uniform_pool(2, cores=2), 2
        )
        injector = FailureInjector(
            simulator, condor, master,
            FailureConfig(mean_repair_time=5.0, default_mtbf=10.0),
            rng=3,
        )
        injector.start()
        simulator.run(until=200.0)
        assert injector.failures > 0

    def test_start_idempotent(self):
        simulator, condor, master, pool = build_stack(mortal_pool(), 1)
        injector = FailureInjector(simulator, condor, master, rng=0)
        injector.start()
        pending = simulator.pending_events
        injector.start()
        assert simulator.pending_events == pending

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FailureConfig(mean_repair_time=0.0)
        with pytest.raises(ValueError):
            FailureConfig(default_mtbf=-1.0)


class TestSystemMonitor:
    def test_samples_track_queue_drain(self):
        simulator, condor, master, pool = build_stack(
            uniform_pool(1, cores=1), 1
        )
        monitor = SystemMonitor(simulator, master, period=1.0)
        monitor.start()
        for _ in range(10):
            master.submit(Task(job_id="j", data_size=20.0))
        master.wait_all()
        monitor.stop()
        summary = monitor.summary()
        assert summary.peak_queue_depth >= 8
        assert summary.mean_utilization > 0.9
        depths = [s.pending_tasks for s in monitor.samples]
        assert depths == sorted(depths, reverse=True)

    def test_idle_system_zero_utilization(self):
        simulator, condor, master, pool = build_stack(
            uniform_pool(1, cores=1), 1
        )
        monitor = SystemMonitor(simulator, master, period=1.0)
        monitor.start()
        simulator.run(until=5.0)
        assert monitor.summary().mean_utilization == 0.0

    def test_stop_halts_sampling(self):
        simulator, condor, master, pool = build_stack(
            uniform_pool(1, cores=1), 1
        )
        monitor = SystemMonitor(simulator, master, period=1.0)
        monitor.start()
        simulator.run(until=3.0)
        count = len(monitor.samples)
        monitor.stop()
        simulator.run(until=10.0)
        assert len(monitor.samples) == count

    def test_period_validation(self):
        simulator, condor, master, pool = build_stack(
            uniform_pool(1, cores=1), 1
        )
        with pytest.raises(ValueError):
            SystemMonitor(simulator, master, period=0.0)

    def test_empty_summary(self):
        simulator, condor, master, pool = build_stack(
            uniform_pool(1, cores=1), 1
        )
        summary = SystemMonitor(simulator, master).summary()
        assert summary.mean_utilization == 0.0
        assert summary.peak_queue_depth == 0
        assert summary.mean_queue_depth == 0.0
