"""Fault tolerance of the integrated distributed SSTD system."""

import numpy as np
import pytest

from repro.cluster import FailureConfig, NodeSpec, ResourceSpec
from repro.core import SSTD, SSTDConfig
from repro.core.acs import ACSConfig
from repro.core.types import Attitude, Report
from repro.system import DTMConfig, DistributedSSTD, SSTDSystemConfig
from repro.workqueue import CostModel


def reports_for(n_claims=4, per_claim=60):
    rng = np.random.default_rng(0)
    reports = []
    for c in range(n_claims):
        for k in range(per_claim):
            t = float(rng.uniform(0, 500))
            says = rng.random() < 0.8
            reports.append(
                Report(
                    f"s{k}", f"claim-{c}", t,
                    attitude=Attitude.AGREE if says else Attitude.DISAGREE,
                )
            )
    return sorted(reports, key=lambda r: r.timestamp)


def mortal_nodes(n=4, mtbf=40.0):
    return tuple(
        NodeSpec(
            name=f"node-{k:04d}",
            capacity=ResourceSpec(cores=2, memory_mb=4096, disk_mb=65536),
            mtbf_seconds=mtbf,
        )
        for k in range(n)
    )


SSTD_CONFIG = SSTDConfig(acs=ACSConfig(window=50.0, step=25.0))


class TestFaultTolerantBatch:
    def test_estimates_identical_despite_failures(self):
        reports = reports_for()
        serial = sorted(
            SSTD(SSTD_CONFIG).discover(reports, start=0.0, end=500.0),
            key=lambda e: (e.claim_id, e.timestamp),
        )
        system = DistributedSSTD(
            SSTDSystemConfig(
                n_workers=4,
                nodes=mortal_nodes(),
                sstd=SSTD_CONFIG,
                cost_model=CostModel(init_time=2.0, unit_cost=0.5),
                dtm=DTMConfig(elastic=False),
                failures=FailureConfig(mean_repair_time=20.0),
                seed=3,
            )
        )
        result = system.run_batch(reports, start=0.0, end=500.0)
        assert list(result.estimates) == serial
        # Long tasks + 40s MTBF: the run must actually have seen churn.
        assert result.makespan > 0

    def test_failures_extend_makespan(self):
        reports = reports_for()
        cost = CostModel(init_time=2.0, unit_cost=0.5)
        base = SSTDSystemConfig(
            n_workers=4,
            nodes=mortal_nodes(mtbf=0.0),  # immortal
            sstd=SSTD_CONFIG,
            cost_model=cost,
            dtm=DTMConfig(elastic=False),
            seed=3,
        )
        healthy = DistributedSSTD(base).run_batch(reports, 0.0, 500.0)
        flaky = DistributedSSTD(
            SSTDSystemConfig(
                n_workers=4,
                nodes=mortal_nodes(mtbf=30.0),
                sstd=SSTD_CONFIG,
                cost_model=cost,
                dtm=DTMConfig(elastic=False),
                failures=FailureConfig(mean_repair_time=25.0),
                seed=3,
            )
        ).run_batch(reports, 0.0, 500.0)
        assert flaky.makespan > healthy.makespan
        assert list(flaky.estimates) == list(healthy.estimates)
