"""Backend selection: simulated / threads / processes produce identical TD."""

import pytest

from repro.core.sstd import SSTD
from repro.streams.events import PopulationConfig, ScenarioSpec
from repro.streams.generator import GeneratorConfig, generate_trace
from repro.system.jobs import decode_claim_payload, decode_task_spec
from repro.system.sstd_system import BACKENDS, DistributedSSTD, SSTDSystemConfig


@pytest.fixture(scope="module")
def small_trace():
    spec = ScenarioSpec(
        name="backend-test",
        duration=3600.0,
        n_reports=400,
        n_claims=6,
        claim_texts=("the bridge is closed",),
        topic="test",
        mean_truth_flips=1.0,
        population=PopulationConfig(n_sources=60),
    )
    return generate_trace(spec, seed=3, config=GeneratorConfig(with_text=False))


@pytest.fixture(scope="module")
def serial_estimates(small_trace):
    estimates = SSTD().discover(list(small_trace.reports))
    estimates.sort(key=lambda e: (e.claim_id, e.timestamp))
    return estimates


class TestConfigValidation:
    def test_backends_constant(self):
        assert BACKENDS == ("simulated", "threads", "processes")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            SSTDSystemConfig(backend="mapreduce")

    def test_drain_timeout_validated(self):
        with pytest.raises(ValueError, match="drain_timeout"):
            SSTDSystemConfig(drain_timeout=0.0)


class TestBatchParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_estimates_match_serial_engine(
        self, backend, small_trace, serial_estimates
    ):
        config = SSTDSystemConfig(n_workers=2, backend=backend)
        outcome = DistributedSSTD(config).run_batch(list(small_trace.reports))
        assert list(outcome.estimates) == serial_estimates
        assert outcome.n_jobs == 6
        assert outcome.makespan > 0

    def test_real_backend_accounting(self, small_trace):
        config = SSTDSystemConfig(
            n_workers=2, backend="threads", claims_per_shard=2
        )
        outcome = DistributedSSTD(config).run_batch(list(small_trace.reports))
        # 6 claims in shards of 2 -> 3 tasks covering all 6 jobs.
        assert outcome.n_jobs == 6
        assert outcome.n_tasks == 3
        assert outcome.worker_count == 2
        assert outcome.peak_worker_count == 2
        assert outcome.total_busy_time > 0

    def test_one_task_per_claim_when_shard_is_one(self, small_trace):
        config = SSTDSystemConfig(
            n_workers=2, backend="threads", claims_per_shard=1
        )
        outcome = DistributedSSTD(config).run_batch(list(small_trace.reports))
        assert outcome.n_tasks == outcome.n_jobs == 6


class TestIntervalsReal:
    def test_threads_interval_replay(self, small_trace):
        config = SSTDSystemConfig(n_workers=2, backend="threads", deadline=30.0)
        result = DistributedSSTD(config).run_intervals(
            small_trace, n_intervals=4, compute_estimates=True
        )
        assert len(result.tracker.records) == 4
        assert 0.0 <= result.hit_rate <= 1.0
        assert result.final_worker_count == 2
        # Cumulative re-decoding emits each grid point at most once.
        seen = [(e.claim_id, e.timestamp) for e in result.estimates]
        assert len(seen) == len(set(seen))
        assert result.estimates

    def test_execution_times_positive(self, small_trace):
        config = SSTDSystemConfig(n_workers=1, backend="threads", deadline=30.0)
        result = DistributedSSTD(config).run_intervals(small_trace, n_intervals=3)
        assert all(t >= 0 for t in result.execution_times)


class TestJobSpecs:
    def test_decode_payload_matches_engine(self, small_trace, serial_estimates):
        engine = SSTD()
        grouped = engine.group_reports(list(small_trace.reports))
        claim_id = sorted(grouped)[0]
        payload = decode_claim_payload(
            claim_id, tuple(grouped[claim_id]), engine.config
        )
        expected = [e for e in serial_estimates if e.claim_id == claim_id]
        assert list(payload) == expected

    def test_decode_task_spec_is_picklable(self, small_trace):
        import pickle

        engine = SSTD()
        grouped = engine.group_reports(list(small_trace.reports))
        claim_id = sorted(grouped)[0]
        spec = decode_task_spec(claim_id, grouped[claim_id], engine.config)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone() == spec()
