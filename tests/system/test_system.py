"""Tests for TD jobs, deadline tracking, DTM, and the integrated system."""

import pytest

from repro.cluster import CondorPool, Simulator, uniform_pool
from repro.control import WCETModel
from repro.core.types import Attitude, Report
from repro.system import (
    DTMConfig,
    DeadlineTracker,
    DistributedSSTD,
    DynamicTaskManager,
    SSTDSystemConfig,
    TDJob,
    hit_rate_curve,
)
from repro.system.deadline import IntervalRecord
from repro.workqueue import CostModel, ElasticWorkerPool, Task, WorkQueueMaster


def reports_for(claim_id, n=10, start=0.0):
    return [
        Report(
            f"s{i}", claim_id, start + float(i),
            attitude=Attitude.AGREE if i % 2 else Attitude.DISAGREE,
        )
        for i in range(n)
    ]


class TestTDJob:
    def test_validation(self):
        with pytest.raises(ValueError):
            TDJob(job_id="", claim_id="c")
        with pytest.raises(ValueError):
            TDJob(job_id="j", claim_id="c", deadline=0.0)
        with pytest.raises(ValueError):
            TDJob(job_id="j", claim_id="c", tasks_per_batch=0)

    def test_make_tasks_single(self):
        job = TDJob(job_id="j", claim_id="c")
        (task,) = job.make_tasks(reports_for("c", 10))
        assert task.data_size == 10.0
        assert task.job_id == "j"

    def test_make_tasks_splits_equally(self):
        job = TDJob(job_id="j", claim_id="c", tasks_per_batch=3)
        tasks = job.make_tasks(reports_for("c", 10))
        assert [t.data_size for t in tasks] == [4.0, 3.0, 3.0]

    def test_make_tasks_caps_at_report_count(self):
        job = TDJob(job_id="j", claim_id="c", tasks_per_batch=10)
        tasks = job.make_tasks(reports_for("c", 3))
        assert len(tasks) == 3

    def test_empty_batch_yields_one_empty_task(self):
        job = TDJob(job_id="j", claim_id="c")
        (task,) = job.make_tasks([])
        assert task.data_size == 0.0

    def test_payload_receives_chunk(self):
        job = TDJob(job_id="j", claim_id="c", tasks_per_batch=2)
        seen = []
        tasks = job.make_tasks(reports_for("c", 4), payload=seen.append)
        for task in tasks:
            task.run()
        assert sorted(len(chunk) for chunk in seen) == [2, 2]

    def test_accounting(self):
        job = TDJob(job_id="j", claim_id="c")
        job.make_tasks(reports_for("c", 5))
        job.make_tasks(reports_for("c", 7))
        assert job.reports_seen == 12
        assert job.batches_submitted == 2


class TestDeadlineTracker:
    def test_hit_rate(self):
        tracker = DeadlineTracker(deadline=5.0)
        tracker.record(0, 100, 3.0)
        tracker.record(1, 100, 7.0)
        tracker.record(2, 100, 5.0)
        assert tracker.hit_rate == pytest.approx(2 / 3)
        assert tracker.total_lateness == pytest.approx(2.0)
        assert tracker.mean_execution_time == pytest.approx(5.0)

    def test_empty(self):
        assert DeadlineTracker(deadline=1.0).hit_rate == 0.0

    def test_record_validation(self):
        tracker = DeadlineTracker(deadline=1.0)
        with pytest.raises(ValueError):
            tracker.record(0, 1, -1.0)
        with pytest.raises(ValueError):
            DeadlineTracker(deadline=0.0)

    def test_interval_record(self):
        record = IntervalRecord(0, 10, execution_time=3.0, deadline=5.0)
        assert record.hit and record.lateness == 0.0
        late = IntervalRecord(1, 10, execution_time=9.0, deadline=5.0)
        assert not late.hit and late.lateness == 4.0

    def test_hit_rate_curve_monotone(self):
        times = [1.0, 3.0, 5.0, 9.0]
        curve = hit_rate_curve(times, [0.5, 2.0, 6.0, 10.0])
        rates = [rate for _, rate in curve]
        assert rates == sorted(rates)
        assert rates[-1] == 1.0

    def test_hit_rate_curve_validation(self):
        with pytest.raises(ValueError):
            hit_rate_curve([1.0], [0.0])


class TestDynamicTaskManager:
    def _stack(self, elastic=True, n_workers=2):
        simulator = Simulator()
        condor = CondorPool(uniform_pool(8, cores=4))
        master = WorkQueueMaster(simulator, rng=0)
        cost = CostModel(init_time=0.1, unit_cost=0.01, transfer_cost=0.0)
        pool = ElasticWorkerPool(simulator, master, condor, cost)
        pool.scale_to(n_workers)
        wcet = WCETModel(init_time=0.1, theta1=0.01, theta2=0.01)
        dtm = DynamicTaskManager(
            simulator, master, pool, wcet, DTMConfig(elastic=elastic)
        )
        return simulator, master, pool, dtm

    def test_register_job_twice_rejected(self):
        _, _, _, dtm = self._stack()
        dtm.register_job(TDJob(job_id="a", claim_id="a"))
        with pytest.raises(ValueError, match="already registered"):
            dtm.register_job(TDJob(job_id="a", claim_id="a"))

    def test_late_job_priority_rises(self):
        simulator, master, pool, dtm = self._stack(elastic=False)
        job = TDJob(job_id="late", claim_id="late", deadline=0.5)
        dtm.register_job(job)
        dtm.start()
        # Far more work than can be done within the deadline.
        for _ in range(20):
            master.submit(Task(job_id="late", data_size=500.0))
        simulator.run(until=5.0)
        assert master.priority_of("late") > 1.0

    def test_elastic_pool_grows_under_pressure(self):
        simulator, master, pool, dtm = self._stack(elastic=True, n_workers=1)
        job = TDJob(job_id="a", claim_id="a", deadline=0.5)
        dtm.register_job(job)
        dtm.start()
        for _ in range(50):
            master.submit(Task(job_id="a", data_size=500.0))
        simulator.run(until=10.0)
        assert pool.size > 1

    def test_idle_jobs_not_sampled(self):
        simulator, master, pool, dtm = self._stack()
        dtm.register_job(TDJob(job_id="idle", claim_id="idle"))
        dtm.start()
        simulator.run(until=5.0)
        assert dtm.signal_log == []

    def test_stop_halts_sampling(self):
        simulator, master, pool, dtm = self._stack()
        dtm.register_job(TDJob(job_id="a", claim_id="a", deadline=0.5))
        dtm.start()
        master.submit(Task(job_id="a", data_size=1000.0))
        simulator.run(until=2.0)
        samples = len(dtm.signal_log)
        dtm.stop()
        simulator.run(until=10.0)
        assert len(dtm.signal_log) == samples


class TestDistributedSSTD:
    def _reports(self):
        reports = []
        for claim in ("c1", "c2", "c3"):
            reports.extend(reports_for(claim, 50))
        return reports

    def test_batch_estimates_match_serial(self):
        from repro.core import SSTD, SSTDConfig
        from repro.core.acs import ACSConfig

        sstd_config = SSTDConfig(acs=ACSConfig(window=10.0, step=5.0))
        reports = self._reports()
        serial = SSTD(sstd_config).discover(reports, start=0.0, end=50.0)
        system = DistributedSSTD(
            SSTDSystemConfig(n_workers=3, sstd=sstd_config)
        )
        result = system.run_batch(reports, start=0.0, end=50.0)
        assert list(result.estimates) == sorted(
            serial, key=lambda e: (e.claim_id, e.timestamp)
        )

    def test_more_workers_shorter_makespan(self):
        reports = self._reports()
        slow = DistributedSSTD(SSTDSystemConfig(n_workers=1)).run_batch(reports)
        fast = DistributedSSTD(SSTDSystemConfig(n_workers=3)).run_batch(reports)
        assert fast.makespan < slow.makespan

    def test_batch_metrics(self):
        result = DistributedSSTD(SSTDSystemConfig(n_workers=2)).run_batch(
            self._reports()
        )
        assert result.n_jobs == 3
        assert result.n_tasks >= 3
        assert 0.0 < result.utilization <= 1.0

    def test_run_intervals_tracks_deadlines(self):
        from repro.streams import Trace

        trace = Trace(name="t", reports=self._reports())
        system = DistributedSSTD(
            SSTDSystemConfig(
                n_workers=2,
                deadline=5.0,
                cost_model=CostModel(init_time=0.01, unit_cost=0.001),
            )
        )
        result = system.run_intervals(trace, n_intervals=5)
        assert len(result.tracker.records) == 5
        assert 0.0 <= result.hit_rate <= 1.0

    def test_tight_deadline_lowers_hit_rate(self):
        from repro.streams import Trace

        trace = Trace(name="t", reports=self._reports())
        cost = CostModel(init_time=0.5, unit_cost=0.05)

        def run(deadline):
            return DistributedSSTD(
                SSTDSystemConfig(
                    n_workers=1,
                    max_workers=1,
                    deadline=deadline,
                    cost_model=cost,
                    control_enabled=False,
                )
            ).run_intervals(trace, n_intervals=5).hit_rate

        assert run(0.05) <= run(100.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SSTDSystemConfig(n_workers=0)
        with pytest.raises(ValueError):
            SSTDSystemConfig(deadline=0.0)
        with pytest.raises(ValueError):
            SSTDSystemConfig(tasks_per_job=0)

    def test_interval_validation(self):
        from repro.streams import Trace

        system = DistributedSSTD()
        with pytest.raises(ValueError):
            system.run_intervals(
                Trace(name="t", reports=self._reports()), n_intervals=0
            )
        with pytest.raises(ValueError):
            system.run_intervals(Trace(name="empty", reports=[]))
