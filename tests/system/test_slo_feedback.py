"""Closed-loop interval replay: admission control wired into run_intervals."""

import numpy as np

from repro.control import AdmissionConfig, FeedbackConfig
from repro.core.acs import ACSConfig
from repro.core.sstd import SSTDConfig
from repro.core.types import Attitude, Report
from repro.streams import Trace
from repro.system import DistributedSSTD, SSTDSystemConfig


def multi_claim_trace(n_claims=6, per_claim=150, duration=1200.0, seed=0):
    rng = np.random.default_rng(seed)
    reports = []
    for c in range(n_claims):
        for k in range(per_claim):
            t = float(rng.uniform(0, duration))
            says = rng.random() < 0.8
            reports.append(
                Report(
                    f"s{k % 60}",
                    f"claim-{c}",
                    t,
                    attitude=Attitude.AGREE if says else Attitude.DISAGREE,
                )
            )
    return Trace(
        name="slo", reports=sorted(reports, key=lambda r: r.timestamp)
    )


def make_config(feedback=None):
    return SSTDSystemConfig(
        n_workers=2,
        backend="threads",
        control_enabled=False,
        sstd=SSTDConfig(
            acs=ACSConfig(window=100.0, step=50.0), min_observations=4
        ),
        feedback=feedback,
    )


class TestFeedbackLoop:
    def test_open_loop_records_no_admission_decisions(self):
        trace = multi_claim_trace()
        result = DistributedSSTD(make_config()).run_intervals(
            trace, n_intervals=4
        )
        assert result.tracker.total_deferred == 0
        assert result.tracker.total_shed == 0
        assert all(r.n_deferred == 0 for r in result.tracker.records)

    def test_loose_deadline_admits_everything_bit_identical(self):
        """With capacity to spare the loop must not perturb the run."""
        trace = multi_claim_trace()
        open_loop = DistributedSSTD(make_config()).run_intervals(
            trace, n_intervals=4, deadline=100.0, compute_estimates=True
        )
        closed = DistributedSSTD(
            make_config(feedback=FeedbackConfig())
        ).run_intervals(
            trace, n_intervals=4, deadline=100.0, compute_estimates=True
        )
        assert closed.tracker.total_deferred == 0
        assert closed.tracker.total_shed == 0
        assert closed.estimates == open_loop.estimates

    def test_tight_deadline_defers_and_writes_trajectory(self, tmp_path):
        trace = multi_claim_trace()
        path = tmp_path / "traj.jsonl"
        n_intervals = 4
        result = DistributedSSTD(
            make_config(
                feedback=FeedbackConfig(trajectory_path=str(path))
            )
        ).run_intervals(
            # Real-clock deadline far below any interval's decode cost:
            # once cost samples exist the budget collapses to min_admit.
            trace,
            n_intervals=n_intervals,
            deadline=1e-4,
        )
        assert result.tracker.total_deferred > 0
        assert any(r.n_deferred > 0 for r in result.tracker.records)
        # One PID update per interval, recorded for offline replay.
        assert len(path.read_text().splitlines()) == n_intervals

    def test_shed_mode_drops_work_under_overload(self):
        trace = multi_claim_trace()
        result = DistributedSSTD(
            make_config(
                feedback=FeedbackConfig(
                    admission=AdmissionConfig(shed_after=1)
                )
            )
        ).run_intervals(trace, n_intervals=4, deadline=1e-4)
        assert result.tracker.total_shed > 0
