"""Tests for the end-to-end social sensing application."""

import numpy as np
import pytest

from repro.core.acs import ACSConfig
from repro.core.sstd import SSTDConfig
from repro.core.types import Attitude, Report, TruthValue
from repro.system.application import (
    ApplicationConfig,
    SocialSensingApplication,
)
from repro.text import RawTweet

FAST = ApplicationConfig(
    sstd=SSTDConfig(acs=ACSConfig(window=40.0, step=20.0), min_observations=4),
    retrain_every=5,
)


def feed_reports(app, reports, batch_seconds=20.0, duration=1000.0):
    cursor = 0
    for now in np.arange(batch_seconds, duration + batch_seconds, batch_seconds):
        batch = []
        while cursor < len(reports) and reports[cursor].timestamp <= now:
            batch.append(reports[cursor])
            cursor += 1
        app.ingest_reports(batch, float(now))


class TestIngestReports:
    def _flip_reports(self, seed=0, n=800, duration=1000.0, flip_at=500.0):
        rng = np.random.default_rng(seed)
        reports = []
        for k in range(n):
            t = float(rng.uniform(0, duration))
            truth = t >= flip_at
            says = truth if rng.random() < 0.85 else not truth
            reports.append(
                Report(
                    f"s{k % 150}", "fire-downtown", t,
                    attitude=Attitude.AGREE if says else Attitude.DISAGREE,
                )
            )
        return sorted(reports, key=lambda r: r.timestamp)

    def test_tracks_flip_and_records_history(self):
        app = SocialSensingApplication(FAST)
        feed_reports(app, self._flip_reports())
        assert app.verdicts()["fire-downtown"] is TruthValue.TRUE
        assert any(
            flip.claim_id == "fire-downtown"
            and flip.new_value is TruthValue.TRUE
            for flip in app.flips
        )

    def test_counts(self):
        app = SocialSensingApplication(FAST)
        reports = self._flip_reports(n=200)
        feed_reports(app, reports)
        assert app.n_reports == 200
        assert app.n_claims == 1
        assert "claims=1" in app.status_line()

    def test_qos_tracked_per_batch(self):
        app = SocialSensingApplication(FAST)
        feed_reports(app, self._flip_reports(n=100))
        assert len(app.tracker.records) == 50  # one per 20s batch
        assert 0.0 <= app.qos_hit_rate <= 1.0

    def test_source_diagnostics(self):
        rng = np.random.default_rng(1)
        reports = []
        for k in range(600):
            t = float(rng.uniform(0, 1000))
            source = f"liar{k % 3}" if k % 10 == 0 else f"ok{k % 80}"
            truth = True  # claim always true
            reliability = 0.1 if source.startswith("liar") else 0.9
            says = truth if rng.random() < reliability else not truth
            reports.append(
                Report(
                    source, "c", t,
                    attitude=Attitude.AGREE if says else Attitude.DISAGREE,
                )
            )
        reports.sort(key=lambda r: r.timestamp)
        app = SocialSensingApplication(FAST)
        feed_reports(app, reports)
        spreaders = app.suspected_spreaders(top_k=5)
        assert spreaders
        assert all(s.source_id.startswith("liar") for s in spreaders)

    def test_true_claims_listing(self):
        app = SocialSensingApplication(FAST)
        reports = [
            Report(f"s{k}", "yes-claim", float(k), attitude=Attitude.AGREE)
            for k in range(1, 40)
        ] + [
            Report(f"t{k}", "no-claim", float(k), attitude=Attitude.DISAGREE)
            for k in range(1, 40)
        ]
        reports.sort(key=lambda r: r.timestamp)
        feed_reports(app, reports, batch_seconds=10.0, duration=100.0)
        assert app.true_claims() == ["yes-claim"]


class TestIngestTweets:
    def test_pipeline_integration(self):
        app = SocialSensingApplication(FAST)
        tweets = [
            RawTweet(f"u{k}", "police confirm the road is closed", float(k))
            for k in range(1, 30)
        ]
        kept = app.ingest_tweets(tweets, now=30.0)
        assert kept == 29
        assert app.n_claims == 1
        (claim_id,) = app.verdicts()
        assert app.verdicts()[claim_id] is TruthValue.TRUE


class TestConfig:
    def test_deadline_validation(self):
        with pytest.raises(ValueError):
            ApplicationConfig(deadline=0.0)

    def test_flip_history_can_be_disabled(self):
        config = ApplicationConfig(
            sstd=FAST.sstd, keep_flip_history=False, retrain_every=5
        )
        app = SocialSensingApplication(config)
        reports = TestIngestReports()._flip_reports()
        feed_reports(app, reports)
        assert app.flips == []
