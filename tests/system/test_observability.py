"""Acceptance: one observability schema across all three backends.

The ISSUE's core criterion: ``run_batch`` with tracing enabled yields at
least one ``wq.task`` span per task plus merged worker metrics on every
backend — simulated (virtual clock), threads, and processes (wall
clock) — and a disabled run records nothing.
"""

import pytest

from repro.streams.events import PopulationConfig, ScenarioSpec
from repro.streams.generator import GeneratorConfig, generate_trace
from repro.system.monitor import MonitorSummary
from repro.system.sstd_system import BACKENDS, DistributedSSTD, SSTDSystemConfig

N_CLAIMS = 4


@pytest.fixture(scope="module")
def small_trace():
    spec = ScenarioSpec(
        name="obs-test",
        duration=3600.0,
        n_reports=300,
        n_claims=N_CLAIMS,
        claim_texts=("the bridge is closed",),
        topic="test",
        mean_truth_flips=1.0,
        population=PopulationConfig(n_sources=50),
    )
    return generate_trace(spec, seed=5, config=GeneratorConfig(with_text=False))


def _run(small_trace, backend: str, **overrides) -> DistributedSSTD:
    # One claim per shard keeps "task" == "claim" on every machine, so
    # the span/metric counts below stay exact (auto-sharding adapts to
    # the host's core count and would make them host-dependent).
    overrides.setdefault("claims_per_shard", 1)
    config = SSTDSystemConfig(
        n_workers=2, backend=backend, observability=True, **overrides
    )
    system = DistributedSSTD(config)
    system.run_batch(list(small_trace.reports))
    return system


class TestBatchTracing:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_span_per_task_and_merged_metrics(self, small_trace, backend):
        system = _run(small_trace, backend)
        metrics = system.obs.metrics.snapshot()
        events = system.obs.tracer.events()

        task_spans = [
            e for e in events if e.name == "wq.task" and e.kind == "span"
        ]
        assert len(task_spans) == N_CLAIMS  # one span per dispatched task
        assert all(e.duration >= 0 for e in task_spans)

        # The run itself is bracketed by a system-level span.
        (run_span,) = [e for e in events if e.name == "system.run_batch"]
        assert run_span.attr_dict()["backend"] == backend

        # Engine metrics reach the master registry on every backend; on
        # the process backend they cross the pickle boundary as
        # MetricsSnapshots and are merged, not recorded in-process.
        assert metrics.counter("hmm.fits") == float(N_CLAIMS)
        assert metrics.counter("wq.completed") == float(N_CLAIMS)
        assert metrics.histogram("wq.task_seconds").count == N_CLAIMS

    @pytest.mark.parametrize("backend", ("threads", "processes"))
    def test_real_backends_count_worker_tasks(self, small_trace, backend):
        system = _run(small_trace, backend)
        metrics = system.obs.metrics.snapshot()
        assert metrics.counter("worker.tasks") == float(N_CLAIMS)
        assert metrics.counter("worker.task_errors") == 0.0
        assert metrics.histogram("worker.task_seconds").count == N_CLAIMS

    def test_simulated_backend_uses_virtual_clock(self, small_trace):
        system = _run(small_trace, "simulated")
        assert system.obs.clock.kind == "virtual"
        # Virtual task spans carry the cost model's times, not wall time.
        spans = [e for e in system.obs.tracer.events() if e.name == "wq.task"]
        assert all(e.start >= 0 and e.duration > 0 for e in spans)

    @pytest.mark.parametrize("backend", ("threads", "processes"))
    def test_real_backends_use_wall_clock(self, small_trace, backend):
        system = _run(small_trace, backend)
        assert system.obs.clock.kind == "wall"

    def test_control_loop_records_when_enabled(self, small_trace):
        system = _run(small_trace, "simulated", control_enabled=True)
        metrics = system.obs.metrics.snapshot()
        assert metrics.counter("control.samples") > 0
        assert metrics.histogram("pid.error").count > 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_disabled_run_records_nothing(
        self, small_trace, backend, monkeypatch
    ):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        config = SSTDSystemConfig(n_workers=2, backend=backend)
        system = DistributedSSTD(config)
        system.run_batch(list(small_trace.reports))
        assert not system.obs.enabled
        assert system.obs.tracer.events() == []
        assert system.obs.metrics.snapshot().counters == {}

    def test_enabled_and_disabled_runs_agree_on_estimates(self, small_trace):
        reports = list(small_trace.reports)
        plain = DistributedSSTD(
            SSTDSystemConfig(n_workers=2, backend="simulated")
        ).run_batch(reports)
        traced = DistributedSSTD(
            SSTDSystemConfig(
                n_workers=2, backend="simulated", observability=True
            )
        ).run_batch(reports)
        assert list(plain.estimates) == list(traced.estimates)
        assert plain.makespan == traced.makespan


class TestEnvActivation:
    def test_repro_trace_env_enables_tracing(self, small_trace, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        config = SSTDSystemConfig(n_workers=2, backend="simulated")
        system = DistributedSSTD(config)
        system.run_batch(list(small_trace.reports))
        assert system.obs.enabled
        assert system.obs.metrics.counter("wq.completed") == float(N_CLAIMS)

    def test_explicit_false_beats_env(self, small_trace, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        config = SSTDSystemConfig(
            n_workers=2, backend="simulated", observability=False
        )
        system = DistributedSSTD(config)
        system.run_batch(list(small_trace.reports))
        assert not system.obs.enabled
        assert system.obs.tracer.events() == []


class TestMonitorPercentiles:
    def test_empty_summary_is_all_zero(self):
        summary = MonitorSummary(samples=())
        assert summary.p50_queue_depth == 0.0
        assert summary.p95_queue_depth == 0.0
        assert summary.p50_utilization == 0.0
        assert summary.p95_utilization == 0.0
        assert summary.max_utilization == 0.0
        assert summary.queue_depth_percentile(99.0) == 0.0

    def test_percentiles_are_actual_samples(self):
        from repro.system.monitor import MonitorSample

        samples = tuple(
            MonitorSample(
                time=float(i),
                pending_tasks=depth,
                busy_workers=busy,
                total_workers=4,
                jobs_with_backlog=0,
            )
            for i, (depth, busy) in enumerate(
                [(0, 4), (2, 4), (5, 3), (9, 1), (1, 2)]
            )
        )
        summary = MonitorSummary(samples=samples)
        assert summary.p50_queue_depth == 2.0
        assert summary.p95_queue_depth == 9.0
        assert summary.max_utilization == 1.0
        assert summary.p50_utilization == 0.75
