"""Tests for the tweet-processing pipeline."""

import pytest
from hypothesis import given, strategies as st

from repro.core.types import Attitude
from repro.text import (
    AttitudeClassifier,
    KeywordFilter,
    NaiveBayesHedgeClassifier,
    OnlineClaimClusterer,
    RawTweet,
    TweetPipeline,
    content_tokens,
    is_retweet,
    jaccard_distance,
    jaccard_similarity,
    text_distance,
    token_set,
    tokenize,
)
from repro.text.independence import IndependenceConfig, IndependenceScorer
from repro.text.jaccard import pairwise_max_distance
from repro.text.tokenize import ngrams


class TestTokenize:
    def test_basic(self):
        assert tokenize("Hello, World!") == ["hello", "world"]

    def test_hashtags_and_mentions_kept(self):
        tokens = tokenize("#osu shooting reported by @police")
        assert "#osu" in tokens
        assert "@police" in tokens

    def test_urls_stripped(self):
        tokens = tokenize("see https://t.co/abc123 for details")
        assert not any("t.co" in t or "http" in t for t in tokens)

    def test_content_tokens_drop_stopwords(self):
        assert "the" not in content_tokens("the bridge is closed")
        assert "bridge" in content_tokens("the bridge is closed")

    def test_ngrams(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]
        with pytest.raises(ValueError):
            ngrams(["a"], 0)


class TestJaccard:
    def test_identical_texts(self):
        assert text_distance("bomb at the library", "bomb at the library") == 0.0

    def test_disjoint_texts(self):
        assert text_distance("touchdown irish", "hostages supermarket") == 1.0

    def test_empty_sets_identical(self):
        assert jaccard_similarity(frozenset(), frozenset()) == 1.0

    def test_symmetry(self):
        a, b = token_set("police confirm arrest"), token_set("arrest made by police")
        assert jaccard_distance(a, b) == jaccard_distance(b, a)

    @given(st.text(max_size=60), st.text(max_size=60))
    def test_distance_bounded_property(self, a, b):
        assert 0.0 <= text_distance(a, b) <= 1.0

    @given(st.text(max_size=60))
    def test_self_distance_zero_property(self, text):
        assert text_distance(text, text) == 0.0

    def test_pairwise_max(self):
        texts = ["a b c", "a b c", "x y z"]
        assert pairwise_max_distance(texts) == 1.0


class TestClusterer:
    def test_similar_tweets_share_cluster(self):
        clusterer = OnlineClaimClusterer()
        a = clusterer.assign("explosion at the marathon finish line")
        b = clusterer.assign("huge explosion near marathon finish line!!")
        assert a == b

    def test_unrelated_tweets_split_clusters(self):
        clusterer = OnlineClaimClusterer()
        a = clusterer.assign("explosion at the marathon finish line")
        b = clusterer.assign("buckeyes touchdown in the fourth quarter")
        assert a != b

    def test_centroid_has_frequent_tokens(self):
        clusterer = OnlineClaimClusterer()
        for _ in range(3):
            clusterer.assign("bridge closed traffic terrible")
        (cluster,) = clusterer.clusters.values()
        assert "bridge" in cluster.centroid()

    def test_split_on_diameter(self):
        # Force everything into one cluster, then check it splits.
        clusterer = OnlineClaimClusterer(join_threshold=1.0, split_threshold=0.8)
        clusterer.assign("alpha beta gamma delta")
        clusterer.assign("alpha beta gamma epsilon")
        clusterer.assign("zeta eta theta iota")
        clusterer.assign("zeta eta theta kappa")
        assert clusterer.n_clusters >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineClaimClusterer(join_threshold=0.0)
        with pytest.raises(ValueError):
            OnlineClaimClusterer(split_threshold=1.5)

    def test_assign_all(self):
        clusterer = OnlineClaimClusterer()
        ids = clusterer.assign_all(["a b c", "a b c d"])
        assert len(ids) == 2


class TestAttitude:
    @pytest.mark.parametrize(
        "text",
        [
            "BREAKING: shooting at the campus",
            "police confirm the arrest",
            "i just saw the fire myself",
        ],
    )
    def test_assertions(self, text):
        assert AttitudeClassifier().classify(text) is Attitude.AGREE

    @pytest.mark.parametrize(
        "text",
        [
            "that shooting story is fake news",
            "rumor debunked: no bomb at the library",
            "this is not true, officials deny it",
            "stop spreading misinformation about the attack",
        ],
    )
    def test_denials(self, text):
        assert AttitudeClassifier().classify(text) is Attitude.DISAGREE

    def test_denial_beats_assertion(self):
        text = "BREAKING: that viral bomb claim is fake"
        assert AttitudeClassifier().classify(text) is Attitude.DISAGREE

    def test_plain_mention_counts_as_endorsement(self):
        assert (
            AttitudeClassifier().classify("explosion near the stadium")
            is Attitude.AGREE
        )

    def test_empty_text_neutral(self):
        assert AttitudeClassifier().classify("") is Attitude.NEUTRAL

    def test_sports_mode_phrases(self):
        classifier = AttitudeClassifier(sports_mode=True)
        assert classifier.classify("irish taking the lead!") is Attitude.AGREE
        assert classifier.score("touchdown!!!") == 1


class TestHedgeClassifier:
    def test_hedged_examples_score_high(self):
        clf = NaiveBayesHedgeClassifier()
        assert clf.uncertainty_score(
            "unconfirmed reports, possibly a shooting, not sure"
        ) > 0.5

    def test_confident_examples_score_low(self):
        clf = NaiveBayesHedgeClassifier()
        assert clf.uncertainty_score(
            "police confirm the arrest was made tonight"
        ) < 0.5

    def test_score_in_valid_range(self):
        clf = NaiveBayesHedgeClassifier()
        for text in ("", "maybe", "confirmed", "xyzzy unknown words"):
            assert 0.0 <= clf.uncertainty_score(text) < 1.0

    def test_classify_threshold(self):
        clf = NaiveBayesHedgeClassifier()
        assert clf.classify("might be true, possibly, who knows")
        assert not clf.classify("officials announce the road reopened")

    def test_incremental_training(self):
        clf = NaiveBayesHedgeClassifier()
        before = clf.hedge_probability("floofy wug")
        clf.train([("floofy wug", True)] * 20)
        assert clf.hedge_probability("floofy wug") > before

    def test_needs_both_classes(self):
        clf = NaiveBayesHedgeClassifier(corpus=[("a", True)])
        with pytest.raises(RuntimeError):
            clf.hedge_probability("a")

    def test_smoothing_validation(self):
        with pytest.raises(ValueError):
            NaiveBayesHedgeClassifier(smoothing=0.0)


class TestIndependence:
    def test_retweet_detection(self):
        assert is_retweet("RT @user: something happened")
        assert is_retweet("  rt @User: x")
        assert not is_retweet("something happened RT later")

    def test_retweet_scores_low(self):
        scorer = IndependenceScorer()
        eta = scorer.score("c1", "RT @a: bomb at the library", 1.0)
        assert eta == scorer.config.copy_score

    def test_near_duplicate_scores_low(self):
        scorer = IndependenceScorer()
        first = scorer.score("c1", "bomb found at the JFK library", 1.0)
        second = scorer.score("c1", "bomb found at the JFK library!!", 2.0)
        assert first == scorer.config.fresh_score
        assert second == scorer.config.copy_score

    def test_window_expiry(self):
        scorer = IndependenceScorer(IndependenceConfig(window=10.0))
        scorer.score("c1", "bomb found at the JFK library", 1.0)
        eta = scorer.score("c1", "bomb found at the JFK library", 100.0)
        assert eta == scorer.config.fresh_score

    def test_claims_do_not_cross_contaminate(self):
        scorer = IndependenceScorer()
        scorer.score("c1", "bomb found at the JFK library", 1.0)
        eta = scorer.score("c2", "bomb found at the JFK library", 2.0)
        assert eta == scorer.config.fresh_score

    def test_config_validation(self):
        with pytest.raises(ValueError):
            IndependenceConfig(window=0.0)
        with pytest.raises(ValueError):
            IndependenceConfig(copy_score=0.0)


class TestKeywordFilter:
    def test_single_keyword(self):
        keyword_filter = KeywordFilter(("boston",))
        assert keyword_filter.matches("explosion in Boston today")
        assert not keyword_filter.matches("explosion in Paris today")

    def test_multiword_keyword(self):
        keyword_filter = KeywordFilter(("charlie hebdo",))
        assert keyword_filter.matches("attack at Charlie Hebdo offices")
        assert not keyword_filter.matches("charlie was here")

    def test_min_hits(self):
        keyword_filter = KeywordFilter(("boston", "marathon"), min_hits=2)
        assert keyword_filter.matches("boston marathon bombing")
        assert not keyword_filter.matches("boston traffic jam")

    def test_filter_list(self):
        keyword_filter = KeywordFilter(("game",))
        kept = keyword_filter.filter(["great game", "nice weather"])
        assert kept == ["great game"]

    def test_validation(self):
        with pytest.raises(ValueError):
            KeywordFilter(())
        with pytest.raises(ValueError):
            KeywordFilter(("a",), min_hits=0)


class TestTweetPipeline:
    def test_end_to_end_scoring(self):
        pipeline = TweetPipeline()
        report = pipeline.process(
            RawTweet("alice", "BREAKING: bridge into cambridge closed", 5.0)
        )
        assert report is not None
        assert report.source_id == "alice"
        assert report.attitude is Attitude.AGREE
        assert report.claim_id.startswith("claim-")
        assert 0.0 <= report.uncertainty < 1.0

    def test_keyword_filter_drops(self):
        pipeline = TweetPipeline(keyword_filter=KeywordFilter(("boston",)))
        dropped = pipeline.process(RawTweet("a", "paris is lovely", 1.0))
        kept = pipeline.process(RawTweet("a", "boston is on alert", 2.0))
        assert dropped is None and kept is not None
        assert pipeline.dropped == 1 and pipeline.processed == 1

    def test_same_story_same_claim(self):
        pipeline = TweetPipeline()
        a = pipeline.process(RawTweet("a", "suspect arrested near finish line", 1.0))
        b = pipeline.process(
            RawTweet("b", "the suspect was arrested near the finish line", 2.0)
        )
        assert a.claim_id == b.claim_id

    def test_retweet_low_independence(self):
        pipeline = TweetPipeline()
        pipeline.process(RawTweet("a", "fire at the stadium", 1.0))
        rt = pipeline.process(RawTweet("b", "RT @a: fire at the stadium", 2.0))
        assert rt.independence < 1.0

    def test_process_stream(self):
        pipeline = TweetPipeline(keyword_filter=KeywordFilter(("fire",)))
        reports = pipeline.process_stream(
            [
                RawTweet("a", "fire downtown", 1.0),
                RawTweet("b", "lovely weather", 2.0),
                RawTweet("c", "the fire is spreading", 3.0),
            ]
        )
        assert len(reports) == 2

    def test_raw_tweet_validation(self):
        with pytest.raises(ValueError):
            RawTweet("", "x", 1.0)
        with pytest.raises(ValueError):
            RawTweet("a", "x", -1.0)
