"""Tests for the lexicon polarity analyzer (paper §VII extension)."""

import pytest

from repro.core.types import Attitude
from repro.text import PolarityAnalyzer


@pytest.fixture
def analyzer():
    return PolarityAnalyzer()


class TestPolarityScore:
    def test_confirmation_positive(self, analyzer):
        result = analyzer.analyze("police confirmed the arrest, verified")
        assert result.score > 0.5
        assert result.attitude is Attitude.AGREE

    def test_denial_negative(self, analyzer):
        result = analyzer.analyze("that story is fake, a total hoax, debunked")
        assert result.score < -0.5
        assert result.attitude is Attitude.DISAGREE

    def test_negation_flips(self, analyzer):
        plain = analyzer.analyze("the report is true").score
        negated = analyzer.analyze("the report is not true").score
        assert plain > 0
        assert negated < 0

    def test_intensifier_amplifies(self, analyzer):
        base = abs(analyzer.analyze("this is fake").score)
        strong = abs(analyzer.analyze("this is totally fake").score)
        assert strong >= base

    def test_downtoner_weakens(self, analyzer):
        base = abs(analyzer.analyze("this is fake").score)
        weak = abs(analyzer.analyze("this is possibly fake").score)
        assert weak < base

    def test_score_bounded(self, analyzer):
        result = analyzer.analyze(
            "totally absolutely completely fake hoax false debunked"
        )
        assert -1.0 <= result.score <= 1.0

    def test_cueless_text_defaults_to_agree(self, analyzer):
        result = analyzer.analyze("the bridge on fifth street")
        assert result.n_cues == 0
        assert result.attitude is Attitude.AGREE

    def test_empty_text_neutral(self, analyzer):
        assert analyzer.analyze("").attitude is Attitude.NEUTRAL

    def test_mixed_cues_net_out(self, analyzer):
        result = analyzer.analyze(
            "breaking: the explosion story is fake, a hoax"
        )
        # two denial cues (-1.0 each) outweigh the breaking cue (+0.8)
        assert result.attitude is Attitude.DISAGREE

    def test_balanced_cues_fall_back_to_default(self, analyzer):
        result = analyzer.analyze("breaking: the explosion story is fake")
        # +0.8 and -1.0 average to -0.1, inside the neutral dead-zone.
        assert abs(result.score) <= analyzer.neutral_band + 1e-9
        assert result.attitude is analyzer.default_attitude


class TestPipelineCompatibility:
    def test_classify_interface(self, analyzer):
        assert analyzer.classify("confirmed by officials") is Attitude.AGREE
        assert analyzer.score("this is false") == -1

    def test_usable_in_tweet_pipeline(self):
        from repro.text import RawTweet, TweetPipeline

        pipeline = TweetPipeline(attitude=PolarityAnalyzer())
        report = pipeline.process(
            RawTweet("a", "officials confirmed the evacuation", 1.0)
        )
        assert report.attitude is Attitude.AGREE

    def test_custom_lexicon(self):
        analyzer = PolarityAnalyzer(lexicon={"yep": 1.0, "nah": -1.0})
        assert analyzer.classify("yep") is Attitude.AGREE
        assert analyzer.classify("nah") is Attitude.DISAGREE

    def test_lexicon_validation(self):
        with pytest.raises(ValueError):
            PolarityAnalyzer(lexicon={"broken": 2.0})
        with pytest.raises(ValueError):
            PolarityAnalyzer(neutral_band=-0.1)
