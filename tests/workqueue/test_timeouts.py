"""Tests for per-task timeouts and retry-elsewhere semantics."""

import pytest

from repro.cluster import CondorPool, NodeSpec, ResourceSpec, Simulator
from repro.workqueue import CostModel, ElasticWorkerPool, Task, WorkQueueMaster

COST = CostModel(init_time=0.0, unit_cost=1.0, transfer_cost=0.0)


def mixed_speed_stack():
    """One slow (0.5x) and one fast (2x) single-core node, one worker each."""
    simulator = Simulator()
    nodes = [
        NodeSpec(
            name="slow",
            capacity=ResourceSpec(cores=1, memory_mb=1024, disk_mb=4096),
            speed_factor=0.5,
        ),
        NodeSpec(
            name="fast",
            capacity=ResourceSpec(cores=1, memory_mb=1024, disk_mb=4096),
            speed_factor=2.0,
        ),
    ]
    condor = CondorPool(nodes)
    master = WorkQueueMaster(simulator, rng=0)
    pool = ElasticWorkerPool(simulator, master, condor, COST)
    pool.scale_to(2)
    return simulator, master


class TestTaskTimeoutValidation:
    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError):
            Task(job_id="j", timeout=0.0)

    def test_retries_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            Task(job_id="j", max_retries=-1)


class TestStragglerRetry:
    def test_slow_node_attempt_retried_on_fast_node(self):
        """A 1-unit task takes 2s on the slow node (0.5x) and 0.5s on the
        fast one.  With a 1s timeout, a slow-node attempt aborts at 1s
        and the retry lands on the fast node."""
        simulator, master = mixed_speed_stack()
        # Occupy the fast worker so the timed task starts on the slow one.
        fast_worker = next(
            w for w in master.workers if w.placement.node.name == "fast"
        )
        slow_worker = next(
            w for w in master.workers if w.placement.node.name == "slow"
        )
        fast_worker.execute(Task(job_id="filler", data_size=1.4), lambda w, r: None)

        task = Task(job_id="j", data_size=1.0, timeout=1.0, fn=lambda: "ok")
        master.submit(task)
        assert slow_worker.busy
        master.wait_all()
        assert [r.output for r in master.results if r.job_id == "j"] == ["ok"]
        assert task.attempts == 2
        assert {w for w in task.tried_workers} >= {slow_worker.name}
        assert not master.failed

    def test_gives_up_after_max_retries(self):
        simulator, master = mixed_speed_stack()
        # Impossible timeout: even the fast node needs 0.5s for 1 unit.
        task = Task(job_id="j", data_size=1.0, timeout=0.1, max_retries=2)
        master.submit(task)
        master.wait_all()
        assert task in master.failed
        assert task.attempts == task.max_retries + 1
        assert master.outstanding() == 0
        # Job accounting reaches a terminal state.
        assert master.jobs["j"].pending == 0

    def test_no_timeout_behaves_as_before(self):
        simulator, master = mixed_speed_stack()
        master.submit(Task(job_id="j", data_size=1.0, fn=lambda: 1))
        master.wait_all()
        assert len(master.results) == 1
        assert not master.failed

    def test_timeout_generous_enough_completes_normally(self):
        simulator, master = mixed_speed_stack()
        task = Task(job_id="j", data_size=1.0, timeout=10.0, fn=lambda: 1)
        master.submit(task)
        master.wait_all()
        assert task.attempts == 1
        assert not master.failed

    def test_aborted_attempt_charges_the_timeout(self):
        """The slow attempt occupies its worker until the cap fires."""
        simulator, master = mixed_speed_stack()
        fast_worker = next(
            w for w in master.workers if w.placement.node.name == "fast"
        )
        fast_worker.execute(Task(job_id="filler", data_size=5.0), lambda w, r: None)
        task = Task(job_id="j", data_size=1.0, timeout=1.0)
        master.submit(task)
        simulator.run(until=0.5)
        slow_worker = next(
            w for w in master.workers if w.placement.node.name == "slow"
        )
        assert slow_worker.busy  # still burning the straggler attempt
        simulator.run(until=1.5)
        assert not slow_worker.busy  # aborted at t=1.0
