"""Tests for the master's serial dispatch bottleneck."""

import pytest

from repro.cluster import CondorPool, Simulator, uniform_pool
from repro.workqueue import CostModel, ElasticWorkerPool, Task, WorkQueueMaster

COST = CostModel(init_time=0.0, unit_cost=1.0, transfer_cost=0.0)


def stack(n_workers, overhead):
    simulator = Simulator()
    condor = CondorPool(uniform_pool(max(1, (n_workers + 3) // 4), cores=4))
    master = WorkQueueMaster(simulator, rng=0, dispatch_overhead=overhead)
    pool = ElasticWorkerPool(simulator, master, condor, COST)
    pool.scale_to(n_workers)
    return simulator, master


class TestDispatchOverhead:
    def test_serializes_at_the_master(self):
        """With zero-cost tasks, the makespan is n_tasks * overhead:
        dispatches queue behind one master no matter how many workers."""
        simulator, master = stack(n_workers=8, overhead=0.5)
        for _ in range(8):
            master.submit(Task(job_id="j", data_size=0.0))
        master.wait_all()
        assert simulator.now == pytest.approx(8 * 0.5)

    def test_overlaps_with_execution(self):
        """Dispatch pipelines with execution: worker k starts at
        (k+1)*overhead and runs for its task duration."""
        simulator, master = stack(n_workers=2, overhead=0.25)
        for _ in range(2):
            master.submit(Task(job_id="j", data_size=1.0))
        master.wait_all()
        # Second dispatch completes at 0.5; its task runs 1.0 -> 1.5.
        assert simulator.now == pytest.approx(1.5)

    def test_queue_time_includes_dispatch_wait(self):
        simulator, master = stack(n_workers=1, overhead=0.5)
        master.submit(Task(job_id="j", data_size=1.0))
        master.wait_all()
        (result,) = master.results
        assert result.started_at == pytest.approx(0.5)
        assert result.queue_time == pytest.approx(0.5)

    def test_zero_overhead_unchanged(self):
        simulator, master = stack(n_workers=2, overhead=0.0)
        for _ in range(4):
            master.submit(Task(job_id="j", data_size=1.0))
        master.wait_all()
        assert simulator.now == pytest.approx(2.0)

    def test_negative_overhead_rejected(self):
        simulator = Simulator()
        with pytest.raises(ValueError):
            WorkQueueMaster(simulator, dispatch_overhead=-1.0)

    def test_worker_start_delay_validated(self):
        simulator, master = stack(n_workers=1, overhead=0.0)
        worker = master.workers[0]
        with pytest.raises(ValueError):
            worker.execute(Task(job_id="j"), lambda w, r: None, start_delay=-1.0)

    def test_amdahl_shape(self):
        """Speedup saturates once dispatch serialization dominates."""
        def makespan(workers):
            simulator, master = stack(n_workers=workers, overhead=0.2)
            for _ in range(32):
                master.submit(Task(job_id="j", data_size=0.5))
            master.wait_all()
            return simulator.now

        serial = makespan(1)
        s8 = serial / makespan(8)
        s32 = serial / makespan(32)
        assert s8 > 2.0
        # Dispatch floor: 32 tasks * 0.2s = 6.4s no matter the workers.
        assert s32 == pytest.approx(s8, rel=0.5)
        assert makespan(32) >= 6.4 - 1e-9
