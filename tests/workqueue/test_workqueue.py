"""Tests for Work Queue: tasks, workers, master, elastic pool."""

import pytest

from repro.cluster import CondorPool, Simulator, uniform_pool
from repro.workqueue import (
    CostModel,
    ElasticWorkerPool,
    SimulatedWorker,
    Task,
    TaskResult,
    WorkQueueMaster,
)

COST = CostModel(init_time=1.0, unit_cost=0.1, transfer_cost=0.0)


def make_stack(n_workers=2, n_nodes=2, cores=4, cost=COST, seed=0):
    simulator = Simulator()
    condor = CondorPool(uniform_pool(n_nodes, cores=cores))
    master = WorkQueueMaster(simulator, rng=seed)
    pool = ElasticWorkerPool(simulator, master, condor, cost)
    pool.scale_to(n_workers)
    return simulator, condor, master, pool


class TestCostModel:
    def test_execution_time_formula(self):
        cost = CostModel(init_time=2.0, unit_cost=0.5, transfer_cost=0.1)
        # (2 + 10*0.5)/1 + 10*0.1
        assert cost.execution_time(10.0) == pytest.approx(8.0)

    def test_speed_factor_divides_compute_only(self):
        cost = CostModel(init_time=2.0, unit_cost=0.5, transfer_cost=0.1)
        fast = cost.execution_time(10.0, speed_factor=2.0)
        assert fast == pytest.approx(3.5 + 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(init_time=-1.0)
        with pytest.raises(ValueError):
            COST.execution_time(1.0, speed_factor=0.0)


class TestTask:
    def test_ids_unique(self):
        a, b = Task(job_id="j"), Task(job_id="j")
        assert a.task_id != b.task_id

    def test_validation(self):
        with pytest.raises(ValueError):
            Task(job_id="")
        with pytest.raises(ValueError):
            Task(job_id="j", data_size=-1.0)

    def test_run_payload(self):
        assert Task(job_id="j", fn=lambda: 5).run() == 5
        assert Task(job_id="j").run() is None


class TestTaskResult:
    def test_derived_times(self):
        result = TaskResult(
            task_id=1, job_id="j", worker_name="w",
            submitted_at=1.0, started_at=3.0, finished_at=7.0,
        )
        assert result.queue_time == 2.0
        assert result.execution_time == 4.0
        assert result.turnaround == 6.0

    def test_ordering_validated(self):
        with pytest.raises(ValueError):
            TaskResult(
                task_id=1, job_id="j", worker_name="w",
                submitted_at=5.0, started_at=3.0, finished_at=7.0,
            )


class TestMasterDispatch:
    def test_single_task_executes(self):
        simulator, _, master, _ = make_stack(n_workers=1)
        master.submit(Task(job_id="a", data_size=10.0, fn=lambda: "done"))
        master.wait_all()
        assert len(master.results) == 1
        assert master.results[0].output == "done"
        # init 1.0 + 10 * 0.1 = 2.0
        assert simulator.now == pytest.approx(2.0)

    def test_parallel_speedup(self):
        serial_sim, _, serial_master, _ = make_stack(n_workers=1)
        parallel_sim, _, parallel_master, _ = make_stack(n_workers=4)
        for master in (serial_master, parallel_master):
            for _ in range(8):
                master.submit(Task(job_id="a", data_size=10.0))
            master.wait_all()
        assert parallel_sim.now == pytest.approx(serial_sim.now / 4)

    def test_priority_biases_order(self):
        """High-priority job's tasks finish earlier on average."""
        simulator, _, master, _ = make_stack(n_workers=1, seed=42)
        master.set_priority("hot", 50.0)
        master.set_priority("cold", 1.0)
        for _ in range(20):
            master.submit(Task(job_id="cold", data_size=1.0))
            master.submit(Task(job_id="hot", data_size=1.0))
        master.wait_all()
        finish = {"hot": [], "cold": []}
        for result in master.results:
            finish[result.job_id].append(result.finished_at)
        mean = lambda xs: sum(xs) / len(xs)
        assert mean(finish["hot"]) < mean(finish["cold"])

    def test_priority_validation(self):
        _, _, master, _ = make_stack()
        with pytest.raises(ValueError):
            master.set_priority("a", 0.0)

    def test_job_accounting(self):
        simulator, _, master, _ = make_stack(n_workers=1)
        master.submit(Task(job_id="a", data_size=10.0))
        master.submit(Task(job_id="a", data_size=10.0))
        master.wait_all()
        account = master.jobs["a"]
        assert account.submitted == 2
        assert account.completed == 2
        assert account.pending == 0
        assert account.elapsed == pytest.approx(4.0)

    def test_job_elapsed_while_running(self):
        simulator, _, master, _ = make_stack(n_workers=1)
        master.submit(Task(job_id="a", data_size=100.0))
        simulator.run(until=5.0)
        assert master.job_elapsed("a") == pytest.approx(5.0)
        assert master.job_elapsed("missing") == 0.0

    def test_result_listener(self):
        _, _, master, _ = make_stack(n_workers=1)
        seen = []
        master.on_result(seen.append)
        master.submit(Task(job_id="a", data_size=1.0))
        master.wait_all()
        assert len(seen) == 1

    def test_heterogeneous_speed(self):
        """A task on a 2x node takes half the compute time."""
        from repro.cluster import NodeSpec, ResourceSpec

        simulator = Simulator()
        condor = CondorPool(
            [
                NodeSpec(
                    name="fast",
                    capacity=ResourceSpec(cores=1, memory_mb=1024, disk_mb=4096),
                    speed_factor=2.0,
                )
            ]
        )
        master = WorkQueueMaster(simulator, rng=0)
        pool = ElasticWorkerPool(simulator, master, condor, COST)
        pool.scale_to(1)
        master.submit(Task(job_id="a", data_size=10.0))
        master.wait_all()
        assert simulator.now == pytest.approx(1.0)  # (1 + 1.0)/2


class TestWorkerFaults:
    def test_requeue_from_failed_worker(self):
        simulator, condor, master, _ = make_stack(n_workers=2)
        master.submit(Task(job_id="a", data_size=100.0, fn=lambda: "ok"))
        simulator.run(until=2.0)  # task in flight
        victim = next(w for w in master.workers if w.busy)
        victim.placement.node.fail()
        task = master.requeue_from(victim)
        assert task is not None
        master.wait_all()
        outputs = [r.output for r in master.results]
        assert outputs == ["ok"]

    def test_busy_worker_rejects_second_task(self):
        simulator, _, master, _ = make_stack(n_workers=1)
        worker = master.workers[0]
        worker.execute(Task(job_id="a", data_size=100.0), lambda w, r: None)
        with pytest.raises(RuntimeError, match="already running"):
            worker.execute(Task(job_id="b"), lambda w, r: None)


class TestElasticPool:
    def test_scale_up_down(self):
        simulator, condor, master, pool = make_stack(n_workers=2)
        assert pool.size == 2
        pool.scale_to(5)
        assert pool.size == 5
        pool.scale_to(1)
        assert pool.size == 1

    def test_scale_up_saturates_at_cluster_capacity(self):
        simulator, _, master, pool = make_stack(
            n_workers=1, n_nodes=1, cores=2
        )
        pool.scale_to(100)
        assert pool.size == 2  # 1 core per worker, 2-core node

    def test_scale_down_drains_busy_worker(self):
        simulator, condor, master, pool = make_stack(n_workers=1)
        master.submit(Task(job_id="a", data_size=50.0))
        simulator.run(until=1.0)  # worker busy now
        pool.scale_to(0)
        # min_workers=1 default clamps to 1? min_workers is 1 by default.
        assert pool.size >= 0
        master.wait_all()
        assert len(master.results) == 1  # drained, not killed

    def test_max_workers_cap(self):
        simulator = Simulator()
        condor = CondorPool(uniform_pool(4, cores=4))
        master = WorkQueueMaster(simulator, rng=0)
        pool = ElasticWorkerPool(
            simulator, master, condor, COST, max_workers=3
        )
        pool.scale_to(10)
        assert pool.size == 3

    def test_scale_by(self):
        _, _, _, pool = make_stack(n_workers=2)
        assert pool.scale_by(2) == 4
        assert pool.scale_by(-1) == 3

    def test_validation(self):
        simulator = Simulator()
        condor = CondorPool(uniform_pool(1))
        master = WorkQueueMaster(simulator)
        with pytest.raises(ValueError):
            ElasticWorkerPool(simulator, master, condor, COST, min_workers=-1)
        with pytest.raises(ValueError):
            ElasticWorkerPool(
                simulator, master, condor, COST, min_workers=5, max_workers=2
            )
        pool = ElasticWorkerPool(simulator, master, condor, COST)
        with pytest.raises(ValueError):
            pool.scale_to(-1)
