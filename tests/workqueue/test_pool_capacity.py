"""Edge cases of ElasticWorkerPool.capacity_limit and scaling clamps."""

import pytest

from repro.cluster.condor import CondorPool
from repro.cluster.node import NodeSpec, uniform_pool
from repro.cluster.resources import ResourceSpec
from repro.cluster.simulation import Simulator
from repro.workqueue import CostModel, ElasticWorkerPool, WorkQueueMaster


def make_pool(nodes, **kwargs):
    simulator = Simulator()
    master = WorkQueueMaster(simulator, rng=0)
    condor = CondorPool(nodes)
    pool = ElasticWorkerPool(simulator, master, condor, CostModel(), **kwargs)
    return pool, condor


class TestCapacityLimit:
    def test_zero_alive_nodes(self):
        pool, condor = make_pool(uniform_pool(2, cores=4))
        for node in condor.nodes:
            node.fail()
        assert condor.alive_nodes == []
        assert pool.capacity_limit() == 0
        # Growth saturates immediately instead of raising.
        assert pool.scale_to(3) == 0

    def test_dead_nodes_excluded_from_capacity(self):
        pool, condor = make_pool(uniform_pool(2, cores=4))
        full = pool.capacity_limit()
        condor.nodes[0].fail()
        assert pool.capacity_limit() == full // 2

    def test_footprint_larger_than_any_node(self):
        nodes = uniform_pool(3, cores=4)  # 4 cores, 8192 MB each
        pool, _ = make_pool(
            nodes,
            worker_footprint=ResourceSpec(cores=8, memory_mb=512, disk_mb=64),
            min_workers=0,
        )
        assert pool.capacity_limit() == 0
        assert pool.scale_to(2) == 0

    def test_footprint_memory_bound(self):
        """Capacity is the binding resource, not just cores."""
        nodes = [
            NodeSpec(
                name="tiny",
                capacity=ResourceSpec(cores=16, memory_mb=1024, disk_mb=65_536),
            )
        ]
        pool, _ = make_pool(
            nodes, worker_footprint=ResourceSpec(cores=1, memory_mb=512, disk_mb=64)
        )
        assert pool.capacity_limit() == 2

    def test_max_workers_clamps_capacity(self):
        pool, _ = make_pool(uniform_pool(4, cores=4), max_workers=3)
        assert pool.capacity_limit() == 3
        assert pool.scale_to(10) == 3

    def test_max_workers_clamp_includes_running_workers(self):
        pool, _ = make_pool(uniform_pool(4, cores=4), max_workers=5)
        pool.scale_to(4)
        # 4 running + remaining room, still clamped by max_workers.
        assert pool.capacity_limit() == 5

    def test_capacity_counts_current_size(self):
        pool, _ = make_pool(uniform_pool(1, cores=4))
        before = pool.capacity_limit()
        pool.scale_to(2)
        # Scaling up does not change the total ceiling: running workers
        # plus remaining free slots stays constant.
        assert pool.capacity_limit() == before

    def test_max_workers_below_min_workers_rejected(self):
        with pytest.raises(ValueError):
            make_pool(uniform_pool(1, cores=4), min_workers=2, max_workers=1)


class TestOscillationDamping:
    """min_dwell suppresses direction reversals (latency-mode thrash)."""

    def make_damped(self, min_dwell=10.0):
        pool, condor = make_pool(uniform_pool(2, cores=4), min_dwell=min_dwell)
        return pool, pool.simulator

    def test_reversal_within_dwell_suppressed(self):
        pool, sim = self.make_damped()
        assert pool.scale_to(4) == 4
        # A latency-fed target flipping straight back down is held.
        assert pool.scale_to(3) == 4
        assert pool.size == 4

    def test_reversal_after_dwell_allowed(self):
        pool, sim = self.make_damped(min_dwell=10.0)
        pool.scale_to(4)
        sim.run_for(10.0)
        assert pool.scale_to(3) == 3

    def test_same_direction_never_delayed(self):
        pool, sim = self.make_damped()
        pool.scale_to(3)
        # Growing again immediately is fine — only reversals thrash.
        assert pool.scale_to(5) == 5

    def test_oscillating_controller_settles_instead_of_thrashing(self):
        """Alternating up/down targets on consecutive ticks hold steady."""
        pool, sim = self.make_damped(min_dwell=10.0)
        pool.scale_to(4)
        sizes = []
        for tick in range(6):
            sim.run_for(1.0)
            target = 3 if tick % 2 == 0 else 4
            sizes.append(pool.scale_to(target))
        assert sizes == [4] * 6  # every reversal inside the window held

    def test_zero_dwell_disables_damping(self):
        pool, _ = make_pool(uniform_pool(2, cores=4), min_dwell=0.0)
        assert pool.scale_to(4) == 4
        assert pool.scale_to(3) == 3

    def test_damped_growth_still_clamped_by_capacity(self):
        pool, _ = make_pool(
            uniform_pool(1, cores=4), min_dwell=10.0, max_workers=3
        )
        assert pool.scale_to(10) == 3
        # The suppressed reversal keeps the clamped size, not the target.
        assert pool.scale_by(-1) == 3

    def test_negative_dwell_rejected(self):
        with pytest.raises(ValueError):
            make_pool(uniform_pool(1, cores=4), min_dwell=-1.0)
