"""Tests for the thread-backed local Work Queue executor."""

import pickle
import threading
import time

import pytest

from repro.workqueue import LocalWorkQueue, Task, TaskError


@pytest.fixture
def wq():
    queue = LocalWorkQueue(n_workers=2, rng=0)
    yield queue
    queue.shutdown()


class TestLocalWorkQueue:
    def test_executes_payloads(self, wq):
        for k in range(5):
            wq.submit(Task(job_id="j", fn=lambda k=k: k * 2))
        results = wq.drain()
        assert sorted(r.output for r in results) == [0, 2, 4, 6, 8]
        assert all(r.ok for r in results)

    def test_concurrent_execution(self, wq):
        """Two sleeping tasks on two workers overlap in wall time."""
        barrier = threading.Barrier(2, timeout=5.0)

        def rendezvous():
            barrier.wait()  # deadlocks unless both run concurrently
            return True

        wq.submit(Task(job_id="a", fn=rendezvous))
        wq.submit(Task(job_id="b", fn=rendezvous))
        results = wq.drain(timeout=10.0)
        assert all(r.output for r in results)

    def test_task_error_captured_not_raised(self, wq):
        def boom():
            raise RuntimeError("kaput")

        wq.submit(Task(job_id="j", fn=boom))
        (result,) = wq.drain()
        assert not result.ok
        assert "kaput" in str(result.error)

    def test_error_is_picklable_task_error(self, wq):
        """Failures are TaskError data, identical across backends."""

        def boom():
            raise ValueError("serialization-safe")

        wq.submit(Task(job_id="j", fn=boom))
        (result,) = wq.drain()
        assert isinstance(result.error, TaskError)
        assert result.error.type_name == "ValueError"
        assert "boom" in result.error.traceback
        restored = pickle.loads(pickle.dumps(result))
        assert restored.error == result.error

    def test_payload_required(self, wq):
        with pytest.raises(ValueError, match="callable"):
            wq.submit(Task(job_id="j"))

    def test_drain_empty(self, wq):
        assert wq.drain(timeout=1.0) == []

    def test_priorities_validated(self, wq):
        with pytest.raises(ValueError):
            wq.set_priority("j", -1.0)

    def test_submit_after_shutdown_rejected(self):
        wq = LocalWorkQueue(n_workers=1)
        wq.shutdown()
        with pytest.raises(RuntimeError):
            wq.submit(Task(job_id="j", fn=lambda: 1))

    def test_wall_time_recorded(self, wq):
        wq.submit(Task(job_id="j", fn=lambda: time.sleep(0.05)))
        (result,) = wq.drain()
        assert result.wall_time >= 0.05

    def test_worker_count_validation(self):
        with pytest.raises(ValueError):
            LocalWorkQueue(n_workers=0)
