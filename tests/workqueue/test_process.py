"""Tests for the multiprocessing-backed Work Queue executor."""

import os
import pickle
import time

import pytest

from repro.workqueue import PayloadSpec, ProcessWorkQueue, Task, TaskError


# ---------------------------------------------------------------------------
# Module-level payloads: process tasks must be picklable by reference.
# ---------------------------------------------------------------------------
def double(x):
    return x * 2


def boom():
    raise RuntimeError("kaput")


def die_unless_marker(path):
    """Kill the worker process hard on first run, succeed on retries."""
    if not os.path.exists(path):
        with open(path, "w", encoding="utf-8"):
            pass
        os._exit(17)
    return "survived"


def die_always():
    os._exit(1)


def sleep_forever():
    time.sleep(60.0)


@pytest.fixture
def wq():
    queue = ProcessWorkQueue(n_workers=2, rng=0, poll_interval=0.01)
    yield queue
    queue.shutdown()


class TestPayloadSpec:
    def test_callable(self):
        assert PayloadSpec(double, (21,))() == 42

    def test_kwargs(self):
        assert PayloadSpec(int, ("ff",), {"base": 16})() == 255

    def test_rejects_lambda(self):
        with pytest.raises(ValueError, match="module-level"):
            PayloadSpec(lambda: 1)

    def test_rejects_closure(self):
        def local():
            return 1

        with pytest.raises(ValueError, match="module-level"):
            PayloadSpec(local)

    def test_round_trips_pickle(self):
        spec = PayloadSpec(double, (5,))
        assert pickle.loads(pickle.dumps(spec))() == 10


class TestTaskError:
    def test_from_exception(self):
        try:
            raise ValueError("bad input")
        except ValueError as exc:
            error = TaskError.from_exception(exc)
        assert error.type_name == "ValueError"
        assert "bad input" in str(error)
        assert "ValueError" in error.traceback

    def test_picklable(self):
        error = TaskError(type_name="RuntimeError", message="x", traceback="tb")
        assert pickle.loads(pickle.dumps(error)) == error


class TestProcessWorkQueue:
    def test_executes_payloads(self, wq):
        for k in range(5):
            wq.submit(Task(job_id="j", fn=PayloadSpec(double, (k,))))
        results = wq.drain(timeout=30.0)
        assert sorted(r.output for r in results) == [0, 2, 4, 6, 8]
        assert all(r.ok for r in results)

    def test_task_error_captured_not_raised(self, wq):
        wq.submit(Task(job_id="j", fn=PayloadSpec(boom)))
        (result,) = wq.drain(timeout=30.0)
        assert not result.ok
        assert isinstance(result.error, TaskError)
        assert "kaput" in str(result.error)
        assert "RuntimeError" in result.error.traceback

    def test_closure_payload_rejected_at_submit(self, wq):
        with pytest.raises(ValueError, match="process boundary"):
            wq.submit(Task(job_id="j", fn=lambda: 1))

    def test_payload_required(self, wq):
        with pytest.raises(ValueError, match="callable"):
            wq.submit(Task(job_id="j"))

    def test_drain_empty(self, wq):
        assert wq.drain(timeout=1.0) == []

    def test_priorities_validated(self, wq):
        with pytest.raises(ValueError):
            wq.set_priority("j", 0.0)

    def test_submit_after_shutdown_rejected(self):
        wq = ProcessWorkQueue(n_workers=1, rng=0)
        wq.shutdown()
        with pytest.raises(RuntimeError):
            wq.submit(Task(job_id="j", fn=PayloadSpec(double, (1,))))

    def test_worker_count_validation(self):
        with pytest.raises(ValueError):
            ProcessWorkQueue(n_workers=0)

    def test_wall_time_recorded(self, wq):
        wq.submit(Task(job_id="j", fn=PayloadSpec(time.sleep, (0.05,))))
        (result,) = wq.drain(timeout=30.0)
        assert result.wall_time >= 0.05

    def test_results_round_trip_pickle(self, wq):
        """Results (including errors) survive serialization intact."""
        wq.submit(Task(job_id="ok", fn=PayloadSpec(double, (3,))))
        wq.submit(Task(job_id="bad", fn=PayloadSpec(boom)))
        results = wq.drain(timeout=30.0)
        restored = pickle.loads(pickle.dumps(results))
        assert {r.job_id: r.ok for r in restored} == {"ok": True, "bad": False}


class TestWorkerDeath:
    def test_task_retried_after_worker_death(self, wq, tmp_path):
        marker = tmp_path / "attempted"
        wq.submit(
            Task(job_id="fragile", fn=PayloadSpec(die_unless_marker, (str(marker),)))
        )
        (result,) = wq.drain(timeout=30.0)
        assert result.ok
        assert result.output == "survived"

    def test_retries_exhausted_reports_worker_lost(self):
        wq = ProcessWorkQueue(n_workers=1, rng=0, poll_interval=0.01)
        try:
            wq.submit(Task(job_id="doomed", fn=PayloadSpec(die_always), max_retries=1))
            (result,) = wq.drain(timeout=30.0)
            assert not result.ok
            assert result.error.type_name == "WorkerLost"
            assert "2 attempt" in result.error.message
        finally:
            wq.shutdown()

    def test_pool_survives_death_for_later_tasks(self, wq, tmp_path):
        """A replacement worker is spawned, so the pool keeps serving."""
        marker = tmp_path / "attempted"
        wq.submit(
            Task(job_id="fragile", fn=PayloadSpec(die_unless_marker, (str(marker),)))
        )
        wq.drain(timeout=30.0)
        wq.submit(Task(job_id="after", fn=PayloadSpec(double, (8,))))
        (result,) = wq.drain(timeout=30.0)
        assert result.output == 16


class TestTimeouts:
    def test_task_timeout_enforced(self):
        wq = ProcessWorkQueue(n_workers=1, rng=0, poll_interval=0.01)
        try:
            wq.submit(
                Task(
                    job_id="slow",
                    fn=PayloadSpec(sleep_forever),
                    timeout=0.3,
                    max_retries=0,
                )
            )
            start = time.monotonic()
            (result,) = wq.drain(timeout=30.0)
            assert time.monotonic() - start < 10.0
            assert not result.ok
            assert "timeout" in result.error.message
        finally:
            wq.shutdown()
