"""Payload/result byte accounting on the process backend.

The zero-copy data plane's win is only provable if the executor reports
how many bytes each task actually shipped across the process boundary.
These tests pin the accounting channel itself: ``LocalResult`` fields,
the ``wq.payload_bytes`` / ``wq.result_bytes`` histograms, and the
``None`` contract on executors that never serialize.
"""

import pickle

from repro.obs import Observability
from repro.workqueue import (
    LocalWorkQueue,
    PayloadSpec,
    ProcessWorkQueue,
    Task,
)

from tests.workqueue.test_process import double


def _make_wq(n_workers: int = 1) -> ProcessWorkQueue:
    return ProcessWorkQueue(
        n_workers=n_workers,
        rng=0,
        poll_interval=0.01,
        obs=Observability(),
    )


class TestProcessByteAccounting:
    def test_result_reports_serialized_sizes(self):
        wq = _make_wq()
        try:
            task = Task(job_id="j", fn=PayloadSpec(double, (21,)))
            # The executor pickles at the default protocol; mirror it.
            expected_payload = len(pickle.dumps(task.fn))
            wq.submit(task)
            (result,) = wq.drain(timeout=30.0)
        finally:
            wq.shutdown()
        assert result.ok and result.output == 42
        assert result.payload_bytes == expected_payload
        assert task.payload_bytes == expected_payload
        assert result.result_bytes == len(pickle.dumps(42))

    def test_histograms_record_every_task(self):
        n_tasks = 4
        wq = _make_wq(n_workers=2)
        try:
            for k in range(n_tasks):
                wq.submit(Task(job_id=f"j{k}", fn=PayloadSpec(double, (k,))))
            results = wq.drain(timeout=30.0)
        finally:
            wq.shutdown()
        assert len(results) == n_tasks
        metrics = wq.obs.metrics.snapshot()
        payload_hist = metrics.histogram("wq.payload_bytes")
        result_hist = metrics.histogram("wq.result_bytes")
        assert payload_hist.count == n_tasks
        assert result_hist.count == n_tasks
        assert payload_hist.total == sum(r.payload_bytes for r in results)
        assert result_hist.total == sum(r.result_bytes for r in results)

    def test_payload_sizes_scale_with_argument_size(self):
        wq = _make_wq()
        try:
            small = Task(job_id="small", fn=PayloadSpec(len, ("x",)))
            large = Task(job_id="large", fn=PayloadSpec(len, ("x" * 100_000,)))
            wq.submit(small)
            wq.submit(large)
            results = {r.job_id: r for r in wq.drain(timeout=30.0)}
        finally:
            wq.shutdown()
        assert results["large"].payload_bytes > 100_000
        assert results["small"].payload_bytes < 1_000


class TestThreadByteContract:
    def test_in_process_executor_reports_none(self):
        wq = LocalWorkQueue(n_workers=1, rng=0)
        try:
            wq.submit(Task(job_id="j", fn=PayloadSpec(double, (2,))))
            (result,) = wq.drain(timeout=30.0)
        finally:
            wq.shutdown()
        assert result.ok
        assert result.payload_bytes is None
        assert result.result_bytes is None
