"""Observability on the process backend: fault counters match injected faults.

The regression these tests pin down: worker-death retries are invisible
in results (a retried task still reports ``ok``), so the *only* record
of the fault path is the metric/event stream.  Each test injects a known
number of faults and asserts the counters agree exactly.
"""

from repro.obs import Observability
from repro.workqueue import PayloadSpec, ProcessWorkQueue, Task

from tests.workqueue.test_process import die_always, die_unless_marker, double


def _make_wq(n_workers: int = 2) -> ProcessWorkQueue:
    return ProcessWorkQueue(
        n_workers=n_workers,
        rng=0,
        poll_interval=0.01,
        obs=Observability(),
    )


def _events(wq: ProcessWorkQueue, name: str) -> list:
    return [e for e in wq.obs.tracer.events() if e.name == name]


class TestWorkerDeathCounters:
    def test_one_injected_death_one_retry_one_respawn(self, tmp_path):
        wq = _make_wq()
        try:
            marker = tmp_path / "attempted"
            wq.submit(
                Task(
                    job_id="fragile",
                    fn=PayloadSpec(die_unless_marker, (str(marker),)),
                )
            )
            (result,) = wq.drain(timeout=30.0)
            assert result.ok and result.output == "survived"

            metrics = wq.obs.metrics.snapshot()
            assert metrics.counter("wq.worker_death") == 1.0
            assert metrics.counter("wq.worker_respawn") == 1.0
            assert metrics.counter("wq.requeued") == 1.0
            assert metrics.counter("wq.completed") == 1.0
            assert metrics.counter("wq.failed") == 0.0
            # Initial pool + one replacement.
            assert metrics.counter("wq.worker_spawned") == 3.0
            # Two dispatches reached workers: the fatal one and the retry.
            assert metrics.counter("wq.dispatched") == 2.0
        finally:
            wq.shutdown()

    def test_multiple_injected_deaths_counted_exactly(self, tmp_path):
        n_faults = 3
        wq = _make_wq()
        try:
            for k in range(n_faults):
                marker = tmp_path / f"attempted-{k}"
                wq.submit(
                    Task(
                        job_id=f"fragile-{k}",
                        fn=PayloadSpec(die_unless_marker, (str(marker),)),
                    )
                )
            results = wq.drain(timeout=30.0)
            assert sorted(r.output for r in results) == ["survived"] * n_faults

            metrics = wq.obs.metrics.snapshot()
            assert metrics.counter("wq.worker_death") == float(n_faults)
            assert metrics.counter("wq.worker_respawn") == float(n_faults)
            assert metrics.counter("wq.requeued") == float(n_faults)
            assert metrics.counter("wq.completed") == float(n_faults)
            assert metrics.counter("wq.failed") == 0.0

            death_events = _events(wq, "wq.worker_death")
            assert len(death_events) == n_faults
            assert all(
                e.attr_dict()["reason"] == "died" for e in death_events
            )
            requeues = _events(wq, "wq.requeue")
            assert len(requeues) == n_faults
            assert all(
                e.attr_dict()["reason"].startswith("worker ")
                for e in requeues
            )
        finally:
            wq.shutdown()

    def test_exhausted_retries_counted_as_failed(self):
        wq = _make_wq(n_workers=1)
        try:
            wq.submit(
                Task(job_id="doomed", fn=PayloadSpec(die_always), max_retries=1)
            )
            (result,) = wq.drain(timeout=30.0)
            assert not result.ok

            metrics = wq.obs.metrics.snapshot()
            # Two attempts: two deaths and respawns, one requeue (the
            # second death exhausts the budget and fails the task).
            assert metrics.counter("wq.worker_death") == 2.0
            assert metrics.counter("wq.worker_respawn") == 2.0
            assert metrics.counter("wq.requeued") == 1.0
            assert metrics.counter("wq.failed") == 1.0
            assert metrics.counter("wq.completed") == 0.0
            (failed,) = _events(wq, "wq.task_failed")
            assert failed.attr_dict()["attempts"] == 2
        finally:
            wq.shutdown()

    def test_clean_run_records_no_fault_counters(self):
        wq = _make_wq()
        try:
            for k in range(4):
                wq.submit(Task(job_id="j", fn=PayloadSpec(double, (k,))))
            results = wq.drain(timeout=30.0)
            assert len(results) == 4

            metrics = wq.obs.metrics.snapshot()
            assert metrics.counter("wq.worker_death") == 0.0
            assert metrics.counter("wq.worker_respawn") == 0.0
            assert metrics.counter("wq.requeued") == 0.0
            assert metrics.counter("wq.completed") == 4.0
            # Merged from worker snapshots across the process boundary.
            assert metrics.counter("worker.tasks") == 4.0
            assert metrics.counter("worker.task_errors") == 0.0
            assert len(_events(wq, "wq.task")) == 4
        finally:
            wq.shutdown()


class TestDisabledPath:
    def test_disabled_recorder_stays_empty(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        wq = ProcessWorkQueue(n_workers=1, rng=0, poll_interval=0.01)
        try:
            assert not wq.obs.enabled
            wq.submit(Task(job_id="j", fn=PayloadSpec(double, (2,))))
            (result,) = wq.drain(timeout=30.0)
            assert result.output == 4
            assert result.metrics is None  # workers did not record
            assert wq.obs.tracer.events() == []
            assert wq.obs.metrics.snapshot().counters == {}
        finally:
            wq.shutdown()


class TestCrossProcessStitching:
    """Worker spans are rebased onto the master clockline (PR 9).

    The acceptance property: after the clock-offset handshake, every
    rebased ``worker.task`` span starts at or after the master's
    ``wq.dispatch`` instant for the same task — causality holds in the
    merged timeline even though the two processes run separate clocks.
    """

    def test_rebased_worker_spans_follow_dispatch(self):
        n_tasks = 6
        wq = _make_wq(n_workers=2)
        try:
            for k in range(n_tasks):
                wq.submit(Task(job_id=f"j{k}", fn=PayloadSpec(double, (k,))))
            results = wq.drain(timeout=30.0)
            assert sorted(r.output for r in results) == [
                2 * k for k in range(n_tasks)
            ]

            events = wq.obs.tracer.events()
            dispatches = {
                e.attr_dict()["task_id"]: e
                for e in events
                if e.name == "wq.dispatch"
            }
            worker_spans = [e for e in events if e.name == "worker.task"]
            assert len(dispatches) == n_tasks
            assert len(worker_spans) == n_tasks

            # Both workers were clock-synced at spawn...
            assert sorted(wq.obs.stitch) == ["proc-worker-0", "proc-worker-1"]
            for sync in wq.obs.stitch.values():
                assert sync.rtt >= 0
                assert sync.uncertainty >= 0
            # ...and every span was stitched (none arrived pre-sync).
            assert (
                wq.obs.metrics.snapshot().counter("wq.unstitched_spans")
                == 0.0
            )

            for span in worker_spans:
                task_id = span.attr_dict()["task_id"]
                dispatch = dispatches[task_id]
                # Rebased tracks carry the worker name, and the rebased
                # start never precedes the dispatch that caused it.
                assert span.track == dispatch.attr_dict()["worker"]
                assert span.start >= dispatch.start
        finally:
            wq.shutdown()

    def test_worker_tracks_merged_into_master_timeline(self):
        wq = _make_wq(n_workers=2)
        try:
            for k in range(4):
                wq.submit(Task(job_id=f"j{k}", fn=PayloadSpec(double, (k,))))
            wq.drain(timeout=30.0)
            tracks = {e.track for e in wq.obs.tracer.events()}
            assert {"proc-worker-0", "proc-worker-1"} <= tracks
        finally:
            wq.shutdown()
