"""Integration tests: whole-pipeline behaviour across modules."""

import numpy as np
import pytest

from repro.baselines import DynaTD, EvaluationGrid, MajorityVote, paper_comparison_set
from repro.baselines.registry import SSTDAlgorithm
from repro.core import SSTD, SSTDConfig, evaluate_estimates
from repro.core.acs import ACSConfig
from repro.streams import (
    StreamReplayer,
    boston_bombing,
    college_football,
    generate_trace,
)
from repro.system import DistributedSSTD, SSTDSystemConfig
from repro.text import RawTweet, TweetPipeline


@pytest.fixture(scope="module")
def football_trace():
    return generate_trace(college_football().scaled(0.01), seed=11)


@pytest.fixture(scope="module")
def boston_trace():
    return generate_trace(boston_bombing().scaled(0.01), seed=11)


class TestAccuracyShape:
    """The paper's headline claim: SSTD beats the baselines."""

    def test_sstd_beats_static_methods_on_dynamic_trace(self, football_trace):
        grid = EvaluationGrid(
            football_trace.start, football_trace.end, step=3600.0
        )
        sstd = evaluate_estimates(
            "SSTD",
            SSTDAlgorithm().discover(football_trace.reports, grid),
            football_trace.timelines,
        )
        vote = evaluate_estimates(
            "vote",
            MajorityVote().discover(football_trace.reports, grid),
            football_trace.timelines,
        )
        assert sstd.accuracy > vote.accuracy

    def test_sstd_beats_dynatd_on_accuracy(self, boston_trace):
        grid = EvaluationGrid(boston_trace.start, boston_trace.end, step=3600.0)
        sstd = evaluate_estimates(
            "SSTD",
            SSTDAlgorithm().discover(boston_trace.reports, grid),
            boston_trace.timelines,
        )
        dynatd = evaluate_estimates(
            "DynaTD",
            DynaTD().discover(boston_trace.reports, grid),
            boston_trace.timelines,
        )
        assert sstd.accuracy >= dynatd.accuracy

    def test_all_methods_beat_coin_flip(self, boston_trace):
        grid = EvaluationGrid(boston_trace.start, boston_trace.end, step=3600.0)
        for algo in paper_comparison_set():
            result = evaluate_estimates(
                algo.name,
                algo.discover(boston_trace.reports, grid),
                boston_trace.timelines,
            )
            assert result.accuracy > 0.55, algo.name


class TestDistributedEqualsSerial:
    def test_estimates_identical_any_worker_count(self, boston_trace):
        reports = boston_trace.reports[:3000]
        config = SSTDConfig(acs=ACSConfig(window=3600.0, step=1800.0))
        serial = sorted(
            SSTD(config).discover(
                reports, start=boston_trace.start, end=boston_trace.end
            ),
            key=lambda e: (e.claim_id, e.timestamp),
        )
        for workers in (2, 7):
            system = DistributedSSTD(
                SSTDSystemConfig(n_workers=workers, sstd=config)
            )
            result = system.run_batch(
                reports, start=boston_trace.start, end=boston_trace.end
            )
            assert list(result.estimates) == serial


class TestTextPipelineIntegration:
    def test_generated_text_reclassified_consistently(self, boston_trace):
        """The text pipeline's attitude labels agree with the generator's
        ground-truth attitudes on an overwhelming majority of plain
        (non-retweet, non-noise) reports."""
        from repro.core.types import Attitude
        from repro.text import AttitudeClassifier

        classifier = AttitudeClassifier()
        sample = [
            r
            for r in boston_trace.reports[:2000]
            if not r.is_retweet and r.attitude is not Attitude.NEUTRAL
        ]
        agree = sum(
            1
            for report in sample
            if classifier.classify(report.text) is report.attitude
        )
        assert agree / len(sample) > 0.85

    def test_pipeline_to_sstd_flow(self):
        """Raw tweets -> pipeline -> SSTD: the confirmed story decodes
        TRUE while the debunked story (its own cluster) decodes FALSE."""
        rng = np.random.default_rng(0)
        pipeline = TweetPipeline()
        tweets = []
        confirm = (
            "police confirm the bridge into town is closed",
            "just saw it myself, the bridge into town is closed",
            "update: bridge into town closed, police on scene",
        )
        deny = (
            "the story about the mayor resigning is fake news, debunked",
            "mayor resigning? not true, officials deny it",
        )
        for k in range(300):
            t = float(k * 10)
            if rng.random() < 0.7:
                text = confirm[int(rng.integers(len(confirm)))]
            else:
                text = deny[int(rng.integers(len(deny)))]
            tweets.append(RawTweet(f"user{k}", text, t))
        reports = pipeline.process_stream(tweets)
        assert len(reports) == 300

        config = SSTDConfig(acs=ACSConfig(window=200.0, step=100.0))
        engine = SSTD(config)
        estimates = engine.discover(reports)
        from collections import Counter
        from repro.core import TruthValue

        verdicts: dict[str, Counter] = {}
        for estimate in estimates:
            verdicts.setdefault(estimate.claim_id, Counter())[
                estimate.value
            ] += 1
        # Identify clusters by which tweets they absorbed.
        bridge_claims = {
            r.claim_id for r in reports if "bridge" in r.text
        }
        mayor_claims = {r.claim_id for r in reports if "mayor" in r.text}
        assert bridge_claims.isdisjoint(mayor_claims)
        for claim_id in bridge_claims:
            counts = verdicts[claim_id]
            assert counts[TruthValue.TRUE] > counts[TruthValue.FALSE]
        for claim_id in mayor_claims:
            counts = verdicts[claim_id]
            assert counts[TruthValue.FALSE] > counts[TruthValue.TRUE]


class TestStreamingIntegration:
    def test_replayed_stream_through_streaming_sstd(self, boston_trace):
        from repro.core import StreamingSSTD

        config = SSTDConfig(acs=ACSConfig(window=10.0, step=1.0))
        engine = StreamingSSTD(config, retrain_every=20)
        replayer = StreamReplayer(boston_trace, speed=50.0, duration=30.0)
        n_estimates = 0
        for batch in replayer.batches():
            for report in batch.reports:
                engine.push(report)
            n_estimates += len(engine.tick(batch.arrival_time))
        assert n_estimates > 0
        assert engine.latest()


class TestDeterminism:
    def test_full_experiment_is_reproducible(self, boston_trace):
        grid = EvaluationGrid(boston_trace.start, boston_trace.end, step=7200.0)
        first = SSTDAlgorithm().discover(boston_trace.reports, grid)
        second = SSTDAlgorithm().discover(boston_trace.reports, grid)
        assert first == second
