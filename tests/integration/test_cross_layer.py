"""Cross-layer integration tests: pieces built separately must agree."""

import numpy as np
import pytest

from repro.core.acs import ACSConfig, acs_sequence
from repro.core.reliability import ReliabilityEstimator
from repro.core.sstd import SSTD, SSTDConfig
from repro.hmm import GaussianHMM, select_n_states
from repro.streams import (
    StreamReplayer,
    generate_trace,
    osu_attack,
    validate_trace,
)
from repro.system import ApplicationConfig, SocialSensingApplication


@pytest.fixture(scope="module")
def osu_trace():
    return generate_trace(osu_attack().scaled(0.15), seed=6)


class TestScenarioTraceHealth:
    def test_osu_trace_validates(self, osu_trace):
        report = validate_trace(
            osu_trace, min_sparsity_ratio=0.4, require_text=True
        )
        assert report.ok, report.summary()


class TestModelSelectionOnRealACS:
    def test_flipping_claim_supports_two_states(self, osu_trace):
        """An ACS sequence of a claim whose truth actually flips should
        be better explained by 2 states than 1 (BIC)."""
        flipping = [
            cid
            for cid, tl in osu_trace.timelines.items()
            if tl.transition_times()
        ]
        assert flipping, "expected at least one flipping claim"
        # Pick the flipping claim with the most reports.
        by_count = {
            cid: sum(1 for r in osu_trace.reports if r.claim_id == cid)
            for cid in flipping
        }
        claim_id = max(by_count, key=by_count.get)
        reports = [r for r in osu_trace.reports if r.claim_id == claim_id]
        config = ACSConfig(window=3600.0, step=1200.0)
        _, values = acs_sequence(
            reports, config, start=osu_trace.start, end=osu_trace.end
        )
        observed = values[~np.isnan(values)]
        result = select_n_states(
            observed,
            candidates=(1, 2),
            factory=lambda n: GaussianHMM(n),
        )
        assert result.best_by_bic == 2


class TestReliabilityAgainstGenerator:
    def test_posterior_tracks_ground_truth_reliability(self):
        """Posterior source reliability correlates with the generator's
        hidden reliability for well-observed sources.  Uses a
        concentrated population (prolific accounts) — the paper-regime
        long tail leaves too few multi-report sources to score."""
        from repro.streams import PopulationConfig, ScenarioSpec
        from repro.streams.generator import generate_trace as gen

        spec = ScenarioSpec(
            name="concentrated",
            duration=86_400.0,
            n_reports=6_000,
            n_claims=12,
            claim_texts=("something happened",),
            topic="t",
            mean_truth_flips=1.0,
            population=PopulationConfig(
                n_sources=300, zipf_exponent=0.8, retweet_propensity_range=(0.0, 0.1)
            ),
        )
        trace = gen(spec, seed=6)
        engine = SSTD(
            SSTDConfig(acs=ACSConfig(window=3600.0, step=1200.0))
        )
        estimates = engine.discover(
            trace.reports, start=trace.start, end=trace.end
        )
        posterior = ReliabilityEstimator().estimate(trace.reports, estimates)
        pairs = []
        for source_id, record in posterior.items():
            if record.n_scored < 8:
                continue
            source = trace.sources.get(source_id)
            if source is None or source.reliability is None:
                continue
            pairs.append((record.raw_accuracy, source.reliability))
        assert len(pairs) >= 20
        estimated, actual = zip(*pairs)
        correlation = np.corrcoef(estimated, actual)[0, 1]
        assert correlation > 0.5


class TestApplicationOverScenario:
    def test_application_replay_detects_flips(self, osu_trace):
        app = SocialSensingApplication(
            ApplicationConfig(
                sstd=SSTDConfig(
                    acs=ACSConfig(window=6.0, step=2.0), min_observations=4
                ),
                retrain_every=5,
            )
        )
        replayer = StreamReplayer(osu_trace, speed=100.0, duration=40.0)
        for batch in replayer.batches():
            app.ingest_reports(list(batch.reports), now=batch.arrival_time)
        assert app.n_claims > 0
        # Ground truth flips exist in this scenario, and the application
        # should have observed at least one verdict change live.
        assert app.flips
