"""Suite-wide fixtures and markers.

The shared-memory data plane (:mod:`repro.system.shm`) creates named
``/dev/shm`` segments; a leaked one outlives the interpreter and eats
host memory until reboot.  The session fixture below makes any leak a
loud tier-1 failure rather than something an operator finds weeks later.

:func:`numba_available` / :data:`requires_numba` gate tests that only
make sense with the *compiled* numba kernels — the interpreted-fallback
semantics of :mod:`repro.hmm.kernels.numba_fast` are always testable,
so most of the kernel parity suite runs everywhere and only the
JIT-specific assertions carry the marker.
"""

import os

import pytest

SHM_DIR = "/dev/shm"
SHM_PREFIX = "repro_shm_"


def numba_available() -> bool:
    """True when the numba kernels would actually compile here."""
    from repro.hmm.kernels import numba_fast

    return numba_fast.AVAILABLE


#: Skip marker for tests that need the real JIT, not the fallback.
requires_numba = pytest.mark.skipif(
    not numba_available(), reason="numba is not installed"
)


def _repro_segments() -> set[str]:
    try:
        entries = os.listdir(SHM_DIR)
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return set()
    return {name for name in entries if name.startswith(SHM_PREFIX)}


@pytest.fixture(autouse=True, scope="session")
def no_leaked_shm_segments():
    """Fail the run if any test leaks a repro shared-memory segment."""
    before = _repro_segments()
    yield
    leaked = _repro_segments() - before
    assert not leaked, (
        f"test run leaked shared-memory segments in {SHM_DIR}: "
        f"{sorted(leaked)} — some SegmentOwner was never close_and_unlink'd"
    )
