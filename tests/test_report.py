"""Tests for the plain-text rendering helpers."""

import math

import pytest

from repro.core.types import TruthEstimate, TruthLabel, TruthTimeline, TruthValue
from repro.report import (
    bar_chart,
    estimate_strip,
    hit_rate_table,
    side_by_side,
    sparkline,
    timeline_strip,
    truth_strip,
)


class TestSparkline:
    def test_monotone_series(self):
        assert sparkline([0.0, 0.5, 1.0]) == "▁▄█"

    def test_constant_series(self):
        line = sparkline([2.0, 2.0, 2.0])
        assert len(set(line)) == 1

    def test_nan_renders_as_space(self):
        assert sparkline([0.0, math.nan, 1.0])[1] == " "

    def test_all_nan(self):
        assert sparkline([math.nan, math.nan]) == "  "

    def test_width_downsamples(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10

    def test_empty(self):
        assert sparkline([]) == ""


class TestTruthStrips:
    def test_truth_strip(self):
        assert truth_strip([TruthValue.FALSE, TruthValue.TRUE]) == "·█"

    def test_estimate_strip_sorts_by_time(self):
        estimates = [
            TruthEstimate("c", 2.0, TruthValue.TRUE),
            TruthEstimate("c", 1.0, TruthValue.FALSE),
        ]
        assert estimate_strip(estimates) == "·█"

    def test_timeline_strip(self):
        timeline = TruthTimeline(
            "c",
            [
                TruthLabel("c", 0.0, 50.0, TruthValue.FALSE),
                TruthLabel("c", 50.0, 100.0, TruthValue.TRUE),
            ],
        )
        strip = timeline_strip(timeline, 0.0, 100.0, width=10)
        assert strip == "·····█████"

    def test_timeline_strip_validation(self):
        timeline = TruthTimeline(
            "c", [TruthLabel("c", 0.0, 1.0, TruthValue.TRUE)]
        )
        with pytest.raises(ValueError):
            timeline_strip(timeline, 0.0, 1.0, width=0)
        with pytest.raises(ValueError):
            timeline_strip(timeline, 1.0, 0.0)

    def test_side_by_side_aligned(self):
        timeline = TruthTimeline(
            "c",
            [
                TruthLabel("c", 0.0, 50.0, TruthValue.FALSE),
                TruthLabel("c", 50.0, 100.0, TruthValue.TRUE),
            ],
        )
        estimates = [
            TruthEstimate("c", float(t), timeline.value_at(float(t)))
            for t in range(0, 100, 5)
        ]
        output = side_by_side(estimates, timeline, width=20)
        top, bottom = output.splitlines()
        assert top.startswith("estimate")
        assert bottom.startswith("truth")
        # Perfect estimates: the two strips agree except possibly at the
        # single transition cell.
        diff = sum(
            1 for a, b in zip(top[-20:], bottom[-20:]) if a != b
        )
        assert diff <= 1

    def test_side_by_side_requires_estimates(self):
        timeline = TruthTimeline(
            "c", [TruthLabel("c", 0.0, 1.0, TruthValue.TRUE)]
        )
        with pytest.raises(ValueError):
            side_by_side([], timeline)


class TestBarChart:
    def test_scales_to_max(self):
        output = bar_chart({"a": 2.0, "b": 1.0}, width=4)
        lines = output.splitlines()
        assert lines[0].count("█") == 4
        assert lines[1].count("█") == 2

    def test_empty(self):
        assert bar_chart({}) == ""

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})
        with pytest.raises(ValueError):
            bar_chart({"a": 1.0}, width=0)

    def test_unit_suffix(self):
        assert "3s" in bar_chart({"x": 3.0}, unit="s")


class TestHitRateTable:
    def test_layout(self):
        output = hit_rate_table(
            {"SSTD": [1.0, 1.0], "RTD": [0.2, 0.9]}, deadlines=[0.5, 2.0]
        )
        lines = output.splitlines()
        assert len(lines) == 3
        assert "SSTD" in lines[0] and "RTD" in lines[0]
        assert "100%" in lines[1]
        assert "20%" in lines[1]

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            hit_rate_table({"x": [1.5]}, deadlines=[1.0])
