"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.streams import Trace, paris_shooting, generate_trace


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "paris.jsonl"
    trace = generate_trace(paris_shooting().scaled(0.002), seed=3)
    trace.save(path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_method_rejected(self, trace_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["discover", str(trace_path), "--method", "nope"]
            )


class TestGenerate:
    def test_generates_trace_file(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main(
            ["generate", "paris", str(out), "--scale", "0.002", "--seed", "5"]
        )
        assert code == 0
        assert out.exists()
        trace = Trace.load(out)
        assert trace.reports
        assert "reports" in capsys.readouterr().out

    def test_no_text_flag(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        main(
            ["generate", "paris", str(out), "--scale", "0.002", "--no-text"]
        )
        trace = Trace.load(out)
        assert all(r.text == "" for r in trace.reports)


class TestDiscover:
    def test_prints_verdicts(self, trace_path, capsys):
        code = main(
            ["discover", str(trace_path), "--method", "MajorityVote",
             "--limit", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "claims decoded" in out
        assert "claim-" in out

    def test_empty_trace_errors(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        Trace(name="empty", reports=[]).save(path)
        assert main(["discover", str(path)]) == 1


class TestEvaluate:
    def test_prints_metrics_table(self, trace_path, capsys):
        code = main(
            ["evaluate", str(trace_path), "--methods", "MajorityVote",
             "DynaTD", "--step", "3600"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Accuracy" in out
        assert "MajorityVote" in out and "DynaTD" in out

    def test_no_ground_truth_errors(self, tmp_path):
        from repro.core.types import Attitude, Report

        path = tmp_path / "nolabels.jsonl"
        Trace(
            name="x",
            reports=[Report("s", "c", 1.0, attitude=Attitude.AGREE)],
        ).save(path)
        assert main(["evaluate", str(path)]) == 1


class TestStats:
    def test_prints_statistics(self, trace_path, capsys):
        assert main(["stats", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "#_of_reports" in out
        assert "truth transitions" in out


class TestReplay:
    def test_replays_and_reports(self, trace_path, capsys):
        code = main(
            ["replay", str(trace_path), "--speed", "30", "--duration", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "claims tracked" in out


class TestReplayController:
    @pytest.fixture()
    def trajectory(self, tmp_path):
        from repro.control import PIDController, PIDGains, TrajectoryRecorder

        path = tmp_path / "traj.jsonl"
        with TrajectoryRecorder(path) as recorder:
            pid = PIDController(
                gains=PIDGains(kp=1.2, ki=0.3, kd=0.2),
                name="pid:interval",
                recorder=recorder,
            )
            for error in (0.5, -0.25, 0.125, -0.0625):
                pid.update(error, dt=1.0)
        return path

    def test_recorded_gains_bit_identical(self, trajectory, capsys):
        code = main(["replay-controller", str(trajectory)])
        assert code == 0
        out = capsys.readouterr().out
        assert "bit-identical" in out
        assert "replayed 4 samples" in out

    def test_modified_gains_diverge(self, trajectory, capsys):
        code = main(["replay-controller", str(trajectory), "--kp", "2.5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "modified gains kp=2.5" in out
        assert "bit-identical" not in out

    def test_output_jsonl_written(self, trajectory, tmp_path):
        import json

        out_path = tmp_path / "steps.jsonl"
        code = main(
            ["replay-controller", str(trajectory), "--output", str(out_path)]
        )
        assert code == 0
        steps = [
            json.loads(line)
            for line in out_path.read_text().splitlines()
        ]
        assert len(steps) == 4
        assert all(
            s["recorded_output"] == s["replayed_output"] for s in steps
        )

    def test_empty_trajectory_errors(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        code = main(["replay-controller", str(empty)])
        assert code == 1
        assert "no samples" in capsys.readouterr().err

    def test_tampered_recording_detected(self, trajectory, capsys):
        import json

        lines = trajectory.read_text().splitlines()
        sample = json.loads(lines[-1])
        sample["output"] += 0.5  # forge the recorded output
        lines[-1] = json.dumps(sample, sort_keys=True, separators=(",", ":"))
        trajectory.write_text("\n".join(lines) + "\n")
        code = main(["replay-controller", str(trajectory)])
        assert code == 1
        assert "diverged" in capsys.readouterr().err
