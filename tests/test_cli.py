"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.streams import Trace, paris_shooting, generate_trace


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "paris.jsonl"
    trace = generate_trace(paris_shooting().scaled(0.002), seed=3)
    trace.save(path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_method_rejected(self, trace_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["discover", str(trace_path), "--method", "nope"]
            )


class TestGenerate:
    def test_generates_trace_file(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main(
            ["generate", "paris", str(out), "--scale", "0.002", "--seed", "5"]
        )
        assert code == 0
        assert out.exists()
        trace = Trace.load(out)
        assert trace.reports
        assert "reports" in capsys.readouterr().out

    def test_no_text_flag(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        main(
            ["generate", "paris", str(out), "--scale", "0.002", "--no-text"]
        )
        trace = Trace.load(out)
        assert all(r.text == "" for r in trace.reports)


class TestDiscover:
    def test_prints_verdicts(self, trace_path, capsys):
        code = main(
            ["discover", str(trace_path), "--method", "MajorityVote",
             "--limit", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "claims decoded" in out
        assert "claim-" in out

    def test_empty_trace_errors(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        Trace(name="empty", reports=[]).save(path)
        assert main(["discover", str(path)]) == 1


class TestEvaluate:
    def test_prints_metrics_table(self, trace_path, capsys):
        code = main(
            ["evaluate", str(trace_path), "--methods", "MajorityVote",
             "DynaTD", "--step", "3600"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Accuracy" in out
        assert "MajorityVote" in out and "DynaTD" in out

    def test_no_ground_truth_errors(self, tmp_path):
        from repro.core.types import Attitude, Report

        path = tmp_path / "nolabels.jsonl"
        Trace(
            name="x",
            reports=[Report("s", "c", 1.0, attitude=Attitude.AGREE)],
        ).save(path)
        assert main(["evaluate", str(path)]) == 1


class TestStats:
    def test_prints_statistics(self, trace_path, capsys):
        assert main(["stats", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "#_of_reports" in out
        assert "truth transitions" in out


class TestReplay:
    def test_replays_and_reports(self, trace_path, capsys):
        code = main(
            ["replay", str(trace_path), "--speed", "30", "--duration", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "claims tracked" in out
