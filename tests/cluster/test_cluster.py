"""Tests for resources, nodes, and HTCondor-style matchmaking."""

import pytest

from repro.cluster import (
    CondorPool,
    MatchmakingError,
    NodeSpec,
    ResourceError,
    ResourceLedger,
    ResourceSpec,
    heterogeneous_pool,
    uniform_pool,
)


class TestResourceSpec:
    def test_fits_within(self):
        small = ResourceSpec(cores=1, memory_mb=512, disk_mb=100)
        big = ResourceSpec(cores=4, memory_mb=8192, disk_mb=1000)
        assert small.fits_within(big)
        assert not big.fits_within(small)

    def test_fits_is_componentwise(self):
        lots_of_cores = ResourceSpec(cores=64, memory_mb=1, disk_mb=1)
        lots_of_memory = ResourceSpec(cores=1, memory_mb=99999, disk_mb=1)
        assert not lots_of_cores.fits_within(lots_of_memory)

    def test_add_subtract(self):
        a = ResourceSpec(cores=2, memory_mb=100, disk_mb=10)
        b = ResourceSpec(cores=1, memory_mb=50, disk_mb=5)
        assert (a + b).cores == 3
        assert (a - b).memory_mb == 50

    def test_subtract_below_zero_rejected(self):
        a = ResourceSpec(cores=1, memory_mb=1, disk_mb=1)
        b = ResourceSpec(cores=2, memory_mb=1, disk_mb=1)
        with pytest.raises(ValueError):
            a - b

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ResourceSpec(cores=-1)

    def test_scaled(self):
        spec = ResourceSpec(cores=2, memory_mb=10, disk_mb=5)
        assert spec.scaled(3).cores == 6
        with pytest.raises(ValueError):
            spec.scaled(-1)


class TestResourceLedger:
    def test_allocate_release_cycle(self):
        ledger = ResourceLedger(ResourceSpec(cores=4, memory_mb=4096, disk_mb=100))
        request = ResourceSpec(cores=2, memory_mb=1024, disk_mb=10)
        ledger.allocate(request)
        assert ledger.available.cores == 2
        ledger.release(request)
        assert ledger.available.cores == 4

    def test_over_allocation_rejected(self):
        ledger = ResourceLedger(ResourceSpec(cores=1, memory_mb=100, disk_mb=10))
        ledger.allocate(ResourceSpec(cores=1, memory_mb=50, disk_mb=5))
        with pytest.raises(ResourceError):
            ledger.allocate(ResourceSpec(cores=1, memory_mb=10, disk_mb=1))

    def test_over_release_rejected(self):
        ledger = ResourceLedger(ResourceSpec(cores=1, memory_mb=100, disk_mb=10))
        with pytest.raises(ResourceError):
            ledger.release(ResourceSpec(cores=1, memory_mb=1, disk_mb=1))


class TestNodes:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            NodeSpec(name="")
        with pytest.raises(ValueError):
            NodeSpec(name="n", speed_factor=0.0)

    def test_heterogeneous_pool_varies(self):
        specs = heterogeneous_pool(20, rng=0)
        speeds = {spec.speed_factor for spec in specs}
        cores = {spec.capacity.cores for spec in specs}
        assert len(speeds) > 1
        assert len(cores) > 1

    def test_uniform_pool_uniform(self):
        specs = uniform_pool(5, cores=8)
        assert all(spec.capacity.cores == 8 for spec in specs)
        assert all(spec.speed_factor == 1.0 for spec in specs)

    def test_pool_size_validation(self):
        with pytest.raises(ValueError):
            uniform_pool(0)
        with pytest.raises(ValueError):
            heterogeneous_pool(0)


class TestCondorPool:
    def test_place_claims_resources(self):
        pool = CondorPool(uniform_pool(2, cores=2))
        request = ResourceSpec(cores=1, memory_mb=512, disk_mb=128)
        placement = pool.place(request)
        assert pool.free_cores() == 3
        placement.release()
        assert pool.free_cores() == 4

    def test_place_spreads_load(self):
        pool = CondorPool(uniform_pool(2, cores=2))
        request = ResourceSpec(cores=1, memory_mb=512, disk_mb=128)
        a = pool.place(request)
        b = pool.place(request)
        assert a.node.name != b.node.name

    def test_exhaustion_raises(self):
        pool = CondorPool(uniform_pool(1, cores=1))
        request = ResourceSpec(cores=1, memory_mb=512, disk_mb=128)
        pool.place(request)
        with pytest.raises(MatchmakingError):
            pool.place(request)

    def test_place_many_rolls_back(self):
        pool = CondorPool(uniform_pool(1, cores=2))
        request = ResourceSpec(cores=1, memory_mb=512, disk_mb=128)
        with pytest.raises(MatchmakingError):
            pool.place_many(3, request)
        assert pool.free_cores() == 2  # nothing leaked

    def test_failed_node_excluded(self):
        pool = CondorPool(uniform_pool(2, cores=1))
        pool.fail_node("node-0000")
        request = ResourceSpec(cores=1, memory_mb=512, disk_mb=128)
        placement = pool.place(request)
        assert placement.node.name == "node-0001"

    def test_fail_unknown_node(self):
        pool = CondorPool(uniform_pool(1))
        with pytest.raises(KeyError):
            pool.fail_node("nope")

    def test_duplicate_names_rejected(self):
        specs = [NodeSpec(name="x"), NodeSpec(name="x")]
        with pytest.raises(ValueError, match="duplicate"):
            CondorPool(specs)

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            CondorPool([])

    def test_total_capacity(self):
        pool = CondorPool(uniform_pool(3, cores=4))
        assert pool.total_capacity().cores == 12
