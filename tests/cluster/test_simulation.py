"""Tests for the discrete-event simulation core."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.simulation import PeriodicTask, Simulator


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_fifo(self):
        sim = Simulator()
        fired = []
        for tag in "abc":
            sim.schedule(1.0, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0  # clock advanced to the horizon
        sim.run()
        assert fired == [1, 10]

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append(("first", sim.now))
            sim.schedule(2.0, lambda: fired.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == [("first", 1.0), ("second", 3.0)]

    def test_cancel(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_step_returns_false_when_empty(self):
        assert not Simulator().step()

    def test_pending_and_processed_counts(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending_events == 1
        sim.run()
        assert sim.processed_events == 1

    def test_runaway_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule(0.0, rearm)

        sim.schedule(0.0, rearm)
        with pytest.raises(RuntimeError, match="runaway"):
            sim.run(max_events=100)

    def test_run_for(self):
        sim = Simulator()
        sim.run_for(10.0)
        assert sim.now == 10.0
        with pytest.raises(ValueError):
            sim.run_for(-1.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=30))
    def test_firing_order_is_sorted_property(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run()
        assert fired == sorted(fired)


class TestPeriodicTask:
    def test_fires_on_period(self):
        sim = Simulator()
        ticks = []
        PeriodicTask(sim, 2.0, lambda: ticks.append(sim.now))
        sim.run(until=7.0)
        assert ticks == [2.0, 4.0, 6.0]

    def test_stop(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
        sim.run(until=2.5)
        task.stop()
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_stop_from_inside_callback(self):
        sim = Simulator()
        ticks = []

        def callback():
            ticks.append(sim.now)
            if len(ticks) == 2:
                task.stop()

        task = PeriodicTask(sim, 1.0, callback)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_start_delay(self):
        sim = Simulator()
        ticks = []
        PeriodicTask(sim, 5.0, lambda: ticks.append(sim.now), start_delay=0.0)
        sim.run(until=6.0)
        assert ticks == [0.0, 5.0]

    def test_bad_period(self):
        with pytest.raises(ValueError):
            PeriodicTask(Simulator(), 0.0, lambda: None)
