"""Unit tests for the core data model."""

import pytest

from repro.core.types import (
    Attitude,
    Claim,
    Report,
    Source,
    TruthEstimate,
    TruthLabel,
    TruthTimeline,
    TruthValue,
)


class TestTruthValue:
    def test_from_bool(self):
        assert TruthValue.from_bool(True) is TruthValue.TRUE
        assert TruthValue.from_bool(False) is TruthValue.FALSE

    def test_int_values(self):
        assert int(TruthValue.TRUE) == 1
        assert int(TruthValue.FALSE) == 0

    def test_truthiness(self):
        assert bool(TruthValue.TRUE)
        assert not bool(TruthValue.FALSE)


class TestSource:
    def test_basic_construction(self):
        source = Source("s1", reliability=0.8)
        assert source.source_id == "s1"
        assert source.reliability == 0.8
        assert not source.is_spreader

    def test_reliability_optional(self):
        assert Source("s1").reliability is None

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError, match="source_id"):
            Source("")

    @pytest.mark.parametrize("bad", [-0.1, 1.1, 2.0])
    def test_reliability_out_of_range_rejected(self, bad):
        with pytest.raises(ValueError, match="reliability"):
            Source("s1", reliability=bad)

    def test_hashable(self):
        assert len({Source("a"), Source("a"), Source("b")}) == 2


class TestClaim:
    def test_construction(self):
        claim = Claim("c1", text="it rains", topic="weather")
        assert claim.claim_id == "c1"
        assert claim.topic == "weather"

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError, match="claim_id"):
            Claim("")


class TestReport:
    def test_defaults(self):
        report = Report("s1", "c1", 0.0)
        assert report.attitude is Attitude.NEUTRAL
        assert report.uncertainty == 0.0
        assert report.independence == 1.0

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError, match="timestamp"):
            Report("s1", "c1", -1.0)

    @pytest.mark.parametrize("bad", [-0.1, 1.0, 1.5])
    def test_uncertainty_range(self, bad):
        with pytest.raises(ValueError, match="uncertainty"):
            Report("s1", "c1", 0.0, uncertainty=bad)

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_independence_range(self, bad):
        with pytest.raises(ValueError, match="independence"):
            Report("s1", "c1", 0.0, independence=bad)

    def test_contribution_score_formula(self):
        report = Report(
            "s1", "c1", 0.0,
            attitude=Attitude.AGREE, uncertainty=0.25, independence=0.8,
        )
        assert report.contribution_score == pytest.approx(1 * 0.75 * 0.8)

    def test_contribution_score_sign_follows_attitude(self):
        disagree = Report("s1", "c1", 0.0, attitude=Attitude.DISAGREE)
        assert disagree.contribution_score == -1.0
        neutral = Report("s1", "c1", 0.0, attitude=Attitude.NEUTRAL)
        assert neutral.contribution_score == 0.0

    def test_with_scores_replaces_only_given(self):
        report = Report("s1", "c1", 0.0, attitude=Attitude.AGREE)
        updated = report.with_scores(uncertainty=0.5)
        assert updated.uncertainty == 0.5
        assert updated.attitude is Attitude.AGREE
        assert report.uncertainty == 0.0  # original untouched


class TestTruthLabel:
    def test_covers(self):
        label = TruthLabel("c1", 0.0, 10.0, TruthValue.TRUE)
        assert label.covers(0.0)
        assert label.covers(9.999)
        assert not label.covers(10.0)

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            TruthLabel("c1", 5.0, 5.0, TruthValue.TRUE)


class TestTruthTimeline:
    def _timeline(self):
        return TruthTimeline(
            "c1",
            [
                TruthLabel("c1", 0.0, 10.0, TruthValue.FALSE),
                TruthLabel("c1", 10.0, 20.0, TruthValue.TRUE),
                TruthLabel("c1", 20.0, 30.0, TruthValue.FALSE),
            ],
        )

    def test_value_at_inside(self):
        timeline = self._timeline()
        assert timeline.value_at(5.0) is TruthValue.FALSE
        assert timeline.value_at(10.0) is TruthValue.TRUE
        assert timeline.value_at(19.9) is TruthValue.TRUE
        assert timeline.value_at(25.0) is TruthValue.FALSE

    def test_value_clamps_outside(self):
        timeline = self._timeline()
        assert timeline.value_at(-5.0) is TruthValue.FALSE
        assert timeline.value_at(100.0) is TruthValue.FALSE

    def test_transition_times(self):
        assert self._timeline().transition_times() == [10.0, 20.0]

    def test_transition_times_skips_no_change(self):
        timeline = TruthTimeline(
            "c1",
            [
                TruthLabel("c1", 0.0, 10.0, TruthValue.TRUE),
                TruthLabel("c1", 10.0, 20.0, TruthValue.TRUE),
            ],
        )
        assert timeline.transition_times() == []

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlapping"):
            TruthTimeline(
                "c1",
                [
                    TruthLabel("c1", 0.0, 10.0, TruthValue.TRUE),
                    TruthLabel("c1", 5.0, 15.0, TruthValue.FALSE),
                ],
            )

    def test_wrong_claim_rejected(self):
        with pytest.raises(ValueError, match="claim"):
            TruthTimeline(
                "c1", [TruthLabel("c2", 0.0, 1.0, TruthValue.TRUE)]
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            TruthTimeline("c1", [])

    def test_iteration_and_len(self):
        timeline = self._timeline()
        assert len(timeline) == 3
        assert [lab.start for lab in timeline] == [0.0, 10.0, 20.0]

    def test_unsorted_input_is_sorted(self):
        timeline = TruthTimeline(
            "c1",
            [
                TruthLabel("c1", 10.0, 20.0, TruthValue.TRUE),
                TruthLabel("c1", 0.0, 10.0, TruthValue.FALSE),
            ],
        )
        assert timeline.start == 0.0
        assert timeline.end == 20.0


class TestTruthEstimate:
    def test_confidence_range(self):
        with pytest.raises(ValueError, match="confidence"):
            TruthEstimate("c1", 0.0, TruthValue.TRUE, confidence=1.5)

    def test_defaults(self):
        estimate = TruthEstimate("c1", 1.0, TruthValue.FALSE)
        assert estimate.confidence == 1.0
