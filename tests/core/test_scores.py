"""Unit and property tests for contribution scores (paper Eq. (1))."""

import pytest
from hypothesis import given, strategies as st

from repro.core.scores import (
    ATTITUDE_ONLY,
    FULL_WEIGHTS,
    ScoreWeights,
    contribution_score,
    normalized_support,
    total_contribution,
)
from repro.core.types import Attitude, Report


def make_report(attitude=Attitude.AGREE, uncertainty=0.0, independence=1.0):
    return Report(
        "s1", "c1", 0.0,
        attitude=attitude, uncertainty=uncertainty, independence=independence,
    )


reports = st.builds(
    make_report,
    attitude=st.sampled_from(list(Attitude)),
    uncertainty=st.floats(min_value=0.0, max_value=0.999),
    independence=st.floats(min_value=0.001, max_value=1.0),
)


class TestContributionScore:
    def test_equation_one(self):
        report = make_report(Attitude.DISAGREE, 0.4, 0.5)
        assert contribution_score(report) == pytest.approx(-1 * 0.6 * 0.5)

    @given(reports)
    def test_bounded_by_one(self, report):
        assert -1.0 <= contribution_score(report) <= 1.0

    @given(reports)
    def test_sign_matches_attitude(self, report):
        score = contribution_score(report)
        if report.attitude is Attitude.NEUTRAL:
            assert score == 0.0
        elif report.attitude is Attitude.AGREE:
            assert score >= 0.0
        else:
            assert score <= 0.0

    @given(reports)
    def test_uncertainty_discounts_magnitude(self, report):
        certain = report.with_scores(uncertainty=0.0)
        assert abs(contribution_score(report)) <= abs(
            contribution_score(certain)
        ) + 1e-12


class TestScoreWeights:
    def test_full_matches_report_property(self):
        report = make_report(Attitude.AGREE, 0.3, 0.7)
        assert FULL_WEIGHTS.score(report) == pytest.approx(
            report.contribution_score
        )

    def test_attitude_only_ignores_other_components(self):
        report = make_report(Attitude.AGREE, 0.9, 0.001)
        assert ATTITUDE_ONLY.score(report) == 1.0

    def test_uncertainty_toggle(self):
        weights = ScoreWeights(use_uncertainty=False)
        report = make_report(Attitude.AGREE, 0.5, 0.5)
        assert weights.score(report) == pytest.approx(0.5)

    def test_independence_toggle(self):
        weights = ScoreWeights(use_independence=False)
        report = make_report(Attitude.AGREE, 0.5, 0.5)
        assert weights.score(report) == pytest.approx(0.5)


class TestAggregates:
    def test_total_contribution_sums(self):
        batch = [
            make_report(Attitude.AGREE),
            make_report(Attitude.AGREE),
            make_report(Attitude.DISAGREE),
        ]
        assert total_contribution(batch) == pytest.approx(1.0)

    def test_normalized_support_empty(self):
        assert normalized_support([]) == 0.0

    @given(st.lists(reports, min_size=1, max_size=20))
    def test_normalized_support_bounded(self, batch):
        assert -1.0 <= normalized_support(batch) <= 1.0

    @given(st.lists(reports, min_size=1, max_size=20))
    def test_normalized_is_mean_of_total(self, batch):
        assert normalized_support(batch) == pytest.approx(
            total_contribution(batch) / len(batch)
        )
