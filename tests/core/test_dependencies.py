"""Tests for claim-dependency modeling (paper §VII extension)."""

import numpy as np
import pytest

from repro.core import (
    ClaimDependencyGraph,
    CorrelatedSSTD,
    CorrelationConfig,
    SSTD,
    SSTDConfig,
    TruthValue,
)
from repro.core.acs import ACSConfig
from repro.core.types import Attitude, Report


class TestClaimDependencyGraph:
    def test_add_and_query(self):
        graph = ClaimDependencyGraph()
        graph.add_dependency("a", "b", 0.8)
        assert graph.correlation("a", "b") == 0.8
        assert graph.correlation("b", "a") == 0.8  # undirected
        assert graph.correlation("a", "zzz") == 0.0

    def test_neighbors(self):
        graph = ClaimDependencyGraph.from_edges(
            [("a", "b", 0.5), ("a", "c", -0.4)]
        )
        neighbors = dict(graph.neighbors("a"))
        assert neighbors == {"b": 0.5, "c": -0.4}
        assert graph.neighbors("unknown") == []

    def test_zero_correlation_removes_edge(self):
        graph = ClaimDependencyGraph()
        graph.add_dependency("a", "b", 0.5)
        graph.add_dependency("a", "b", 0.0)
        assert graph.correlation("a", "b") == 0.0

    def test_self_dependency_rejected(self):
        graph = ClaimDependencyGraph()
        with pytest.raises(ValueError, match="itself"):
            graph.add_dependency("a", "a", 0.5)

    def test_out_of_range_rejected(self):
        graph = ClaimDependencyGraph()
        with pytest.raises(ValueError, match="correlation"):
            graph.add_dependency("a", "b", 1.5)

    def test_components(self):
        graph = ClaimDependencyGraph.from_edges(
            [("a", "b", 0.5), ("c", "d", 0.5)]
        )
        components = graph.components()
        assert {frozenset(c) for c in components} == {
            frozenset({"a", "b"}),
            frozenset({"c", "d"}),
        }

    def test_contains_and_len(self):
        graph = ClaimDependencyGraph.from_edges([("a", "b", 0.5)])
        assert "a" in graph
        assert len(graph) == 2


def correlated_reports(seed=0, n=1200, duration=10_000.0, flip_at=5_000.0):
    """Two positively correlated claims; claim 'rich' has plenty of
    reports, claim 'sparse' very few — its truth follows 'rich'."""
    rng = np.random.default_rng(seed)
    reports = []
    for k in range(n):
        t = float(rng.uniform(0, duration))
        truth = t >= flip_at
        tells = rng.random() < 0.85
        says_true = truth if tells else not truth
        reports.append(
            Report(
                f"s{k % 300}", "rich", t,
                attitude=Attitude.AGREE if says_true else Attitude.DISAGREE,
            )
        )
    # The sparse claim gets a handful of reports, all early.
    for k in range(6):
        t = float(rng.uniform(0, 1500.0))
        reports.append(
            Report(
                f"q{k}", "sparse", t,
                attitude=Attitude.DISAGREE,  # consistent with truth: FALSE early
            )
        )
    return sorted(reports, key=lambda r: r.timestamp)


CONFIG = SSTDConfig(acs=ACSConfig(window=400.0, step=200.0))


class TestCorrelatedSSTD:
    def test_dependency_fills_sparse_claims(self):
        """Without dependencies the sparse claim stays FALSE after its
        last report; with a positive correlation it follows the rich
        claim's flip to TRUE."""
        reports = correlated_reports()
        span = (reports[0].timestamp, reports[-1].timestamp)

        plain = SSTD(CONFIG).discover(reports, start=span[0], end=span[1])
        plain_late = [
            e for e in plain
            if e.claim_id == "sparse" and e.timestamp > 6000.0
        ]
        assert plain_late
        assert all(e.value is TruthValue.FALSE for e in plain_late)

        graph = ClaimDependencyGraph.from_edges([("rich", "sparse", 1.0)])
        engine = CorrelatedSSTD(
            graph, CONFIG, CorrelationConfig(blend=0.5)
        )
        correlated = engine.discover(reports)
        late = [
            e for e in correlated
            if e.claim_id == "sparse" and e.timestamp > 6000.0
        ]
        assert late
        true_fraction = sum(
            1 for e in late if e.value is TruthValue.TRUE
        ) / len(late)
        assert true_fraction > 0.8

    def test_negative_correlation_inverts_evidence(self):
        reports = correlated_reports()
        graph = ClaimDependencyGraph.from_edges([("rich", "sparse", -1.0)])
        engine = CorrelatedSSTD(graph, CONFIG, CorrelationConfig(blend=0.5))
        estimates = engine.discover(reports)
        # After the rich claim flips TRUE, the anti-correlated sparse
        # claim should read FALSE.
        late = [
            e for e in estimates
            if e.claim_id == "sparse" and e.timestamp > 6000.0
        ]
        false_fraction = sum(
            1 for e in late if e.value is TruthValue.FALSE
        ) / len(late)
        assert false_fraction > 0.8

    def test_no_edges_matches_plain_sstd(self):
        reports = correlated_reports()
        graph = ClaimDependencyGraph()
        engine = CorrelatedSSTD(graph, CONFIG)
        correlated = sorted(
            engine.discover(reports), key=lambda e: (e.claim_id, e.timestamp)
        )
        span = (reports[0].timestamp, reports[-1].timestamp)
        plain = sorted(
            SSTD(CONFIG).discover(reports, start=span[0], end=span[1]),
            key=lambda e: (e.claim_id, e.timestamp),
        )
        assert [(e.claim_id, e.timestamp, e.value) for e in correlated] == [
            (e.claim_id, e.timestamp, e.value) for e in plain
        ]

    def test_zero_blend_is_identity(self):
        reports = correlated_reports()
        graph = ClaimDependencyGraph.from_edges([("rich", "sparse", 1.0)])
        engine = CorrelatedSSTD(graph, CONFIG, CorrelationConfig(blend=0.0))
        correlated = sorted(
            engine.discover(reports), key=lambda e: (e.claim_id, e.timestamp)
        )
        span = (reports[0].timestamp, reports[-1].timestamp)
        plain = sorted(
            SSTD(CONFIG).discover(reports, start=span[0], end=span[1]),
            key=lambda e: (e.claim_id, e.timestamp),
        )
        assert [(e.claim_id, e.value) for e in correlated] == [
            (e.claim_id, e.value) for e in plain
        ]

    def test_empty_reports(self):
        engine = CorrelatedSSTD(ClaimDependencyGraph(), CONFIG)
        assert engine.discover([]) == []

    def test_blend_validation(self):
        with pytest.raises(ValueError):
            CorrelationConfig(blend=1.0)
