"""Tests for posterior source-reliability estimation."""

import pytest

from repro.core.reliability import (
    ReliabilityEstimator,
    SourceReliability,
    evaluate_reliability_estimates,
    rank_spreaders,
    reliability_histogram,
)
from repro.core.types import Attitude, Report, TruthEstimate, TruthValue


def estimates_for(claim_id, pairs):
    return [
        TruthEstimate(claim_id, float(t), value) for t, value in pairs
    ]


class TestSourceReliability:
    def test_raw_accuracy(self):
        record = SourceReliability("s", n_scored=10, n_correct=8)
        assert record.raw_accuracy == 0.8

    def test_unscored_is_half(self):
        record = SourceReliability("s", n_scored=0, n_correct=0)
        assert record.raw_accuracy == 0.5
        assert record.reliability == 0.5

    def test_smoothing_shrinks_small_samples(self):
        one_shot = SourceReliability("s", n_scored=1, n_correct=1)
        veteran = SourceReliability("s", n_scored=100, n_correct=100)
        assert one_shot.reliability < veteran.reliability
        assert one_shot.reliability < 0.8

    def test_spreader_flag(self):
        spreader = SourceReliability("s", n_scored=10, n_correct=1)
        assert spreader.is_likely_spreader
        newbie = SourceReliability("s", n_scored=1, n_correct=0)
        assert not newbie.is_likely_spreader  # too little evidence

    def test_validation(self):
        with pytest.raises(ValueError):
            SourceReliability("s", n_scored=1, n_correct=2)
        with pytest.raises(ValueError):
            SourceReliability("s", n_scored=-1, n_correct=0)
        with pytest.raises(ValueError):
            SourceReliability("s", n_scored=0, n_correct=0, prior_weight=0.0)


class TestReliabilityEstimator:
    def test_scores_against_estimates(self):
        estimates = estimates_for(
            "c", [(10.0, TruthValue.TRUE), (20.0, TruthValue.FALSE)]
        )
        reports = [
            Report("good", "c", 12.0, attitude=Attitude.AGREE),     # correct
            Report("good", "c", 22.0, attitude=Attitude.DISAGREE),  # correct
            Report("bad", "c", 12.0, attitude=Attitude.DISAGREE),   # wrong
        ]
        result = ReliabilityEstimator().estimate(reports, estimates)
        assert result["good"].n_correct == 2
        assert result["bad"].n_correct == 0
        assert result["good"].reliability > result["bad"].reliability

    def test_neutral_reports_skipped(self):
        estimates = estimates_for("c", [(10.0, TruthValue.TRUE)])
        reports = [Report("s", "c", 12.0, attitude=Attitude.NEUTRAL)]
        assert ReliabilityEstimator().estimate(reports, estimates) == {}

    def test_unknown_claims_skipped(self):
        estimates = estimates_for("c", [(10.0, TruthValue.TRUE)])
        reports = [Report("s", "other", 12.0, attitude=Attitude.AGREE)]
        assert ReliabilityEstimator().estimate(reports, estimates) == {}

    def test_truth_tracked_over_time(self):
        """A source agreeing before the flip and disagreeing after is
        scored correct both times."""
        estimates = estimates_for(
            "c", [(10.0, TruthValue.TRUE), (100.0, TruthValue.FALSE)]
        )
        reports = [
            Report("s", "c", 50.0, attitude=Attitude.AGREE),
            Report("s", "c", 150.0, attitude=Attitude.DISAGREE),
        ]
        result = ReliabilityEstimator().estimate(reports, estimates)
        assert result["s"].n_correct == 2

    def test_prior_weight_validation(self):
        with pytest.raises(ValueError):
            ReliabilityEstimator(prior_weight=0.0)

    def test_end_to_end_with_sstd(self):
        """Reliable generator sources score higher than spreaders."""
        import numpy as np

        from repro.core import SSTD, SSTDConfig
        from repro.core.acs import ACSConfig

        rng = np.random.default_rng(0)
        reports = []
        for k in range(1500):
            t = float(rng.uniform(0, 10_000))
            truth = t >= 5_000
            source = f"good{k % 50}" if k % 5 else f"bad{k % 7}"
            reliability = 0.9 if source.startswith("good") else 0.15
            says_true = truth if rng.random() < reliability else not truth
            reports.append(
                Report(
                    source, "c1", t,
                    attitude=Attitude.AGREE if says_true else Attitude.DISAGREE,
                )
            )
        reports.sort(key=lambda r: r.timestamp)
        engine = SSTD(SSTDConfig(acs=ACSConfig(window=400.0, step=200.0)))
        estimates = engine.discover(reports)
        result = ReliabilityEstimator().estimate(reports, estimates)
        good = [v.reliability for s, v in result.items() if s.startswith("good")]
        bad = [v.reliability for s, v in result.items() if s.startswith("bad")]
        assert sum(good) / len(good) > 0.7
        assert sum(bad) / len(bad) < 0.45
        spreaders = rank_spreaders(result, top_k=100)
        assert spreaders
        assert all(s.source_id.startswith("bad") for s in spreaders)


class TestDiagnostics:
    def _records(self):
        return {
            "a": SourceReliability("a", 10, 9),
            "b": SourceReliability("b", 10, 1),
            "c": SourceReliability("c", 4, 0),
            "d": SourceReliability("d", 1, 1),
        }

    def test_rank_spreaders_orders_worst_first(self):
        spreaders = rank_spreaders(self._records())
        ids = [s.source_id for s in spreaders]
        assert "a" not in ids
        assert ids[0] in {"b", "c"}

    def test_histogram_covers_all_sources(self):
        histogram = reliability_histogram(self._records(), n_bins=4)
        assert sum(count for _, _, count in histogram) == 4
        assert histogram[0][0] == 0.0 and histogram[-1][1] == 1.0

    def test_histogram_validation(self):
        with pytest.raises(ValueError):
            reliability_histogram({}, n_bins=0)

    def test_evaluate_against_ground_truth(self):
        records = {
            "a": SourceReliability("a", 10, 9),   # raw 0.9
            "b": SourceReliability("b", 10, 2),   # raw 0.2
            "tiny": SourceReliability("tiny", 1, 1),  # excluded (min_scored)
        }
        truth = {"a": 0.9, "b": 0.3, "tiny": 0.0}
        mae = evaluate_reliability_estimates(records, truth, min_scored=5)
        assert mae == pytest.approx((0.0 + 0.1) / 2)

    def test_evaluate_empty(self):
        assert evaluate_reliability_estimates({}, {}) == 0.0
