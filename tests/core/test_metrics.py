"""Tests for the evaluation metrics (paper Section V-B1)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.metrics import (
    ConfusionMatrix,
    EvaluationResult,
    evaluate_estimates,
    format_results_table,
)
from repro.core.types import TruthEstimate, TruthLabel, TruthTimeline, TruthValue


class TestConfusionMatrix:
    def test_perfect(self):
        matrix = ConfusionMatrix(tp=5, tn=5)
        assert matrix.accuracy == 1.0
        assert matrix.precision == 1.0
        assert matrix.recall == 1.0
        assert matrix.f1 == 1.0

    def test_empty_is_zero(self):
        matrix = ConfusionMatrix()
        assert matrix.accuracy == 0.0
        assert matrix.precision == 0.0
        assert matrix.recall == 0.0
        assert matrix.f1 == 0.0

    def test_known_values(self):
        matrix = ConfusionMatrix(tp=6, fp=2, tn=8, fn=4)
        assert matrix.accuracy == pytest.approx(14 / 20)
        assert matrix.precision == pytest.approx(6 / 8)
        assert matrix.recall == pytest.approx(6 / 10)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConfusionMatrix(tp=-1)

    def test_addition(self):
        total = ConfusionMatrix(tp=1, fp=2) + ConfusionMatrix(tn=3, fn=4)
        assert (total.tp, total.fp, total.tn, total.fn) == (1, 2, 3, 4)

    def test_from_pairs(self):
        pairs = [
            (TruthValue.TRUE, TruthValue.TRUE),    # tp
            (TruthValue.TRUE, TruthValue.FALSE),   # fp
            (TruthValue.FALSE, TruthValue.FALSE),  # tn
            (TruthValue.FALSE, TruthValue.TRUE),   # fn
        ]
        matrix = ConfusionMatrix.from_pairs(pairs)
        assert (matrix.tp, matrix.fp, matrix.tn, matrix.fn) == (1, 1, 1, 1)

    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    )
    def test_f1_is_harmonic_mean(self, tp, fp, tn, fn):
        matrix = ConfusionMatrix(tp=tp, fp=fp, tn=tn, fn=fn)
        p, r = matrix.precision, matrix.recall
        if p + r > 0:
            assert matrix.f1 == pytest.approx(2 * p * r / (p + r))
        else:
            assert matrix.f1 == 0.0

    @given(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=100),
    )
    def test_metrics_bounded(self, tp, fp, tn, fn):
        matrix = ConfusionMatrix(tp=tp, fp=fp, tn=tn, fn=fn)
        for value in (matrix.accuracy, matrix.precision, matrix.recall, matrix.f1):
            assert 0.0 <= value <= 1.0


class TestEvaluateEstimates:
    def _timeline(self):
        return {
            "c1": TruthTimeline(
                "c1",
                [
                    TruthLabel("c1", 0.0, 10.0, TruthValue.FALSE),
                    TruthLabel("c1", 10.0, 20.0, TruthValue.TRUE),
                ],
            )
        }

    def test_dynamic_alignment(self):
        """An estimate is compared with the truth *at its own timestamp*."""
        estimates = [
            TruthEstimate("c1", 5.0, TruthValue.FALSE),   # correct
            TruthEstimate("c1", 15.0, TruthValue.FALSE),  # wrong: truth flipped
        ]
        result = evaluate_estimates("m", estimates, self._timeline())
        assert result.accuracy == 0.5

    def test_unlabelled_claims_skipped(self):
        estimates = [TruthEstimate("zzz", 5.0, TruthValue.TRUE)]
        result = evaluate_estimates("m", estimates, self._timeline())
        assert result.matrix.total == 0

    def test_as_row_rounds(self):
        result = EvaluationResult(
            "m", ConfusionMatrix(tp=1, fp=2, tn=0, fn=0)
        )
        row = result.as_row()
        assert row["method"] == "m"
        assert row["precision"] == pytest.approx(0.333)


class TestFormatTable:
    def test_contains_all_methods(self):
        results = [
            EvaluationResult("SSTD", ConfusionMatrix(tp=9, tn=9, fp=1, fn=1)),
            EvaluationResult("DynaTD", ConfusionMatrix(tp=7, tn=7, fp=3, fn=3)),
        ]
        table = format_results_table(results, title="Table III")
        assert "Table III" in table
        assert "SSTD" in table and "DynaTD" in table
        assert "0.900" in table


class TestPerClaimBreakdown:
    def _setup(self):
        from repro.core.metrics import evaluate_per_claim

        timelines = {
            "easy": TruthTimeline(
                "easy", [TruthLabel("easy", 0.0, 10.0, TruthValue.TRUE)]
            ),
            "hard": TruthTimeline(
                "hard", [TruthLabel("hard", 0.0, 10.0, TruthValue.FALSE)]
            ),
        }
        estimates = [
            TruthEstimate("easy", 1.0, TruthValue.TRUE),
            TruthEstimate("easy", 2.0, TruthValue.TRUE),
            TruthEstimate("hard", 1.0, TruthValue.TRUE),   # wrong
            TruthEstimate("hard", 2.0, TruthValue.FALSE),  # right
            TruthEstimate("unknown", 1.0, TruthValue.TRUE),
        ]
        return evaluate_per_claim("m", estimates, timelines), timelines

    def test_per_claim_accuracies(self):
        per_claim, _ = self._setup()
        assert per_claim["easy"].accuracy == 1.0
        assert per_claim["hard"].accuracy == 0.5
        assert "unknown" not in per_claim

    def test_hardest_claims_ranked(self):
        from repro.core.metrics import hardest_claims

        per_claim, _ = self._setup()
        worst = hardest_claims(per_claim, worst_k=1)
        assert worst == [("hard", 0.5)]

    def test_per_claim_sums_to_overall(self):
        from repro.core.metrics import evaluate_per_claim

        per_claim, timelines = self._setup()
        total = sum(r.matrix.total for r in per_claim.values())
        assert total == 4  # unknown claim excluded
