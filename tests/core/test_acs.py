"""Tests for Aggregated Contribution Score sequences (paper Eq. (4))."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.acs import ACSConfig, SlidingWindowACS, acs_at, acs_sequence
from repro.core.scores import ScoreWeights
from repro.core.types import Attitude, Report


def report(t, attitude=Attitude.AGREE, uncertainty=0.0, independence=1.0):
    return Report(
        "s1", "c1", t,
        attitude=attitude, uncertainty=uncertainty, independence=independence,
    )


RAW = ACSConfig(window=10.0, step=5.0, normalize=False, empty_is_missing=False)
NORM = ACSConfig(window=10.0, step=5.0, normalize=True, empty_is_missing=True)


class TestACSConfig:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            ACSConfig(window=0.0)

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            ACSConfig(step=-1.0)

    def test_grid_covers_span(self):
        grid = ACSConfig(window=10, step=10).grid(0.0, 35.0)
        assert list(grid) == [10.0, 20.0, 30.0, 40.0]

    def test_grid_minimum_one_point(self):
        grid = ACSConfig(window=10, step=10).grid(0.0, 0.0)
        assert len(grid) == 1

    def test_finalize_raw(self):
        assert RAW.finalize(3.0, 2) == 3.0
        assert RAW.finalize(0.0, 0) == 0.0

    def test_finalize_normalized(self):
        assert NORM.finalize(3.0, 2) == 1.5
        assert math.isnan(NORM.finalize(0.0, 0))


class TestACSSequence:
    def test_simple_sum(self):
        batch = [report(1.0), report(2.0), report(3.0, Attitude.DISAGREE)]
        times, values = acs_sequence(batch, RAW)
        # grid from t=1: [6.0] — window (−4, 6] contains all three
        assert values[0] == pytest.approx(1.0)

    def test_window_excludes_old_reports(self):
        batch = [report(0.0), report(100.0)]
        config = ACSConfig(window=10.0, step=50.0, normalize=False,
                           empty_is_missing=False)
        times, values = acs_sequence(batch, config)
        # grid points at 50 and 100: the t=0 report is expired by t=50
        assert values[0] == 0.0
        assert values[1] == 1.0

    def test_empty_reports_with_span(self):
        times, values = acs_sequence([], NORM, start=0.0, end=20.0)
        assert len(times) == 4
        assert all(math.isnan(v) for v in values)

    def test_empty_reports_no_span(self):
        times, values = acs_sequence([], NORM)
        assert times.size == 0 and values.size == 0

    def test_normalization_divides_by_count(self):
        batch = [report(1.0), report(2.0), report(3.0, Attitude.DISAGREE)]
        _, values = acs_sequence(batch, NORM)
        assert values[0] == pytest.approx(1.0 / 3.0)

    def test_matches_pointwise_acs_at(self):
        batch = [report(float(t), Attitude.AGREE if t % 3 else Attitude.DISAGREE)
                 for t in range(20)]
        times, values = acs_sequence(batch, RAW)
        timestamps = [r.timestamp for r in batch]
        for t, v in zip(times, values):
            assert acs_at(batch, timestamps, t, RAW) == pytest.approx(v)

    def test_respects_score_weights(self):
        config = ACSConfig(
            window=10.0, step=5.0, normalize=False, empty_is_missing=False,
            weights=ScoreWeights(use_uncertainty=False, use_independence=False),
        )
        batch = [report(1.0, uncertainty=0.9, independence=0.001)]
        _, values = acs_sequence(batch, config)
        assert values[0] == pytest.approx(1.0)


class TestSlidingWindowACS:
    def test_matches_batch_on_grid(self):
        rng = np.random.default_rng(3)
        batch = sorted(
            (report(float(t), Attitude.AGREE if rng.random() < 0.6 else Attitude.DISAGREE)
             for t in rng.uniform(0, 100, size=50)),
            key=lambda r: r.timestamp,
        )
        config = ACSConfig(window=15.0, step=5.0, normalize=True)
        times, expected = acs_sequence(batch, config, start=0.0, end=100.0)

        window = SlidingWindowACS(15.0, normalize=True)
        cursor = 0
        for t, exp in zip(times, expected):
            while cursor < len(batch) and batch[cursor].timestamp <= t:
                window.push(batch[cursor])
                cursor += 1
            got = window.value_at(float(t))
            if math.isnan(exp):
                assert math.isnan(got)
            else:
                assert got == pytest.approx(exp)

    def test_out_of_order_push_rejected(self):
        window = SlidingWindowACS(10.0)
        window.push(report(5.0))
        with pytest.raises(ValueError, match="out-of-order"):
            window.push(report(1.0))

    def test_eviction(self):
        window = SlidingWindowACS(10.0, normalize=False, empty_is_missing=False)
        window.push(report(0.0))
        assert window.value_at(5.0) == 1.0
        assert window.value_at(11.0) == 0.0
        assert len(window) == 0

    def test_future_reports_not_counted(self):
        window = SlidingWindowACS(10.0, normalize=False, empty_is_missing=False)
        window.push(report(1.0))
        window.push(report(8.0))
        assert window.value_at(5.0) == 1.0

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            SlidingWindowACS(0.0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=1, max_size=40,
        )
    )
    def test_incremental_equals_batch_property(self, raw_times):
        """Streaming accumulator always agrees with the batch formula."""
        raw_times.sort()
        batch = [report(t) for t in raw_times]
        config = ACSConfig(window=7.0, step=3.0, normalize=True)
        times, expected = acs_sequence(batch, config, start=0.0, end=100.0)
        window = SlidingWindowACS(7.0, normalize=True)
        cursor = 0
        for t, exp in zip(times, expected):
            while cursor < len(batch) and batch[cursor].timestamp <= t:
                window.push(batch[cursor])
                cursor += 1
            got = window.value_at(float(t))
            assert (math.isnan(got) and math.isnan(exp)) or got == pytest.approx(exp)
