"""Tests for the SSTD truth discovery engine."""

import dataclasses

import numpy as np
import pytest

from repro.core.acs import ACSConfig
from repro.core.sstd import (
    SSTD,
    ClaimTruthModel,
    SSTDConfig,
    StreamingSSTD,
    states_to_truth,
)
from repro.core.types import Attitude, Report, TruthValue
from repro.hmm.gaussian import GaussianHMM


def flip_scenario(
    n_reports=1500,
    flip_at=5000.0,
    duration=10000.0,
    reliability=0.8,
    seed=0,
    claim_id="c1",
):
    """Reports about one claim whose truth flips FALSE -> TRUE at flip_at."""
    rng = np.random.default_rng(seed)
    reports = []
    for k in range(n_reports):
        t = float(rng.uniform(0, duration))
        truth = t >= flip_at
        tells_truth = rng.random() < reliability
        says_true = truth if tells_truth else not truth
        reports.append(
            Report(
                f"s{k % 200}",
                claim_id,
                t,
                attitude=Attitude.AGREE if says_true else Attitude.DISAGREE,
            )
        )
    return sorted(reports, key=lambda r: r.timestamp)


FAST_CONFIG = SSTDConfig(acs=ACSConfig(window=400.0, step=200.0))


class TestSSTDConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SSTDConfig(em_max_iter=0)
        with pytest.raises(ValueError):
            SSTDConfig(min_observations=1)
        with pytest.raises(ValueError):
            SSTDConfig(sticky_prior=1.0)
        with pytest.raises(ValueError):
            SSTDConfig(sticky_prior=0.3)


class TestBatchSSTD:
    def test_tracks_truth_flip(self):
        reports = flip_scenario()
        engine = SSTD(FAST_CONFIG)
        estimates = engine.discover(reports)
        errors = sum(
            1
            for e in estimates
            if (e.value is TruthValue.TRUE) != (e.timestamp >= 5000.0)
        )
        assert errors / len(estimates) < 0.08

    def test_constant_true_claim_never_invents_flip(self):
        """A claim that is always TRUE must not get a phantom FALSE phase."""
        rng = np.random.default_rng(1)
        reports = []
        for k in range(800):
            t = float(rng.uniform(0, 10000))
            says_true = rng.random() < 0.8
            reports.append(
                Report(
                    f"s{k}", "c1", t,
                    attitude=Attitude.AGREE if says_true else Attitude.DISAGREE,
                )
            )
        estimates = SSTD(FAST_CONFIG).discover(reports)
        true_fraction = sum(
            1 for e in estimates if e.value is TruthValue.TRUE
        ) / len(estimates)
        assert true_fraction > 0.95

    def test_constant_false_claim(self):
        rng = np.random.default_rng(2)
        reports = []
        for k in range(800):
            t = float(rng.uniform(0, 10000))
            says_true = rng.random() < 0.2  # mostly debunked
            reports.append(
                Report(
                    f"s{k}", "c1", t,
                    attitude=Attitude.AGREE if says_true else Attitude.DISAGREE,
                )
            )
        estimates = SSTD(FAST_CONFIG).discover(reports)
        false_fraction = sum(
            1 for e in estimates if e.value is TruthValue.FALSE
        ) / len(estimates)
        assert false_fraction > 0.95

    def test_multiple_claims_grouped(self):
        reports = flip_scenario(claim_id="a") + flip_scenario(
            claim_id="b", seed=9
        )
        engine = SSTD(FAST_CONFIG)
        estimates = engine.discover(reports)
        assert {e.claim_id for e in estimates} == {"a", "b"}
        assert set(engine.results) == {"a", "b"}

    def test_no_reports(self):
        assert SSTD(FAST_CONFIG).discover([]) == []

    def test_explicit_span(self):
        reports = flip_scenario(n_reports=200)
        estimates = SSTD(FAST_CONFIG).discover(reports, start=0.0, end=10000.0)
        times = sorted({e.timestamp for e in estimates})
        assert times[0] == pytest.approx(200.0)
        assert times[-1] >= 10000.0

    def test_uses_hmm_on_rich_data(self):
        engine = SSTD(FAST_CONFIG)
        engine.discover(flip_scenario())
        assert engine.results["c1"].used_hmm

    def test_results_cleared_between_discover_calls(self):
        engine = SSTD(FAST_CONFIG)
        engine.discover(flip_scenario(claim_id="old"))
        assert set(engine.results) == {"old"}
        engine.discover(flip_scenario(claim_id="new", seed=2))
        # A fresh discover() describes only its own batch; results from
        # earlier runs must not accumulate.
        assert set(engine.results) == {"new"}

    def test_batched_discover_matches_per_claim_loop(self):
        reports = flip_scenario(claim_id="a") + flip_scenario(
            claim_id="b", seed=9, n_reports=700
        )
        batched = SSTD(FAST_CONFIG).discover(reports)
        per_claim = SSTD(
            dataclasses.replace(FAST_CONFIG, batch_claims=False)
        ).discover(reports)
        assert batched == per_claim


class TestSignFallback:
    def test_sparse_claim_uses_fallback(self):
        reports = [
            Report("s1", "c1", 100.0, attitude=Attitude.AGREE),
            Report("s2", "c1", 200.0, attitude=Attitude.AGREE),
        ]
        engine = SSTD(FAST_CONFIG)
        result = engine.discover_claim("c1", reports)
        assert not result.used_hmm
        assert result.estimates[-1].value is TruthValue.TRUE

    def test_fallback_carries_forward_through_gaps(self):
        model = ClaimTruthModel("c1", FAST_CONFIG)
        times = np.array([1.0, 2.0, 3.0, 4.0])
        acs = np.array([1.0, np.nan, np.nan, np.nan])
        result = model.fit_decode(times, acs)
        assert all(v is TruthValue.TRUE for v in result.values)

    def test_fallback_defaults_false_before_evidence(self):
        model = ClaimTruthModel("c1", FAST_CONFIG)
        times = np.array([1.0, 2.0])
        acs = np.array([np.nan, -0.5])
        result = model.fit_decode(times, acs)
        assert result.values[0] is TruthValue.FALSE

    def test_empty_sequence(self):
        model = ClaimTruthModel("c1", FAST_CONFIG)
        result = model.fit_decode(np.array([]), np.array([]))
        assert result.estimates == ()

    def test_length_mismatch_rejected(self):
        model = ClaimTruthModel("c1", FAST_CONFIG)
        with pytest.raises(ValueError, match="differ"):
            model.fit_decode(np.array([1.0]), np.array([1.0, 2.0]))


class TestStatesToTruth:
    def test_sign_mapping(self):
        hmm = GaussianHMM(2, means=np.array([-0.5, 0.5]))
        values = states_to_truth(hmm, np.array([0, 1, 0]))
        assert values == [TruthValue.FALSE, TruthValue.TRUE, TruthValue.FALSE]

    def test_both_positive_means_all_true(self):
        hmm = GaussianHMM(2, means=np.array([0.2, 0.9]))
        values = states_to_truth(hmm, np.array([0, 1]))
        assert values == [TruthValue.TRUE, TruthValue.TRUE]


class TestStreamingSSTD:
    def test_streaming_tracks_flip(self):
        reports = flip_scenario()
        engine = StreamingSSTD(FAST_CONFIG, retrain_every=5)
        cursor = 0
        correct = total = 0
        for now in np.arange(200.0, 10000.0, 200.0):
            while cursor < len(reports) and reports[cursor].timestamp <= now:
                engine.push(reports[cursor])
                cursor += 1
            for estimate in engine.tick(float(now)):
                # Skip the early warm-up phase.
                if now < 1000.0:
                    continue
                total += 1
                expected = now >= 5000.0 + 400.0  # allow one window of lag
                if (estimate.value is TruthValue.TRUE) == (now >= 5000.0):
                    correct += 1
        assert total > 0
        assert correct / total > 0.85

    def test_latest_tracks_most_recent(self):
        engine = StreamingSSTD(FAST_CONFIG)
        engine.push(Report("s1", "c1", 1.0, attitude=Attitude.AGREE))
        engine.tick(10.0)
        latest = engine.latest()
        assert latest["c1"].timestamp == 10.0

    def test_cold_start_sign_rule(self):
        engine = StreamingSSTD(FAST_CONFIG)
        engine.push(Report("s1", "c1", 1.0, attitude=Attitude.DISAGREE))
        (estimate,) = engine.tick(5.0)
        assert estimate.value is TruthValue.FALSE

    def test_empty_window_keeps_previous(self):
        engine = StreamingSSTD(FAST_CONFIG)
        engine.push(Report("s1", "c1", 1.0, attitude=Attitude.AGREE))
        engine.tick(5.0)
        (estimate,) = engine.tick(5000.0)  # window empty by now
        assert estimate.value is TruthValue.TRUE

    def test_retrain_every_validation(self):
        with pytest.raises(ValueError):
            StreamingSSTD(retrain_every=0)

    def test_buffer_bounded(self):
        engine = StreamingSSTD(FAST_CONFIG, max_buffer=10)
        engine.push(Report("s1", "c1", 0.5, attitude=Attitude.AGREE))
        for now in range(1, 50):
            engine.tick(float(now))
        assert len(engine._times["c1"]) <= 10
