"""Tests for the sliding-window voting baseline."""

import numpy as np
import pytest

from repro.baselines import EvaluationGrid, SlidingVote
from repro.core.types import Attitude, Report, TruthValue


def flip_reports(seed=0, n=1000, duration=1000.0, flip_at=500.0):
    rng = np.random.default_rng(seed)
    reports = []
    for k in range(n):
        t = float(rng.uniform(0, duration))
        truth = t >= flip_at
        says = truth if rng.random() < 0.85 else not truth
        reports.append(
            Report(
                f"s{k}", "c", t,
                attitude=Attitude.AGREE if says else Attitude.DISAGREE,
            )
        )
    return sorted(reports, key=lambda r: r.timestamp)


class TestSlidingVote:
    def test_tracks_flip(self):
        reports = flip_reports()
        grid = EvaluationGrid(0.0, 1000.0, step=25.0)
        estimates = SlidingVote(window_steps=3).discover(reports, grid)
        errors = sum(
            1 for e in estimates
            if (e.value is TruthValue.TRUE) != (e.timestamp >= 500.0)
        )
        assert errors / len(estimates) < 0.15

    def test_carry_forward_through_gaps(self):
        reports = [
            Report("s1", "c", 10.0, attitude=Attitude.AGREE),
            Report("s2", "c", 12.0, attitude=Attitude.AGREE),
        ]
        grid = EvaluationGrid(0.0, 100.0, step=10.0)
        estimates = SlidingVote(window_steps=1).discover(reports, grid)
        assert all(e.value is TruthValue.TRUE for e in estimates[1:])

    def test_no_carry_forward(self):
        reports = [Report("s1", "c", 10.0, attitude=Attitude.AGREE)]
        grid = EvaluationGrid(0.0, 100.0, step=10.0)
        estimates = SlidingVote(
            window_steps=1, carry_forward=False
        ).discover(reports, grid)
        assert estimates[0].value is TruthValue.TRUE   # t=10 window has it
        assert estimates[-1].value is TruthValue.FALSE

    def test_confidence_reflects_margin(self):
        reports = [
            Report("a", "c", 1.0, attitude=Attitude.AGREE),
            Report("b", "c", 2.0, attitude=Attitude.AGREE),
            Report("d", "c", 3.0, attitude=Attitude.DISAGREE),
        ]
        grid = EvaluationGrid(0.0, 10.0, step=10.0)
        (estimate,) = SlidingVote(window_steps=1).discover(reports, grid)
        assert estimate.confidence == pytest.approx(1.0 / 3.0)

    def test_empty_reports(self):
        grid = EvaluationGrid(0.0, 10.0, step=5.0)
        assert SlidingVote().discover([], grid) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingVote(window_steps=0.0)

    def test_registered(self):
        from repro.baselines import make_algorithm

        assert make_algorithm("SlidingVote").name == "SlidingVote"
