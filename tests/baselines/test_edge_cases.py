"""Edge-case tests across all truth-discovery algorithms.

Degenerate inputs a production deployment will eventually see: single
sources, unanimous agreement, perfect ties, all-neutral streams, claims
with one report.  Every algorithm must return sane output (not crash,
not emit out-of-range confidences).
"""

import pytest

from repro.baselines import EvaluationGrid, make_algorithm
from repro.baselines.registry import ALGORITHM_FACTORIES
from repro.core.types import Attitude, Report, TruthValue

ALL_METHODS = sorted(ALGORITHM_FACTORIES)

GRID = EvaluationGrid(0.0, 100.0, step=50.0)


def run(method, reports):
    return make_algorithm(method).discover(reports, GRID)


class TestSingleReport:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_single_agree(self, method):
        estimates = run(
            method, [Report("s", "c", 10.0, attitude=Attitude.AGREE)]
        )
        # Some schemes need minimum evidence; those may return nothing,
        # but whatever they return must be sane.
        for estimate in estimates:
            assert estimate.claim_id == "c"
            assert 0.0 <= estimate.confidence <= 1.0

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_single_disagree_not_true(self, method):
        estimates = run(
            method, [Report("s", "c", 10.0, attitude=Attitude.DISAGREE)]
        )
        assert all(e.value is TruthValue.FALSE for e in estimates)


class TestUnanimous:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_unanimous_agreement_is_true(self, method):
        reports = [
            Report(f"s{k}", "c", float(k + 1), attitude=Attitude.AGREE)
            for k in range(30)
        ]
        estimates = run(method, reports)
        assert estimates, method
        late = [e for e in estimates if e.timestamp >= 50.0]
        assert all(e.value is TruthValue.TRUE for e in late), method

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_unanimous_denial_is_false(self, method):
        reports = [
            Report(f"s{k}", "c", float(k + 1), attitude=Attitude.DISAGREE)
            for k in range(30)
        ]
        estimates = run(method, reports)
        late = [e for e in estimates if e.timestamp >= 50.0]
        assert all(e.value is TruthValue.FALSE for e in late), method


class TestNeutralOnly:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_all_neutral_does_not_crash(self, method):
        reports = [
            Report(f"s{k}", "c", float(k + 1), attitude=Attitude.NEUTRAL)
            for k in range(10)
        ]
        estimates = run(method, reports)
        for estimate in estimates:
            assert estimate.value in (TruthValue.TRUE, TruthValue.FALSE)


class TestPerfectTie:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_tie_resolves_deterministically(self, method):
        reports = []
        for k in range(10):
            attitude = Attitude.AGREE if k % 2 else Attitude.DISAGREE
            reports.append(
                Report(f"s{k}", "c", float(k + 1), attitude=attitude)
            )
        first = run(method, reports)
        second = run(method, reports)
        assert [(e.claim_id, e.timestamp, e.value) for e in first] == [
            (e.claim_id, e.timestamp, e.value) for e in second
        ]


class TestManyClaimsOneSource:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_prolific_single_source(self, method):
        reports = [
            Report("solo", f"c{k}", float(k + 1), attitude=Attitude.AGREE)
            for k in range(20)
        ]
        estimates = run(method, reports)
        claims = {e.claim_id for e in estimates}
        assert len(claims) == 20 or not estimates, method
        for estimate in estimates:
            assert 0.0 <= estimate.confidence <= 1.0
