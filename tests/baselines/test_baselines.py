"""Tests for the truth-discovery baselines (paper Section V-A1)."""

import numpy as np
import pytest

from repro.baselines import (
    CATD,
    RTD,
    DynaTD,
    EvaluationGrid,
    Invest,
    MajorityVote,
    MedianVote,
    PooledInvest,
    ThreeEstimates,
    TruthFinder,
    group_by_claim,
    make_algorithm,
    paper_comparison_set,
    source_claim_votes,
)
from repro.baselines.registry import PAPER_TABLE_METHODS, SSTDAlgorithm
from repro.core.types import Attitude, Report, TruthValue

ALL_BATCH = [
    MajorityVote(),
    MedianVote(),
    TruthFinder(),
    RTD(),
    CATD(),
    Invest(),
    PooledInvest(),
    ThreeEstimates(),
]


def simple_scenario(seed=0, n_sources=40, n_claims=10, reliability=0.8):
    """Static truths; sources tell the truth with given reliability.

    Returns (reports, truths) where truths maps claim_id -> TruthValue.
    """
    rng = np.random.default_rng(seed)
    truths = {
        f"c{j}": TruthValue.TRUE if rng.random() < 0.5 else TruthValue.FALSE
        for j in range(n_claims)
    }
    reports = []
    t = 0.0
    for i in range(n_sources):
        for j in range(n_claims):
            t += 1.0
            truth_is_true = truths[f"c{j}"] is TruthValue.TRUE
            tells = rng.random() < reliability
            says_true = truth_is_true if tells else not truth_is_true
            reports.append(
                Report(
                    f"s{i}", f"c{j}", t,
                    attitude=Attitude.AGREE if says_true else Attitude.DISAGREE,
                )
            )
    return reports, truths


class TestHelpers:
    def test_group_by_claim_sorted(self):
        reports = [
            Report("a", "c1", 5.0, attitude=Attitude.AGREE),
            Report("b", "c1", 1.0, attitude=Attitude.AGREE),
            Report("a", "c2", 3.0, attitude=Attitude.AGREE),
        ]
        grouped = group_by_claim(reports)
        assert set(grouped) == {"c1", "c2"}
        assert [r.timestamp for r in grouped["c1"]] == [1.0, 5.0]

    def test_source_claim_votes_nets_attitudes(self):
        reports = [
            Report("a", "c1", 1.0, attitude=Attitude.AGREE),
            Report("a", "c1", 2.0, attitude=Attitude.AGREE),
            Report("a", "c1", 3.0, attitude=Attitude.DISAGREE),
        ]
        votes = source_claim_votes(reports)
        assert votes[("a", "c1")] == 1

    def test_source_claim_votes_drops_balanced(self):
        reports = [
            Report("a", "c1", 1.0, attitude=Attitude.AGREE),
            Report("a", "c1", 2.0, attitude=Attitude.DISAGREE),
        ]
        assert ("a", "c1") not in source_claim_votes(reports)


class TestEvaluationGrid:
    def test_times(self):
        grid = EvaluationGrid(0.0, 100.0, step=25.0)
        assert grid.times().tolist() == [25.0, 50.0, 75.0, 100.0]

    def test_from_reports(self):
        reports = [
            Report("a", "c", 10.0, attitude=Attitude.AGREE),
            Report("a", "c", 90.0, attitude=Attitude.AGREE),
        ]
        grid = EvaluationGrid.from_reports(reports, step=40.0)
        assert grid.start == 10.0 and grid.end == 90.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EvaluationGrid(0.0, 10.0, step=0.0)
        with pytest.raises(ValueError):
            EvaluationGrid(10.0, 0.0)
        with pytest.raises(ValueError):
            EvaluationGrid.from_reports([])


class TestBatchAlgorithmsRecoverStaticTruth:
    @pytest.mark.parametrize("algo", ALL_BATCH, ids=lambda a: a.name)
    def test_high_reliability_recovery(self, algo):
        reports, truths = simple_scenario(reliability=0.85)
        grid = EvaluationGrid.from_reports(reports, step=100.0)
        estimates = algo.discover(reports, grid)
        assert estimates, f"{algo.name} returned no estimates"
        per_claim = {}
        for e in estimates:
            per_claim[e.claim_id] = e.value
        correct = sum(
            1 for cid, v in per_claim.items() if v is truths[cid]
        )
        assert correct >= 0.9 * len(truths), algo.name

    @pytest.mark.parametrize("algo", ALL_BATCH, ids=lambda a: a.name)
    def test_static_value_replicated_over_grid(self, algo):
        reports, _ = simple_scenario(n_sources=10, n_claims=3)
        grid = EvaluationGrid.from_reports(reports, step=7.0)
        estimates = algo.discover(reports, grid)
        values = {}
        for e in estimates:
            values.setdefault(e.claim_id, set()).add(e.value)
        for claim_values in values.values():
            assert len(claim_values) == 1

    @pytest.mark.parametrize("algo", ALL_BATCH, ids=lambda a: a.name)
    def test_empty_reports(self, algo):
        grid = EvaluationGrid(0.0, 10.0)
        assert algo.discover([], grid) == []

    @pytest.mark.parametrize("algo", ALL_BATCH, ids=lambda a: a.name)
    def test_confidence_in_unit_interval(self, algo):
        reports, _ = simple_scenario(n_sources=15, n_claims=4)
        grid = EvaluationGrid.from_reports(reports, step=100.0)
        for estimate in algo.discover(reports, grid):
            assert 0.0 <= estimate.confidence <= 1.0


class TestSourceReliabilityModels:
    """Reliability-aware schemes must beat voting when liars are prolific."""

    def _spreader_scenario(self, seed=1):
        rng = np.random.default_rng(seed)
        reports = []
        truths = {f"c{j}": TruthValue.TRUE for j in range(8)}
        t = 0.0
        # 12 honest sources report on 3 claims each.
        for i in range(12):
            for j in rng.choice(8, size=3, replace=False):
                t += 1.0
                reports.append(
                    Report(f"honest{i}", f"c{j}", t, attitude=Attitude.AGREE)
                )
        # 4 prolific liars report (falsely) on every claim.
        for i in range(4):
            for j in range(8):
                t += 1.0
                reports.append(
                    Report(f"liar{i}", f"c{j}", t, attitude=Attitude.DISAGREE)
                )
        # One "anchor" claim where honest sources overwhelm the liars,
        # giving reliability models a foothold.
        for i in range(12):
            t += 1.0
            reports.append(
                Report(f"honest{i}", "anchor", t, attitude=Attitude.AGREE)
            )
        for i in range(4):
            t += 1.0
            reports.append(
                Report(f"liar{i}", "anchor", t, attitude=Attitude.DISAGREE)
            )
        truths["anchor"] = TruthValue.TRUE
        return reports, truths

    @pytest.mark.parametrize(
        "algo", [TruthFinder(), RTD(), Invest()], ids=lambda a: a.name
    )
    def test_downweights_prolific_liars(self, algo):
        reports, truths = self._spreader_scenario()
        grid = EvaluationGrid.from_reports(reports, step=1000.0)
        estimates = algo.discover(reports, grid)
        decided = {e.claim_id: e.value for e in estimates}
        correct = sum(1 for cid, v in decided.items() if v is truths[cid])
        assert correct >= 0.75 * len(truths), algo.name


class TestDynaTD:
    def test_adapts_to_truth_flip(self):
        rng = np.random.default_rng(3)
        reports = []
        for k in range(2000):
            t = float(rng.uniform(0, 1000))
            truth = t >= 500
            tells = rng.random() < 0.8
            says_true = truth if tells else not truth
            reports.append(
                Report(
                    f"s{k % 100}", "c1", t,
                    attitude=Attitude.AGREE if says_true else Attitude.DISAGREE,
                )
            )
        algo = DynaTD()
        grid = EvaluationGrid(0.0, 1000.0, step=20.0)
        estimates = algo.discover(reports, grid)
        late = [e for e in estimates if e.timestamp > 600]
        early = [e for e in estimates if e.timestamp < 450]
        assert all(e.value is TruthValue.TRUE for e in late[-5:])
        assert sum(1 for e in early if e.value is TruthValue.FALSE) > 0.8 * len(early)

    def test_reliability_learning(self):
        algo = DynaTD(reliability_lr=0.5)
        reports = [
            Report("good", "c1", 1.0, attitude=Attitude.AGREE),
            Report("good2", "c1", 1.0, attitude=Attitude.AGREE),
            Report("bad", "c1", 1.0, attitude=Attitude.DISAGREE),
        ]
        algo.step(reports, now=1.0)
        assert algo.source_reliability("good") > algo.source_reliability("bad")

    def test_reset_clears_state(self):
        algo = DynaTD()
        algo.step([Report("a", "c1", 1.0, attitude=Attitude.AGREE)], now=1.0)
        algo.reset()
        assert algo.step([], now=2.0) == []

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DynaTD(decay=1.5)
        with pytest.raises(ValueError):
            DynaTD(reliability_lr=0.0)
        with pytest.raises(ValueError):
            DynaTD(initial_reliability=1.0)

    def test_evidence_decays(self):
        algo = DynaTD(decay=0.5)
        algo.step([Report("a", "c1", 1.0, attitude=Attitude.AGREE)], now=1.0)
        first = algo._evidence["c1"]
        algo.step([], now=2.0)
        assert algo._evidence["c1"] == pytest.approx(first * 0.5)


class TestRegistry:
    def test_paper_comparison_set_order(self):
        algos = paper_comparison_set()
        assert [a.name for a in algos] == list(PAPER_TABLE_METHODS)

    def test_make_algorithm_unknown(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            make_algorithm("nope")

    def test_sstd_adapter_emits_grid_estimates(self):
        reports, _ = simple_scenario(n_sources=20, n_claims=2)
        grid = EvaluationGrid.from_reports(reports, step=20.0)
        estimates = SSTDAlgorithm().discover(reports, grid)
        timestamps = {e.timestamp for e in estimates}
        assert timestamps <= set(grid.times().tolist())


class TestAlgorithmParameterValidation:
    def test_truthfinder(self):
        with pytest.raises(ValueError):
            TruthFinder(initial_trust=1.0)

    def test_invest(self):
        with pytest.raises(ValueError):
            Invest(g=0.0)

    def test_catd(self):
        with pytest.raises(ValueError):
            CATD(alpha=0.0)

    def test_rtd(self):
        with pytest.raises(ValueError):
            RTD(prior_reliability=0.0)
        with pytest.raises(ValueError):
            RTD(prior_strength=0.0)
