"""Tier-1 gate: the whole ``src/repro`` tree stays lint-clean.

This test makes the SSTD lint rules permanent: any PR that introduces a
violation (or deletes the annotations that make the lock-discipline
pass meaningful) fails the suite, exactly like CI's dedicated lint job.
"""

from pathlib import Path

from repro.devtools.lint import all_rules, lint_paths
from repro.devtools.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE = REPO_ROOT / "src" / "repro"


def test_package_tree_exists():
    assert PACKAGE.is_dir(), f"expected package at {PACKAGE}"


def test_full_lint_pass_is_clean():
    findings = lint_paths([PACKAGE])
    formatted = "\n".join(f.format() for f in findings)
    assert findings == [], f"lint findings in src/repro:\n{formatted}"


def test_cli_gate_exits_zero(capsys):
    # Exactly what CI runs: `python -m repro.devtools.lint src/repro`
    # (cache bypassed so a stale entry can never green a dirty tree).
    assert lint_main(["--no-cache", str(PACKAGE)]) == 0
    assert "clean" in capsys.readouterr().out


def test_every_registered_rule_ran():
    # A clean run must not be clean because rules failed to register.
    assert {r.rule_id for r in all_rules()} >= {
        f"SSTD{i:03d}" for i in range(1, 17)
    }
