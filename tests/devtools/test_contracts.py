"""Runtime contracts: validators, toggling, and in-EM failure points."""

import subprocess
import sys

import numpy as np
import pytest

from repro.core.scores import ScoreWeights
from repro.core.types import Attitude, Report
from repro.devtools import contracts as ct
from repro.hmm.discrete import DiscreteHMM
from repro.hmm.gaussian import GaussianHMM


@pytest.fixture(autouse=True)
def contracts_on():
    previous = ct.set_contracts(True)
    yield
    ct.set_contracts(previous)


class TestSwitch:
    def test_disabled_validators_are_noops(self):
        ct.set_contracts(False)
        ct.assert_stochastic_matrix(np.array([[2.0, 3.0]]), "m")
        ct.assert_probability_simplex(np.array([0.2, 0.2]), "v")
        ct.assert_score_range(17.0, "s")
        ct.assert_finite(np.array([np.nan]), "f")

    def test_context_manager_restores(self):
        ct.set_contracts(False)
        with ct.contracts(True):
            assert ct.contracts_enabled()
            with pytest.raises(ct.ContractViolation):
                ct.assert_score_range(2.0, "s")
        assert not ct.contracts_enabled()

    def test_env_var_enables_in_fresh_process(self):
        code = (
            "from repro.devtools import contracts as ct; "
            "print(ct.contracts_enabled())"
        )
        for env_value, expected in (("1", "True"), ("", "False")):
            result = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env={
                    "PYTHONPATH": "src",
                    ct.CONTRACTS_ENV_VAR: env_value,
                    "PATH": "/usr/bin:/bin",
                },
                check=True,
            )
            assert result.stdout.strip() == expected


class TestValidators:
    def test_stochastic_matrix_accepts_valid(self):
        ct.assert_stochastic_matrix(np.array([[0.3, 0.7], [0.5, 0.5]]), "m")

    def test_stochastic_matrix_rejects_bad_row_sum(self):
        with pytest.raises(ct.ContractViolation, match="sum to 1"):
            ct.assert_stochastic_matrix(np.array([[0.9, 0.6], [0.5, 0.5]]), "m")

    def test_stochastic_matrix_rejects_negative(self):
        with pytest.raises(ct.ContractViolation, match="negative"):
            ct.assert_stochastic_matrix(np.array([[-0.2, 1.2], [0.5, 0.5]]), "m")

    def test_stochastic_matrix_accepts_rectangular(self):
        ct.assert_stochastic_matrix(np.full((2, 5), 0.2), "emissionprob")

    def test_stochastic_matrix_rejects_1d(self):
        with pytest.raises(ct.ContractViolation, match="2-D"):
            ct.assert_stochastic_matrix(np.array([1.0]), "m")

    def test_simplex_accepts_posterior_matrix(self):
        ct.assert_probability_simplex(np.full((10, 4), 0.25), "gamma")

    def test_simplex_rejects_nan(self):
        with pytest.raises(ct.ContractViolation, match="non-finite"):
            ct.assert_probability_simplex(np.array([np.nan, 1.0]), "v")

    def test_score_range_bounds(self):
        ct.assert_score_range(1.0, "s")
        ct.assert_score_range(-1.0, "s")
        with pytest.raises(ct.ContractViolation, match="lie in"):
            ct.assert_score_range(1.5, "s")

    def test_finite(self):
        ct.assert_finite(np.zeros(3), "f")
        with pytest.raises(ct.ContractViolation, match="non-finite"):
            ct.assert_finite(np.array([1.0, np.inf]), "f")

    def test_violation_is_assertion_error(self):
        assert issubclass(ct.ContractViolation, AssertionError)


class TestBaumWelchBoundary:
    """Acceptance criterion: corruption fails inside the EM update."""

    def _observations(self):
        rng = np.random.default_rng(0)
        return np.concatenate([rng.normal(-1, 0.3, 40), rng.normal(1, 0.3, 40)])

    def test_corrupted_transmat_raises_inside_fit(self):
        hmm = GaussianHMM(n_states=2)
        observations = self._observations()
        hmm.fit(observations, max_iter=5, rng=1)
        hmm.transmat = np.array([[0.9, 0.6], [0.1, 0.9]])  # row sums 1.5 / 1.0
        with pytest.raises(ct.ContractViolation, match="transmat"):
            hmm.fit(observations, max_iter=5, rng=1, init=False)

    def test_corrupted_transmat_raises_inside_fit_sequences(self):
        hmm = GaussianHMM(n_states=2)
        observations = self._observations()
        hmm.transmat = np.array([[np.nan, 1.0], [0.5, 0.5]])
        with pytest.raises(ct.ContractViolation, match="transmat"):
            hmm.fit_sequences([observations], max_iter=3, rng=1)

    def test_corrupted_startprob_raises(self):
        hmm = DiscreteHMM(n_states=2, n_symbols=3)
        hmm.startprob = np.array([0.9, 0.9])
        with pytest.raises(ct.ContractViolation, match="startprob"):
            hmm.fit(np.array([0, 1, 2, 1, 0, 2]), max_iter=3, rng=0)

    def test_clean_fit_passes_with_contracts_enabled(self):
        hmm = GaussianHMM(n_states=2)
        result = hmm.fit(self._observations(), max_iter=10, rng=1)
        assert result.iterations >= 1
        ct.assert_stochastic_matrix(hmm.transmat, "transmat")


class TestScoreBoundary:
    def _report(self, **overrides):
        fields = dict(
            source_id="s",
            claim_id="c",
            timestamp=0.0,
            attitude=Attitude.AGREE,
            uncertainty=0.0,
            independence=1.0,
        )
        fields.update(overrides)
        return Report(**fields)

    def test_valid_report_scores_fine(self):
        assert ScoreWeights().score(self._report()) == 1.0

    def test_out_of_range_component_raises(self):
        # Bypass Report's own validation via object.__setattr__ to model
        # an upstream component going bad after construction.
        report = self._report()
        object.__setattr__(report, "independence", 3.0)
        with pytest.raises(ct.ContractViolation, match="contribution score"):
            ScoreWeights().score(report)
