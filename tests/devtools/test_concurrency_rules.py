"""SSTD007 (lock-scope escapes) and SSTD008 (blocking under a lock)."""

from pathlib import Path

import repro.workqueue.process as process_module
from repro.devtools.lint import all_rules, lint_source

ESCAPE_RULES = all_rules(["SSTD007"])
BLOCKING_RULES = all_rules(["SSTD008"])


def escape_findings(src: str):
    return lint_source(src, path="case.py", rules=ESCAPE_RULES)


def blocking_findings(src: str):
    return lint_source(src, path="case.py", rules=BLOCKING_RULES)


HELPER_SRC = '''
import threading

class Q:
    def __init__(self):
        self._lock = threading.Lock()
        self._pending = []  # guarded-by: _lock

    def _pick(self):  # holds-lock: _lock
        return self._pending.pop()

    def good(self):
        with self._lock:
            return self._pick()

    def bad(self):
        return self._pick()
'''


class TestGuardedEscape:
    def test_helper_called_without_its_lock_flagged(self):
        findings = escape_findings(HELPER_SRC)
        assert len(findings) == 1
        assert "bad()" in findings[0].message
        assert "holds-lock: _lock" in findings[0].message

    def test_helper_called_with_lock_passes(self):
        assert not any(
            "good()" in f.message for f in escape_findings(HELPER_SRC)
        )

    def test_noqa_suppresses_escape_finding(self):
        suppressed = HELPER_SRC.replace(
            "    def bad(self):\n        return self._pick()",
            "    def bad(self):\n        return self._pick()  # noqa: SSTD007",
        )
        assert escape_findings(suppressed) == []

    def test_container_capture_escape_flagged(self):
        src = '''
import threading

class Q:
    def __init__(self):
        self._lock = threading.Lock()
        self._pending = []  # guarded-by: _lock

    def leak(self):
        with self._lock:
            pending = self._pending
        return len(pending)
'''
        findings = escape_findings(src)
        assert len(findings) == 1
        assert "captured into 'pending'" in findings[0].message

    def test_scalar_snapshot_not_flagged(self):
        src = '''
import threading

class Q:
    def __init__(self):
        self._lock = threading.Lock()
        self._done = 0  # guarded-by: _lock

    def drain(self):
        with self._lock:
            done = self._done
        return done
'''
        assert escape_findings(src) == []


BLOCKING_SRC = '''
import os
import time
import threading
import queue

class Q:
    def __init__(self):
        self._lock = threading.Lock()
        self._inbox = queue.Queue(4)
        self._outbox = queue.Queue()
        self._worker = threading.Thread(target=self._run)

    def sleeps_under_lock(self):
        with self._lock:
            time.sleep(0.1)

    def joins_under_lock(self):
        with self._lock:
            self._worker.join()

    def joins_under_local_alias(self):
        lock = self._lock
        with lock:
            self._worker.join()

    def bounded_put_under_lock(self, item):
        with self._lock:
            self._inbox.put(item)

    def fine(self, item):
        with self._lock:
            self._outbox.put(item)
            self._inbox.put(item, block=False)
            path = os.path.join("a", "b")
        self._worker.join()
        time.sleep(0.1)
        return path

    def _run(self):
        pass
'''


class TestBlockingUnderLock:
    def test_flags_each_blocking_call_under_the_lock(self):
        findings = blocking_findings(BLOCKING_SRC)
        flagged = {f.message.split("(")[0].strip() for f in findings}
        assert flagged == {
            "sleeps_under_lock",
            "joins_under_lock",
            "joins_under_local_alias",
            "bounded_put_under_lock",
        }

    def test_nonblocking_variants_and_module_join_pass(self):
        assert not any(
            "fine()" in f.message for f in blocking_findings(BLOCKING_SRC)
        )

    def test_blocking_helper_summary_propagates(self):
        src = '''
import threading

class Q:
    def __init__(self):
        self._lock = threading.Lock()
        self._worker = threading.Thread(target=self._run)

    def _wait(self):
        self._worker.join()

    def stop(self):
        with self._lock:
            self._wait()

    def _run(self):
        pass
'''
        findings = blocking_findings(src)
        assert len(findings) == 1
        # Routed through the call-graph summaries: the diagnostic names
        # the callee and carries the chain down to the blocking leaf.
        assert "calls Q._wait()" in findings[0].message
        assert "which may block" in findings[0].message
        assert "chain Q._wait" in findings[0].message

    def test_condition_wait_is_exempt(self):
        src = '''
import threading

class Q:
    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)  # lock-alias: _lock

    def wait_for_work(self):
        with self._cond:
            self._cond.wait()
            self._cond.notify_all()
'''
        assert blocking_findings(src) == []

    def test_noqa_suppresses_blocking_finding(self):
        src = BLOCKING_SRC.replace(
            "            time.sleep(0.1)\n\n    def joins_under_lock",
            "            time.sleep(0.1)  # noqa: SSTD008\n\n    def joins_under_lock",
        )
        assert not any(
            "sleeps_under_lock" in f.message for f in blocking_findings(src)
        )


class TestRealProcessWorkqueue:
    def test_process_workqueue_source_is_blocking_clean(self):
        source = Path(process_module.__file__).read_text()
        findings = lint_source(
            source,
            path=process_module.__file__,
            rules=all_rules(["SSTD007", "SSTD008"]),
        )
        assert findings == [], [f.format() for f in findings]

    def test_spawn_is_outside_the_lock_so_pass_is_not_vacuous(self):
        # The supervisor restructure moved process start/terminate/join
        # out of the master critical section; make the shape explicit so
        # a revert reads as a test failure, not a silent regression.
        source = Path(process_module.__file__).read_text()
        assert "workers = list(self._workers)" in source
        assert "# holds-lock" not in source.split("def _spawn_worker")[1].split(
            "def "
        )[0]
