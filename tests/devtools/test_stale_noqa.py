"""SSTD000 stale-suppression audit: noqa comments must earn their keep."""

from repro.devtools.lint import all_rules, lint_source

CLEAN = '__all__ = ["x"]\n\nx = 1{comment}\n'


def rule_ids(src: str, **kwargs):
    return [f.rule_id for f in lint_source(src, path="x.py", **kwargs)]


class TestStaleDetection:
    def test_coded_noqa_that_silences_nothing_is_stale(self):
        findings = lint_source(
            CLEAN.format(comment="  # noqa: SSTD003"), path="x.py"
        )
        assert [f.rule_id for f in findings] == ["SSTD000"]
        assert "SSTD003" in findings[0].message
        assert findings[0].line == 3

    def test_bare_noqa_that_silences_nothing_is_stale(self):
        assert rule_ids(CLEAN.format(comment="  # noqa")) == ["SSTD000"]

    def test_live_suppression_is_not_stale(self):
        src = '__all__ = []\n\ntry:\n    pass\nexcept:  # noqa: SSTD001\n    pass\n'
        assert rule_ids(src) == []

    def test_live_bare_noqa_is_not_stale(self):
        src = '__all__ = []\n\ntry:\n    pass\nexcept:  # noqa\n    pass\n'
        assert rule_ids(src) == []


class TestNonComments:
    def test_noqa_in_docstring_is_ignored(self):
        src = '"""Docs may say # noqa: SSTD001 freely."""\n__all__ = ["x"]\nx = 1\n'
        assert rule_ids(src) == []

    def test_noqa_in_string_literal_is_ignored(self):
        src = '__all__ = ["x"]\nx = "# noqa: SSTD001"\n'
        assert rule_ids(src) == []


class TestScope:
    def test_foreign_codes_are_not_judged(self):
        assert rule_ids(CLEAN.format(comment="  # noqa: F401")) == []

    def test_mixed_codes_judged_by_sstd_part(self):
        # SSTD003 silences nothing here, so the suppression is stale even
        # though the F401 half belongs to another tool.
        assert rule_ids(CLEAN.format(comment="  # noqa: SSTD003,F401")) == [
            "SSTD000"
        ]

    def test_partial_select_run_skips_the_audit(self):
        # A --select run cannot tell stale from not-selected.
        assert (
            rule_ids(
                CLEAN.format(comment="  # noqa: SSTD003"),
                rules=all_rules(["SSTD003"]),
            )
            == []
        )

    def test_stale_finding_is_not_suppressible(self):
        # A suppression cannot vouch for itself.
        assert rule_ids(CLEAN.format(comment="  # noqa: SSTD000")) == [
            "SSTD000"
        ]
