"""Each SSTD rule detects a seeded violation and passes clean code."""

from repro.devtools.lint import lint_source


def rule_ids(src: str, path: str = "x.py", select=None) -> list[str]:
    from repro.devtools.lint import all_rules

    rules = all_rules(select) if select else None
    return [f.rule_id for f in lint_source(src, path=path, rules=rules)]


class TestSSTD001BroadExcept:
    def test_bare_except_flagged(self):
        src = "__all__ = []\ntry:\n    pass\nexcept:\n    pass\n"
        assert "SSTD001" in rule_ids(src)

    def test_silent_broad_except_flagged(self):
        src = (
            "__all__ = []\n"
            "try:\n    pass\nexcept Exception:\n    pass\n"
        )
        assert "SSTD001" in rule_ids(src)

    def test_broad_except_binding_error_passes(self):
        src = (
            "__all__ = []\n"
            "err = None\n"
            "try:\n    pass\nexcept Exception as exc:\n    err = exc\n"
        )
        assert "SSTD001" not in rule_ids(src)

    def test_broad_except_reraising_passes(self):
        src = (
            "__all__ = []\n"
            "try:\n    pass\nexcept Exception:\n    raise\n"
        )
        assert "SSTD001" not in rule_ids(src)

    def test_specific_except_passes(self):
        src = "__all__ = []\ntry:\n    pass\nexcept ValueError:\n    pass\n"
        assert "SSTD001" not in rule_ids(src)


class TestSSTD002MutableDefaults:
    def test_list_default_flagged(self):
        src = "__all__ = []\ndef f(acc=[]):\n    return acc\n"
        assert "SSTD002" in rule_ids(src)

    def test_dict_display_and_call_flagged(self):
        src = "__all__ = []\ndef f(a={}, b=dict()):\n    return a, b\n"
        assert rule_ids(src).count("SSTD002") == 2

    def test_kwonly_default_flagged(self):
        src = "__all__ = []\ndef f(*, acc=set()):\n    return acc\n"
        assert "SSTD002" in rule_ids(src)

    def test_none_default_passes(self):
        src = "__all__ = []\ndef f(acc=None):\n    return acc or []\n"
        assert "SSTD002" not in rule_ids(src)

    def test_immutable_defaults_pass(self):
        src = "__all__ = []\ndef f(a=(), b=1, c='x'):\n    return a, b, c\n"
        assert "SSTD002" not in rule_ids(src)


class TestSSTD004Determinism:
    def test_unseeded_default_rng_flagged(self):
        src = (
            "import numpy as np\n__all__ = []\n"
            "rng = np.random.default_rng()\n"
        )
        assert "SSTD004" in rule_ids(src)

    def test_seeded_default_rng_passes(self):
        src = (
            "import numpy as np\n__all__ = []\n"
            "rng = np.random.default_rng(7)\n"
        )
        assert "SSTD004" not in rule_ids(src)

    def test_global_state_call_flagged(self):
        src = "import numpy as np\n__all__ = []\nx = np.random.rand(3)\n"
        assert "SSTD004" in rule_ids(src)

    def test_np_random_seed_flagged(self):
        src = "import numpy as np\n__all__ = []\nnp.random.seed(0)\n"
        assert "SSTD004" in rule_ids(src)

    def test_stdlib_random_flagged(self):
        src = "import random\n__all__ = []\nx = random.random()\n"
        assert "SSTD004" in rule_ids(src)

    def test_seeded_stdlib_random_instance_passes(self):
        src = "import random\n__all__ = []\nrng = random.Random(3)\n"
        assert "SSTD004" not in rule_ids(src)

    def test_from_import_alias_resolved(self):
        src = (
            "from numpy.random import default_rng\n__all__ = []\n"
            "rng = default_rng()\n"
        )
        assert "SSTD004" in rule_ids(src)

    def test_generator_annotation_is_not_a_call(self):
        src = (
            "import numpy as np\n__all__ = []\n"
            "def f(rng: np.random.Generator) -> None:\n    pass\n"
        )
        assert "SSTD004" not in rule_ids(src)


class TestSSTD005Numerics:
    def test_raw_log_in_probability_module_flagged(self):
        src = "import numpy as np\n__all__ = []\nx = np.log([0.5])\n"
        assert "SSTD005" in rule_ids(src, path="src/repro/hmm/fake.py")

    def test_raw_exp_in_core_flagged(self):
        src = "import numpy as np\n__all__ = []\nx = np.exp([0.5])\n"
        assert "SSTD005" in rule_ids(src, path="src/repro/core/fake.py")

    def test_sanctioned_module_exempt(self):
        src = "import numpy as np\n__all__ = []\nx = np.log([0.5])\n"
        assert "SSTD005" not in rule_ids(src, path="src/repro/hmm/utils.py")

    def test_outside_probability_packages_exempt(self):
        src = "import numpy as np\n__all__ = []\nx = np.exp([0.5])\n"
        assert "SSTD005" not in rule_ids(src, path="src/repro/streams/fake.py")

    def test_math_log_flagged_in_scope(self):
        src = "import math\n__all__ = []\nx = math.log(0.5)\n"
        assert "SSTD005" in rule_ids(src, path="src/repro/core/fake.py")


class TestSSTD006Exports:
    def test_missing_all_flagged(self):
        src = "x = 1\n"
        assert "SSTD006" in rule_ids(src, path="src/repro/core/fake.py")

    def test_declared_all_passes(self):
        src = '__all__ = ["x"]\nx = 1\n'
        assert "SSTD006" not in rule_ids(src, path="src/repro/core/fake.py")

    def test_private_module_exempt(self):
        src = "x = 1\n"
        assert "SSTD006" not in rule_ids(src, path="src/repro/core/_fake.py")

    def test_package_init_must_comply(self):
        src = "x = 1\n"
        assert "SSTD006" in rule_ids(src, path="src/repro/core/__init__.py")
