"""Unit tests for the lint perf gate (benchmarks/check_lint_perf.py).

The gate keeps the warm-cache lint loop interactive as the analysis
grows whole-program layers; its budget arithmetic and the summary
hit-rate floor get pinned here with synthetic documents.
"""

import json

from benchmarks.check_lint_perf import main


def _current(**overrides):
    doc = {
        "schema": 1,
        "files": 108,
        "findings": 0,
        "cold_s": 2.5,
        "warm_s": 0.05,
        "warm_summary_hit_rate": 1.0,
        "warm_findings_hit_rate": 1.0,
    }
    doc.update(overrides)
    return doc


def _baseline(**overrides):
    doc = {
        "schema": 1,
        "warm_budget_s": 1.0,
        "min_warm_summary_hit_rate": 0.9,
    }
    doc.update(overrides)
    return doc


def _run(tmp_path, current, baseline, monkeypatch=None, factor=None):
    current_path = tmp_path / "BENCH_lint.json"
    baseline_path = tmp_path / "baseline.json"
    current_path.write_text(json.dumps(current))
    baseline_path.write_text(json.dumps(baseline))
    if monkeypatch is not None and factor is not None:
        monkeypatch.setenv("REPRO_LINT_PERF_FACTOR", str(factor))
    return main([str(current_path), str(baseline_path)])


class TestWarmBudget:
    def test_within_budget_passes(self, tmp_path):
        assert _run(tmp_path, _current(), _baseline()) == 0

    def test_slow_warm_run_fails(self, tmp_path):
        assert (
            _run(tmp_path, _current(warm_s=2.0), _baseline()) == 1
        )

    def test_factor_scales_the_budget(self, tmp_path, monkeypatch):
        # 1.8s fails at the default 1.5x but passes at 2.0x.
        assert _run(tmp_path, _current(warm_s=1.8), _baseline()) == 1
        assert (
            _run(
                tmp_path,
                _current(warm_s=1.8),
                _baseline(),
                monkeypatch,
                factor=2.0,
            )
            == 0
        )

    def test_exactly_at_ceiling_passes(self, tmp_path):
        assert _run(tmp_path, _current(warm_s=1.5), _baseline()) == 0


class TestHitRateFloor:
    def test_churning_cache_fails_even_when_fast(self, tmp_path):
        assert (
            _run(
                tmp_path,
                _current(warm_summary_hit_rate=0.5),
                _baseline(),
            )
            == 1
        )

    def test_floor_is_optional(self, tmp_path):
        baseline = _baseline()
        del baseline["min_warm_summary_hit_rate"]
        assert (
            _run(
                tmp_path,
                _current(warm_summary_hit_rate=0.0),
                baseline,
            )
            == 0
        )


class TestBadInput:
    def test_missing_current_exits_2(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(_baseline()))
        try:
            code = main(
                [str(tmp_path / "missing.json"), str(baseline_path)]
            )
        except SystemExit as exc:
            code = exc.code
        assert code == 2

    def test_malformed_payload_exits_2(self, tmp_path):
        current = _current()
        del current["warm_s"]
        assert _run(tmp_path, current, _baseline()) == 2
