"""CLI satellites: SARIF output, the noqa budget, changed-only scope."""

import json
from pathlib import Path

from repro.devtools.lint import all_rules
from repro.devtools.lint.cli import main as lint_main, run_lint
from repro.devtools.lint.engine import lint_paths
from repro.devtools.lint.reporters import render_sarif

DIRTY = """\
__all__ = []

def f():
    try:
        pass
    except:
        pass
"""

SUPPRESSED = """\
__all__ = []

def f():
    try:
        pass
    except:  # noqa: SSTD001
        pass
"""


class TestSarif:
    def test_sarif_log_is_valid_and_complete(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(DIRTY)
        report, code = run_lint(
            [target], output_format="sarif", use_cache=False
        )
        assert code == 1
        log = json.loads(report)
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "sstd-lint"
        results = run["results"]
        assert len(results) == 1
        assert results[0]["ruleId"] == "SSTD001"
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1
        # Every result's ruleId resolves against the declared rules.
        declared = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {r["ruleId"] for r in results} <= declared

    def test_sarif_report_written_alongside_text(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(DIRTY)
        sarif_file = tmp_path / "out.sarif"
        assert (
            lint_main(
                [
                    str(target),
                    "--no-cache",
                    "--sarif-report",
                    str(sarif_file),
                ]
            )
            == 1
        )
        log = json.loads(sarif_file.read_text())
        assert log["runs"][0]["results"]

    def test_clean_tree_yields_empty_results(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("__all__ = []\n")
        report, code = run_lint(
            [target], output_format="sarif", use_cache=False
        )
        assert code == 0
        assert json.loads(report)["runs"][0]["results"] == []


class TestNoqaBudget:
    def test_within_budget_passes(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(SUPPRESSED)
        _, code = run_lint([target], use_cache=False, noqa_budget=1)
        assert code == 0

    def test_over_budget_fails_with_count(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(SUPPRESSED)
        report, code = run_lint([target], use_cache=False, noqa_budget=0)
        assert code == 1
        assert "noqa budget exceeded: 1" in report

    def test_docstring_mentions_do_not_count(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            '"""Docs talk about # noqa: SSTD001 freely."""\n\n__all__ = []\n'
        )
        stats: dict = {}
        _, code = run_lint(
            [target], use_cache=False, noqa_budget=0, stats=stats
        )
        assert code == 0
        assert stats["noqa_count"] == 0


class TestChangedOnlyScope:
    def test_dependents_of_changed_files_are_linted(self, tmp_path):
        (tmp_path / "leafmod.py").write_text(
            "__all__ = []\n\n\ndef helper():\n    return 1\n"
        )
        (tmp_path / "midmod.py").write_text(
            "from leafmod import helper\n\n__all__ = []\n\n\n"
            "def wrap():\n    return helper()\n"
        )
        (tmp_path / "island.py").write_text(
            "__all__ = []\n\n\ndef alone():\n    return 0\n"
        )
        stats: dict = {}
        lint_paths(
            [tmp_path],
            changed_only=[tmp_path / "leafmod.py"],
            stats=stats,
        )
        # leafmod itself + its dependent midmod; island stays out.
        assert stats["files_seen"] == 3
        assert stats["files_checked"] == 2

    def test_findings_outside_scope_are_dropped(self, tmp_path):
        (tmp_path / "clean.py").write_text("__all__ = []\n")
        (tmp_path / "dirty.py").write_text(DIRTY)
        findings = lint_paths(
            [tmp_path], changed_only=[tmp_path / "clean.py"]
        )
        assert findings == []
