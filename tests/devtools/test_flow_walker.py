"""Unit tests for the lockset/flow walker behind SSTD003/007/008."""

import ast

from repro.devtools.lint.engine import FileContext
from repro.devtools.lint.flow import (
    AttrInfo,
    analyze_class,
    classify_value,
    is_mutable_container,
)


def flow_of(source: str):
    ctx = FileContext.from_source(source, path="flowcase.py")
    cls = next(
        node for node in ast.walk(ctx.tree) if isinstance(node, ast.ClassDef)
    )
    return analyze_class(ctx, cls)


def value_of(expr: str) -> ast.expr:
    return ast.parse(expr, mode="eval").body


class TestClassifyValue:
    def test_lock_ctor(self):
        assert classify_value(value_of("threading.Lock()")) == AttrInfo("lock")

    def test_bounded_and_unbounded_queue(self):
        assert classify_value(value_of("queue.Queue(8)")).bounded is True
        assert classify_value(value_of("queue.Queue()")).bounded is False
        assert classify_value(value_of("queue.Queue(maxsize=0)")).bounded is False

    def test_daemon_thread(self):
        info = classify_value(value_of("threading.Thread(target=f, daemon=True)"))
        assert info == AttrInfo("thread", daemon=True)

    def test_container_of_threads(self):
        info = classify_value(
            value_of("[threading.Thread(target=f) for _ in range(3)]")
        )
        assert info.kind == "thread" and info.container is True

    def test_mutable_container_predicate(self):
        assert is_mutable_container(value_of("[]"))
        assert is_mutable_container(value_of("collections.deque()"))
        assert not is_mutable_container(value_of("0"))
        assert not is_mutable_container(value_of("(1, 2)"))


MODEL_SRC = '''
import threading
import queue

class Q:
    def __init__(self):
        self._lock = threading.Lock()
        self._pending = []  # guarded-by: _lock
        self._done = 0  # guarded-by: _lock
        self._cond = threading.Condition(self._lock)  # lock-alias: _lock
        self._inbox = queue.Queue(4)
'''


class TestClassAttrModel:
    def test_guards_aliases_types_and_mutability(self):
        model = flow_of(MODEL_SRC).model
        assert model.guards == {"_pending": "_lock", "_done": "_lock"}
        assert model.aliases == {"_cond": "_lock"}
        assert model.attrs["_lock"].kind == "lock"
        assert model.attrs["_inbox"] == AttrInfo("queue", bounded=True)
        assert model.mutable == {"_pending"}

    def test_lock_for_attr_canonicalizes_aliases(self):
        model = flow_of(MODEL_SRC).model
        assert model.lock_for_attr("_lock") == "_lock"
        assert model.lock_for_attr("_cond") == "_lock"
        assert model.lock_for_attr("_pending") is None


WALKER_SRC = '''
import threading

class W:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []  # guarded-by: _lock

    def direct(self):
        with self._lock:
            self._items.append(1)

    def via_local_alias(self):
        lock = self._lock
        with lock:
            self._items.append(2)

    def branch_joined(self, flag):
        if flag:
            self._lock.acquire()
        self._items.append(3)

    def acquire_release(self):
        self._lock.acquire()
        self._items.append(4)
        self._lock.release()
        self._items.append(5)

    def annotated(self):  # holds-lock: _lock
        self._items.append(6)
'''


def accesses_of(flow, method):
    return [
        a for a in flow.methods[method].accesses if a.attr == "_items"
    ]


class TestLocksetPropagation:
    def test_with_block_holds_lock(self):
        flow = flow_of(WALKER_SRC)
        assert all("_lock" in a.held for a in accesses_of(flow, "direct"))

    def test_local_alias_counts_as_the_lock(self):
        flow = flow_of(WALKER_SRC)
        assert all(
            "_lock" in a.held for a in accesses_of(flow, "via_local_alias")
        )

    def test_if_branches_join_by_intersection(self):
        # Only one arm acquires, so after the If the lock is NOT held.
        flow = flow_of(WALKER_SRC)
        assert all(
            "_lock" not in a.held for a in accesses_of(flow, "branch_joined")
        )

    def test_acquire_release_statement_effects(self):
        flow = flow_of(WALKER_SRC)
        held = [("_lock" in a.held) for a in accesses_of(flow, "acquire_release")]
        assert held == [True, False]

    def test_holds_lock_annotation_seeds_entry_lockset(self):
        flow = flow_of(WALKER_SRC)
        assert flow.requires("annotated") == frozenset({"_lock"})
        assert all("_lock" in a.held for a in accesses_of(flow, "annotated"))


ESCAPE_SRC = '''
import threading

class E:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []  # guarded-by: _lock
        self._count = 0  # guarded-by: _lock

    def leaks_container(self):
        with self._lock:
            items = self._items
        for item in items:
            print(item)

    def snapshots_scalar(self):
        with self._lock:
            count = self._count
        return count
'''


class TestEscapeTracking:
    def test_mutable_capture_used_after_release_escapes(self):
        flow = flow_of(ESCAPE_SRC)
        escapes = flow.methods["leaks_container"].escapes
        assert [e.attr for e in escapes] == ["_items"]
        assert escapes[0].via == "items"

    def test_immutable_snapshot_is_sanctioned(self):
        flow = flow_of(ESCAPE_SRC)
        assert flow.methods["snapshots_scalar"].escapes == []


EDGE_SRC = '''
import threading

class F:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()
        self._items = []  # guarded-by: _a

    def try_finally(self):
        self._a.acquire()
        try:
            self._items.append(1)
        finally:
            self._a.release()
        self._items.append(2)

    def nested_two(self):
        with self._a:
            with self._b:
                self._items.append(3)
            self._items.append(4)

    def loop_carried(self, xs):
        for x in xs:
            self._a.acquire()
            self._items.append(5)
            self._a.release()
        self._items.append(6)

    def exception_path(self, flag):
        self._a.acquire()
        if flag:
            raise ValueError("bad")
        self._items.append(7)
        self._a.release()
'''


def edge_accesses(method):
    flow = flow_of(EDGE_SRC)
    return [a for a in flow.methods[method].accesses if a.attr == "_items"]


class TestEdgeCaseLocksets:
    def test_try_finally_release_scopes_the_lock(self):
        held = [("_a" in a.held) for a in edge_accesses("try_finally")]
        assert held == [True, False]
        flow = flow_of(EDGE_SRC)
        assert flow.methods["try_finally"].exit_locks == frozenset()

    def test_nested_with_stacks_and_unstacks_locks(self):
        accesses = edge_accesses("nested_two")
        assert accesses[0].held >= {"_a", "_b"}
        assert "_b" not in accesses[1].held
        assert "_a" in accesses[1].held

    def test_loop_carried_lockset_converges(self):
        # The loop body acquires and releases; the fixpoint must not
        # leak the lock into the loop-exit state (or diverge).
        held = [("_a" in a.held) for a in edge_accesses("loop_carried")]
        assert held == [True, False]
        flow = flow_of(EDGE_SRC)
        assert flow.methods["loop_carried"].exit_locks == frozenset()

    def test_raise_arm_does_not_poison_the_fallthrough(self):
        # `if flag: raise` terminates one arm with the lock held; the
        # fall-through arm still holds it for the guarded access and
        # releases before exit.
        held = [("_a" in a.held) for a in edge_accesses("exception_path")]
        assert held == [True]
        flow = flow_of(EDGE_SRC)
        assert flow.methods["exception_path"].exit_locks == frozenset()
