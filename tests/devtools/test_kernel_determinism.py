"""SSTD013: set/dict-view iteration order must not reach kernel output."""

from repro.devtools.lint import all_rules, lint_source
from repro.devtools.lint.rules.kernel_determinism import TARGET_MODULES

RULES = all_rules(["SSTD013"])


def findings_in(src: str, module: str = "repro.hmm.batch"):
    return lint_source(src, path="kernel.py", rules=RULES, module=module)


ACCUMULATING_LOOP = '''
__all__ = ["total_mass"]


def total_mass(weights):
    claims = set(weights)
    total = 0.0
    for claim in claims:
        total += weights[claim]
    return total
'''

ORDERED_LOOP = '''
__all__ = ["total_mass"]


def total_mass(weights):
    claims = set(weights)
    total = 0.0
    for claim in sorted(claims):
        total += weights[claim]
    return total
'''


class TestAccumulatingLoops:
    def test_float_accumulation_over_set_flagged(self):
        findings = findings_in(ACCUMULATING_LOOP)
        assert len(findings) == 1
        assert findings[0].rule_id == "SSTD013"
        assert "set" in findings[0].message
        assert "sorted" in findings[0].message

    def test_sorted_iteration_is_clean(self):
        assert findings_in(ORDERED_LOOP) == []

    def test_list_iteration_is_clean(self):
        src = ACCUMULATING_LOOP.replace("set(weights)", "list(weights)")
        assert findings_in(src) == []

    def test_loop_without_accumulation_is_clean(self):
        src = '''
__all__ = ["touch"]


def touch(claims: set):
    seen = {}
    for claim in claims:
        seen[claim] = True
    return seen
'''
        assert findings_in(src) == []

    def test_task_ordering_via_append_flagged(self):
        src = '''
__all__ = ["schedule"]


def schedule(ready: set):
    order = []
    for task in ready:
        order.append(task)
    return order
'''
        findings = findings_in(src, module="repro.system.jobs")
        assert len(findings) == 1
        assert "append" in findings[0].message

    def test_dict_view_feeding_yield_flagged(self):
        src = '''
__all__ = ["emit"]


def emit(table):
    for key, value in table.items():
        yield key, value
'''
        findings = findings_in(src)
        assert len(findings) == 1
        assert "dict .items() view" in findings[0].message


class TestDirectConsumers:
    def test_sum_over_set_flagged(self):
        src = '''
__all__ = ["mass"]


def mass(parts: set):
    return sum(parts)
'''
        findings = findings_in(src)
        assert len(findings) == 1
        assert "sum()" in findings[0].message

    def test_list_comprehension_over_set_flagged(self):
        src = '''
__all__ = ["as_rows"]


def as_rows(ids: frozenset):
    return [i * 2 for i in ids]
'''
        findings = findings_in(src, module="repro.hmm.utils")
        assert len(findings) == 1
        assert "comprehension" in findings[0].message

    def test_safe_consumers_are_clean(self):
        src = '''
__all__ = ["stats"]


def stats(parts: set):
    return sorted(parts), min(parts), max(parts), len(parts)
'''
        assert findings_in(src) == []


class TestSanctions:
    def test_noqa_suppresses(self):
        src = ACCUMULATING_LOOP.replace(
            "    for claim in claims:",
            "    for claim in claims:  # noqa: SSTD013",
        )
        assert findings_in(src) == []

    def test_order_independent_comment_sanctions(self):
        src = ACCUMULATING_LOOP.replace(
            "    for claim in claims:",
            "    for claim in claims:  # order-independent",
        )
        assert findings_in(src) == []

    def test_rule_is_scoped_to_kernel_modules(self):
        assert findings_in(ACCUMULATING_LOOP, module="repro.hmm.base") == []
        assert findings_in(ACCUMULATING_LOOP, module="somewhere.else") == []

    def test_target_modules_are_the_kernel_surface(self):
        assert TARGET_MODULES == (
            "repro.hmm.batch",
            "repro.hmm.kernels",
            "repro.hmm.kernels.numba_fast",
            "repro.hmm.kernels.numpy_ref",
            "repro.hmm.utils",
            "repro.system.jobs",
        )
