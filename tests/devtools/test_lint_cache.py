"""Content-hash lint cache: pure speed-up, never a behavior change."""

import json

from repro.devtools.lint.cache import LintCache
from repro.devtools.lint.cli import main as lint_main
from repro.devtools.lint.engine import all_rules

DIRTY = """\
__all__ = []

def f():
    try:
        pass
    except:
        pass
"""

RULE_IDS = tuple(sorted(r.rule_id for r in all_rules()))


class TestLintCacheUnit:
    def test_roundtrip_hit_after_put(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(DIRTY)
        cache = LintCache(tmp_path / "cache")
        assert cache.get(target, RULE_IDS, None) is None
        from repro.devtools.lint.engine import lint_file

        found = lint_file(target)
        cache.put(target, RULE_IDS, None, found)
        assert cache.get(target, RULE_IDS, None) == found
        assert cache.hits == 1 and cache.misses == 1

    def test_content_change_invalidates(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(DIRTY)
        cache = LintCache(tmp_path / "cache")
        cache.put(target, RULE_IDS, None, [])
        target.write_text(DIRTY + "\n# trailing edit\n")
        assert cache.get(target, RULE_IDS, None) is None

    def test_rule_selection_is_part_of_the_key(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(DIRTY)
        cache = LintCache(tmp_path / "cache")
        cache.put(target, RULE_IDS, None, [])
        assert cache.get(target, ("SSTD001",), None) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(DIRTY)
        cache = LintCache(tmp_path / "cache")
        cache.put(target, RULE_IDS, None, [])
        for entry in (tmp_path / "cache").iterdir():
            entry.write_text("{not json")
        assert cache.get(target, RULE_IDS, None) is None


class TestCliCacheBehavior:
    def test_cached_rerun_reports_identical_findings(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(DIRTY)
        cache_dir = tmp_path / "cache"
        args = ["--cache-dir", str(cache_dir), str(target)]
        assert lint_main(args) == 1
        first = capsys.readouterr().out
        assert any(cache_dir.iterdir())
        assert lint_main(args) == 1
        assert capsys.readouterr().out == first

    def test_no_cache_flag_leaves_no_cache_dir(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(DIRTY)
        cache_dir = tmp_path / "cache"
        assert (
            lint_main(
                ["--no-cache", "--cache-dir", str(cache_dir), str(target)]
            )
            == 1
        )
        capsys.readouterr()
        assert not cache_dir.exists()

    def test_json_report_written_alongside_any_format(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(DIRTY)
        report = tmp_path / "lint.json"
        assert (
            lint_main(
                [
                    "--no-cache",
                    "--format",
                    "github",
                    "--json-report",
                    str(report),
                    str(target),
                ]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "::error file=" in out
        payload = json.loads(report.read_text())
        assert payload["total"] == 1
        assert payload["by_rule"] == {"SSTD001": 1}


LEAF = "__all__ = []\n\n\ndef helper():\n    return 1\n"
MID = (
    "from leafmod import helper\n\n__all__ = []\n\n\n"
    "def wrap():\n    return helper()\n"
)
ISLAND = "__all__ = []\n\n\ndef alone():\n    return 0\n"


def _write_tree(tmp_path):
    (tmp_path / "leafmod.py").write_text(LEAF)
    (tmp_path / "midmod.py").write_text(MID)
    (tmp_path / "island.py").write_text(ISLAND)


class TestDependencyInvalidation:
    def _run(self, tmp_path):
        from repro.devtools.lint.engine import lint_paths

        cache = LintCache(tmp_path / "cache")
        stats: dict = {}
        findings = lint_paths(
            [tmp_path / p for p in ("leafmod.py", "midmod.py", "island.py")],
            cache=cache,
            stats=stats,
        )
        return findings, stats

    def test_warm_run_serves_every_file_from_cache(self, tmp_path):
        _write_tree(tmp_path)
        _, cold = self._run(tmp_path)
        assert cold["findings_misses"] == 3
        _, warm = self._run(tmp_path)
        assert warm["findings_hits"] == 3
        assert warm["findings_misses"] == 0
        assert warm["summary_hits"] == 3

    def test_editing_a_dependency_invalidates_its_dependents(self, tmp_path):
        _write_tree(tmp_path)
        self._run(tmp_path)
        (tmp_path / "leafmod.py").write_text(
            "__all__ = []\n\n\ndef helper():\n    return 2\n"
        )
        _, stats = self._run(tmp_path)
        # leafmod changed (content key) AND midmod's dependency digest
        # changed; island is untouched and stays cached.
        assert stats["findings_misses"] == 2
        assert stats["findings_hits"] == 1

    def test_old_format_entry_misses_when_meta_requested(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(DIRTY)
        cache = LintCache(tmp_path / "cache")
        cache.put(target, RULE_IDS, None, [])  # no silenced/noqa metadata
        assert cache.get(target, RULE_IDS, None, with_meta=True) is None
        assert cache.get(target, RULE_IDS, None) == []
