"""SSTD012: global lock-acquisition-order cycles (project rule)."""

from pathlib import Path

from repro.devtools.lint import all_rules, lint_paths

RULES = all_rules(["SSTD012"])


def run_over(tmp_path: Path, files: dict[str, str]):
    for name, src in files.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(src)
    return lint_paths([tmp_path], rules=RULES)


CYCLE_SRC = '''
import threading

__all__ = ["A", "B"]


class A:
    def __init__(self, peer: "B"):
        self._lock = threading.Lock()
        self.peer = peer

    def one(self):
        with self._lock:
            self.peer.grab()

    def tick(self):
        with self._lock:
            pass


class B:
    def __init__(self, mate: "A"):
        self._lock = threading.Lock()
        self.mate = mate

    def grab(self):
        with self._lock:
            pass

    def two(self):
        with self._lock:
            self.mate.tick()
'''

ORDERED_SRC = '''
import threading

__all__ = ["A", "B"]


class A:
    def __init__(self, peer: "B"):
        self._lock = threading.Lock()
        self.peer = peer

    def one(self):
        with self._lock:
            self.peer.grab()

    def also(self):
        with self._lock:
            self.peer.grab()


class B:
    def __init__(self):
        self._lock = threading.Lock()

    def grab(self):
        with self._lock:
            pass
'''


class TestCycleDetection:
    def test_two_lock_cycle_reported_once_with_chains(self, tmp_path):
        findings = run_over(tmp_path, {"tangle.py": CYCLE_SRC})
        assert len(findings) == 1
        message = findings[0].message
        assert findings[0].rule_id == "SSTD012"
        assert "potential deadlock" in message
        assert "A._lock" in message and "B._lock" in message
        # Both edges of the representative cycle carry their call chain.
        assert "A.one" in message and "B.two" in message
        assert "lock-order:" in message  # remediation hint

    def test_cycle_across_two_modules(self, tmp_path):
        files = {
            "alpha.py": '''
import threading

from beta import B

__all__ = ["A"]


class A:
    def __init__(self, peer: B):
        self._lock = threading.Lock()
        self.peer = peer

    def one(self):
        with self._lock:
            self.peer.grab()

    def tick(self):
        with self._lock:
            pass
''',
            "beta.py": '''
import threading

__all__ = ["B"]


class B:
    def __init__(self, mate):
        self._lock = threading.Lock()
        self.mate = mate

    def grab(self):
        with self._lock:
            pass

    def two(self):
        with self._lock:
            self.mate.tick()
''',
        }
        # beta's mate attribute has no annotation, so close the cycle
        # through an annotated parameter instead.
        files["beta.py"] = files["beta.py"].replace(
            "    def __init__(self, mate):",
            "    def __init__(self, mate: \"alpha.A\"):",
        ).replace(
            "import threading",
            "import threading\n\nimport alpha",
        )
        findings = run_over(tmp_path, files)
        assert len(findings) == 1
        message = findings[0].message
        assert "A._lock" in message and "B._lock" in message
        assert "A.one" in message and "B.two" in message

    def test_consistent_order_is_clean(self, tmp_path):
        assert run_over(tmp_path, {"ordered.py": ORDERED_SRC}) == []

    def test_noqa_on_anchor_line_suppresses(self, tmp_path):
        findings = run_over(tmp_path, {"tangle.py": CYCLE_SRC})
        assert len(findings) == 1
        anchor_line = findings[0].line
        lines = CYCLE_SRC.splitlines()
        lines[anchor_line - 1] += "  # noqa: SSTD012"
        silenced = "\n".join(lines)
        assert run_over(tmp_path, {"tangle.py": silenced}) == []


class TestLockOrderDeclarations:
    def test_both_directions_declared_sanctions_audited_cycle(
        self, tmp_path
    ):
        sanctioned = CYCLE_SRC + (
            "\n"
            "# lock-order: A._lock < B._lock\n"
            "# lock-order: B._lock < A._lock\n"
        )
        assert run_over(tmp_path, {"tangle.py": sanctioned}) == []

    def test_declared_order_removes_half_the_cycle(self, tmp_path):
        # Declaring only one direction leaves the reverse edge, which
        # now *contradicts* the declaration.
        declared = CYCLE_SRC + "\n# lock-order: A._lock < B._lock\n"
        findings = run_over(tmp_path, {"tangle.py": declared})
        assert len(findings) == 1
        assert "contradicts" in findings[0].message

    def test_contradiction_without_any_cycle(self, tmp_path):
        declared = ORDERED_SRC + "\n# lock-order: B._lock < A._lock\n"
        findings = run_over(tmp_path, {"ordered.py": declared})
        assert len(findings) == 1
        assert "contradicts" in findings[0].message
        assert "B._lock" in findings[0].message

    def test_matching_declaration_keeps_clean_tree_clean(self, tmp_path):
        declared = ORDERED_SRC + "\n# lock-order: A._lock < B._lock\n"
        assert run_over(tmp_path, {"ordered.py": declared}) == []


SELF_DEADLOCK_SRC = '''
import threading

__all__ = ["S"]


class S:
    def __init__(self):
        self._lock = threading.Lock()

    def outer(self):
        with self._lock:
            self.inner()

    def inner(self):
        with self._lock:
            pass
'''


class TestSelfDeadlock:
    def test_nonreentrant_reacquire_flagged(self, tmp_path):
        findings = run_over(tmp_path, {"selfd.py": SELF_DEADLOCK_SRC})
        assert len(findings) == 1
        assert "non-reentrant" in findings[0].message
        assert "S._lock" in findings[0].message

    def test_rlock_reacquire_is_fine(self, tmp_path):
        rlock = SELF_DEADLOCK_SRC.replace(
            "threading.Lock()", "threading.RLock()"
        )
        assert run_over(tmp_path, {"selfd.py": rlock}) == []
