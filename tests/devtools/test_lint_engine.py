"""Engine mechanics: suppression, module naming, reporters, CLI."""

import json
from pathlib import Path

import pytest

from repro.devtools.lint import RULE_REGISTRY, all_rules, lint_source
from repro.devtools.lint.cli import main as lint_main
from repro.devtools.lint.engine import module_name_for
from repro.devtools.lint.reporters import render_json, render_text

BARE_EXCEPT = """\
__all__ = []

def f():
    try:
        pass
    except:
        pass
"""


class TestRegistry:
    def test_all_six_rules_registered(self):
        expected = {f"SSTD00{i}" for i in range(1, 7)}
        assert expected <= set(RULE_REGISTRY)

    def test_select_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            all_rules(["SSTD999"])

    def test_select_restricts(self):
        rules = all_rules(["SSTD001"])
        assert [r.rule_id for r in rules] == ["SSTD001"]


class TestSuppression:
    def test_finding_reported_without_noqa(self):
        findings = lint_source(BARE_EXCEPT, path="x.py")
        assert [f.rule_id for f in findings] == ["SSTD001"]

    def test_coded_noqa_suppresses(self):
        src = BARE_EXCEPT.replace("except:", "except:  # noqa: SSTD001")
        assert lint_source(src, path="x.py") == []

    def test_bare_noqa_suppresses_everything(self):
        src = BARE_EXCEPT.replace("except:", "except:  # noqa")
        assert lint_source(src, path="x.py") == []

    def test_noqa_for_other_rule_does_not_suppress(self):
        src = BARE_EXCEPT.replace("except:", "except:  # noqa: SSTD002")
        assert [f.rule_id for f in lint_source(src, path="x.py")] == ["SSTD001"]


class TestModuleNames:
    def test_anchored_at_repro(self):
        assert (
            module_name_for(Path("src/repro/hmm/base.py")) == "repro.hmm.base"
        )

    def test_init_maps_to_package(self):
        assert module_name_for(Path("src/repro/hmm/__init__.py")) == "repro.hmm"

    def test_outside_repro_uses_stem(self):
        assert module_name_for(Path("/tmp/whatever/thing.py")) == "thing"


class TestReporters:
    def test_text_clean(self):
        assert "clean" in render_text([], n_files=3)

    def test_text_counts_by_rule(self):
        findings = lint_source(BARE_EXCEPT, path="x.py")
        report = render_text(findings, n_files=1)
        assert "x.py:6:5: SSTD001" in report
        assert "SSTD001=1" in report

    def test_json_payload(self):
        findings = lint_source(BARE_EXCEPT, path="x.py")
        payload = json.loads(render_json(findings, n_files=1))
        assert payload["total"] == 1
        assert payload["by_rule"] == {"SSTD001": 1}
        assert payload["findings"][0]["rule"] == "SSTD001"
        assert payload["findings"][0]["line"] == 6


class TestCli:
    def test_exit_zero_on_clean_file(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text('__all__ = ["x"]\n\nx = 1\n')
        assert lint_main([str(clean)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(BARE_EXCEPT)
        assert lint_main([str(dirty)]) == 1
        assert "SSTD001" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(BARE_EXCEPT)
        assert lint_main(["--format", "json", str(dirty)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] == 1

    def test_missing_path_is_usage_error(self, capsys):
        assert lint_main(["/no/such/path.py"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_bad_select_is_usage_error(self, tmp_path, capsys):
        target = tmp_path / "x.py"
        target.write_text("__all__ = []\n")
        assert lint_main(["--select", "SSTD999", str(target)]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 7):
            assert f"SSTD00{i}" in out

    def test_syntax_error_becomes_finding(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert lint_main([str(bad)]) == 1
        assert "SSTD000" in capsys.readouterr().out
