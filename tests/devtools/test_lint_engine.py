"""Engine mechanics: suppression, module naming, reporters, CLI."""

import json
from pathlib import Path

import pytest

from repro.devtools.lint import RULE_REGISTRY, all_rules, lint_source
from repro.devtools.lint.cli import main as lint_main
from repro.devtools.lint.engine import Finding, module_name_for
from repro.devtools.lint.reporters import (
    render_github,
    render_json,
    render_text,
)

BARE_EXCEPT = """\
__all__ = []

def f():
    try:
        pass
    except:
        pass
"""


class TestRegistry:
    def test_all_ten_rules_registered(self):
        expected = {f"SSTD{i:03d}" for i in range(1, 11)}
        assert expected <= set(RULE_REGISTRY)

    def test_select_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            all_rules(["SSTD999"])

    def test_select_restricts(self):
        rules = all_rules(["SSTD001"])
        assert [r.rule_id for r in rules] == ["SSTD001"]


class TestSuppression:
    def test_finding_reported_without_noqa(self):
        findings = lint_source(BARE_EXCEPT, path="x.py")
        assert [f.rule_id for f in findings] == ["SSTD001"]

    def test_coded_noqa_suppresses(self):
        src = BARE_EXCEPT.replace("except:", "except:  # noqa: SSTD001")
        assert lint_source(src, path="x.py") == []

    def test_bare_noqa_suppresses_everything(self):
        src = BARE_EXCEPT.replace("except:", "except:  # noqa")
        assert lint_source(src, path="x.py") == []

    def test_noqa_for_other_rule_does_not_suppress(self):
        # The SSTD001 finding survives, and the SSTD002 suppression —
        # silencing nothing — is itself reported stale by the audit.
        src = BARE_EXCEPT.replace("except:", "except:  # noqa: SSTD002")
        assert [f.rule_id for f in lint_source(src, path="x.py")] == [
            "SSTD001",
            "SSTD000",
        ]


class TestModuleNames:
    def test_anchored_at_repro(self):
        assert (
            module_name_for(Path("src/repro/hmm/base.py")) == "repro.hmm.base"
        )

    def test_init_maps_to_package(self):
        assert module_name_for(Path("src/repro/hmm/__init__.py")) == "repro.hmm"

    def test_outside_repro_uses_stem(self):
        assert module_name_for(Path("/tmp/whatever/thing.py")) == "thing"


class TestReporters:
    def test_text_clean(self):
        assert "clean" in render_text([], n_files=3)

    def test_text_counts_by_rule(self):
        findings = lint_source(BARE_EXCEPT, path="x.py")
        report = render_text(findings, n_files=1)
        assert "x.py:6:5: SSTD001" in report
        assert "SSTD001=1" in report

    def test_json_payload(self):
        findings = lint_source(BARE_EXCEPT, path="x.py")
        payload = json.loads(render_json(findings, n_files=1))
        assert payload["total"] == 1
        assert payload["by_rule"] == {"SSTD001": 1}
        assert payload["findings"][0]["rule"] == "SSTD001"
        assert payload["findings"][0]["line"] == 6


class TestGithubReporter:
    def test_error_annotation_per_finding(self):
        findings = lint_source(BARE_EXCEPT, path="x.py")
        report = render_github(findings, n_files=1)
        assert "::error file=x.py,line=6,col=5,title=SSTD001 lint::" in report
        assert report.endswith("::notice title=SSTD lint::1 finding(s) in 1 file(s)")

    def test_clean_run_emits_only_the_notice(self):
        report = render_github([], n_files=3)
        assert report == "::notice title=SSTD lint::clean: 0 findings in 3 file(s)"

    def test_workflow_command_characters_are_escaped(self):
        finding = Finding(
            rule_id="SSTD001",
            message="first\nsecond % line",
            path="dir,with:odd.py",
            line=1,
            col=0,
        )
        report = render_github([finding], n_files=1)
        annotation = report.splitlines()[0]
        assert "file=dir%2Cwith%3Aodd.py" in annotation
        assert "first%0Asecond %25 line" in annotation
        assert "\n" not in annotation


class TestCli:
    def test_exit_zero_on_clean_file(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text('__all__ = ["x"]\n\nx = 1\n')
        assert lint_main([str(clean)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(BARE_EXCEPT)
        assert lint_main([str(dirty)]) == 1
        assert "SSTD001" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(BARE_EXCEPT)
        assert lint_main(["--format", "json", str(dirty)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] == 1

    def test_missing_path_is_usage_error(self, capsys):
        assert lint_main(["/no/such/path.py"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_bad_select_is_usage_error(self, tmp_path, capsys):
        target = tmp_path / "x.py"
        target.write_text("__all__ = []\n")
        assert lint_main(["--select", "SSTD999", str(target)]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 7):
            assert f"SSTD00{i}" in out

    def test_syntax_error_becomes_finding(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert lint_main([str(bad)]) == 1
        assert "SSTD000" in capsys.readouterr().out

    def test_no_stale_noqa_flag_disables_the_audit(self, tmp_path, capsys):
        stale = tmp_path / "stale.py"
        stale.write_text('__all__ = ["x"]\nx = 1  # noqa: SSTD003\n')
        assert lint_main(["--no-cache", str(stale)]) == 1
        assert "SSTD000" in capsys.readouterr().out
        assert lint_main(["--no-cache", "--no-stale-noqa", str(stale)]) == 0
        assert "clean" in capsys.readouterr().out
