"""Exception edges of the CFG: analyze_exceptions + escape fixpoint.

Satellite of PR 8: each semantic corner of the exception-flow walker is
pinned — try/except/else/finally, nested handlers, bare re-raise,
raise-in-finally, ``contextlib.suppress``, and a loop ``break``-ing out
of a ``try`` — plus the call graph's cross-function escape summaries
that SSTD015 consumes.
"""

import ast
from pathlib import Path

from repro.devtools.lint.callgraph import build_project
from repro.devtools.lint.flow import (
    analyze_exceptions,
    exception_caught,
)
from repro.devtools.lint.names import ImportMap


def flow_of(src: str):
    tree = ast.parse(src)
    func = next(
        node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return analyze_exceptions(func, ImportMap(tree)), tree


def escaping(src: str) -> set[str]:
    flow, _ = flow_of(src)
    return {site.name for site in flow.raises}


class TestExceptionCaught:
    def test_exact_and_dotted_names(self):
        assert exception_caught("ValueError", frozenset({"ValueError"}))
        assert exception_caught("zmq.ZMQError", frozenset({"ZMQError"}))

    def test_builtin_hierarchy(self):
        assert exception_caught("TimeoutError", frozenset({"OSError"}))
        assert exception_caught("KeyError", frozenset({"LookupError"}))
        assert exception_caught(
            "UnicodeDecodeError", frozenset({"ValueError"})
        )
        assert not exception_caught("ValueError", frozenset({"OSError"}))

    def test_broad_frames(self):
        assert exception_caught("ValueError", frozenset({"Exception"}))
        assert exception_caught("CustomError", frozenset({"Exception"}))
        assert exception_caught("SystemExit", frozenset({"BaseException"}))
        assert not exception_caught("SystemExit", frozenset({"Exception"}))

    def test_unknown_class_star(self):
        # "*" (statically unknown class) only stops at broad handlers.
        assert not exception_caught("*", frozenset({"ValueError"}))
        assert exception_caught("*", frozenset({"Exception"}))
        assert exception_caught("*", frozenset({"*"}))


class TestTryExceptElseFinally:
    def test_handler_stops_matching_raise(self):
        assert (
            escaping(
                """
def f():
    try:
        raise ValueError("x")
    except ValueError:
        pass
"""
            )
            == set()
        )

    def test_unmatched_raise_escapes(self):
        assert escaping(
            """
def f():
    try:
        raise KeyError("x")
    except ValueError:
        pass
"""
        ) == {"KeyError"}

    def test_else_body_not_protected(self):
        # ``else`` runs after the body completed: the handlers no
        # longer apply.
        assert escaping(
            """
def f():
    try:
        pass
    except ValueError:
        pass
    else:
        raise ValueError("late")
"""
        ) == {"ValueError"}

    def test_raise_in_handler_escapes(self):
        assert escaping(
            """
def f():
    try:
        raise ValueError("x")
    except ValueError:
        raise KeyError("mapped")
"""
        ) == {"KeyError"}

    def test_raise_in_finally_escapes_despite_broad_handler(self):
        assert escaping(
            """
def f():
    try:
        pass
    except Exception:
        pass
    finally:
        raise RuntimeError("cleanup failed")
"""
        ) == {"RuntimeError"}


class TestNestedHandlers:
    def test_inner_narrow_outer_broad(self):
        assert (
            escaping(
                """
def f():
    try:
        try:
            raise ValueError("x")
        except KeyError:
            pass
    except Exception:
        pass
"""
            )
            == set()
        )

    def test_neither_frame_matches(self):
        assert escaping(
            """
def f():
    try:
        try:
            raise SystemExit(2)
        except KeyError:
            pass
    except Exception:
        pass
"""
        ) == {"SystemExit"}


class TestReRaise:
    def test_bare_reraise_escapes_caught_class(self):
        assert escaping(
            """
def f():
    try:
        pass
    except KeyError:
        raise
"""
        ) == {"KeyError"}

    def test_bare_reraise_stopped_by_outer_handler(self):
        assert (
            escaping(
                """
def f():
    try:
        try:
            pass
        except KeyError:
            raise
    except LookupError:
        pass
"""
            )
            == set()
        )


class TestSuppressAndLoops:
    def test_contextlib_suppress_is_a_frame(self):
        assert (
            escaping(
                """
import contextlib

def f():
    with contextlib.suppress(ValueError):
        raise ValueError("x")
"""
            )
            == set()
        )

    def test_suppress_other_class_escapes(self):
        assert escaping(
            """
import contextlib

def f():
    with contextlib.suppress(ValueError):
        raise KeyError("x")
"""
        ) == {"KeyError"}

    def test_break_out_of_try_keeps_frames_straight(self):
        # The raise inside the try is caught; the raise after the loop
        # is not inside any frame and escapes.
        assert escaping(
            """
def f(items):
    for item in items:
        try:
            if item:
                break
            raise ValueError("x")
        except ValueError:
            continue
    raise RuntimeError("done")
"""
        ) == {"RuntimeError"}


class TestCaughtAtStamps:
    def test_call_in_try_body_carries_handler_classes(self):
        flow, tree = flow_of(
            """
def f():
    try:
        work()
    except (ValueError, KeyError):
        other()
    finally:
        cleanup()
"""
        )
        calls = {
            node.func.id: flow.caught_at[id(node)]
            for node in ast.walk(tree)
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
        }
        assert set(calls["work"]) == {"ValueError", "KeyError"}
        # Handler and finally bodies unwind past this try's handlers.
        assert calls["other"] == ()
        assert calls["cleanup"] == ()

    def test_nested_def_calls_never_propagate(self):
        flow, tree = flow_of(
            """
def f():
    def inner():
        boom()
    return inner
"""
        )
        call = next(
            node for node in ast.walk(tree) if isinstance(node, ast.Call)
        )
        assert flow.caught_at[id(call)] == ("*",)


FIXTURE_RAISER = '''
__all__ = ["parse", "risky"]


def parse(text):
    if not text:
        raise ValueError("empty")
    return text


def risky():
    raise TimeoutError("deadline")
'''

FIXTURE_CALLERS = '''
from raiser import parse, risky

__all__ = ["guarded", "leaky", "broad"]


def guarded(text):
    try:
        return parse(text)
    except ValueError:
        return None


def leaky(text):
    risky()
    return parse(text)


def broad(text):
    try:
        return parse(text)
    except Exception:
        return None
'''


def project_over(tmp_path: Path, files: dict[str, str]):
    entries = []
    for name, src in files.items():
        target = tmp_path / name
        target.write_text(src)
        entries.append((str(target), src))
    return build_project(entries)


class TestEscapeFixpoint:
    def test_cross_function_escapes_with_chain(self, tmp_path):
        proj = project_over(
            tmp_path,
            {"raiser.py": FIXTURE_RAISER, "callers.py": FIXTURE_CALLERS},
        )
        assert set(proj.escapes["raiser.parse"]) == {"ValueError"}
        leaky = proj.escapes["callers.leaky"]
        assert set(leaky) == {"ValueError", "TimeoutError"}
        assert leaky["ValueError"].chain == (
            "callers.leaky",
            "raiser.parse",
        )
        assert "raiser.py" in leaky["TimeoutError"].path

    def test_caught_context_stops_propagation(self, tmp_path):
        proj = project_over(
            tmp_path,
            {"raiser.py": FIXTURE_RAISER, "callers.py": FIXTURE_CALLERS},
        )
        assert proj.escapes.get("callers.guarded", {}) == {}
        assert proj.escapes.get("callers.broad", {}) == {}

    def test_describe_names_site_and_chain(self, tmp_path):
        proj = project_over(
            tmp_path,
            {"raiser.py": FIXTURE_RAISER, "callers.py": FIXTURE_CALLERS},
        )
        text = proj.escapes["callers.leaky"]["ValueError"].describe()
        assert "ValueError" in text
        assert "raiser.py" in text
        assert "leaky" in text and "parse" in text
