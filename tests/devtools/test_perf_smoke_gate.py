"""Unit tests for the schema-3 perf-smoke gate (benchmarks/check_perf_smoke.py).

The gate is CI's last line against perf regressions, so its own logic —
per-cpu-count leg selection, the hard payload ceiling, the
process-over-thread floor, the runner-shape guard — gets pinned here
with synthetic bench/baseline documents.
"""

import json

import pytest

from benchmarks.check_perf_smoke import _select_leg, main


def _baseline(**leg_overrides):
    leg_one = {
        "backends": {
            "processes": {"4": {"throughput_rps": 1000.0}},
        },
        "dispatch_comparison": {
            "per_claim": {"throughput_rps": 100.0},
            "sharded": {"throughput_rps": 1000.0},
        },
        "payload_bytes_ceiling": 2048,
    }
    leg_one.update(leg_overrides.pop("one", {}))
    legs = {"1": leg_one}
    legs.update(leg_overrides)
    return {"schema": 3, "scale": 0.01, "legs": legs}


def _current(**overrides):
    doc = {
        "schema": 3,
        "scale": 0.01,
        "effective_cpu_count": 1,
        "backends": {"processes": {"4": {"throughput_rps": 950.0}}},
        "dispatch_comparison": {
            "per_claim": {"throughput_rps": 95.0},
            "sharded": {"throughput_rps": 950.0},
        },
        "payload_bytes": {"zero_copy_per_task": 900.0},
        "process_over_thread_speedup_at_max_workers": 1.3,
    }
    doc.update(overrides)
    return doc


def _run(tmp_path, current, baseline):
    current_path = tmp_path / "current.json"
    baseline_path = tmp_path / "baseline.json"
    current_path.write_text(json.dumps(current))
    baseline_path.write_text(json.dumps(baseline))
    return main([str(current_path), str(baseline_path)])


class TestLegSelection:
    def test_exact_match_wins(self):
        legs = {"1": {"a": 1}, "2": {"a": 2}, "4": {"a": 4}}
        assert _select_leg(legs, 2) == ("2", {"a": 2})

    def test_falls_back_to_largest_not_exceeding(self):
        legs = {"1": {"a": 1}, "2": {"a": 2}}
        assert _select_leg(legs, 8) == ("2", {"a": 2})
        assert _select_leg(legs, 3) == ("2", {"a": 2})

    def test_no_leg_small_enough(self):
        assert _select_leg({"4": {}}, 2) is None


class TestGate:
    def test_passes_within_tolerance(self, tmp_path):
        assert _run(tmp_path, _current(), _baseline()) == 0

    def test_throughput_regression_fails(self, tmp_path):
        current = _current(
            backends={"processes": {"4": {"throughput_rps": 400.0}}}
        )
        assert _run(tmp_path, current, _baseline()) == 1

    def test_payload_ceiling_is_hard(self, tmp_path):
        # 2.5x over ceiling but throughput fine: still a failure — the
        # ceiling is not scaled by the regression factor.
        current = _current(payload_bytes={"zero_copy_per_task": 5000.0})
        assert _run(tmp_path, current, _baseline()) == 1

    def test_missing_payload_measurement_fails(self, tmp_path):
        current = _current(payload_bytes={})
        assert _run(tmp_path, current, _baseline()) == 1

    def test_multicore_leg_checks_process_over_thread_floor(self, tmp_path):
        baseline = _baseline(
            **{
                "2": {
                    "payload_bytes_ceiling": 2048,
                    "process_over_thread_floor": 1.0,
                }
            }
        )
        losing = _current(
            effective_cpu_count=2,
            process_over_thread_speedup_at_max_workers=0.8,
        )
        assert _run(tmp_path, losing, baseline) == 1
        winning = _current(
            effective_cpu_count=2,
            process_over_thread_speedup_at_max_workers=1.4,
        )
        assert _run(tmp_path, winning, baseline) == 0

    def test_expect_min_cpus_guards_runner_shape(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_EXPECT_MIN_CPUS", "2")
        current = _current(effective_cpu_count=1)
        assert _run(tmp_path, current, _baseline()) == 2

    def test_scale_mismatch_is_config_error(self, tmp_path):
        assert _run(tmp_path, _current(scale=0.1), _baseline()) == 2

    def test_legacy_schema_without_legs_rejected(self, tmp_path):
        baseline = {"schema": 2, "scale": 0.01, "backends": {}}
        assert _run(tmp_path, _current(), baseline) == 2

    def test_no_eligible_leg_rejected(self, tmp_path):
        baseline = {"schema": 3, "scale": 0.01, "legs": {"4": {}}}
        assert _run(tmp_path, _current(effective_cpu_count=1), baseline) == 2
