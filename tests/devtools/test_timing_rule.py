"""SSTD011: runtime packages read time via the repro.obs Clock protocol."""

from repro.devtools.lint import all_rules, lint_source

RULES = all_rules(["SSTD011"])


def findings(src: str, module: str = "repro.workqueue.local"):
    return lint_source(src, path="case.py", rules=RULES, module=module)


class TestDirectClockRead:
    def test_perf_counter_flagged(self):
        src = """
import time

def elapsed(start):
    return time.perf_counter() - start
"""
        result = findings(src)
        assert len(result) == 1
        assert result[0].rule_id == "SSTD011"
        assert "time.perf_counter()" in result[0].message
        assert "repro.obs" in result[0].message

    def test_monotonic_and_time_flagged(self):
        src = """
import time

def stamp():
    return time.time(), time.monotonic(), time.monotonic_ns()
"""
        assert len(findings(src)) == 3

    def test_from_import_alias_flagged(self):
        src = """
from time import perf_counter as clock

def now():
    return clock()
"""
        assert len(findings(src)) == 1

    def test_sleep_not_flagged(self):
        # time.sleep is blocking, not a clock read; SSTD008's concern.
        src = """
import time

def nap():
    time.sleep(0.1)
"""
        assert findings(src) == []

    def test_clock_protocol_read_accepted(self):
        src = """
from repro.obs import WallClock

def elapsed(start):
    return WallClock().now() - start
"""
        assert findings(src) == []

    def test_ungated_package_exempt(self):
        src = """
import time

def now():
    return time.time()
"""
        assert findings(src, module="repro.benchmarks.runner") == []
        assert findings(src, module="repro.obs.clock") == []

    def test_all_gated_packages(self):
        src = """
import time

def now():
    return time.time()
"""
        for module in (
            "repro.workqueue.process",
            "repro.system.sstd_system",
            "repro.cluster.simulation",
        ):
            assert len(findings(src, module=module)) == 1, module

    def test_noqa_suppresses(self):
        src = """
import time

def now():
    return time.time()  # noqa: SSTD011
"""
        assert findings(src) == []
