"""SSTD003 against the real thread-backed executor and synthetic breaks.

The positive half runs the rule over the actual source of
:mod:`repro.workqueue.local` — the module whose ``# guarded-by:``
annotations the rule polices — and requires a clean pass.  The negative
half seeds unguarded mutations and requires them flagged.
"""

from pathlib import Path

import repro.workqueue.local as local_module
from repro.devtools.lint import all_rules, lint_source

RULES = all_rules(["SSTD003"])

SYNTHETIC = '''
import threading

class Scheduler:
    def __init__(self):
        self._lock = threading.Lock()
        self._queue = []  # guarded-by: _lock
        self._done = 0  # guarded-by: _lock
        self._cond = threading.Condition(self._lock)  # lock-alias: _lock

    def unguarded_mutation(self, item):
        self._queue.append(item)

    def unguarded_read(self):
        return self._done

    def guarded(self, item):
        with self._lock:
            self._queue.append(item)
            self._done += 1

    def guarded_via_alias(self, item):
        with self._cond:
            self._queue.append(item)

    def documented_caller_holds(self):  # holds-lock: _lock
        return len(self._queue)
'''


class TestRealWorkqueueLocal:
    def test_local_workqueue_source_is_lock_clean(self):
        source = Path(local_module.__file__).read_text()
        findings = lint_source(
            source, path=local_module.__file__, rules=RULES
        )
        assert findings == [], [f.format() for f in findings]

    def test_annotations_present_so_pass_is_not_vacuous(self):
        source = Path(local_module.__file__).read_text()
        assert source.count("# guarded-by: _lock") >= 4
        assert "# lock-alias: _lock" in source
        assert "# holds-lock: _lock" in source


class TestSyntheticViolations:
    def findings(self, src: str):
        return lint_source(src, path="repro/workqueue/fake.py", rules=RULES)

    def test_unguarded_mutation_and_read_flagged(self):
        findings = self.findings(SYNTHETIC)
        assert len(findings) == 2
        assert any("unguarded_mutation" in f.message for f in findings)
        assert any("unguarded_read" in f.message for f in findings)

    def test_guarded_alias_and_documented_accesses_pass(self):
        findings = self.findings(SYNTHETIC)
        for method in ("guarded", "guarded_via_alias", "documented_caller_holds"):
            assert not any(f"{method}()" in f.message for f in findings)

    def test_init_is_exempt(self):
        findings = self.findings(SYNTHETIC)
        assert not any("__init__" in f.message for f in findings)

    def test_removing_with_block_trips_rule(self):
        broken = SYNTHETIC.replace(
        "        with self._lock:\n"
        "            self._queue.append(item)\n"
        "            self._done += 1\n",
        "        self._queue.append(item)\n"
        "        self._done += 1\n",
        )
        extra = self.findings(broken)
        assert len(extra) == 4  # 2 original + queue and done in guarded()
