"""SSTD009: process-queue payloads must be statically picklable."""

from pathlib import Path

import repro.system.jobs as jobs_module
from repro.devtools.lint import all_rules, lint_source

RULES = all_rules(["SSTD009"])


def findings(src: str):
    return lint_source(src, path="case.py", rules=RULES)


class TestPayloadSpec:
    def test_lambda_payload_rejected(self):
        src = '''
from repro.workqueue.task import PayloadSpec

spec = PayloadSpec(lambda x: x + 1, (1,))
'''
        result = findings(src)
        assert len(result) == 1
        assert "lambda" in result[0].message
        assert "decode_claim_payload" in result[0].message

    def test_module_level_function_accepted(self):
        src = '''
from repro.workqueue.task import PayloadSpec

def work(x):
    return x + 1

spec = PayloadSpec(work, (1,))
'''
        assert findings(src) == []

    def test_closure_payload_rejected(self):
        src = '''
from repro.workqueue.task import PayloadSpec

def build():
    def inner(x):
        return x
    return PayloadSpec(inner, ())
'''
        result = findings(src)
        assert len(result) == 1
        assert "closure" in result[0].message

    def test_unpicklable_arguments_rejected(self):
        src = '''
import threading
from repro.workqueue.task import PayloadSpec

def work(fn, items, lock):
    pass

spec = PayloadSpec(
    work,
    (lambda: 1, (x for x in range(3)), threading.Lock()),
)
'''
        result = findings(src)
        reasons = [f.message for f in result]
        assert len(result) == 3
        assert any("lambda" in m for m in reasons)
        assert any("generator" in m for m in reasons)
        assert any("Lock" in m for m in reasons)

    def test_noqa_suppresses(self):
        src = '''
from repro.workqueue.task import PayloadSpec

spec = PayloadSpec(lambda x: x, ())  # noqa: SSTD009
'''
        assert findings(src) == []


class TestProcessSubmit:
    def test_lambda_submitted_to_process_queue_rejected(self):
        src = '''
from repro.workqueue.process import ProcessWorkQueue
from repro.workqueue.task import Task

wq = ProcessWorkQueue(n_workers=2)
wq.submit(Task(task_id=1, job_id=1, fn=lambda: 1))
'''
        result = findings(src)
        assert len(result) == 1
        assert "process boundary" in result[0].message

    def test_thread_queue_submit_accepts_closures(self):
        # Only process-bound submits are flagged; the thread backend
        # shares an address space and takes closures by design.
        src = '''
from repro.workqueue.local import LocalWorkQueue
from repro.workqueue.task import Task

wq = LocalWorkQueue(n_workers=2)
wq.submit(Task(task_id=1, job_id=1, fn=lambda: 1))
'''
        assert findings(src) == []


class TestRealJobsModule:
    def test_decode_claim_payload_pattern_is_clean(self):
        # The sanctioned pattern: a module-level decode function wrapped
        # in PayloadSpec by decode_task_spec.
        source = Path(jobs_module.__file__).read_text()
        assert "PayloadSpec(" in source
        assert "decode_claim_payload" in source
        result = lint_source(source, path=jobs_module.__file__, rules=RULES)
        assert result == [], [f.format() for f in result]

    def test_lambda_variant_of_jobs_module_is_flagged(self):
        source = Path(jobs_module.__file__).read_text()
        broken = source.replace(
            "PayloadSpec(\n        decode_claim_payload,",
            "PayloadSpec(\n        lambda *a: None,",
        )
        assert broken != source, "jobs.py no longer matches the fixture edit"
        result = lint_source(broken, path="broken_jobs.py", rules=RULES)
        assert [f.rule_id for f in result] == ["SSTD009"]
