"""Whole-program call graph: resolution, summaries, fixpoints, digests."""

from pathlib import Path

from repro.devtools.lint import all_rules, lint_paths, lint_source
from repro.devtools.lint.cache import LintCache
from repro.devtools.lint.callgraph import build_project

BLOCKING_RULES = all_rules(["SSTD008"])


def project_over(tmp_path: Path, files: dict[str, str], cache=None):
    entries = []
    for name, src in files.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(src)
        entries.append((str(target), src))
    return build_project(entries, cache=cache)


UTIL_SRC = '''
import time

__all__ = ["flush"]


def flush():
    time.sleep(0.01)
'''

CALLER_SRC = '''
import threading

from util import flush

__all__ = ["Holder"]


class Holder:
    def __init__(self):
        self._lock = threading.Lock()

    def tick(self):
        with self._lock:
            flush()
'''


class TestBlockingSummaries:
    def test_leaf_and_transitive_summaries(self, tmp_path):
        proj = project_over(
            tmp_path, {"util.py": UTIL_SRC, "caller.py": CALLER_SRC}
        )
        assert "util.flush" in proj.blocking
        assert "sleep" in proj.blocking["util.flush"].reason
        tick = proj.blocking.get("caller.Holder.tick")
        assert tick is not None
        assert tick.chain[-1] == "util.flush"

    def test_cross_module_finding_with_chain(self, tmp_path):
        (tmp_path / "util.py").write_text(UTIL_SRC)
        (tmp_path / "caller.py").write_text(CALLER_SRC)
        findings = lint_paths([tmp_path], rules=BLOCKING_RULES)
        assert len(findings) == 1
        assert findings[0].rule_id == "SSTD008"
        assert "util.flush" in findings[0].message
        assert "chain" in findings[0].message

    def test_intraprocedural_path_provably_misses_it(self):
        # Regression anchor for the tentpole: linting the caller alone
        # (the pre-PR-6 reach of the analysis) cannot resolve the
        # imported callee, so the blocking-under-lock escape is
        # invisible without the project layer.
        assert (
            lint_source(CALLER_SRC, path="caller.py", rules=BLOCKING_RULES)
            == []
        )


REEXPORT_FILES = {
    "repro/obs/__init__.py": (
        "from repro.obs.metrics import MetricRegistry\n"
        "\n"
        '__all__ = ["MetricRegistry"]\n'
    ),
    "repro/obs/metrics.py": '''
import threading

__all__ = ["MetricRegistry"]


class MetricRegistry:
    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {}  # guarded-by: _lock

    def inc(self, name):
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + 1
''',
    "repro/wq.py": '''
import threading

from repro.obs import MetricRegistry

__all__ = ["Q"]


class Q:
    def __init__(self, metrics: MetricRegistry):
        self._lock = threading.Lock()
        self.metrics = metrics

    def bump(self):
        with self._lock:
            self.metrics.inc("bump")
''',
}


class TestResolution:
    def test_reexport_and_attr_chain_resolution(self, tmp_path):
        proj = project_over(tmp_path, dict(REEXPORT_FILES))
        sites = proj.resolved_calls("repro.wq")
        targets = {t for site in sites for t in site.targets}
        assert "repro.obs.metrics.MetricRegistry.inc" in targets

    def test_lock_edge_across_reexported_class(self, tmp_path):
        proj = project_over(tmp_path, dict(REEXPORT_FILES))
        assert (
            "repro.wq.Q._lock",
            "repro.obs.metrics.MetricRegistry._lock",
        ) in proj.lock_edges

    def test_classmethod_factory_types_the_attribute(self, tmp_path):
        files = {
            "obsmod.py": '''
import time

__all__ = ["Obs"]


class Obs:
    @classmethod
    def from_env(cls):
        return cls()

    def ping(self):
        time.sleep(0.01)
''',
            "usermod.py": '''
from obsmod import Obs

__all__ = ["User"]


class User:
    def __init__(self):
        self.obs = Obs.from_env()

    def go(self):
        self.obs.ping()
''',
        }
        proj = project_over(tmp_path, files)
        targets = {
            t
            for site in proj.resolved_calls("usermod")
            for t in site.targets
        }
        assert "obsmod.Obs.ping" in targets
        assert "usermod.User.go" in proj.blocking


DIGEST_FILES = {
    "leafmod.py": "__all__ = []\n\n\ndef helper():\n    return 1\n",
    "midmod.py": (
        "from leafmod import helper\n\n__all__ = []\n\n\n"
        "def wrap():\n    return helper()\n"
    ),
    "island.py": "__all__ = []\n\n\ndef alone():\n    return 0\n",
}


class TestDepDigests:
    def test_digest_changes_when_dependency_changes(self, tmp_path):
        proj = project_over(tmp_path, dict(DIGEST_FILES))
        before = proj.dep_digest("midmod")
        edited = dict(DIGEST_FILES)
        edited["leafmod.py"] = (
            "__all__ = []\n\n\ndef helper():\n    return 2\n"
        )
        proj2 = project_over(tmp_path, edited)
        assert proj2.dep_digest("midmod") != before

    def test_digest_stable_under_unrelated_edit(self, tmp_path):
        proj = project_over(tmp_path, dict(DIGEST_FILES))
        before = proj.dep_digest("midmod")
        edited = dict(DIGEST_FILES)
        edited["island.py"] = (
            "__all__ = []\n\n\ndef alone():\n    return 99\n"
        )
        proj2 = project_over(tmp_path, edited)
        assert proj2.dep_digest("midmod") == before

    def test_dependents_closure_is_reverse_reachability(self, tmp_path):
        proj = project_over(tmp_path, dict(DIGEST_FILES))
        deps = proj.dependents_of({"leafmod"})
        assert {"leafmod", "midmod"} <= deps
        assert "island" not in deps


class TestSummaryCache:
    def test_second_build_is_served_from_summaries(self, tmp_path):
        cache = LintCache(tmp_path / ".cache")
        files = {"util.py": UTIL_SRC, "caller.py": CALLER_SRC}
        cold = project_over(tmp_path, files, cache=cache)
        assert cache.summary_misses == len(files)
        warm_cache = LintCache(tmp_path / ".cache")
        warm = project_over(tmp_path, files, cache=warm_cache)
        assert warm_cache.summary_hits == len(files)
        assert warm_cache.summary_misses == 0
        # The round-tripped summaries drive identical global analysis.
        assert set(warm.lock_edges) == set(cold.lock_edges)
        assert set(warm.blocking) == set(cold.blocking)
        assert warm.blocking["caller.Holder.tick"].chain == (
            cold.blocking["caller.Holder.tick"].chain
        )
