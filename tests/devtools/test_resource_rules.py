"""SSTD014/015/016: resource lifecycle and exception contracts.

Each seeded positive is a bug class the PR-6 analyzer could not see:
a shared-memory segment leaked on an exception path, an exception
escaping a declared ``# raises:`` contract, and a ``submit`` after
``shutdown``.  The negatives pin the sanctioned idioms — ``finally``
and ``with`` coverage, ownership transfers, ``# owns-resource:``, and
documented-idempotent double release.
"""

import json
from pathlib import Path

from repro.devtools.lint import all_rules, lint_paths
from repro.devtools.lint.cache import LintCache
from repro.devtools.lint.cli import explain_rule, main as lint_main
from repro.devtools.lint.reporters import render_sarif

LEAK_RULES = all_rules(["SSTD014"])
CONTRACT_RULES = all_rules(["SSTD015"])
MISUSE_RULES = all_rules(["SSTD016"])


def run_over(tmp_path: Path, files: dict[str, str], rules, cache=None):
    for name, src in files.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(src)
    return lint_paths([tmp_path], rules=rules, cache=cache)


LEAKY_SEGMENT = '''
import repro.system.shm as shm

__all__ = ["decode"]


def decode(arrays, risky):
    owner = shm.publish_arrays(arrays)
    risky()
    owner.close_and_unlink()
'''

GUARDED_SEGMENT = '''
import repro.system.shm as shm

__all__ = ["decode"]


def decode(arrays, risky):
    owner = shm.publish_arrays(arrays)
    try:
        risky()
    finally:
        owner.close_and_unlink()
'''


class TestLeakOnExceptionPath:
    def test_seeded_positive_segment_leak(self, tmp_path):
        findings = run_over(
            tmp_path, {"leak.py": LEAKY_SEGMENT}, LEAK_RULES
        )
        assert [f.rule_id for f in findings] == ["SSTD014"]
        assert "shared-memory segment" in findings[0].message
        assert "raises" in findings[0].message

    def test_leak_path_carries_steps(self, tmp_path):
        findings = run_over(
            tmp_path, {"leak.py": LEAKY_SEGMENT}, LEAK_RULES
        )
        steps = findings[0].steps
        assert len(steps) == 2
        assert "acquired here" in steps[0][3]
        assert steps[0][1] < steps[1][1]  # acquire before leak site

    def test_finally_covered_is_clean(self, tmp_path):
        assert (
            run_over(tmp_path, {"ok.py": GUARDED_SEGMENT}, LEAK_RULES)
            == []
        )

    def test_with_covered_is_clean(self, tmp_path):
        src = '''
import repro.system.shm as shm

__all__ = ["read"]


def read(handle, key):
    with shm.attach(handle) as seg:
        return seg.array(key).sum()
'''
        assert run_over(tmp_path, {"ok.py": src}, LEAK_RULES) == []

    def test_return_transfers_ownership(self, tmp_path):
        src = '''
import repro.system.shm as shm

__all__ = ["publish"]


def publish(arrays):
    owner = shm.publish_arrays(arrays)
    return owner
'''
        assert run_over(tmp_path, {"ok.py": src}, LEAK_RULES) == []

    def test_return_while_held_is_a_normal_path_leak(self, tmp_path):
        src = '''
import repro.system.shm as shm

__all__ = ["peek"]


def peek(arrays):
    owner = shm.publish_arrays(arrays)
    return None
'''
        findings = run_over(tmp_path, {"leak.py": src}, LEAK_RULES)
        assert [f.rule_id for f in findings] == ["SSTD014"]
        assert "return" in findings[0].message

    def test_discarded_acquire_is_a_leak(self, tmp_path):
        src = '''
import repro.system.shm as shm

__all__ = ["fire"]


def fire(arrays):
    shm.publish_arrays(arrays)
'''
        findings = run_over(tmp_path, {"leak.py": src}, LEAK_RULES)
        assert [f.rule_id for f in findings] == ["SSTD014"]
        assert "discarded" in findings[0].message

    def test_owns_resource_annotation_transfers(self, tmp_path):
        src = '''
import repro.system.shm as shm

__all__ = ["Holder"]


class Holder:
    def __init__(self, arrays):
        self.owner = shm.publish_arrays(arrays)  # owns-resource: released by close()

    def close(self):
        self.owner.close_and_unlink()
'''
        assert run_over(tmp_path, {"holder.py": src}, LEAK_RULES) == []

    def test_unannotated_attribute_store_flagged(self, tmp_path):
        src = '''
import repro.system.shm as shm

__all__ = ["Holder"]


class Holder:
    def __init__(self, arrays):
        self.owner = shm.publish_arrays(arrays)
'''
        findings = run_over(tmp_path, {"holder.py": src}, LEAK_RULES)
        assert [f.rule_id for f in findings] == ["SSTD014"]
        assert "owns-resource" in findings[0].message

    def test_local_helper_shadowing_open_is_not_matched(self, tmp_path):
        src = '''
__all__ = ["open", "use"]


def open(name):
    return name


def use(risky):
    handle = open("x")
    risky()
    return handle
'''
        assert run_over(tmp_path, {"shadow.py": src}, LEAK_RULES) == []


UNDECLARED_ESCAPE = '''
__all__ = ["drain"]


def drain(timeout):  # raises: TimeoutError
    if timeout < 0:
        raise ValueError("timeout must be >= 0")
    raise TimeoutError("deadline")
'''


class TestExceptionContracts:
    def test_seeded_positive_undeclared_escape(self, tmp_path):
        findings = run_over(
            tmp_path, {"api.py": UNDECLARED_ESCAPE}, CONTRACT_RULES
        )
        assert [f.rule_id for f in findings] == ["SSTD015"]
        assert "ValueError" in findings[0].message
        assert "TimeoutError" not in findings[0].message.split("but")[1]

    def test_declared_superset_is_clean(self, tmp_path):
        src = '''
__all__ = ["submit"]


def submit(x):  # raises: ValueError, RuntimeError
    raise ValueError("bad")
'''
        assert run_over(tmp_path, {"api.py": src}, CONTRACT_RULES) == []

    def test_transitive_escape_through_callee(self, tmp_path):
        helper = '''
__all__ = ["check"]


def check(x):
    if x < 0:
        raise KeyError("missing")
'''
        api = '''
from helper import check

__all__ = ["fetch"]


def fetch(x):  # raises: ValueError
    check(x)
    return x
'''
        findings = run_over(
            tmp_path,
            {"helper.py": helper, "api.py": api},
            CONTRACT_RULES,
        )
        assert [f.rule_id for f in findings] == ["SSTD015"]
        assert "KeyError" in findings[0].message
        assert "check" in findings[0].message  # the chain is named

    def test_broad_swallow_in_runtime_package(self, tmp_path):
        src = '''
__all__ = ["quiet"]


def quiet(fn):
    try:
        return fn()
    except Exception as exc:
        return None
'''
        findings = run_over(
            tmp_path,
            {"repro/workqueue/wq.py": src},
            CONTRACT_RULES,
        )
        assert [f.rule_id for f in findings] == ["SSTD015"]
        assert "swallows" in findings[0].message

    def test_deliberate_sanction_allows_swallow(self, tmp_path):
        src = '''
__all__ = ["quiet"]


def quiet(fn):
    try:
        return fn()
    except Exception as exc:  # deliberate: task errors are data
        return None
'''
        assert (
            run_over(
                tmp_path,
                {"repro/workqueue/wq.py": src},
                CONTRACT_RULES,
            )
            == []
        )

    def test_outside_runtime_packages_not_gated(self, tmp_path):
        src = '''
__all__ = ["quiet"]


def quiet(fn):
    try:
        return fn()
    except Exception as exc:
        return None
'''
        assert run_over(tmp_path, {"tool.py": src}, CONTRACT_RULES) == []


SUBMIT_AFTER_SHUTDOWN = '''
from repro.workqueue.process import ProcessWorkQueue

__all__ = ["bad"]


def bad(task):
    q = ProcessWorkQueue(n_workers=2)
    q.shutdown()
    q.submit(task)
'''


class TestUseAfterRelease:
    def test_seeded_positive_submit_after_shutdown(self, tmp_path):
        findings = run_over(
            tmp_path, {"uaf.py": SUBMIT_AFTER_SHUTDOWN}, MISUSE_RULES
        )
        assert [f.rule_id for f in findings] == ["SSTD016"]
        assert "submit" in findings[0].message
        assert "shutdown" in findings[0].message

    def test_attach_handle_read_after_unlink(self, tmp_path):
        src = '''
import repro.system.shm as shm

__all__ = ["bad"]


def bad(arrays):
    owner = shm.publish_arrays(arrays)
    owner.close_and_unlink()
    return shm.attach(owner.handle)
'''
        findings = run_over(tmp_path, {"uaf.py": src}, MISUSE_RULES)
        assert [f.rule_id for f in findings] == ["SSTD016"]
        assert ".handle" in findings[0].message

    def test_array_read_after_close(self, tmp_path):
        src = '''
import repro.system.shm as shm

__all__ = ["bad"]


def bad(handle, key):
    seg = shm.attach(handle)
    seg.close()
    return seg.array(key)
'''
        findings = run_over(tmp_path, {"uaf.py": src}, MISUSE_RULES)
        assert [f.rule_id for f in findings] == ["SSTD016"]
        assert "array" in findings[0].message

    def test_documented_idempotent_double_release_clean(self, tmp_path):
        src = '''
import repro.system.shm as shm

__all__ = ["twice"]


def twice(arrays):
    owner = shm.publish_arrays(arrays)
    owner.close_and_unlink()
    owner.close_and_unlink()
'''
        assert run_over(tmp_path, {"ok.py": src}, MISUSE_RULES) == []

    def test_use_before_release_clean(self, tmp_path):
        src = '''
from repro.workqueue.process import ProcessWorkQueue

__all__ = ["ok"]


def ok(task):
    q = ProcessWorkQueue(n_workers=2)
    try:
        q.submit(task)
        return q.drain()
    finally:
        q.shutdown()
'''
        assert run_over(tmp_path, {"ok.py": src}, MISUSE_RULES) == []


class TestFindingPlumbing:
    def test_sarif_code_flows(self, tmp_path):
        findings = run_over(
            tmp_path, {"leak.py": LEAKY_SEGMENT}, LEAK_RULES
        )
        payload = json.loads(
            render_sarif(findings, n_files=1, rules=LEAK_RULES)
        )
        result = payload["runs"][0]["results"][0]
        locations = result["codeFlows"][0]["threadFlows"][0]["locations"]
        assert len(locations) == 2
        assert "acquired here" in locations[0]["location"]["message"]["text"]

    def test_steps_round_trip_through_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        fixtures = tmp_path / "fixtures"
        fixtures.mkdir()
        cold = run_over(
            fixtures,
            {"leak.py": LEAKY_SEGMENT},
            LEAK_RULES,
            cache=LintCache(cache_dir),
        )
        warm_cache = LintCache(cache_dir)
        warm = lint_paths(
            [fixtures], rules=LEAK_RULES, cache=warm_cache
        )
        assert warm_cache.hits > 0
        assert [f.steps for f in warm] == [f.steps for f in cold]
        assert warm[0].steps  # not dropped by serialization


class TestExplainCli:
    def test_explain_known_rule(self, capsys):
        assert lint_main(["--explain", "SSTD014"]) == 0
        out = capsys.readouterr().out
        assert "SSTD014" in out
        assert "owns-resource" in out  # sanction syntax
        assert "finally" in out  # example

    def test_explain_engine_rule(self, capsys):
        assert lint_main(["--explain", "SSTD000"]) == 0
        assert "stale" in capsys.readouterr().out

    def test_explain_unknown_rule(self, capsys):
        assert lint_main(["--explain", "SSTD999"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_explain_via_repro_cli(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["lint", "--explain", "SSTD015"]) == 0
        assert "raises:" in capsys.readouterr().out

    def test_every_rule_explains(self):
        for rule in all_rules():
            text, code = explain_rule(rule.rule_id)
            assert code == 0
            assert rule.rule_id in text

    def test_disable_complements_selection(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("def f():\n    return []\n")  # no __all__
        assert (
            lint_main(["--no-cache", "--select", "SSTD006", str(target)])
            == 1
        )
        capsys.readouterr()
        assert (
            lint_main(
                [
                    "--no-cache",
                    "--select",
                    "SSTD006",
                    "--disable",
                    "SSTD006",
                    str(target),
                ]
            )
            == 0
        )

    def test_disable_unknown_rule_exits_2(self, capsys):
        assert lint_main(["--disable", "SSTD999", "."]) == 2
        assert "unknown rule id" in capsys.readouterr().err
