"""SSTD010: every thread/process joined, daemonized, or handed off."""

from repro.devtools.lint import all_rules, lint_source

RULES = all_rules(["SSTD010"])


def findings(src: str):
    return lint_source(src, path="case.py", rules=RULES)


class TestLeaks:
    def test_inline_start_flagged(self):
        src = '''
import threading

def go():
    threading.Thread(target=print).start()
'''
        result = findings(src)
        assert len(result) == 1
        assert "started inline" in result[0].message

    def test_started_but_never_joined_flagged(self):
        src = '''
import threading

def go():
    t = threading.Thread(target=print)
    t.start()
'''
        result = findings(src)
        assert len(result) == 1
        assert "'t'" in result[0].message

    def test_process_leak_flagged_too(self):
        src = '''
import multiprocessing

def go():
    p = multiprocessing.Process(target=print)
    p.start()
'''
        result = findings(src)
        assert len(result) == 1
        assert "process" in result[0].message


class TestSanctionedLifecycles:
    def test_joined_thread_passes(self):
        src = '''
import threading

def go():
    t = threading.Thread(target=print)
    t.start()
    t.join()
'''
        assert findings(src) == []

    def test_daemon_ctor_passes(self):
        src = '''
import threading

def go():
    t = threading.Thread(target=print, daemon=True)
    t.start()
'''
        assert findings(src) == []

    def test_daemon_attribute_passes(self):
        src = '''
import threading

def go():
    t = threading.Thread(target=print)
    t.daemon = True
    t.start()
'''
        assert findings(src) == []

    def test_self_attr_joined_elsewhere_passes(self):
        src = '''
import threading

class S:
    def start(self):
        self._supervisor = threading.Thread(target=self._run)
        self._supervisor.start()

    def stop(self):
        self._supervisor.join()

    def _run(self):
        pass
'''
        assert findings(src) == []

    def test_loop_join_covers_iterated_container(self):
        src = '''
import threading

class S:
    def stop(self):
        self._extra = threading.Thread(target=print)
        self._extra.start()
        for t in self._extra_threads:
            t.join()
'''
        # self._extra is never joined: the loop joins _extra_threads,
        # not _extra — still flagged.
        assert len(findings(src)) == 1

    def test_handed_off_to_callee_passes(self):
        src = '''
import threading

def go(pool):
    pool.register(threading.Thread(target=print))
'''
        assert findings(src) == []

    def test_returned_worker_passes(self):
        src = '''
import threading

def make():
    t = threading.Thread(target=print)
    t.start()
    return t
'''
        assert findings(src) == []

    def test_noqa_suppresses(self):
        src = '''
import threading

def go():
    threading.Thread(target=print).start()  # noqa: SSTD010
'''
        assert findings(src) == []
