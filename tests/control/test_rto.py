"""Tests for the real-time optimization allocator (paper §VII extension)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.control import JobDemand, RTOAllocator, WCETModel


def make_allocator(theta2=0.01, max_workers=64, max_tasks=16):
    return RTOAllocator(
        WCETModel(theta2=theta2),
        max_workers=max_workers,
        max_tasks_per_job=max_tasks,
    )


class TestJobDemand:
    def test_validation(self):
        with pytest.raises(ValueError):
            JobDemand("", 1.0, 1.0)
        with pytest.raises(ValueError):
            JobDemand("j", -1.0, 1.0)
        with pytest.raises(ValueError):
            JobDemand("j", 1.0, 0.0)


class TestRequiredShares:
    def test_inverse_of_wcet(self):
        allocator = make_allocator(theta2=0.01)
        jobs = [JobDemand("a", 1000.0, 5.0)]
        shares = allocator.required_shares(jobs, n_workers=4)
        # WCET at exactly this share equals the deadline.
        wcet = allocator.wcet.job_wcet_simplified(1000.0, shares["a"], 4)
        assert wcet == pytest.approx(5.0)

    def test_feasibility_monotone_in_workers(self):
        allocator = make_allocator()
        jobs = [
            JobDemand("a", 5000.0, 2.0),
            JobDemand("b", 5000.0, 2.0),
        ]
        feasible = [
            allocator.feasible_with(jobs, w) for w in range(1, 65)
        ]
        # Once feasible, stays feasible.
        first_true = feasible.index(True)
        assert all(feasible[first_true:])


class TestSolve:
    def test_single_job(self):
        allocator = make_allocator(theta2=0.01)
        solution = allocator.solve([JobDemand("a", 1000.0, 5.0)])
        assert solution.feasible
        assert solution.n_workers >= 2  # 1000*0.01/5 = 2 workers at share 1
        assert solution.task_counts["a"] >= 1

    def test_meets_all_deadlines_when_feasible(self):
        allocator = make_allocator(theta2=0.005)
        jobs = [
            JobDemand("a", 2000.0, 4.0),
            JobDemand("b", 8000.0, 4.0),
            JobDemand("c", 500.0, 1.0),
        ]
        solution = allocator.solve(jobs)
        assert solution.feasible
        total = solution.total_tasks
        for job in jobs:
            share = solution.task_counts[job.job_id] / total
            finish = allocator.wcet.job_wcet_simplified(
                job.data_size, share, solution.n_workers
            )
            assert finish <= job.deadline + 1e-9

    def test_bigger_jobs_get_more_tasks(self):
        allocator = make_allocator(theta2=0.005)
        solution = allocator.solve(
            [JobDemand("small", 1000.0, 4.0), JobDemand("big", 8000.0, 4.0)]
        )
        assert solution.task_counts["big"] > solution.task_counts["small"]

    def test_tighter_deadline_needs_more_workers(self):
        allocator = make_allocator(theta2=0.01)
        loose = allocator.solve([JobDemand("a", 4000.0, 10.0)])
        tight = allocator.solve([JobDemand("a", 4000.0, 1.0)])
        assert tight.n_workers > loose.n_workers

    def test_infeasible_falls_back_gracefully(self):
        allocator = make_allocator(theta2=1.0, max_workers=2)
        solution = allocator.solve([JobDemand("a", 1_000_000.0, 0.001)])
        assert not solution.feasible
        assert solution.n_workers == 2
        assert solution.max_lateness > 0
        assert solution.task_counts["a"] >= 1

    def test_duplicate_ids_rejected(self):
        allocator = make_allocator()
        with pytest.raises(ValueError, match="duplicate"):
            allocator.solve([JobDemand("a", 1.0, 1.0), JobDemand("a", 2.0, 1.0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            make_allocator().solve([])

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=10.0, max_value=50_000.0),
                st.floats(min_value=0.5, max_value=30.0),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_feasible_solutions_verified_property(self, raw_jobs):
        """Whenever the solver claims feasibility, every deadline holds."""
        allocator = make_allocator(theta2=0.001)
        jobs = [
            JobDemand(f"j{k}", data, deadline)
            for k, (data, deadline) in enumerate(raw_jobs)
        ]
        solution = allocator.solve(jobs)
        if not solution.feasible:
            return
        total = solution.total_tasks
        for job in jobs:
            share = solution.task_counts[job.job_id] / total
            finish = allocator.wcet.job_wcet_simplified(
                job.data_size, share, solution.n_workers
            )
            assert finish <= job.deadline + 1e-6


class TestAllocatorValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            RTOAllocator(WCETModel(), max_workers=0)
        with pytest.raises(ValueError):
            RTOAllocator(WCETModel(), max_tasks_per_job=0)
        with pytest.raises(ValueError):
            make_allocator().required_shares([JobDemand("a", 1.0, 1.0)], 0)
