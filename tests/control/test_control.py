"""Tests for the PID controller, WCET model, and control knobs."""

import pytest
from hypothesis import given, strategies as st

from repro.control import (
    GlobalControlKnob,
    KnobConfig,
    LocalControlKnob,
    PAPER_GAINS,
    PIDController,
    PIDGains,
    WCETModel,
)


class TestPIDGains:
    def test_paper_values(self):
        assert (PAPER_GAINS.kp, PAPER_GAINS.ki, PAPER_GAINS.kd) == (1.2, 0.3, 0.2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PIDGains(kp=-1.0)


class TestPIDController:
    def test_proportional_term(self):
        pid = PIDController(PIDGains(kp=2.0, ki=0.0, kd=0.0))
        assert pid.update(3.0) == pytest.approx(6.0)

    def test_integral_accumulates(self):
        pid = PIDController(PIDGains(kp=0.0, ki=1.0, kd=0.0), sample_time=1.0)
        pid.update(1.0)
        assert pid.update(1.0) == pytest.approx(2.0)

    def test_derivative_reacts_to_change(self):
        pid = PIDController(PIDGains(kp=0.0, ki=0.0, kd=1.0), sample_time=1.0)
        pid.update(1.0)  # no derivative on first sample
        assert pid.update(3.0) == pytest.approx(2.0)

    def test_first_sample_has_no_derivative_kick(self):
        pid = PIDController(PIDGains(kp=0.0, ki=0.0, kd=10.0))
        assert pid.update(100.0) == 0.0

    def test_combined_matches_equation_nine(self):
        pid = PIDController(PAPER_GAINS, sample_time=1.0)
        pid.update(2.0)
        # e=4: P=1.2*4, I=0.3*(2+4), D=0.2*(4-2)
        expected = 1.2 * 4 + 0.3 * 6 + 0.2 * 2
        assert pid.update(4.0) == pytest.approx(expected)

    def test_anti_windup_clamps_integral(self):
        pid = PIDController(
            PIDGains(kp=0.0, ki=1.0, kd=0.0), integral_limit=5.0
        )
        for _ in range(100):
            pid.update(10.0)
        assert pid.integral == 5.0

    def test_output_clamp(self):
        pid = PIDController(PIDGains(kp=100.0, ki=0, kd=0), output_limit=7.0)
        assert pid.update(10.0) == 7.0
        assert pid.update(-10.0) == -7.0

    def test_reset(self):
        pid = PIDController()
        pid.update(5.0)
        pid.reset()
        assert pid.integral == 0.0
        assert pid.last_output == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PIDController(sample_time=0.0)
        pid = PIDController()
        with pytest.raises(ValueError):
            pid.update(1.0, dt=0.0)

    @given(
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=0.1, max_value=10),
    )
    def test_pure_proportional_is_linear_property(self, error, kp):
        pid = PIDController(PIDGains(kp=kp, ki=0.0, kd=0.0), integral_limit=0.0)
        assert pid.update(error) == pytest.approx(kp * error)


class TestWCETModel:
    def test_task_execution_time_eq10(self):
        model = WCETModel(init_time=2.0, theta1=0.5)
        assert model.task_execution_time(10.0) == pytest.approx(7.0)

    def test_job_wcet_eq11(self):
        model = WCETModel(init_time=1.0, theta2=0.1)
        # TI*T + D*theta2*total/(WK*T) = 1*2 + 100*0.1*10/(5*2)
        assert model.job_wcet(100.0, 2, 10, 5) == pytest.approx(2 + 10.0)

    def test_simplified_eq12(self):
        model = WCETModel(theta2=0.2)
        assert model.job_wcet_simplified(100.0, 0.5, 4) == pytest.approx(10.0)

    def test_wcet_decreases_with_workers_and_priority(self):
        model = WCETModel(theta2=1.0)
        base = model.job_wcet_simplified(100.0, 0.25, 2)
        assert model.job_wcet_simplified(100.0, 0.5, 2) < base
        assert model.job_wcet_simplified(100.0, 0.25, 4) < base

    def test_inversions_are_consistent(self):
        model = WCETModel(theta2=0.5)
        deadline = 10.0
        priority = model.required_priority(100.0, deadline, n_workers=4)
        # Using that priority meets the deadline exactly
        assert model.job_wcet_simplified(
            100.0, min(priority, 1.0), 4
        ) <= deadline + 1e-9 or priority > 1.0

    def test_required_workers_ceils(self):
        model = WCETModel(theta2=1.0)
        assert model.required_workers(100.0, 7.0, 1.0) == 15

    def test_validation(self):
        model = WCETModel()
        with pytest.raises(ValueError):
            WCETModel(init_time=-1)
        with pytest.raises(ValueError):
            model.task_execution_time(-1.0)
        with pytest.raises(ValueError):
            model.job_wcet(1.0, 0, 1, 1)
        with pytest.raises(ValueError):
            model.job_wcet_simplified(1.0, 0.0, 1)
        with pytest.raises(ValueError):
            model.required_priority(1.0, 0.0, 1)


class TestLocalControlKnob:
    def test_lateness_raises_priority(self):
        knob = LocalControlKnob("j")
        before = knob.priority
        knob.apply(control_signal=-5.0, reference=10.0)
        assert knob.priority > before

    def test_slack_lowers_priority(self):
        knob = LocalControlKnob("j")
        knob.apply(-5.0, reference=10.0)
        high = knob.priority
        knob.apply(+5.0, reference=10.0)
        assert knob.priority < high

    def test_bounds_respected(self):
        config = KnobConfig(min_priority=0.5, max_priority=2.0)
        knob = LocalControlKnob("j", config)
        for _ in range(50):
            knob.apply(-100.0, reference=1.0)
        assert knob.priority == 2.0
        for _ in range(50):
            knob.apply(+100.0, reference=1.0)
        assert knob.priority == 0.5

    def test_reference_validation(self):
        with pytest.raises(ValueError):
            LocalControlKnob("j").apply(1.0, reference=0.0)


class TestGlobalControlKnob:
    def test_grows_under_lateness(self):
        knob = GlobalControlKnob()
        target = knob.target_size(4, {"a": -5.0, "b": -3.0}, reference=10.0)
        assert target > 4

    def test_shrinks_only_after_sustained_comfort(self):
        knob = GlobalControlKnob(shrink_patience=3)
        signals = {"a": 8.0, "b": 9.0}
        assert knob.target_size(4, signals, reference=10.0) == 4
        assert knob.target_size(4, signals, reference=10.0) == 4
        assert knob.target_size(4, signals, reference=10.0) == 3

    def test_lateness_resets_shrink_patience(self):
        knob = GlobalControlKnob(shrink_patience=2)
        comfortable = {"a": 9.0}
        assert knob.target_size(4, comfortable, reference=10.0) == 4
        assert knob.target_size(4, {"a": -5.0}, reference=10.0) > 4
        # Streak restarted: one comfortable sample is not enough again.
        assert knob.target_size(4, comfortable, reference=10.0) == 4

    def test_shrink_patience_validation(self):
        with pytest.raises(ValueError):
            GlobalControlKnob(shrink_patience=0)

    def test_holds_when_mixed(self):
        knob = GlobalControlKnob()
        target = knob.target_size(4, {"a": 1.0, "b": 2.0}, reference=10.0)
        assert target == 4

    def test_never_below_one_on_shrink(self):
        knob = GlobalControlKnob()
        assert knob.target_size(1, {"a": 100.0}, reference=10.0) == 1

    def test_empty_signals_noop(self):
        knob = GlobalControlKnob()
        assert knob.target_size(5, {}) == 5

    def test_validation(self):
        knob = GlobalControlKnob()
        with pytest.raises(ValueError):
            knob.target_size(-1, {"a": 1.0})
        with pytest.raises(ValueError):
            knob.target_size(1, {"a": 1.0}, reference=0.0)
        with pytest.raises(ValueError):
            KnobConfig(theta3=0.0)
        with pytest.raises(ValueError):
            KnobConfig(min_priority=2.0, max_priority=1.0)
