"""Trajectory recording/replay and admission control (repro.control.feedback)."""

import json

import pytest

from repro.control import (
    AdmissionConfig,
    AdmissionController,
    FeedbackConfig,
    IntervalFeedbackLoop,
    PIDController,
    PIDGains,
    load_trajectory,
    replay_trajectory,
)
from repro.obs import Observability


class TestTrajectoryRecording:
    def test_pid_records_one_sample_per_update(self, tmp_path):
        path = tmp_path / "traj.jsonl"
        from repro.control import TrajectoryRecorder

        with TrajectoryRecorder(path) as recorder:
            pid = PIDController(
                gains=PIDGains(kp=1.0, ki=0.5, kd=0.1),
                name="pid:test",
                recorder=recorder,
            )
            outputs = [pid.update(e, dt=1.0) for e in (0.5, -0.2, 0.1)]
            assert recorder.recorded == 3
        samples = load_trajectory(path)
        assert [s.output for s in samples] == outputs
        assert all(s.controller == "pid:test" for s in samples)
        assert samples[0].gains == PIDGains(kp=1.0, ki=0.5, kd=0.1)

    def test_record_after_close_is_noop(self, tmp_path):
        from repro.control import TrajectoryRecorder

        recorder = TrajectoryRecorder(tmp_path / "traj.jsonl")
        pid = PIDController(recorder=recorder)
        pid.update(1.0, dt=1.0)
        recorder.close()
        recorder.close()  # idempotent
        pid.update(2.0, dt=1.0)
        assert recorder.recorded == 1
        assert len(load_trajectory(recorder.path)) == 1

    def test_malformed_line_reports_path_and_line(self, tmp_path):
        path = tmp_path / "traj.jsonl"
        path.write_text('{"controller": "x"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match=r"traj\.jsonl:1"):
            load_trajectory(path)

    def test_full_float_precision_roundtrips(self, tmp_path):
        path = tmp_path / "traj.jsonl"
        from repro.control import TrajectoryRecorder

        with TrajectoryRecorder(path) as recorder:
            pid = PIDController(
                gains=PIDGains(kp=0.1, ki=0.3, kd=0.0), recorder=recorder
            )
            pid.update(1.0 / 3.0, dt=0.1)
        (sample,) = load_trajectory(path)
        assert sample.error == 1.0 / 3.0  # bitwise, not approx


class TestReplay:
    def _record(self, tmp_path, errors):
        path = tmp_path / "traj.jsonl"
        from repro.control import TrajectoryRecorder

        with TrajectoryRecorder(path) as recorder:
            pid = PIDController(
                gains=PIDGains(kp=1.2, ki=0.3, kd=0.2), recorder=recorder
            )
            for error in errors:
                pid.update(error, dt=1.0)
        return load_trajectory(path)

    def test_bit_identical_at_recorded_gains(self, tmp_path):
        samples = self._record(tmp_path, [0.5, -0.25, 0.125, 1.0 / 3.0])
        steps = replay_trajectory(samples)
        assert all(step.matches for step in steps)
        assert all(step.divergence == 0.0 for step in steps)

    def test_diverges_at_modified_gains(self, tmp_path):
        samples = self._record(tmp_path, [0.5, -0.25, 0.125])
        steps = replay_trajectory(samples, gains=PIDGains(kp=2.5, ki=0.3, kd=0.2))
        assert any(not step.matches for step in steps)
        assert max(step.divergence for step in steps) > 0.0

    def test_multiple_controllers_replayed_independently(self, tmp_path):
        path = tmp_path / "traj.jsonl"
        from repro.control import TrajectoryRecorder

        with TrajectoryRecorder(path) as recorder:
            a = PIDController(name="pid:a", recorder=recorder)
            b = PIDController(
                name="pid:b",
                gains=PIDGains(kp=0.5, ki=0.0, kd=0.0),
                recorder=recorder,
            )
            a.update(1.0, dt=1.0)
            b.update(1.0, dt=1.0)
            a.update(-1.0, dt=1.0)
        steps = replay_trajectory(load_trajectory(path))
        assert [s.controller for s in steps] == ["pid:a", "pid:b", "pid:a"]
        assert all(s.matches for s in steps)


def plan(controller, n, **kwargs):
    defaults = dict(n_workers=2, p95_claim_cost=0.1, headroom=0.0)
    defaults.update(kwargs)
    return controller.plan([f"c{i:02d}" for i in range(n)], **defaults)


class TestAdmissionController:
    def test_no_samples_admits_everything(self):
        ctl = AdmissionController(deadline=1.0)
        decision = plan(ctl, 30, p95_claim_cost=0.0)
        assert len(decision.admitted) == 30
        assert decision.deferred == () and decision.shed == ()

    def test_budget_from_capacity(self):
        # 2 lanes x 1s deadline x 0.7 utilization / 0.1 s/claim ~= 14
        # (computed in floats, so mirror the arithmetic exactly).
        expected = int(2 * 1.0 * 0.7 * 1.0 / 0.1)
        ctl = AdmissionController(deadline=1.0)
        decision = plan(ctl, 30)
        assert decision.budget == expected
        assert len(decision.admitted) == expected
        assert len(decision.deferred) == 30 - expected

    def test_negative_headroom_tightens_positive_loosens(self):
        ctl = AdmissionController(deadline=1.0)
        tight = plan(ctl, 30, headroom=-0.5)
        assert tight.scale == 0.5
        loose = plan(ctl, 30, headroom=10.0)
        assert loose.scale == AdmissionConfig().scale_ceiling
        assert tight.budget < loose.budget

    def test_scale_clamped_to_floor(self):
        ctl = AdmissionController(deadline=1.0)
        decision = plan(ctl, 30, headroom=-100.0)
        assert decision.scale == AdmissionConfig().scale_floor

    def test_min_admit_floor(self):
        ctl = AdmissionController(deadline=1.0)
        decision = plan(ctl, 5, p95_claim_cost=1e9)
        assert len(decision.admitted) == 1

    def test_aged_claims_admitted_first(self):
        ctl = AdmissionController(deadline=1.0)
        first = plan(ctl, 30)
        # Everything deferred last time outranks fresh arrivals now.
        second = plan(ctl, 30)
        assert set(second.admitted[: len(first.deferred)]) <= set(
            first.deferred
        )

    def test_force_admit_after_max_defer(self):
        # Budget pinned at min_admit=1 by a huge cost estimate; with 4
        # dirty claims each round: r1 admits a, r2 admits the oldest
        # deferred (b), r3 admits c within budget and force-admits d,
        # whose age reached max_defer.
        config = AdmissionConfig(max_defer=2)
        ctl = AdmissionController(deadline=1.0, config=config)
        claims = ["a", "b", "c", "d"]
        for round_no in range(3):
            decision = ctl.plan(
                claims, n_workers=2, p95_claim_cost=1e9, headroom=0.0
            )
            assert decision.budget == 1
        assert decision.admitted == ("c", "d")
        assert len(decision.admitted) > decision.budget
        assert all(age <= config.max_defer for age in ctl._ages.values())

    def test_shed_mode_drops_stale_overflow_instead_of_forcing(self):
        config = AdmissionConfig(shed_after=2)
        ctl = AdmissionController(deadline=1.0, config=config)
        claims = [f"c{i:02d}" for i in range(4)]
        shed_seen = []
        for _ in range(6):
            decision = ctl.plan(
                claims, n_workers=1, p95_claim_cost=10.0, headroom=0.0
            )
            # Loss mode never admits past the budget.
            assert len(decision.admitted) == decision.budget == 1
            shed_seen.extend(decision.shed)
        assert shed_seen  # stale overflow was dropped, not forced
        assert ctl.shed_total == len(shed_seen)

    def test_shed_claim_age_resets_on_return(self):
        # Budget 1 over three claims: r1 admits a, defers b and c; r2
        # admits b (oldest, id tie-break) and sheds c, whose age would
        # exceed shed_after.  The shed claim's age is forgotten.
        config = AdmissionConfig(shed_after=1)
        ctl = AdmissionController(deadline=1.0, config=config)
        claims = ["a", "b", "c"]
        ctl.plan(claims, n_workers=1, p95_claim_cost=1e9, headroom=0.0)
        decision = ctl.plan(
            claims, n_workers=1, p95_claim_cost=1e9, headroom=0.0
        )
        assert decision.admitted == ("b",)
        assert decision.shed == ("c",)
        assert "c" not in ctl._ages

    def test_counters_and_instant_emitted(self):
        obs = Observability()
        ctl = AdmissionController(deadline=1.0, obs=obs)
        decision = plan(ctl, 30)
        n_admitted = len(decision.admitted)
        snap = obs.metrics.snapshot()
        assert snap.counter("admission.admitted") == float(n_admitted)
        assert snap.counter("admission.deferred") == float(30 - n_admitted)
        instants = [
            e for e in obs.tracer.events() if e.name == "admission.defer"
        ]
        assert len(instants) == 1
        attrs = instants[0].attr_dict()
        assert attrs["n_admitted"] == n_admitted
        assert attrs["n_deferred"] == 30 - n_admitted
        assert attrs["budget"] == decision.budget

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_defer=0)
        with pytest.raises(ValueError):
            AdmissionConfig(shed_after=0)
        with pytest.raises(ValueError):
            AdmissionConfig(utilization_target=1.5)
        with pytest.raises(ValueError):
            AdmissionConfig(scale_floor=2.0, scale_ceiling=1.0)
        with pytest.raises(ValueError):
            AdmissionController(deadline=0.0)


class TestIntervalFeedbackLoop:
    def test_measured_parallelism_caps_the_budget(self):
        loop = IntervalFeedbackLoop(deadline=1.0)
        claims = [f"c{i:02d}" for i in range(30)]
        loop.observe(1.0, claim_costs=[0.1] * 10, busy_time=1.0)
        # Two nominal workers, but busy/exec says one effective lane:
        # the budget must be computed for one, i.e. half the two-lane
        # budget an unmeasured loop would produce.
        decision = loop.plan(claims, n_workers=2)
        two_lane = AdmissionController(deadline=1.0).plan(
            claims, 2, 0.1, loop.headroom
        )
        assert decision.budget * 2 <= two_lane.budget + 1
        assert decision.budget == int(1 * 1.0 * 0.7 * 1.0 / 0.1)

    def test_lanes_smoothed_with_ema(self):
        loop = IntervalFeedbackLoop(deadline=1.0)
        loop.observe(1.0, busy_time=1.0)
        loop.observe(1.0, busy_time=2.0)
        assert loop.effective_lanes == pytest.approx(1.5)

    def test_headroom_tracks_deadline_error(self):
        loop = IntervalFeedbackLoop(deadline=1.0)
        over = loop.observe(2.0)
        assert over < 0
        loop2 = IntervalFeedbackLoop(deadline=1.0)
        under = loop2.observe(0.1)
        assert under > 0

    def test_negative_costs_ignored(self):
        loop = IntervalFeedbackLoop(deadline=1.0)
        loop.observe(0.5, claim_costs=[-1.0, 0.2])
        assert loop.p95_claim_cost() == 0.2

    def test_trajectory_written_and_closed(self, tmp_path):
        path = tmp_path / "loop.jsonl"
        config = FeedbackConfig(trajectory_path=str(path))
        with IntervalFeedbackLoop(deadline=1.0, config=config) as loop:
            loop.observe(0.5)
            loop.observe(1.5)
        samples = load_trajectory(path)
        assert len(samples) == 2
        assert samples[0].error == pytest.approx(0.5)
        assert samples[1].error == pytest.approx(-0.5)
        # Raw JSONL is one compact object per line.
        lines = path.read_text(encoding="utf-8").splitlines()
        assert all(json.loads(line)["controller"] == "pid:interval" for line in lines)
