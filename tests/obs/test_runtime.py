"""Observability facade, REPRO_TRACE resolution, ambient recorder."""

import pytest

from repro.obs import (
    ManualClock,
    Observability,
    env_enabled,
    get_obs,
    set_obs,
    using,
)


@pytest.fixture(autouse=True)
def _restore_ambient():
    """Tests below install recorders; never leak one across tests."""
    previous = get_obs()
    yield
    set_obs(previous)


class TestEnvEnabled:
    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert env_enabled() is False
        assert env_enabled(default=True) is True

    @pytest.mark.parametrize("raw", ["1", "true", "YES", " on "])
    def test_truthy_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TRACE", raw)
        assert env_enabled() is True

    @pytest.mark.parametrize("raw", ["0", "false", "off", "", "nope"])
    def test_falsy_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TRACE", raw)
        assert env_enabled() is False
        # An explicit env value also overrides the default.
        assert env_enabled(default=True) is False


class TestObservability:
    def test_defaults_to_wall_clock(self):
        obs = Observability()
        assert obs.enabled is True
        assert obs.clock.kind == "wall"
        assert obs.tracer.clock is obs.clock

    def test_resolve_explicit_flag_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert Observability.resolve(False).enabled is False
        monkeypatch.delenv("REPRO_TRACE")
        assert Observability.resolve(True).enabled is True

    def test_resolve_none_defers_to_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert Observability.resolve(None).enabled is True
        monkeypatch.delenv("REPRO_TRACE")
        assert Observability.resolve(None).enabled is False

    def test_disabled_recorder_still_usable(self):
        obs = Observability.disabled(clock=ManualClock())
        assert obs.enabled is False
        # Library code may record unguarded against a disabled instance;
        # the tiny ring buffer bounds the cost.
        obs.tracer.instant("anything")
        obs.metrics.inc("anything")
        assert obs.tracer.capacity == 1


class TestAmbientRecorder:
    def test_default_ambient_is_disabled(self):
        assert get_obs().enabled is False

    def test_using_installs_and_restores(self):
        outer = get_obs()
        run = Observability(clock=ManualClock())
        with using(run) as installed:
            assert installed is run
            assert get_obs() is run
        assert get_obs() is outer

    def test_using_nests(self):
        first = Observability(clock=ManualClock())
        second = Observability(clock=ManualClock())
        with using(first):
            with using(second):
                assert get_obs() is second
            assert get_obs() is first

    def test_using_restores_on_exception(self):
        outer = get_obs()
        with pytest.raises(RuntimeError):
            with using(Observability(clock=ManualClock())):
                raise RuntimeError("boom")
        assert get_obs() is outer

    def test_set_obs_returns_previous(self):
        outer = get_obs()
        run = Observability(clock=ManualClock())
        assert set_obs(run) is outer
        assert set_obs(outer) is run
