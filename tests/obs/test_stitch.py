"""Clock-offset handshake math and event rebasing (repro.obs.stitch)."""

import pytest

from repro.obs import ClockSync, rebase_events, stitch_metadata
from repro.obs.spans import SpanEvent


def make_sync(**overrides) -> ClockSync:
    values = dict(
        worker="w0",
        master_sent=10.0,
        worker_reply=107.0,
        master_received=10.4,
    )
    values.update(overrides)
    return ClockSync(**values)


class TestClockSyncMath:
    def test_offset_is_midpoint_and_bounded_by_exchange(self):
        sync = make_sync()
        assert sync.rtt == pytest.approx(0.4)
        assert sync.uncertainty == pytest.approx(0.2)
        # theta is bounded to [w1 - t1, w1 - t0]; the midpoint sits
        # exactly between the bounds.
        low = sync.worker_reply - sync.master_received
        high = sync.worker_reply - sync.master_sent
        assert low <= sync.offset <= high
        assert sync.offset == pytest.approx((low + high) / 2.0)

    def test_rebase_uses_lower_bound_never_earlier_than_truth(self):
        sync = make_sync()
        assert sync.rebase_offset == pytest.approx(
            sync.worker_reply - sync.master_received
        )
        # The worker replied at some master time inside [t0, t1], so
        # rebasing w1 itself must land inside that window — at t1
        # exactly, the latest (causality-safe) choice.
        assert sync.rebase(sync.worker_reply) == pytest.approx(
            sync.master_received
        )

    def test_negative_offset_worker_behind_master(self):
        sync = make_sync(worker_reply=3.0)
        assert sync.offset < 0
        assert sync.rebase(3.0) == pytest.approx(10.4)

    def test_reply_before_send_rejected(self):
        with pytest.raises(ValueError):
            make_sync(master_received=9.0)

    def test_as_dict_is_json_shaped(self):
        data = make_sync(dropped_spans=3).as_dict()
        assert data == {
            "offset": pytest.approx(96.8),
            "rtt": pytest.approx(0.4),
            "uncertainty": pytest.approx(0.2),
            "rebase_offset": pytest.approx(96.6),
            "dropped_spans": 3,
        }


class TestRebaseEvents:
    def test_timestamps_shift_and_tracks_are_rewritten(self):
        sync = make_sync()
        events = [
            SpanEvent(
                name="worker.task",
                kind="span",
                start=107.5,
                end=108.0,
                track="main",
                seq=0,
                attrs=(("task_id", 1),),
            ),
            SpanEvent(
                name="worker.gc",
                kind="instant",
                start=108.2,
                end=108.2,
                track="gc",
                seq=1,
            ),
        ]
        task, gc = rebase_events(events, sync)
        assert task.start == pytest.approx(107.5 - sync.rebase_offset)
        assert task.duration == pytest.approx(0.5)
        assert task.track == "w0"
        assert task.attrs == (("task_id", 1),)
        assert gc.track == "w0/gc"
        assert gc.start == gc.end

    def test_rebased_span_never_precedes_dispatch(self):
        """The acceptance property, in miniature.

        The master dispatched at t0 = 10.0 and the worker started the
        task after replying to the probe; whatever the true offset was,
        the lower-bound rebase keeps the span at or after the dispatch.
        """
        sync = make_sync()
        span = SpanEvent(
            name="worker.task",
            kind="span",
            start=sync.worker_reply + 0.01,
            end=sync.worker_reply + 0.2,
            track="main",
            seq=0,
        )
        (rebased,) = rebase_events([span], sync)
        assert rebased.start >= sync.master_sent

    def test_empty_events_yield_nothing(self):
        assert list(rebase_events([], make_sync())) == []


class TestStitchMetadata:
    def test_sorted_by_worker_name(self):
        syncs = {
            "proc-worker-1": make_sync(worker="proc-worker-1"),
            "proc-worker-0": make_sync(
                worker="proc-worker-0", dropped_spans=2
            ),
        }
        meta = stitch_metadata(syncs)
        assert list(meta) == ["proc-worker-0", "proc-worker-1"]
        assert meta["proc-worker-0"]["dropped_spans"] == 2

    def test_empty_mapping(self):
        assert stitch_metadata({}) == {}
