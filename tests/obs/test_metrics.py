"""MetricRegistry: counters, gauges, histograms, merge, thread safety."""

import pickle
import threading

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    HistogramSnapshot,
    MetricRegistry,
    MetricsSnapshot,
    nearest_rank,
    percentile,
)


class TestCountersAndGauges:
    def test_counter_created_at_zero_and_accumulates(self):
        reg = MetricRegistry()
        assert reg.counter("wq.completed") == 0.0
        reg.inc("wq.completed")
        reg.inc("wq.completed", 2.5)
        assert reg.counter("wq.completed") == 3.5

    def test_gauge_last_write_wins(self):
        reg = MetricRegistry()
        assert reg.gauge("wq.queue_depth") is None
        assert reg.gauge("wq.queue_depth", 7.0) == 7.0
        reg.set_gauge("wq.queue_depth", 3)
        reg.set_gauge("wq.queue_depth", 1)
        assert reg.gauge("wq.queue_depth") == 1.0


class TestHistograms:
    def test_bucket_assignment_and_stats(self):
        reg = MetricRegistry()
        bounds = (1.0, 10.0)
        for value in (0.5, 5.0, 50.0):
            reg.observe("lat", value, bounds=bounds)
        hist = reg.snapshot().histogram("lat")
        assert hist.bounds == bounds
        assert hist.counts == (1, 1, 1)  # one per bucket + overflow
        assert hist.count == 3
        assert hist.total == 55.5
        assert hist.min == 0.5
        assert hist.max == 50.0
        assert hist.mean == pytest.approx(18.5)

    def test_boundary_value_lands_in_lower_bucket(self):
        reg = MetricRegistry()
        reg.observe("lat", 1.0, bounds=(1.0, 10.0))
        assert reg.snapshot().histogram("lat").counts == (1, 0, 0)

    def test_default_buckets_applied_on_first_use(self):
        reg = MetricRegistry()
        reg.observe("lat", 0.2)
        assert reg.snapshot().histogram("lat").bounds == DEFAULT_BUCKETS

    def test_quantile_bucket_resolution(self):
        reg = MetricRegistry()
        for value in (0.5, 0.6, 5.0, 50.0):
            reg.observe("lat", value, bounds=(1.0, 10.0))
        hist = reg.snapshot().histogram("lat")
        assert hist.quantile(50) == 1.0  # upper bound of first bucket
        assert hist.quantile(100) == 50.0  # overflow returns max

    def test_empty_histogram_quantile_is_zero(self):
        hist = HistogramSnapshot(
            bounds=(1.0,), counts=(0, 0), count=0, total=0.0, min=0.0, max=0.0
        )
        assert hist.quantile(50) == 0.0
        assert hist.mean == 0.0


class TestSnapshotAndMerge:
    def test_snapshot_is_picklable_and_detached(self):
        reg = MetricRegistry()
        reg.inc("a")
        reg.observe("h", 0.3)
        snap = reg.snapshot()
        reg.inc("a")  # must not leak into the earlier snapshot
        restored = pickle.loads(pickle.dumps(snap))
        assert restored.counter("a") == 1.0
        assert restored.histogram("h").count == 1

    def test_merge_adds_counters_and_histograms(self):
        worker = MetricRegistry()
        worker.inc("worker.tasks", 3)
        worker.observe("lat", 0.5, bounds=(1.0,))
        worker.set_gauge("depth", 9.0)

        master = MetricRegistry()
        master.inc("worker.tasks", 2)
        master.observe("lat", 2.0, bounds=(1.0,))
        master.merge(worker.snapshot())

        merged = master.snapshot()
        assert merged.counter("worker.tasks") == 5.0
        hist = merged.histogram("lat")
        assert hist.count == 2
        assert hist.counts == (1, 1)
        assert hist.min == 0.5
        assert hist.max == 2.0
        assert merged.gauge("depth") == 9.0  # last write wins

    def test_merge_rejects_mismatched_bounds(self):
        a = MetricRegistry()
        a.observe("lat", 0.5, bounds=(1.0,))
        b = MetricRegistry()
        b.observe("lat", 0.5, bounds=(2.0,))
        with pytest.raises(ValueError, match="different bounds"):
            a.merge(b.snapshot())

    def test_merge_mapping_folds_all(self):
        master = MetricRegistry()
        snaps = {}
        for name in ("w0", "w1", "w2"):
            reg = MetricRegistry()
            reg.inc("worker.tasks")
            snaps[name] = reg.snapshot()
        master.merge_mapping(snaps)
        assert master.counter("worker.tasks") == 3.0

    def test_as_dict_is_json_shaped(self):
        reg = MetricRegistry()
        reg.inc("b")
        reg.inc("a")
        reg.observe("h", 0.2, bounds=(1.0,))
        doc = reg.snapshot().as_dict()
        assert list(doc["counters"]) == ["a", "b"]  # sorted
        assert doc["histograms"]["h"]["counts"] == [1, 0]

    def test_empty_snapshot_accessors(self):
        snap = MetricsSnapshot()
        assert snap.counter("missing") == 0.0
        assert snap.gauge("missing") is None
        assert snap.histogram("missing") is None


class TestPercentile:
    def test_empty_samples_return_zero(self):
        assert percentile([], 50) == 0.0
        assert percentile((), 95) == 0.0

    def test_nearest_rank_returns_actual_samples(self):
        values = [3.0, 1.0, 2.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 3.0

    def test_single_sample(self):
        assert percentile([4.2], 95) == 4.2

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    def test_empty_samples_still_validate_q(self):
        with pytest.raises(ValueError):
            percentile([], 101)


class TestNearestRank:
    """The shared rank helper every percentile consumer agrees on."""

    def test_extremes_pin_to_min_and_max(self):
        assert nearest_rank(10, 0) == 1
        assert nearest_rank(10, 100) == 10

    def test_single_sample_is_every_percentile(self):
        for q in (0, 1, 50, 99, 100):
            assert nearest_rank(1, q) == 1

    def test_median_of_even_count_rounds_up(self):
        # ceil(50 * 4 / 100) = 2: nearest-rank picks a real sample.
        assert nearest_rank(4, 50) == 2
        assert nearest_rank(5, 50) == 3

    def test_rank_never_exceeds_count(self):
        assert nearest_rank(3, 99.9) == 3

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            nearest_rank(0, 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            nearest_rank(3, -0.1)
        with pytest.raises(ValueError):
            nearest_rank(3, 100.1)


class TestThreadSafety:
    def test_concurrent_writers_lose_nothing(self):
        """Stress the one-lock design: N threads hammer all metric kinds.

        Counters and histogram counts are exact under contention; a lost
        update would show up as a total below N * ITERS.
        """
        reg = MetricRegistry()
        n_threads, iters = 8, 500
        barrier = threading.Barrier(n_threads)

        def writer(tid: int) -> None:
            barrier.wait()
            for i in range(iters):
                reg.inc("stress.count")
                reg.set_gauge("stress.gauge", float(tid))
                reg.observe("stress.hist", i % 3, bounds=(0.0, 1.0))
                if i % 100 == 0:
                    reg.snapshot()  # concurrent reads must not corrupt

        threads = [
            threading.Thread(target=writer, args=(tid,))
            for tid in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        snap = reg.snapshot()
        expected = n_threads * iters
        assert snap.counter("stress.count") == float(expected)
        hist = snap.histogram("stress.hist")
        assert hist.count == expected
        assert sum(hist.counts) == expected
        assert snap.gauge("stress.gauge") in {float(t) for t in range(n_threads)}

    def test_concurrent_merge_with_writes(self):
        reg = MetricRegistry()
        worker = MetricRegistry()
        worker.inc("merged", 1)
        worker.observe("lat", 0.5, bounds=(1.0,))
        snap = worker.snapshot()
        rounds = 200

        def merger() -> None:
            for _ in range(rounds):
                reg.merge(snap)

        def incrementer() -> None:
            for _ in range(rounds):
                reg.inc("direct")

        threads = [threading.Thread(target=merger) for _ in range(3)]
        threads.append(threading.Thread(target=incrementer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        final = reg.snapshot()
        assert final.counter("merged") == 3.0 * rounds
        assert final.counter("direct") == float(rounds)
        assert final.histogram("lat").count == 3 * rounds
