"""Exporters: JSONL round-trip and the Chrome trace golden file.

The golden file pins the Chrome trace-event schema byte-for-byte: track
metadata first, ``ph: "X"`` complete events for spans, ``ph: "i"``
instants, integer-microsecond timestamps, sorted keys, and the metrics
snapshot under ``otherData``.  Regenerate it after an intentional schema
change with::

    PYTHONPATH=src:tests python -c \
        "from obs.test_export import write_golden; write_golden()"
"""

import json
from pathlib import Path

from repro.obs import (
    ManualClock,
    MetricRegistry,
    SpanTracer,
    chrome_trace,
    jsonl_lines,
    write_chrome_trace,
    write_jsonl,
)

GOLDEN = Path(__file__).parent / "golden" / "chrome_trace.json"


def _scripted_run() -> tuple[SpanTracer, MetricRegistry]:
    """A small deterministic run on a manual clock (virtual timestamps)."""
    clock = ManualClock()
    tracer = SpanTracer(clock)
    metrics = MetricRegistry()

    tracer.instant("wq.submit", track="master", job_id="job-0")
    clock.advance(0.5)
    tracer.instant(
        "wq.dispatch", track="master", job_id="job-0", task_id="t0", worker="w0"
    )
    tracer.record_span(
        "wq.task", start=0.5, end=2.25, track="w0", job_id="job-0", task_id="t0"
    )
    clock.advance(1.75)
    tracer.instant("wq.requeue", track="master", reason="timeout", task_id="t1")
    tracer.record_span("wq.job", start=0.0, end=2.25, track="job:job-0", n_tasks=2)

    metrics.inc("wq.completed", 2)
    metrics.set_gauge("wq.queue_depth", 0.0)
    metrics.observe("wq.task_seconds", 1.75, bounds=(1.0, 5.0))
    return tracer, metrics


def _build_document() -> dict:
    tracer, metrics = _scripted_run()
    return chrome_trace(
        tracer.events(), metrics=metrics.snapshot(), clock_kind="manual"
    )


def write_golden() -> None:  # pragma: no cover - regeneration helper
    GOLDEN.parent.mkdir(exist_ok=True)
    tracer, metrics = _scripted_run()
    write_chrome_trace(
        tracer.events(), GOLDEN, metrics=metrics.snapshot(), clock_kind="manual"
    )


class TestChromeTrace:
    def test_matches_golden_file(self, tmp_path):
        tracer, metrics = _scripted_run()
        out = write_chrome_trace(
            tracer.events(),
            tmp_path / "trace.json",
            metrics=metrics.snapshot(),
            clock_kind="manual",
        )
        assert out.read_text(encoding="utf-8") == GOLDEN.read_text(
            encoding="utf-8"
        ), "Chrome trace schema drifted; see module docstring to regenerate"

    def test_document_structure(self):
        doc = _build_document()
        events = doc["traceEvents"]
        # Track metadata first, one per track, in sorted track order.
        meta = [e for e in events if e["ph"] == "M"]
        assert [m["args"]["name"] for m in meta] == [
            "job:job-0",
            "master",
            "w0",
        ]
        assert {m["tid"] for m in meta} == {1, 2, 3}

        spans = [e for e in events if e["ph"] == "X"]
        assert [s["name"] for s in spans] == ["wq.task", "wq.job"]
        task = spans[0]
        assert task["ts"] == 500_000  # 0.5 s in integer microseconds
        assert task["dur"] == 1_750_000

        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 3
        assert all(i["s"] == "t" for i in instants)

        other = doc["otherData"]
        assert other["clock"] == "manual"
        assert other["n_events"] == 5
        assert other["metrics"]["counters"]["wq.completed"] == 2.0

    def test_empty_event_list(self):
        doc = chrome_trace([], clock_kind="wall")
        assert doc["traceEvents"] == []
        assert doc["otherData"]["n_events"] == 0
        assert "metrics" not in doc["otherData"]

    def test_events_resorted_by_seq(self):
        tracer, _ = _scripted_run()
        events = list(reversed(tracer.events()))
        doc = chrome_trace(events)
        named = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert [e["name"] for e in named] == [
            "wq.submit",
            "wq.dispatch",
            "wq.task",
            "wq.requeue",
            "wq.job",
        ]


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tracer, _ = _scripted_run()
        path = tmp_path / "events.jsonl"
        assert write_jsonl(tracer.events(), path) == 5
        rows = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        assert [r["name"] for r in rows] == [
            "wq.submit",
            "wq.dispatch",
            "wq.task",
            "wq.requeue",
            "wq.job",
        ]
        assert rows[2]["start"] == 0.5
        assert rows[2]["end"] == 2.25
        assert rows[2]["attrs"] == {"job_id": "job-0", "task_id": "t0"}

    def test_lines_are_compact_and_sorted(self):
        tracer, _ = _scripted_run()
        line = next(iter(jsonl_lines(tracer.events())))
        assert ": " not in line  # compact separators
        keys = list(json.loads(line))
        assert keys == sorted(keys)
