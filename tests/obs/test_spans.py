"""SpanTracer: spans, instants, ring-buffer eviction, clock wiring."""

import threading

import pytest

from repro.obs import ManualClock, SpanTracer, VirtualClock, WallClock


class TestRecording:
    def test_record_span_with_explicit_times(self):
        tracer = SpanTracer(ManualClock())
        tracer.record_span("wq.task", start=1.0, end=3.5, track="w0", job_id="j1")
        (event,) = tracer.events()
        assert event.name == "wq.task"
        assert event.kind == "span"
        assert event.duration == 2.5
        assert event.track == "w0"
        assert event.attr_dict() == {"job_id": "j1"}

    def test_span_rejects_negative_duration(self):
        tracer = SpanTracer(ManualClock())
        with pytest.raises(ValueError, match="ends"):
            tracer.record_span("bad", start=2.0, end=1.0)

    def test_instant_stamps_clock_now(self):
        clock = ManualClock(start=10.0)
        tracer = SpanTracer(clock)
        tracer.instant("worker.death", track="master", worker="w3")
        clock.advance(5.0)
        tracer.instant("worker.death", track="master", worker="w4")
        first, second = tracer.events()
        assert (first.start, first.end) == (10.0, 10.0)
        assert second.start == 15.0
        assert first.kind == "instant"

    def test_span_context_manager_brackets_block(self):
        clock = ManualClock()
        tracer = SpanTracer(clock)
        with tracer.span("phase", track="system", n=3):
            clock.advance(2.0)
        (event,) = tracer.events()
        assert (event.start, event.end) == (0.0, 2.0)
        assert event.attr_dict() == {"n": 3}

    def test_span_context_manager_records_on_exception(self):
        clock = ManualClock()
        tracer = SpanTracer(clock)
        with pytest.raises(RuntimeError):
            with tracer.span("phase"):
                clock.advance(1.0)
                raise RuntimeError("boom")
        (event,) = tracer.events()
        assert event.duration == 1.0

    def test_seq_is_a_total_order(self):
        tracer = SpanTracer(ManualClock())
        for _ in range(5):
            tracer.instant("tick")
        assert [e.seq for e in tracer.events()] == [0, 1, 2, 3, 4]

    def test_attrs_sorted_and_as_dict_stable(self):
        tracer = SpanTracer(ManualClock())
        tracer.instant("e", b=2, a=1)
        (event,) = tracer.events()
        assert event.attrs == (("a", 1), ("b", 2))
        assert event.as_dict()["attrs"] == {"a": 1, "b": 2}


class TestRingBuffer:
    def test_capacity_evicts_oldest_and_counts_drops(self):
        tracer = SpanTracer(ManualClock(), capacity=3)
        for i in range(5):
            tracer.instant(f"e{i}")
        events = tracer.events()
        assert [e.name for e in events] == ["e2", "e3", "e4"]
        assert tracer.dropped == 2
        assert tracer.recorded == 5

    def test_clear_keeps_sequence_counting(self):
        tracer = SpanTracer(ManualClock(), capacity=2)
        tracer.instant("a")
        tracer.instant("b")
        tracer.instant("c")  # evicts "a"
        tracer.clear()
        assert tracer.events() == []
        assert tracer.dropped == 0
        tracer.instant("d")
        assert tracer.events()[0].seq == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanTracer(ManualClock(), capacity=0)

    def test_thread_safe_recording(self):
        tracer = SpanTracer(WallClock(), capacity=10_000)
        n_threads, iters = 6, 300

        def recorder(tid: int) -> None:
            for i in range(iters):
                tracer.instant("tick", track=f"t{tid}", i=i)

        threads = [
            threading.Thread(target=recorder, args=(tid,))
            for tid in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        events = tracer.events()
        assert len(events) == n_threads * iters
        assert sorted(e.seq for e in events) == list(range(n_threads * iters))


class TestClocks:
    def test_manual_clock_only_moves_forward(self):
        clock = ManualClock(start=1.0)
        assert clock.advance(0.5) == 1.5
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_virtual_clock_reads_duck_typed_source(self):
        class Sim:
            now = 42.0

        clock = VirtualClock(Sim())
        assert clock.kind == "virtual"
        assert clock.now() == 42.0

    def test_virtual_clock_rejects_sources_without_now(self):
        with pytest.raises(TypeError, match="now"):
            VirtualClock(object())

    def test_wall_clock_is_monotonic(self):
        clock = WallClock()
        assert clock.kind == "wall"
        assert clock.now() <= clock.now()
