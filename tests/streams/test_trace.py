"""Tests for the Trace container: stats, subsets, serialization, replay."""

import numpy as np
import pytest

from repro.core.types import (
    Attitude,
    Claim,
    Report,
    Source,
    TruthLabel,
    TruthTimeline,
    TruthValue,
)
from repro.streams import (
    StreamReplayer,
    Trace,
    generate_trace,
    merge_traces,
    paris_shooting,
)


def tiny_trace(name="t", claim="c1", n=20):
    reports = [
        Report(
            f"s{i}", claim, float(i),
            attitude=Attitude.AGREE if i % 2 else Attitude.DISAGREE,
            uncertainty=0.1, independence=0.9,
            text=f"report {i}", is_retweet=bool(i % 5 == 0 and i),
        )
        for i in range(n)
    ]
    return Trace(
        name=name,
        reports=reports,
        sources={f"s{i}": Source(f"s{i}", reliability=0.7) for i in range(n)},
        claims={claim: Claim(claim, text="something happened")},
        timelines={
            claim: TruthTimeline(
                claim,
                [
                    TruthLabel(claim, 0.0, 10.0, TruthValue.FALSE),
                    TruthLabel(claim, 10.0, 20.0, TruthValue.TRUE),
                ],
            )
        },
    )


class TestTrace:
    def test_reports_sorted_on_construction(self):
        reports = [
            Report("a", "c", 5.0, attitude=Attitude.AGREE),
            Report("b", "c", 1.0, attitude=Attitude.AGREE),
        ]
        trace = Trace(name="x", reports=reports)
        assert [r.timestamp for r in trace.reports] == [1.0, 5.0]

    def test_span(self):
        trace = tiny_trace()
        assert trace.start == 0.0 and trace.end == 19.0

    def test_empty_span(self):
        trace = Trace(name="empty", reports=[])
        assert trace.start == 0.0 and trace.end == 0.0

    def test_subset_prefix(self):
        trace = tiny_trace()
        sub = trace.subset(5)
        assert len(sub.reports) == 5
        assert sub.reports == trace.reports[:5]
        assert sub.timelines is trace.timelines

    def test_subset_validation(self):
        with pytest.raises(ValueError):
            tiny_trace().subset(-1)

    def test_reports_between(self):
        trace = tiny_trace()
        window = trace.reports_between(5.0, 10.0)
        assert [r.timestamp for r in window] == [5.0, 6.0, 7.0, 8.0, 9.0]

    def test_stats(self):
        stats = tiny_trace().stats()
        assert stats.n_reports == 20
        assert stats.n_sources == 20
        assert stats.n_claims == 1
        assert stats.duration_days == pytest.approx(19.0 / 86400.0)


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        trace = tiny_trace()
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == trace.name
        assert loaded.reports == trace.reports
        assert loaded.sources == trace.sources
        assert loaded.claims == trace.claims
        assert set(loaded.timelines) == set(trace.timelines)
        for cid in trace.timelines:
            assert loaded.timelines[cid].labels == trace.timelines[cid].labels

    def test_roundtrip_generated(self, tmp_path):
        trace = generate_trace(paris_shooting().scaled(0.002), seed=3)
        path = tmp_path / "gen.jsonl"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.reports == trace.reports

    def test_unknown_record_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown record kind"):
            Trace.load(path)


class TestMergeTraces:
    def test_merge(self):
        a = tiny_trace(name="a", claim="c1")
        b = tiny_trace(name="b", claim="c2")
        # Rename b's sources to avoid collisions.
        b = Trace(
            name="b",
            reports=[
                Report(
                    "x" + r.source_id, r.claim_id, r.timestamp,
                    attitude=r.attitude,
                )
                for r in b.reports
            ],
            sources={
                "x" + sid: Source("x" + sid) for sid in b.sources
            },
            claims=b.claims,
            timelines=b.timelines,
        )
        merged = merge_traces("ab", [a, b])
        assert len(merged.reports) == 40
        assert set(merged.claims) == {"c1", "c2"}

    def test_duplicate_ids_rejected(self):
        a = tiny_trace(name="a")
        b = tiny_trace(name="b")
        with pytest.raises(ValueError, match="duplicate"):
            merge_traces("ab", [a, b])


class TestStreamReplayer:
    def test_total_reports_capped_by_trace(self):
        trace = tiny_trace(n=20)
        replayer = StreamReplayer(trace, speed=100.0, duration=10.0)
        assert replayer.total_reports() == 20

    def test_total_reports_capped_by_rate(self):
        trace = tiny_trace(n=20)
        replayer = StreamReplayer(trace, speed=1.0, duration=10.0)
        assert replayer.total_reports() == 10

    def test_batches_cover_duration(self):
        trace = tiny_trace(n=20)
        replayer = StreamReplayer(trace, speed=2.0, duration=10.0)
        batches = list(replayer.batches())
        assert len(batches) == 10
        assert sum(len(b.reports) for b in batches) == 20

    def test_batch_timestamps_within_second(self):
        trace = tiny_trace(n=20)
        replayer = StreamReplayer(trace, speed=2.0, duration=10.0)
        for batch in replayer.batches():
            for report in batch.reports:
                assert batch.second <= report.timestamp < batch.second + 1

    def test_order_preserved(self):
        trace = generate_trace(paris_shooting().scaled(0.002), seed=1)
        replayer = StreamReplayer(trace, speed=50.0, duration=10.0)
        seen = [
            r.claim_id
            for batch in replayer.batches()
            for r in batch.reports
        ]
        expected = [r.claim_id for r in trace.reports[: len(seen)]]
        assert seen == expected

    def test_empty_trace(self):
        trace = Trace(name="empty", reports=[])
        replayer = StreamReplayer(trace, speed=10.0, duration=5.0)
        batches = list(replayer.batches())
        assert len(batches) == 5
        assert all(not b.reports for b in batches)

    def test_chunked_groups_batches(self):
        trace = tiny_trace(n=20)
        replayer = StreamReplayer(trace, speed=2.0, duration=10.0)
        chunks = list(replayer.chunked(5.0))
        assert len(chunks) == 2
        assert sum(len(reports) for _, reports in chunks) == 20

    def test_validation(self):
        trace = tiny_trace()
        with pytest.raises(ValueError):
            StreamReplayer(trace, speed=0.0)
        with pytest.raises(ValueError):
            StreamReplayer(trace, speed=1.0, duration=0.0)
        replayer = StreamReplayer(trace, speed=1.0)
        with pytest.raises(ValueError):
            list(replayer.chunked(0.0))
