"""Tests for trace validation."""

import pytest

from repro.core.types import Attitude, Report, Source, TruthLabel, TruthTimeline, TruthValue
from repro.streams import Trace, generate_trace, paris_shooting
from repro.streams.validation import assert_valid, validate_trace


def good_trace():
    reports = [
        Report(f"s{k}", "c1", float(k), attitude=Attitude.AGREE, text="hi")
        for k in range(10)
    ]
    return Trace(
        name="good",
        reports=reports,
        sources={f"s{k}": Source(f"s{k}") for k in range(10)},
        timelines={
            "c1": TruthTimeline(
                "c1", [TruthLabel("c1", 0.0, 10.0, TruthValue.TRUE)]
            )
        },
    )


class TestValidateTrace:
    def test_good_trace_passes(self):
        report = validate_trace(good_trace())
        assert report.ok
        assert report.summary() == "trace OK"

    def test_generated_trace_passes(self):
        trace = generate_trace(paris_shooting().scaled(0.002), seed=4)
        report = validate_trace(
            trace, min_sparsity_ratio=0.5, require_text=True
        )
        assert report.ok, report.summary()

    def test_empty_trace_is_error(self):
        report = validate_trace(Trace(name="empty", reports=[]))
        assert not report.ok
        assert report.errors[0].code == "empty"

    def test_unlabelled_claims_warn(self):
        trace = good_trace()
        trace.timelines.clear()
        report = validate_trace(trace)
        assert report.ok  # warnings only
        assert any(i.code == "unlabelled-claims" for i in report.warnings)

    def test_missing_source_records_warn(self):
        trace = good_trace()
        trace.sources.pop("s0")
        report = validate_trace(trace)
        assert any(i.code == "missing-sources" for i in report.warnings)

    def test_sparsity_warning(self):
        reports = [
            Report("prolific", "c1", float(k), attitude=Attitude.AGREE)
            for k in range(50)
        ]
        trace = Trace(
            name="dense",
            reports=reports,
            sources={"prolific": Source("prolific")},
            timelines={
                "c1": TruthTimeline(
                    "c1", [TruthLabel("c1", 0.0, 50.0, TruthValue.TRUE)]
                )
            },
        )
        report = validate_trace(trace, min_sparsity_ratio=0.5)
        assert any(i.code == "sparsity" for i in report.warnings)

    def test_timeline_span_warning(self):
        trace = good_trace()
        trace.timelines["c1"] = TruthTimeline(
            "c1", [TruthLabel("c1", 0.0, 5.0, TruthValue.TRUE)]
        )
        report = validate_trace(trace)
        assert any(i.code == "timeline-span" for i in report.warnings)

    def test_missing_text_error_when_required(self):
        trace = good_trace()
        textless = Trace(
            name="notext",
            reports=[
                Report(r.source_id, r.claim_id, r.timestamp, attitude=r.attitude)
                for r in trace.reports
            ],
            sources=trace.sources,
            timelines=trace.timelines,
        )
        report = validate_trace(textless, require_text=True)
        assert not report.ok
        assert report.errors[0].code == "missing-text"

    def test_assert_valid(self):
        assert_valid(good_trace())
        with pytest.raises(ValueError, match="invalid trace"):
            assert_valid(Trace(name="empty", reports=[]))
