"""Tests for the simulated crawler and estimate serialization."""

import pytest

from repro.core import load_estimates, save_estimates, iter_estimates
from repro.core.types import TruthEstimate, TruthValue
from repro.streams import SimulatedCrawler, Trace, generate_trace, paris_shooting
from repro.streams.generator import GeneratorConfig
from repro.system import ApplicationConfig, SocialSensingApplication
from repro.core.acs import ACSConfig
from repro.core.sstd import SSTDConfig


@pytest.fixture(scope="module")
def texty_trace():
    return generate_trace(paris_shooting().scaled(0.004), seed=9)


class TestSimulatedCrawler:
    def test_polls_cover_all_tweets(self, texty_trace):
        crawler = SimulatedCrawler(
            texty_trace, speed=50.0, duration=20.0, poll_interval=5.0
        )
        batches = list(crawler.polls())
        assert sum(len(b) for b in batches) == crawler.total_tweets()
        assert all(b.poll_time > 0 for b in batches)

    def test_tweets_are_raw(self, texty_trace):
        crawler = SimulatedCrawler(texty_trace, speed=20.0, duration=10.0)
        for batch in crawler.polls():
            for tweet in batch.tweets:
                assert tweet.text
                assert tweet.source_id
            break

    def test_rejects_textless_trace(self):
        trace = generate_trace(
            paris_shooting().scaled(0.002),
            seed=1,
            config=GeneratorConfig(with_text=False),
        )
        with pytest.raises(ValueError, match="text"):
            SimulatedCrawler(trace)

    def test_poll_interval_validation(self, texty_trace):
        with pytest.raises(ValueError):
            SimulatedCrawler(texty_trace, poll_interval=0.0)

    def test_full_figure2_loop(self, texty_trace):
        """Crawler -> text pipeline -> application, no ground truth leaks."""
        crawler = SimulatedCrawler(
            texty_trace, speed=60.0, duration=30.0, poll_interval=5.0
        )
        app = SocialSensingApplication(
            ApplicationConfig(
                sstd=SSTDConfig(
                    acs=ACSConfig(window=10.0, step=5.0), min_observations=4
                ),
                retrain_every=4,
            )
        )
        for batch in crawler.polls():
            app.ingest_tweets(batch.tweets, now=batch.poll_time)
        assert app.n_claims > 0
        assert app.n_reports > 0
        assert app.verdicts()


class TestEstimatesIO:
    def _estimates(self):
        return [
            TruthEstimate("c1", 10.0, TruthValue.TRUE, confidence=0.9),
            TruthEstimate("c1", 20.0, TruthValue.FALSE, confidence=0.7),
            TruthEstimate("c2", 10.0, TruthValue.TRUE),
        ]

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "estimates.jsonl"
        count = save_estimates(self._estimates(), path)
        assert count == 3
        loaded = load_estimates(path)
        assert loaded == self._estimates()

    def test_iter_streams_lazily(self, tmp_path):
        path = tmp_path / "estimates.jsonl"
        save_estimates(self._estimates(), path)
        iterator = iter_estimates(path)
        first = next(iterator)
        assert first.claim_id == "c1"

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "estimates.jsonl"
        save_estimates(self._estimates()[:1], path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_estimates(path)) == 1

    def test_malformed_record_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"claim_id": "c"}\n')
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            load_estimates(path)

    def test_cli_output_flag(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "trace.jsonl"
        generate_trace(paris_shooting().scaled(0.002), seed=2).save(trace_path)
        out_path = tmp_path / "estimates.jsonl"
        code = main(
            [
                "discover", str(trace_path),
                "--method", "MajorityVote",
                "--output", str(out_path),
            ]
        )
        assert code == 0
        assert load_estimates(out_path)
