"""Property-based tests for the stream substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.types import TruthValue
from repro.streams import PopulationConfig, ScenarioSpec, TrafficModel
from repro.streams.generator import generate_trace, generate_truth_timeline
from repro.streams.sources import SourcePopulation


def tiny_spec(n_reports, n_claims, mean_flips, duration):
    return ScenarioSpec(
        name="prop",
        duration=duration,
        n_reports=n_reports,
        n_claims=n_claims,
        claim_texts=("something happened",),
        topic="t",
        mean_truth_flips=mean_flips,
        population=PopulationConfig(n_sources=50),
    )


class TestTimelineProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=0.0, max_value=8.0),
        st.floats(min_value=100.0, max_value=1e6),
    )
    def test_timeline_partitions_duration(self, seed, mean_flips, duration):
        spec = tiny_spec(10, 1, mean_flips, duration)
        rng = np.random.default_rng(seed)
        timeline = generate_truth_timeline("c", spec, rng)
        assert timeline.start == 0.0
        assert timeline.end == pytest.approx(duration)
        # Labels tile the span with no gaps.
        for prev, cur in zip(timeline.labels, timeline.labels[1:]):
            assert cur.start == pytest.approx(prev.end)
        # Consecutive labels alternate values (each boundary is a flip).
        for prev, cur in zip(timeline.labels, timeline.labels[1:]):
            assert prev.value != cur.value

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_value_at_is_total(self, seed):
        spec = tiny_spec(10, 1, 3.0, 1000.0)
        rng = np.random.default_rng(seed)
        timeline = generate_truth_timeline("c", spec, rng)
        for t in (-10.0, 0.0, 500.0, 999.9, 1e9):
            assert timeline.value_at(t) in (TruthValue.TRUE, TruthValue.FALSE)


class TestGeneratorProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=1, max_value=400),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_generator_invariants(self, n_reports, n_claims, seed):
        spec = tiny_spec(n_reports, n_claims, 1.0, 5000.0)
        trace = generate_trace(spec, seed=seed)
        assert len(trace.reports) == n_reports
        timestamps = [r.timestamp for r in trace.reports]
        assert timestamps == sorted(timestamps)
        assert all(0.0 <= t <= spec.duration for t in timestamps)
        claim_ids = {r.claim_id for r in trace.reports}
        assert claim_ids <= set(trace.timelines)
        assert {r.source_id for r in trace.reports} == set(trace.sources)
        for report in trace.reports:
            assert 0.0 <= report.uncertainty < 1.0
            assert 0.0 < report.independence <= 1.0


class TestTrafficProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=0.01, max_value=10.0),
        st.floats(min_value=0.0, max_value=0.9),
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_exact_sampling_properties(self, rate, diurnal, count, seed):
        model = TrafficModel(base_rate=rate, diurnal_amplitude=diurnal)
        times = model.sample_times_exact(0.0, 1000.0, count, rng=seed)
        assert times.size == count
        if count:
            assert times.min() >= 0.0
            assert times.max() <= 1000.0
            assert (np.diff(times) >= 0).all()

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=0.1, max_value=5.0),
        st.floats(min_value=0.0, max_value=0.9),
    )
    def test_rate_array_nonnegative(self, rate, diurnal):
        model = TrafficModel(base_rate=rate, diurnal_amplitude=diurnal)
        values = model.rate_array(np.linspace(0, 1e6, 64))
        assert (values > 0).all()
        assert values.max() <= model.rate_bound() + 1e-9


class TestPopulationProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=1, max_value=2000),
        st.floats(min_value=0.0, max_value=2.0),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_population_invariants(self, n_sources, zipf, seed):
        population = SourcePopulation(
            PopulationConfig(n_sources=n_sources, zipf_exponent=zipf),
            rng=seed,
        )
        assert len(population) == n_sources
        assert ((population.reliability >= 0) & (population.reliability <= 1)).all()
        rng = np.random.default_rng(0)
        draws = population.sample_indices(100, rng)
        assert ((draws >= 0) & (draws < n_sources)).all()
        expected = population.expected_active_sources(100)
        assert 0 < expected <= min(100, n_sources)
