"""Tests for the synthetic stream substrate: traffic, sources, generator."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.streams import (
    Burst,
    GeneratorConfig,
    PopulationConfig,
    SourcePopulation,
    TrafficModel,
    boston_bombing,
    bursts_at_transitions,
    college_football,
    generate_trace,
    paris_shooting,
)
from repro.streams.events import SCENARIOS, ScenarioSpec
from repro.streams.generator import generate_truth_timeline
from repro.core.types import Attitude


class TestBurst:
    def test_intensity_before_burst_is_zero(self):
        burst = Burst(at=100.0, amplitude=2.0, decay=10.0)
        assert burst.intensity(50.0) == 0.0

    def test_intensity_decays(self):
        burst = Burst(at=0.0, amplitude=2.0, decay=10.0)
        assert burst.intensity(0.0) == 2.0
        assert burst.intensity(10.0) == pytest.approx(2.0 / math.e)

    def test_validation(self):
        with pytest.raises(ValueError):
            Burst(at=0.0, amplitude=-1.0, decay=1.0)
        with pytest.raises(ValueError):
            Burst(at=0.0, amplitude=1.0, decay=0.0)


class TestTrafficModel:
    def test_rate_positive(self):
        model = TrafficModel(base_rate=2.0, diurnal_amplitude=0.5)
        for t in np.linspace(0, 200000, 50):
            assert model.rate(float(t)) > 0

    def test_rate_array_matches_scalar(self):
        model = TrafficModel(
            base_rate=1.5,
            bursts=(Burst(at=10.0, amplitude=3.0, decay=5.0),),
        )
        times = np.linspace(0, 100, 17)
        vectorized = model.rate_array(times)
        scalar = np.array([model.rate(float(t)) for t in times])
        assert np.allclose(vectorized, scalar)

    def test_burst_raises_rate(self):
        quiet = TrafficModel(base_rate=1.0, diurnal_amplitude=0.0)
        bursty = TrafficModel(
            base_rate=1.0,
            diurnal_amplitude=0.0,
            bursts=(Burst(at=50.0, amplitude=5.0, decay=20.0),),
        )
        assert bursty.rate(51.0) > quiet.rate(51.0) * 4

    def test_sample_times_exact_count_and_range(self):
        model = TrafficModel(base_rate=0.5)
        times = model.sample_times_exact(0.0, 1000.0, 500, rng=0)
        assert times.size == 500
        assert times.min() >= 0.0 and times.max() <= 1000.0
        assert (np.diff(times) >= 0).all()

    def test_sample_times_poisson_count(self):
        model = TrafficModel(base_rate=1.0, diurnal_amplitude=0.0)
        times = model.sample_times(0.0, 10000.0, rng=1)
        # Poisson(10000): within 5 sigma
        assert abs(times.size - 10000) < 5 * 100

    def test_samples_concentrate_in_burst(self):
        model = TrafficModel(
            base_rate=1.0,
            diurnal_amplitude=0.0,
            bursts=(Burst(at=500.0, amplitude=20.0, decay=50.0),),
        )
        times = model.sample_times_exact(0.0, 1000.0, 4000, rng=2)
        in_burst = np.sum((times >= 500.0) & (times <= 650.0))
        # burst window is 15% of the span but should hold far more mass
        assert in_burst / times.size > 0.4

    def test_zero_count(self):
        model = TrafficModel(base_rate=1.0)
        assert model.sample_times_exact(0.0, 10.0, 0, rng=0).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficModel(base_rate=0.0)
        with pytest.raises(ValueError):
            TrafficModel(diurnal_amplitude=1.0)
        model = TrafficModel()
        with pytest.raises(ValueError):
            model.sample_times(10.0, 5.0)
        with pytest.raises(ValueError):
            model.sample_times_exact(0.0, 10.0, -1)

    def test_bursts_at_transitions(self):
        bursts = bursts_at_transitions([1.0, 2.0], amplitude=3.0, decay=9.0)
        assert len(bursts) == 2
        assert bursts[0].at == 1.0 and bursts[0].amplitude == 3.0


class TestSourcePopulation:
    def test_reliability_ranges_respected(self):
        config = PopulationConfig(n_sources=5000)
        population = SourcePopulation(config, rng=0)
        spreaders = population.reliability[population.is_spreader]
        others = population.reliability[~population.is_spreader]
        assert spreaders.max() <= config.spreader_range[1]
        assert others.min() >= config.noisy_range[0]

    def test_spreader_fraction_approx(self):
        config = PopulationConfig(n_sources=20000, spreader_fraction=0.1)
        population = SourcePopulation(config, rng=1)
        assert population.is_spreader.mean() == pytest.approx(0.1, abs=0.02)

    def test_sample_indices_heavy_tail(self):
        config = PopulationConfig(n_sources=1000, zipf_exponent=1.2)
        population = SourcePopulation(config, rng=2)
        rng = np.random.default_rng(3)
        draws = population.sample_indices(5000, rng)
        counts = np.bincount(draws, minlength=1000)
        # top 10% of sources should hold well over 10% of reports
        top = np.sort(counts)[-100:].sum()
        assert top / 5000 > 0.3

    def test_materialize(self):
        population = SourcePopulation(PopulationConfig(n_sources=10), rng=0)
        sources = population.materialize([0, 3, 3])
        assert set(sources) == {"src-0000000", "src-0000003"}

    def test_expected_active_sources_bounds(self):
        population = SourcePopulation(PopulationConfig(n_sources=100), rng=0)
        expected = population.expected_active_sources(50)
        assert 0 < expected <= 50

    def test_validation(self):
        with pytest.raises(ValueError):
            PopulationConfig(n_sources=0)
        with pytest.raises(ValueError):
            PopulationConfig(reliable_fraction=0.8, spreader_fraction=0.3)
        with pytest.raises(ValueError):
            PopulationConfig(reliable_range=(0.9, 0.5))


class TestTruthTimelineGeneration:
    def test_covers_duration(self):
        spec = boston_bombing().scaled(0.01)
        rng = np.random.default_rng(0)
        timeline = generate_truth_timeline("c", spec, rng)
        assert timeline.start == 0.0
        assert timeline.end == spec.duration

    def test_no_flips_when_rate_zero(self):
        spec = ScenarioSpec(
            name="static", duration=1000.0, n_reports=10, n_claims=1,
            claim_texts=("x",), topic="t", mean_truth_flips=0.0,
        )
        rng = np.random.default_rng(0)
        timeline = generate_truth_timeline("c", spec, rng)
        assert timeline.transition_times() == []

    def test_flip_count_scales_with_rate(self):
        spec = college_football()
        rng = np.random.default_rng(0)
        flips = [
            len(generate_truth_timeline(f"c{i}", spec, rng).transition_times())
            for i in range(50)
        ]
        assert np.mean(flips) == pytest.approx(spec.mean_truth_flips, rel=0.4)


class TestScenarioSpecs:
    @pytest.mark.parametrize(
        "factory",
        [SCENARIOS[name] for name in ("boston", "paris", "football")],
    )
    def test_paper_sizes(self, factory):
        """The three Table II traces match the paper's volumes."""
        spec = factory()
        assert spec.n_reports > 250_000
        assert spec.duration in (3 * 86400.0, 4 * 86400.0)

    def test_osu_demo_scenario(self):
        """The OSU scenario (paper's intro example) is demo-sized."""
        spec = SCENARIOS["osu"]()
        assert spec.n_reports < 100_000
        assert spec.duration == 86_400.0
        assert spec.mean_truth_flips > 0

    def test_scaled_reduces_volume(self):
        spec = boston_bombing()
        small = spec.scaled(0.1)
        assert small.n_reports == pytest.approx(spec.n_reports * 0.1, rel=0.01)
        assert small.n_claims == spec.n_claims

    def test_scaled_validation(self):
        with pytest.raises(ValueError):
            boston_bombing().scaled(0.0)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec(
                name="x", duration=0.0, n_reports=1, n_claims=1,
                claim_texts=("a",), topic="t",
            )
        with pytest.raises(ValueError):
            ScenarioSpec(
                name="x", duration=1.0, n_reports=1, n_claims=0,
                claim_texts=("a",), topic="t",
            )
        with pytest.raises(ValueError):
            ScenarioSpec(
                name="x", duration=1.0, n_reports=1, n_claims=1,
                claim_texts=(), topic="t",
            )


class TestGenerateTrace:
    @pytest.fixture(scope="class")
    def small_trace(self):
        return generate_trace(paris_shooting().scaled(0.01), seed=7)

    def test_deterministic(self, small_trace):
        again = generate_trace(paris_shooting().scaled(0.01), seed=7)
        assert again.reports == small_trace.reports

    def test_seed_changes_output(self, small_trace):
        other = generate_trace(paris_shooting().scaled(0.01), seed=8)
        assert other.reports != small_trace.reports

    def test_report_count_exact(self, small_trace):
        spec = paris_shooting().scaled(0.01)
        assert len(small_trace.reports) == spec.n_reports

    def test_reports_sorted(self, small_trace):
        timestamps = [r.timestamp for r in small_trace.reports]
        assert timestamps == sorted(timestamps)

    def test_all_claims_have_timelines(self, small_trace):
        claim_ids = {r.claim_id for r in small_trace.reports}
        assert claim_ids <= set(small_trace.timelines)

    def test_sources_are_active_only(self, small_trace):
        active = {r.source_id for r in small_trace.reports}
        assert set(small_trace.sources) == active

    def test_retweets_have_low_independence(self, small_trace):
        retweets = [r for r in small_trace.reports if r.is_retweet]
        originals = [r for r in small_trace.reports if not r.is_retweet]
        assert retweets, "expected some retweets"
        assert max(r.independence for r in retweets) < min(
            r.independence for r in originals
        )

    def test_retweet_text_marked(self, small_trace):
        retweets = [r for r in small_trace.reports if r.is_retweet]
        assert all(r.text.startswith("RT @") for r in retweets)

    def test_attitudes_mostly_track_truth(self, small_trace):
        """Reliable majority means attitudes correlate with ground truth."""
        agree_with_truth = 0
        total = 0
        for report in small_trace.reports:
            if report.is_retweet or not report.attitude:
                continue
            truth = small_trace.timelines[report.claim_id].value_at(
                report.timestamp
            )
            says_true = report.attitude is Attitude.AGREE
            total += 1
            if says_true == bool(truth):
                agree_with_truth += 1
        assert agree_with_truth / total > 0.6

    def test_hedged_reports_have_higher_uncertainty(self, small_trace):
        hedged = [r for r in small_trace.reports if r.uncertainty >= 0.4]
        assert 0.1 < len(hedged) / len(small_trace.reports) < 0.5

    def test_without_text(self):
        spec = paris_shooting().scaled(0.005)
        trace = generate_trace(
            spec, seed=0, config=GeneratorConfig(with_text=False)
        )
        assert all(r.text == "" for r in trace.reports)

    def test_stats_row(self, small_trace):
        stats = small_trace.stats()
        assert stats.n_reports == len(small_trace.reports)
        assert stats.n_sources == len(small_trace.sources)
        row = stats.as_row()
        assert row["data_trace"] == "Paris Shooting"

    def test_sparsity_matches_paper_regime(self, small_trace):
        """Most sources contribute very few reports (Table II ratios)."""
        stats = small_trace.stats()
        assert stats.n_sources / stats.n_reports > 0.6
