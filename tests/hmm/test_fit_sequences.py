"""Tests for multi-sequence Baum-Welch training."""

import numpy as np
import pytest

from repro.hmm import DiscreteHMM, GaussianHMM


def teacher():
    return DiscreteHMM(
        n_states=2,
        n_symbols=3,
        startprob=np.array([0.7, 0.3]),
        transmat=np.array([[0.85, 0.15], [0.1, 0.9]]),
        emissionprob=np.array([[0.6, 0.3, 0.1], [0.05, 0.25, 0.7]]),
    )


class TestFitSequences:
    def test_monotone_total_likelihood(self):
        rng = np.random.default_rng(0)
        sequences = [teacher().sample(120, rng=rng)[1] for _ in range(6)]
        student = DiscreteHMM(2, 3)
        result = student.fit_sequences(sequences, max_iter=15, rng=1)
        lls = result.log_likelihoods
        assert all(b >= a - 1e-6 for a, b in zip(lls, lls[1:]))

    def test_single_sequence_matches_fit(self):
        """fit_sequences on one sequence equals fit (same updates)."""
        rng = np.random.default_rng(1)
        _, obs = teacher().sample(200, rng=rng)
        a = DiscreteHMM(2, 3)
        b = DiscreteHMM(2, 3)
        a.fit(obs, max_iter=8, rng=7)
        b.fit_sequences([obs], max_iter=8, rng=7)
        assert np.allclose(a.transmat, b.transmat)
        assert np.allclose(a.emissionprob, b.emissionprob)
        assert np.allclose(a.startprob, b.startprob)

    def test_pools_statistics_across_sequences(self):
        """Many short sequences recover parameters a single short one
        cannot pin down — the start distribution especially."""
        rng = np.random.default_rng(2)
        sequences = [teacher().sample(60, rng=rng)[1] for _ in range(40)]
        student = DiscreteHMM(2, 3)
        student.fit_sequences(sequences, max_iter=40, rng=3)
        # Identify states by emission signature (state 1 favors symbol 2).
        order = np.argsort(student.emissionprob[:, 2])
        mapped_start = student.startprob[order]
        assert mapped_start[0] == pytest.approx(0.7, abs=0.15)

    def test_gaussian_sequences(self):
        true = GaussianHMM(
            n_states=2,
            transmat=np.array([[0.9, 0.1], [0.1, 0.9]]),
            means=np.array([-1.0, 1.0]),
            variances=np.array([0.2, 0.2]),
        )
        rng = np.random.default_rng(3)
        sequences = [true.sample(150, rng=rng)[1] for _ in range(5)]
        student = GaussianHMM(2)
        student.fit_sequences(sequences, max_iter=40, rng=0)
        means = np.sort(student.means)
        assert means[0] == pytest.approx(-1.0, abs=0.2)
        assert means[1] == pytest.approx(1.0, abs=0.2)

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            DiscreteHMM(2, 2).fit_sequences([])

    def test_length_one_sequences(self):
        """Degenerate sequences (no transitions) still train emissions."""
        student = DiscreteHMM(2, 2)
        result = student.fit_sequences(
            [np.array([0]), np.array([1]), np.array([0])],
            max_iter=5,
            rng=0,
        )
        assert len(result.log_likelihoods) >= 1
        assert np.allclose(student.transmat.sum(axis=1), 1.0)
