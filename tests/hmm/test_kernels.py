"""Kernel backend layer: selection, bit-parity, masked row sums.

The backends' contract is *bit identity*: for any input stack, the
numba kernels (compiled or interpreted) return exactly the bytes the
numpy reference returns — ``==``, not ``allclose``.  These tests pin
that contract, the selection/fallback logic (``kernel=`` /
``REPRO_KERNEL`` / auto), and the vectorized masked row-sum that
replaced the per-row log-likelihood loop.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sstd import SSTDConfig, batch_fit_decode
from repro.hmm import BatchGaussianHMM, stack_ragged
from repro.hmm.kernels import (
    KERNEL_NAMES,
    MAX_BITWISE_STATES,
    active_kernel_info,
    available_backends,
    kernel_gauge_value,
    kernel_parity_ok,
    numba_fast,
    numpy_ref,
    resolve_kernel,
)
from repro.hmm.utils import log_mask_zero, masked_row_sums
from repro.obs import Observability, get_obs, set_obs
from tests.conftest import requires_numba


def make_stack(seed=0, n=4, k=2, t_lo=1, t_hi=12, missing=0.0):
    """A ragged emission stack via the real model plumbing (NaN-aware)."""
    rng = np.random.default_rng(seed)
    sequences = []
    for _ in range(n):
        length = int(rng.integers(t_lo, t_hi + 1))
        values = rng.normal(0.0, 1.0, size=length)
        if missing > 0:
            mask = rng.random(length) < missing
            mask[int(rng.integers(0, length))] = False
            values[mask] = np.nan
        sequences.append(values)
    observations, lengths, _ = stack_ragged(sequences)
    model = BatchGaussianHMM(
        n,
        k,
        means=np.linspace(-1.0, 1.0, k),
        variances=np.linspace(0.5, 1.5, k),
        kernel="numpy",
    )
    emissions = model.emission_probabilities(observations)
    return model, emissions, lengths


def assert_ops_parity(model, emissions, lengths):
    """All four ops agree bit for bit between the two backends."""
    alpha_ref, scales_ref = numpy_ref.forward(
        model.startprob, model.transmat, emissions, lengths
    )
    alpha, scales = numba_fast.forward(
        model.startprob, model.transmat, emissions, lengths
    )
    assert (alpha == alpha_ref).all()
    assert (scales == scales_ref).all()

    beta_ref = numpy_ref.backward(
        model.transmat, emissions, scales_ref, lengths
    )
    beta = numba_fast.backward(model.transmat, emissions, scales_ref, lengths)
    assert (beta == beta_ref).all()

    log_start = log_mask_zero(model.startprob)
    log_trans = log_mask_zero(model.transmat)
    log_emissions = log_mask_zero(emissions)
    states_ref, joints_ref = numpy_ref.viterbi(
        log_start, log_trans, log_emissions, lengths
    )
    states, joints = numba_fast.viterbi(
        log_start, log_trans, log_emissions, lengths
    )
    assert (states == states_ref).all()
    assert (joints == joints_ref).all()

    xi_ref = numpy_ref.estep_xi_sum(
        model.transmat, emissions, alpha_ref, beta_ref, lengths
    )
    xi = numba_fast.estep_xi_sum(
        model.transmat, emissions, alpha_ref, beta_ref, lengths
    )
    assert (xi == xi_ref).all()


class TestMaskedRowSums:
    @given(seed=st.integers(0, 200))
    @settings(max_examples=30, deadline=None)
    def test_bit_identical_to_per_row_loop(self, seed):
        """The vectorized sum reproduces the old loop's bits exactly.

        This is the regression test for replacing the per-row Python
        list comprehension in ``BatchGaussianHMM.forward`` — including
        lengths beyond numpy's pairwise-summation threshold (128),
        where a zero-padded full-width masked sum would diverge.
        """
        rng = np.random.default_rng(seed)
        n, t = 7, int(rng.integers(1, 400))
        matrix = rng.normal(0.0, 3.0, size=(n, t))
        lengths = rng.integers(0, t + 1, size=n)
        # Always exercise a full row and (when possible) a long one.
        lengths[0] = t
        old_loop = np.array(
            [float(matrix[row, : lengths[row]].sum()) for row in range(n)]
        )
        vectorized = masked_row_sums(matrix, lengths)
        assert (vectorized == old_loop).all()

    def test_long_rows_past_pairwise_threshold(self):
        rng = np.random.default_rng(3)
        matrix = rng.normal(size=(5, 517))
        lengths = np.array([517, 517, 300, 129, 128])
        old_loop = np.array(
            [float(matrix[row, : lengths[row]].sum()) for row in range(5)]
        )
        assert (masked_row_sums(matrix, lengths) == old_loop).all()

    def test_zero_length_rows_sum_to_zero(self):
        matrix = np.ones((3, 4))
        assert (
            masked_row_sums(matrix, np.array([0, 2, 0])) == [0.0, 2.0, 0.0]
        ).all()

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="2-D"):
            masked_row_sums(np.ones(3), np.array([1, 1, 1]))
        with pytest.raises(ValueError, match="shape"):
            masked_row_sums(np.ones((2, 3)), np.array([1]))
        with pytest.raises(ValueError, match="lengths"):
            masked_row_sums(np.ones((2, 3)), np.array([4, 1]))


class TestSelection:
    def test_numpy_always_resolves(self):
        assert resolve_kernel("numpy").name == "numpy"

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="kernel must be one of"):
            resolve_kernel("cuda")

    def test_env_var_drives_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        assert resolve_kernel(None).name == "numpy"
        monkeypatch.setenv("REPRO_KERNEL", "cuda")
        with pytest.raises(ValueError, match="kernel must be one of"):
            resolve_kernel(None)

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "cuda")  # would raise if read
        assert resolve_kernel("numpy").name == "numpy"

    def test_explicit_numba_raises_without_numba(self, monkeypatch):
        monkeypatch.setattr(numba_fast, "AVAILABLE", False)
        with pytest.raises(RuntimeError, match="not importable"):
            resolve_kernel("numba")

    def test_auto_falls_back_silently_without_numba(self, monkeypatch):
        monkeypatch.setattr(numba_fast, "AVAILABLE", False)
        assert resolve_kernel("auto", n_states=2).name == "numpy"
        assert available_backends() == ("numpy",)

    def test_auto_picks_numba_when_parity_proven(self, monkeypatch):
        # Interpreted fallback loops behave like the compiled kernels,
        # so forcing AVAILABLE exercises the real selection logic
        # (including the parity probe) without numba installed.
        monkeypatch.setattr(numba_fast, "AVAILABLE", True)
        assert resolve_kernel("auto", n_states=2).name == "numba"
        assert available_backends() == ("numpy", "numba")

    def test_auto_refuses_wide_state_counts(self, monkeypatch):
        monkeypatch.setattr(numba_fast, "AVAILABLE", True)
        picked = resolve_kernel("auto", n_states=MAX_BITWISE_STATES)
        assert picked.name == "numpy"

    def test_kernel_parity_ok_and_cached(self):
        assert kernel_parity_ok(2) is True
        assert kernel_parity_ok(3) is True
        assert kernel_parity_ok(2) is True  # cached verdict

    def test_gauge_encoding(self):
        assert kernel_gauge_value("numpy") == 0.0
        assert kernel_gauge_value("numba") == 1.0

    def test_active_kernel_info_shape(self):
        info = active_kernel_info()
        assert set(info) == {"backend", "numba_available", "numba_version"}
        assert info["backend"] in KERNEL_NAMES

    def test_model_exposes_resolved_backend(self):
        model = BatchGaussianHMM(2, 2, kernel="numpy")
        assert model.kernel_name == "numpy"

    def test_sstd_config_validates_kernel(self):
        assert SSTDConfig(kernel="numpy").kernel == "numpy"
        assert SSTDConfig().kernel is None
        with pytest.raises(ValueError, match="kernel"):
            SSTDConfig(kernel="cuda")


class TestOpParity:
    """Backends agree bit for bit — compiled when numba is installed,
    interpreted otherwise (same IEEE-754 operation order either way)."""

    @given(
        seed=st.integers(0, 500),
        n=st.integers(1, 6),
        k=st.sampled_from([2, 3]),
        missing=st.sampled_from([0.0, 0.3, 0.8]),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_ragged_stacks(self, seed, n, k, missing):
        model, emissions, lengths = make_stack(
            seed=seed, n=n, k=k, missing=missing
        )
        assert_ops_parity(model, emissions, lengths)

    def test_length_one_rows(self):
        model, emissions, lengths = make_stack(seed=1, n=3, t_lo=1, t_hi=1)
        assert (lengths == 1).all()
        assert_ops_parity(model, emissions, lengths)

    def test_constant_sequences(self):
        observations = np.full((3, 6), 0.25)
        lengths = np.array([6, 6, 4])
        model = BatchGaussianHMM(3, 2, kernel="numpy")
        emissions = model.emission_probabilities(observations)
        assert_ops_parity(model, emissions, lengths)

    def test_nan_heavy_rows(self):
        observations = np.full((2, 8), np.nan)
        observations[0, 3] = 1.0
        observations[1, 0] = -2.0
        lengths = np.array([8, 8])
        model = BatchGaussianHMM(2, 2, kernel="numpy")
        emissions = model.emission_probabilities(observations)
        assert_ops_parity(model, emissions, lengths)

    def test_dead_timestep_prob_floor_rescue(self):
        """An all-zero emission step takes the PROB_FLOOR path in both
        backends — the rescue must produce the same bits too."""
        model, emissions, lengths = make_stack(seed=7, n=3, t_lo=5, t_hi=8)
        emissions[0, 2, :] = 0.0  # dead mid-sequence step
        emissions[1, 0, :] = 0.0  # dead first step
        assert_ops_parity(model, emissions, lengths)

    def test_k3_probe_stack(self):
        model, emissions, lengths = make_stack(seed=11, n=5, k=3, missing=0.4)
        assert_ops_parity(model, emissions, lengths)


class TestEndToEndParity:
    """Whole-model runs through each backend produce identical bits."""

    def _sequences(self, seed=0, n=4):
        rng = np.random.default_rng(seed)
        sequences = []
        for _ in range(n):
            length = int(rng.integers(6, 14))
            flip = length // 2
            sequences.append(
                np.concatenate(
                    [
                        rng.normal(-1.0, 0.3, size=flip),
                        rng.normal(1.0, 0.3, size=length - flip),
                    ]
                )
            )
        return sequences

    def _run(self, kernel):
        observations, lengths, _ = stack_ragged(self._sequences())
        model = BatchGaussianHMM(len(lengths), 2, kernel=kernel)
        results = model.fit(observations, lengths, max_iter=10, seed=0)
        emissions = model.emission_probabilities(observations)
        states, joints = model.viterbi(emissions, lengths)
        posteriors = model.state_posteriors(
            observations, lengths, emissions=emissions
        )
        return model, results, states, joints, posteriors

    def assert_identical_runs(self):
        ref = self._run("numpy")
        other = self._run("numba")
        model_ref, results_ref, states_ref, joints_ref, post_ref = ref
        model, results, states, joints, post = other
        assert model.kernel_name == "numba"
        assert (model.startprob == model_ref.startprob).all()
        assert (model.transmat == model_ref.transmat).all()
        assert (model.means == model_ref.means).all()
        assert (model.variances == model_ref.variances).all()
        for got, want in zip(results, results_ref):
            assert got.log_likelihoods == want.log_likelihoods
            assert got.iterations == want.iterations
            assert got.converged == want.converged
        assert (states == states_ref).all()
        assert (joints == joints_ref).all()
        assert (post == post_ref).all()

    def test_fit_decode_posteriors_interpreted(self, monkeypatch):
        monkeypatch.setattr(numba_fast, "AVAILABLE", True)
        self.assert_identical_runs()

    @requires_numba
    def test_fit_decode_posteriors_compiled(self):
        self.assert_identical_runs()

    @requires_numba
    def test_auto_selects_compiled_kernels(self):
        assert resolve_kernel("auto", n_states=2).name == "numba"


class TestObservability:
    def test_gauge_and_span_record_backend(self):
        rng = np.random.default_rng(0)
        times = np.arange(10.0)
        acs = np.concatenate([rng.normal(-1, 0.2, 5), rng.normal(1, 0.2, 5)])
        previous = get_obs()
        obs = Observability()
        set_obs(obs)
        try:
            results = batch_fit_decode(
                [("c1", times, acs)], SSTDConfig(kernel="numpy")
            )
        finally:
            set_obs(previous)
        assert results[0].used_hmm
        assert obs.metrics.gauge("hmm.kernel") == kernel_gauge_value("numpy")
        (span,) = [
            e for e in obs.tracer.events() if e.name == "sstd.batch_fit"
        ]
        assert span.attr_dict()["kernel"] == "numpy"
