"""Log-space edge cases for the sanctioned numeric helpers.

These are the degenerate inputs Baum-Welch actually produces on sparse
social-sensing data: zero probabilities (impossible observations),
denormal scales (tens of thousands of near-zero emissions), and
all-zero rows (states with no expected visits).  The helpers must map
each to a defined value or raise cleanly — never emit NaN or warnings.
"""

import warnings

import numpy as np
import pytest

from repro.devtools import contracts as ct
from repro.hmm.gaussian import GaussianHMM
from repro.hmm.utils import (
    LOG_2PI,
    log_mask_zero,
    normal_densities,
    normal_log_densities,
    normalize_rows,
    normalize_vector,
)


class TestLogMaskZero:
    def test_zero_maps_to_neg_inf_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = log_mask_zero(np.array([0.0, 1.0, np.e]))
        assert result[0] == -np.inf
        assert result[1] == 0.0
        assert result[2] == pytest.approx(1.0)

    def test_all_zero_vector(self):
        result = log_mask_zero(np.zeros(4))
        assert (result == -np.inf).all()

    def test_denormal_input_stays_finite(self):
        denormal = np.array([5e-324, 1e-310])  # below DBL_MIN
        result = log_mask_zero(denormal)
        assert np.isfinite(result).all()
        assert (result < -700).all()

    def test_negative_input_raises_instead_of_nan(self):
        with pytest.raises(ValueError, match="non-negative"):
            log_mask_zero(np.array([0.5, -0.1]))


class TestNormalizeDegenerateRows:
    def test_all_zero_observation_row_becomes_uniform(self):
        # A state with no expected visits: Baum-Welch produces an
        # all-zero row; normalization must fall back to uniform, not NaN.
        matrix = np.array([[0.0, 0.0, 0.0], [3.0, 1.0, 0.0]])
        result = normalize_rows(matrix)
        np.testing.assert_allclose(result[0], [1 / 3, 1 / 3, 1 / 3])
        np.testing.assert_allclose(result[1], [0.75, 0.25, 0.0])
        assert np.isfinite(result).all()

    def test_zero_vector_becomes_uniform(self):
        np.testing.assert_allclose(normalize_vector(np.zeros(4)), np.full(4, 0.25))

    def test_denormal_row_normalizes_to_simplex(self):
        matrix = np.array([[1e-320, 3e-320]])
        result = normalize_rows(matrix)
        assert np.isfinite(result).all()
        assert result.sum() == pytest.approx(1.0)

    def test_normalized_rows_satisfy_simplex_contract(self):
        with ct.contracts(True):
            ct.assert_probability_simplex(
                normalize_rows(np.array([[0.0, 0.0], [2.0, 6.0]])), "rows"
            )


class TestNormalDensities:
    def test_matches_manual_gaussian(self):
        values = np.array([0.0, 1.0])
        log_d = normal_log_densities(values, np.zeros(1), np.ones(1))
        assert log_d[0, 0] == pytest.approx(-0.5 * LOG_2PI)
        assert log_d[1, 0] == pytest.approx(-0.5 * (LOG_2PI + 1.0))
        np.testing.assert_allclose(
            normal_densities(values, np.zeros(1), np.ones(1)), np.exp(log_d)
        )

    def test_zero_variance_raises_cleanly(self):
        with pytest.raises(ValueError, match="strictly positive"):
            normal_log_densities(np.zeros(3), np.zeros(2), np.array([1.0, 0.0]))

    def test_nan_variance_raises_cleanly(self):
        with pytest.raises(ValueError, match="positive and finite"):
            normal_log_densities(np.zeros(3), np.zeros(1), np.array([np.nan]))

    def test_far_tail_underflows_to_zero_not_nan(self):
        densities = normal_densities(
            np.array([1e4]), np.zeros(1), np.full(1, 1e-3)
        )
        assert densities[0, 0] == 0.0


class TestEndToEndDegenerateSequences:
    def test_fit_on_constant_sequence_stays_finite(self):
        hmm = GaussianHMM(n_states=2)
        observations = np.zeros(30)
        with ct.contracts(True):
            result = hmm.fit(observations, max_iter=10, rng=0)
        assert np.isfinite(hmm.means).all()
        assert (hmm.variances > 0).all()
        assert np.isfinite(result.final_log_likelihood)

    def test_impossible_observations_floor_not_nan(self):
        # Observations far outside every state's support: forward pass
        # hits all-zero emission rows and must floor, not divide by zero.
        hmm = GaussianHMM(
            n_states=2,
            means=np.array([-1.0, 1.0]),
            variances=np.array([1e-3, 1e-3]),
        )
        logprob = hmm.log_likelihood(np.array([1e5, -1e5, 1e5]))
        assert np.isfinite(logprob)
        assert logprob < -50

    def test_mostly_missing_sequence_decodes_under_contracts(self):
        values = np.full(40, np.nan)
        values[[3, 10, 17, 24, 31, 38]] = [1.0, 1.1, 0.9, -1.0, -1.1, -0.9]
        hmm = GaussianHMM(n_states=2)
        with ct.contracts(True):
            hmm.fit(values, max_iter=10, rng=0)
            states, _ = hmm.decode(values)
        assert states.shape == (40,)
