"""Tests for HMM model selection (AIC/BIC over state counts)."""

import numpy as np
import pytest

from repro.hmm import DiscreteHMM, GaussianHMM
from repro.hmm.selection import (
    SelectionResult,
    aic,
    bic,
    n_parameters,
    select_n_states,
)


class TestParameterCounts:
    def test_discrete(self):
        # n=2, m=3: 1 start + 2 transition + 2*2 emission = 7
        assert n_parameters(DiscreteHMM(2, 3)) == 7

    def test_gaussian(self):
        # n=2: 1 start + 2 transition + 4 emission = 7
        assert n_parameters(GaussianHMM(2)) == 7

    def test_single_state(self):
        assert n_parameters(GaussianHMM(1)) == 2


class TestCriteria:
    def test_aic_bic_penalize_parameters(self):
        rng = np.random.default_rng(0)
        obs = rng.normal(0.0, 1.0, size=200)
        small = GaussianHMM(1)
        small.fit(obs, max_iter=20, rng=0)
        big = GaussianHMM(4)
        big.fit(obs, max_iter=20, rng=0)
        # Same data, more parameters: the criteria must penalize.
        assert aic(big, obs) - 2 * big.log_likelihood(obs) * (-1) >= 0
        assert bic(big, obs) > bic(small, obs) - 50  # sanity, not strict

    def test_bic_harsher_than_aic_for_long_sequences(self):
        rng = np.random.default_rng(1)
        obs = rng.normal(0.0, 1.0, size=2000)
        model = GaussianHMM(3)
        model.fit(obs, max_iter=10, rng=0)
        # log(2000) > 2, so BIC's complexity term dominates AIC's.
        assert bic(model, obs) > aic(model, obs)


class TestSelectNStates:
    def test_recovers_two_states_from_bimodal_chain(self):
        true = GaussianHMM(
            n_states=2,
            transmat=np.array([[0.95, 0.05], [0.05, 0.95]]),
            means=np.array([-2.0, 2.0]),
            variances=np.array([0.3, 0.3]),
        )
        _, obs = true.sample(600, rng=5)
        result = select_n_states(obs, candidates=(1, 2, 3))
        assert result.best_by_bic == 2

    def test_single_regime_prefers_one_state(self):
        rng = np.random.default_rng(2)
        obs = rng.normal(0.0, 1.0, size=500)
        result = select_n_states(obs, candidates=(1, 2))
        assert result.best_by_bic == 1

    def test_custom_factory(self):
        true = DiscreteHMM(
            2, 2,
            transmat=np.array([[0.9, 0.1], [0.1, 0.9]]),
            emissionprob=np.array([[0.9, 0.1], [0.1, 0.9]]),
        )
        _, obs = true.sample(400, rng=3)
        result = select_n_states(
            obs,
            candidates=(1, 2),
            factory=lambda n: DiscreteHMM(n, 2),
        )
        assert result.best_by_bic == 2

    def test_entries_expose_scores(self):
        rng = np.random.default_rng(0)
        obs = rng.normal(size=100)
        result = select_n_states(obs, candidates=(1, 2))
        assert isinstance(result, SelectionResult)
        assert len(result.entries) == 2
        for entry in result.entries:
            assert np.isfinite(entry.aic)
            assert np.isfinite(entry.bic)

    def test_validation(self):
        with pytest.raises(ValueError):
            select_n_states(np.zeros(10), candidates=())
        with pytest.raises(ValueError):
            select_n_states(np.zeros(10), candidates=(0,))
