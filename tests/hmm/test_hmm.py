"""HMM correctness tests: inference vs brute force, EM behaviour."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hmm import DiscreteHMM, GaussianHMM
from repro.hmm.utils import (
    log_mask_zero,
    normalize_rows,
    normalize_vector,
    validate_distribution,
    validate_stochastic_matrix,
)


def brute_force_likelihood(hmm: DiscreteHMM, obs) -> float:
    """P(obs) by explicit summation over every state path."""
    total = 0.0
    for path in itertools.product(range(hmm.n_states), repeat=len(obs)):
        p = hmm.startprob[path[0]] * hmm.emissionprob[path[0], obs[0]]
        for prev, cur, symbol in zip(path, path[1:], obs[1:]):
            p *= hmm.transmat[prev, cur] * hmm.emissionprob[cur, symbol]
        total += p
    return total


def brute_force_viterbi(hmm: DiscreteHMM, obs):
    """Best path and its joint probability by enumeration."""
    best_path, best_p = None, -1.0
    for path in itertools.product(range(hmm.n_states), repeat=len(obs)):
        p = hmm.startprob[path[0]] * hmm.emissionprob[path[0], obs[0]]
        for prev, cur, symbol in zip(path, path[1:], obs[1:]):
            p *= hmm.transmat[prev, cur] * hmm.emissionprob[cur, symbol]
        if p > best_p:
            best_p, best_path = p, path
    return np.array(best_path), best_p


def tiny_hmm():
    return DiscreteHMM(
        n_states=2,
        n_symbols=3,
        startprob=np.array([0.6, 0.4]),
        transmat=np.array([[0.7, 0.3], [0.2, 0.8]]),
        emissionprob=np.array([[0.5, 0.4, 0.1], [0.1, 0.3, 0.6]]),
    )


class TestUtils:
    def test_normalize_rows(self):
        out = normalize_rows(np.array([[2.0, 2.0], [0.0, 0.0]]))
        assert out[0].tolist() == [0.5, 0.5]
        assert out[1].tolist() == [0.5, 0.5]  # zero row -> uniform

    def test_normalize_vector_zero(self):
        assert normalize_vector(np.zeros(4)).tolist() == [0.25] * 4

    def test_validate_stochastic_rejects_bad_rows(self):
        with pytest.raises(ValueError, match="sum to 1"):
            validate_stochastic_matrix(np.array([[0.5, 0.1], [0.5, 0.5]]), "A")

    def test_validate_stochastic_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            validate_stochastic_matrix(np.array([[1.5, -0.5], [0.5, 0.5]]), "A")

    def test_validate_distribution(self):
        with pytest.raises(ValueError):
            validate_distribution(np.array([0.5, 0.6]), "pi")

    def test_log_mask_zero(self):
        out = log_mask_zero(np.array([1.0, 0.0]))
        assert out[0] == 0.0
        assert np.isneginf(out[1])


class TestForwardExact:
    @pytest.mark.parametrize("obs", [[0], [0, 1], [2, 2, 0, 1], [1, 0, 2, 1, 0]])
    def test_matches_brute_force(self, obs):
        hmm = tiny_hmm()
        expected = brute_force_likelihood(hmm, obs)
        assert np.exp(hmm.log_likelihood(np.array(obs))) == pytest.approx(expected)

    def test_long_sequence_no_underflow(self):
        hmm = tiny_hmm()
        rng = np.random.default_rng(0)
        obs = rng.integers(0, 3, size=5000)
        logp = hmm.log_likelihood(obs)
        assert np.isfinite(logp)
        assert logp < 0


class TestViterbiExact:
    @pytest.mark.parametrize("obs", [[0], [0, 1, 2], [2, 2, 0, 1, 1]])
    def test_matches_brute_force(self, obs):
        hmm = tiny_hmm()
        states, log_joint = hmm.decode(np.array(obs))
        expected_path, expected_p = brute_force_viterbi(hmm, obs)
        assert np.exp(log_joint) == pytest.approx(expected_p)
        assert states.tolist() == expected_path.tolist()

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=6))
    def test_viterbi_path_is_optimal_property(self, obs):
        hmm = tiny_hmm()
        _, log_joint = hmm.decode(np.array(obs))
        _, expected_p = brute_force_viterbi(hmm, obs)
        assert np.exp(log_joint) == pytest.approx(expected_p)


class TestPosteriors:
    def test_rows_sum_to_one(self):
        hmm = tiny_hmm()
        gamma = hmm.state_posteriors(np.array([0, 1, 2, 0, 1]))
        assert np.allclose(gamma.sum(axis=1), 1.0)

    def test_posterior_matches_brute_force_single_step(self):
        hmm = tiny_hmm()
        obs = [0, 2]
        gamma = hmm.state_posteriors(np.array(obs))
        # P(s0 = i | obs) by enumeration
        joint = np.zeros(2)
        for path in itertools.product(range(2), repeat=2):
            p = hmm.startprob[path[0]] * hmm.emissionprob[path[0], obs[0]]
            p *= hmm.transmat[path[0], path[1]] * hmm.emissionprob[path[1], obs[1]]
            joint[path[0]] += p
        assert np.allclose(gamma[0], joint / joint.sum())


class TestBaumWelch:
    def test_likelihood_is_monotone(self):
        rng = np.random.default_rng(5)
        true = tiny_hmm()
        _, obs = true.sample(300, rng=rng)
        student = DiscreteHMM(n_states=2, n_symbols=3)
        result = student.fit(obs, max_iter=20, rng=1)
        lls = result.log_likelihoods
        assert all(b >= a - 1e-6 for a, b in zip(lls, lls[1:]))

    def test_fit_improves_over_initial(self):
        rng = np.random.default_rng(5)
        true = tiny_hmm()
        _, obs = true.sample(300, rng=rng)
        student = DiscreteHMM(n_states=2, n_symbols=3)
        result = student.fit(obs, max_iter=30, rng=1)
        assert result.final_log_likelihood > result.log_likelihoods[0]

    def test_converged_flag(self):
        _, obs = tiny_hmm().sample(100, rng=2)
        student = DiscreteHMM(n_states=2, n_symbols=3)
        result = student.fit(obs, max_iter=200, tol=1e-3, rng=1)
        assert result.converged

    def test_empty_observations_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            tiny_hmm().fit(np.array([], dtype=int))


class TestDiscreteHMM:
    def test_symbol_range_validated(self):
        hmm = tiny_hmm()
        with pytest.raises(ValueError, match="symbols"):
            hmm.log_likelihood(np.array([0, 5]))

    def test_emission_shape_validated(self):
        with pytest.raises(ValueError, match="emissionprob"):
            DiscreteHMM(2, 3, emissionprob=np.ones((2, 2)) / 2)

    def test_sample_shapes(self):
        states, obs = tiny_hmm().sample(50, rng=0)
        assert states.shape == obs.shape == (50,)
        assert set(states) <= {0, 1}
        assert set(obs) <= {0, 1, 2}


class TestGaussianHMM:
    def _two_state(self):
        return GaussianHMM(
            n_states=2,
            transmat=np.array([[0.95, 0.05], [0.05, 0.95]]),
            means=np.array([-1.0, 1.0]),
            variances=np.array([0.25, 0.25]),
        )

    def test_decode_recovers_well_separated_states(self):
        true = self._two_state()
        states, obs = true.sample(400, rng=3)
        decoded, _ = true.decode(obs)
        assert np.mean(decoded == states) > 0.95

    def test_fit_recovers_means(self):
        true = self._two_state()
        _, obs = true.sample(2000, rng=4)
        student = GaussianHMM(
            n_states=2, transmat=np.array([[0.9, 0.1], [0.1, 0.9]])
        )
        student.fit(obs, max_iter=50, rng=0)
        means = np.sort(student.means)
        assert means[0] == pytest.approx(-1.0, abs=0.15)
        assert means[1] == pytest.approx(1.0, abs=0.15)

    def test_missing_observations_bridged_by_transitions(self):
        """NaN observations are decoded from context, not from emissions."""
        hmm = self._two_state()
        obs = np.array([1.0, 1.1, np.nan, np.nan, 1.05, 0.9])
        states, _ = hmm.decode(obs)
        assert (states == 1).all()

    def test_all_missing_fit_rejected(self):
        hmm = self._two_state()
        with pytest.raises(ValueError, match="all-missing"):
            hmm.fit(np.array([np.nan, np.nan]))

    def test_missing_does_not_change_loglik_scaling(self):
        hmm = self._two_state()
        logp = hmm.log_likelihood(np.array([1.0, np.nan, 1.0]))
        assert np.isfinite(logp)

    def test_variance_floor(self):
        obs = np.ones(50)  # zero variance data
        student = GaussianHMM(n_states=2)
        student.fit(obs, max_iter=5, rng=0)
        assert (student.variances > 0).all()

    def test_filter_states_online(self):
        hmm = self._two_state()
        obs = np.array([-1.0, -1.0, 1.0, 1.0])
        filtered = hmm.filter_states(obs)
        assert filtered[0] == 0
        assert filtered[-1] == 1

    def test_invalid_variances_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            GaussianHMM(2, variances=np.array([1.0, 0.0]))

    def test_state_order_by_mean(self):
        hmm = GaussianHMM(2, means=np.array([3.0, -2.0]))
        assert hmm.state_order_by_mean().tolist() == [1, 0]

    def test_infinite_observations_rejected(self):
        hmm = self._two_state()
        with pytest.raises(ValueError, match="infinite"):
            hmm.log_likelihood(np.array([1.0, np.inf]))


class TestBaseValidation:
    def test_bad_n_states(self):
        with pytest.raises(ValueError):
            DiscreteHMM(0, 2)

    def test_sample_requires_positive_length(self):
        with pytest.raises(ValueError):
            tiny_hmm().sample(0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DiscreteHMM(
                2, 2,
                startprob=np.array([1.0]),
                transmat=np.array([[1.0]]),
            )
