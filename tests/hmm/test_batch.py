"""Batched kernel parity: BatchGaussianHMM vs per-claim GaussianHMM.

The batched kernel's whole contract is that every row decodes exactly as
it would alone: same EM trajectory (within float ulps), same iteration
count, same convergence flag, same Viterbi path — regardless of which
batch the row rides in.  These tests pin that contract against the
per-claim reference implementation and against the kernel itself under
different batch compositions.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hmm import BatchGaussianHMM, GaussianHMM, stack_ragged


def make_sequences(seed=0, n=5, missing=0.0):
    """Ragged two-regime sequences (the SSTD workload shape)."""
    rng = np.random.default_rng(seed)
    sequences = []
    for i in range(n):
        length = int(rng.integers(3, 40))
        flip = length // 2
        values = np.concatenate(
            [
                rng.normal(-1.0, 0.3, size=flip),
                rng.normal(1.0, 0.3, size=length - flip),
            ]
        )
        if missing > 0:
            mask = rng.random(length) < missing
            # Never blank a whole sequence: init needs >= 1 observation.
            mask[int(rng.integers(0, length))] = False
            values[mask] = np.nan
        sequences.append(values)
    return sequences


def fit_batch(sequences, k=2, max_iter=50, tol=1e-4, seed=0):
    observations, lengths, order = stack_ragged(sequences)
    kernel = BatchGaussianHMM(len(sequences), k)
    results = kernel.fit(
        observations, lengths, max_iter=max_iter, tol=tol, seed=seed
    )
    return observations, lengths, order, kernel, results


def fit_serial(sequences, k=2, max_iter=50, tol=1e-4, seed=0):
    pairs = []
    for seq in sequences:
        model = GaussianHMM(k)
        result = model.fit(
            np.asarray(seq, dtype=float), max_iter=max_iter, tol=tol, rng=seed
        )
        pairs.append((model, result))
    return pairs


def assert_batch_matches_serial(sequences, k=2, seed=0, tol=1e-4):
    observations, lengths, order, kernel, results = fit_batch(
        sequences, k=k, seed=seed, tol=tol
    )
    serial = fit_serial(sequences, k=k, seed=seed, tol=tol)
    emissions = kernel.emission_probabilities(observations)
    states, log_joints = kernel.viterbi(emissions, lengths)
    posteriors = kernel.state_posteriors(
        observations, lengths, emissions=emissions
    )
    for row, src in enumerate(order):
        model, ref = serial[int(src)]
        result = results[row]
        length = int(lengths[row])
        seq = np.asarray(sequences[int(src)], dtype=float)

        assert result.iterations == ref.iterations
        assert result.converged == ref.converged
        assert np.allclose(
            result.log_likelihoods, ref.log_likelihoods, atol=1e-9, rtol=0
        )
        assert np.allclose(kernel.means[row], model.means, atol=1e-9, rtol=0)
        assert np.allclose(
            kernel.variances[row], model.variances, atol=1e-9, rtol=0
        )
        assert np.allclose(
            kernel.transmat[row], model.transmat, atol=1e-9, rtol=0
        )

        ref_states, ref_joint = model.decode(seq)
        assert states[row, :length].tolist() == ref_states.tolist()
        assert log_joints[row] == pytest.approx(ref_joint, abs=1e-9)
        assert np.allclose(
            posteriors[row, :length],
            model.state_posteriors(seq),
            atol=1e-9,
            rtol=0,
        )


class TestStackRagged:
    def test_sorts_by_length_descending(self):
        observations, lengths, order = stack_ragged(
            [np.arange(2.0), np.arange(5.0), np.arange(3.0)]
        )
        assert lengths.tolist() == [5, 3, 2]
        assert order.tolist() == [1, 2, 0]
        assert observations.shape == (3, 5)

    def test_pads_with_nan_and_round_trips(self):
        sequences = [np.array([1.0, 2.0]), np.array([3.0, 4.0, 5.0])]
        observations, lengths, order = stack_ragged(sequences)
        for row, src in enumerate(order):
            length = int(lengths[row])
            assert observations[row, :length].tolist() == sequences[
                int(src)
            ].tolist()
            assert np.isnan(observations[row, length:]).all()

    def test_stable_for_equal_lengths(self):
        _, _, order = stack_ragged([np.zeros(3), np.ones(3), np.full(3, 2.0)])
        assert order.tolist() == [0, 1, 2]

    def test_rejects_empty_inputs(self):
        with pytest.raises(ValueError, match="at least one"):
            stack_ragged([])
        with pytest.raises(ValueError, match="empty"):
            stack_ragged([np.array([])])
        with pytest.raises(ValueError, match="1-D"):
            stack_ragged([np.zeros((2, 2))])


class TestValidation:
    def test_param_stack_shapes(self):
        kernel = BatchGaussianHMM(3, 2, means=np.array([-1.0, 1.0]))
        assert kernel.means.shape == (3, 2)
        assert (kernel.means == np.array([-1.0, 1.0])).all()
        with pytest.raises(ValueError, match="startprob"):
            BatchGaussianHMM(3, 2, startprob=np.ones((2, 2)))
        with pytest.raises(ValueError, match="n_seqs"):
            BatchGaussianHMM(0, 2)
        with pytest.raises(ValueError, match="positive"):
            BatchGaussianHMM(2, 2, variances=np.array([1.0, 0.0]))

    def test_observation_shapes(self):
        kernel = BatchGaussianHMM(2, 2)
        with pytest.raises(ValueError, match="rows"):
            kernel.decode(np.zeros((3, 4)))
        with pytest.raises(ValueError, match="sorted"):
            kernel.decode(np.zeros((2, 4)), lengths=np.array([2, 4]))
        with pytest.raises(ValueError, match=r"\[1, T\]"):
            kernel.decode(np.zeros((2, 4)), lengths=np.array([5, 2]))
        with pytest.raises(ValueError, match="infinite"):
            kernel.decode(np.full((2, 4), np.inf))


class TestParityVsPerClaim:
    def test_ragged_random_sequences(self):
        assert_batch_matches_serial(make_sequences(seed=1, n=6))

    def test_three_states(self):
        assert_batch_matches_serial(make_sequences(seed=2, n=4), k=3)

    def test_nan_heavy_sequences(self):
        assert_batch_matches_serial(make_sequences(seed=3, n=5, missing=0.5))

    def test_constant_sequences_hit_jitter_init(self):
        # Zero-variance data takes GaussianHMM's jittered-init branch;
        # the batch kernel must spend the seed identically per row.
        sequences = [np.full(8, 2.5), np.full(5, -1.0), np.full(12, 0.0)]
        assert_batch_matches_serial(sequences, seed=7)

    def test_length_one_sequences(self):
        sequences = [np.array([0.3]), np.array([-0.7]), np.array([1.5])]
        assert_batch_matches_serial(sequences, seed=4)

    def test_mixed_edge_cases(self):
        sequences = [
            np.array([0.4]),
            np.full(6, 1.0),
            make_sequences(seed=5, n=1)[0],
            np.array([np.nan, 0.2, np.nan, -0.3]),
        ]
        assert_batch_matches_serial(sequences, seed=5)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=1, max_value=8),
        missing=st.sampled_from([0.0, 0.3]),
    )
    def test_parity_property(self, seed, n, missing):
        assert_batch_matches_serial(
            make_sequences(seed=seed, n=n, missing=missing), seed=seed
        )


class TestRowDeterminism:
    def test_batch_composition_is_bitwise_irrelevant(self):
        sequences = make_sequences(seed=11, n=8, missing=0.2)
        _, lengths, order, full, full_results = fit_batch(sequences, seed=3)
        # Refit each row alone (N=1) and in a front/back split; every
        # composition must produce bit-identical parameters and EM
        # histories for the same underlying sequence.
        for row, src in enumerate(order):
            seq = sequences[int(src)]
            _, _, _, solo, solo_results = fit_batch([seq], seed=3)
            assert (solo.means[0] == full.means[row]).all()
            assert (solo.variances[0] == full.variances[row]).all()
            assert (solo.transmat[0] == full.transmat[row]).all()
            assert (solo.startprob[0] == full.startprob[row]).all()
            assert (
                solo_results[0].log_likelihoods
                == full_results[row].log_likelihoods
            )
            assert solo_results[0].converged == full_results[row].converged

    def test_split_batches_match_full_batch(self):
        sequences = make_sequences(seed=13, n=6)
        _, _, order, full, _ = fit_batch(sequences, seed=1)
        by_src_means = {
            int(src): full.means[row] for row, src in enumerate(order)
        }
        for offset, part in ((0, sequences[:3]), (3, sequences[3:])):
            _, _, part_order, partial, _ = fit_batch(part, seed=1)
            for row, src in enumerate(part_order):
                assert (
                    partial.means[row] == by_src_means[int(src) + offset]
                ).all()

    def test_convergence_freezing_stops_updates(self):
        # A constant sequence converges almost immediately; batched with
        # a long mixed sequence it must freeze while the other row keeps
        # iterating — iteration counts then differ per row.
        sequences = [make_sequences(seed=17, n=1)[0], np.full(10, 1.0)]
        _, _, order, _, results = fit_batch(sequences, seed=17, tol=1e-6)
        iterations = {
            int(src): results[row].iterations
            for row, src in enumerate(order)
        }
        assert iterations[1] < iterations[0]


class TestInference:
    def test_forward_matches_per_row_log_likelihood(self):
        sequences = make_sequences(seed=21, n=4)
        observations, lengths, order = stack_ragged(sequences)
        kernel = BatchGaussianHMM(
            len(sequences),
            2,
            means=np.array([-1.0, 1.0]),
            variances=np.array([0.4, 0.4]),
            transmat=np.array([[0.9, 0.1], [0.1, 0.9]]),
        )
        emissions = kernel.emission_probabilities(observations)
        _, _, logliks = kernel.forward(emissions, lengths)
        for row, src in enumerate(order):
            ref = kernel.extract(row).log_likelihood(
                np.asarray(sequences[int(src)], dtype=float)
            )
            assert logliks[row] == pytest.approx(ref, abs=1e-9)

    def test_filter_states_matches_per_row(self):
        sequences = make_sequences(seed=22, n=3)
        observations, lengths, order = stack_ragged(sequences)
        kernel = BatchGaussianHMM(
            len(sequences),
            2,
            means=np.array([-1.0, 1.0]),
            variances=np.array([0.4, 0.4]),
        )
        emissions = kernel.emission_probabilities(observations)
        alpha, _, _ = kernel.forward(emissions, lengths)
        filtered = kernel.filter_states(alpha)
        for row, src in enumerate(order):
            seq = np.asarray(sequences[int(src)], dtype=float)
            ref = kernel.extract(row).filter_states(seq)
            assert filtered[row, : int(lengths[row])].tolist() == ref.tolist()

    def test_extract_round_trips_row_parameters(self):
        kernel = BatchGaussianHMM(2, 2)
        kernel.means[1] = np.array([-3.0, 3.0])
        model = kernel.extract(1)
        assert model.means.tolist() == [-3.0, 3.0]
        assert model.n_states == 2
