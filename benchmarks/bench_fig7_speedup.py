"""Figure 7 — speedup of SSTD vs number of workers, for several data sizes.

The paper generates "synthetic data traces of different sizes" and
reports ``Speedup(N) = serial time / time on N workers``, observing that
the speedup ratio improves as the trace grows (overheads — task
initialization, data transfer — amortize) while staying below the ideal
``N``.

This benchmark drives the simulated Work Queue / HTCondor stack
directly: each trace becomes one TD job per claim, split into tasks
whose virtual cost follows the calibrated cost model (init + compute +
transfer, paper Eq. (10)), plus a serial master-side dispatch cost —
the master is one process, so matchmaking and input staging do not
parallelize.  That serial term plus per-task initialization is what
makes small traces scale poorly (overhead-dominated) while large
traces approach ideal speedup.  Claim volumes are Zipf-skewed like
real traces; jobs split into volume-proportional task counts so the
biggest claim does not become a straggler.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import CondorPool, Simulator, uniform_pool
from repro.workqueue import CostModel, ElasticWorkerPool, Task, WorkQueueMaster

from benchmarks.conftest import report_lines

DATA_SIZES = (10_000, 100_000, 1_000_000, 10_000_000)
WORKER_COUNTS = (1, 2, 4, 8, 16, 32, 64)
N_CLAIMS = 64
MAX_TOTAL_TASKS = 256
COST = CostModel(init_time=0.5, unit_cost=1e-4, transfer_cost=5e-6)
DISPATCH_OVERHEAD = 0.05


def _claim_volumes(total: int, n_claims: int, zipf: float = 1.0) -> list[int]:
    weights = np.arange(1, n_claims + 1, dtype=float) ** (-zipf)
    weights /= weights.sum()
    volumes = np.floor(weights * total).astype(int)
    volumes[0] += total - volumes.sum()
    return volumes.tolist()


def _makespan(total_reports: int, n_workers: int) -> float:
    simulator = Simulator()
    condor = CondorPool(uniform_pool((n_workers + 3) // 4, cores=4))
    master = WorkQueueMaster(
        simulator, rng=0, dispatch_overhead=DISPATCH_OVERHEAD
    )
    pool = ElasticWorkerPool(simulator, master, condor, COST)
    pool.scale_to(n_workers)
    # Volume-proportional task splitting: no job's tasks exceed roughly
    # total/MAX_TOTAL_TASKS data units (paper §IV-C4: data divided
    # equally between a job's tasks).
    chunk = max(1.0, total_reports / MAX_TOTAL_TASKS)
    for claim, volume in enumerate(_claim_volumes(total_reports, N_CLAIMS)):
        n_tasks = max(1, int(np.ceil(volume / chunk)))
        share, remainder = divmod(volume, n_tasks)
        for k in range(n_tasks):
            master.submit(
                Task(
                    job_id=f"claim-{claim}",
                    data_size=float(share + (1 if k < remainder else 0)),
                )
            )
    master.wait_all()
    return simulator.now


def test_speedup_curves(benchmark):
    def run():
        table: dict[int, list[float]] = {}
        for size in DATA_SIZES:
            serial = _makespan(size, 1)
            table[size] = [
                serial / _makespan(size, workers)
                for workers in WORKER_COUNTS
            ]
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Figure 7 — Scalability of SSTD (speedup vs #workers)",
        f"{'Data size':>12}" + "".join(f"{w:>8}w" for w in WORKER_COUNTS)
        + f"{'(ideal)':>9}",
    ]
    for size, speedups in table.items():
        lines.append(
            f"{size:>12,}"
            + "".join(f"{s:>8.2f}x" for s in speedups)
            + f"{WORKER_COUNTS[-1]:>8}x"
        )
    report_lines("fig7_speedup", lines)

    for size, speedups in table.items():
        # Speedup is bounded by the ideal and roughly monotone in workers.
        for workers, speedup in zip(WORKER_COUNTS, speedups):
            assert speedup <= workers + 1e-6
        assert speedups[-1] >= speedups[0]
    # The paper's observation: speedup at max workers improves with size.
    at_max = [table[size][-1] for size in DATA_SIZES]
    assert all(b >= a - 1e-6 for a, b in zip(at_max, at_max[1:]))
    # Large traces approach the ideal: >= 70% efficiency at 64 workers.
    assert at_max[-1] >= 0.7 * WORKER_COUNTS[-1]
