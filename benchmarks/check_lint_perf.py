"""CI gate: the warm-cache lint run stays within its wall-time budget.

Compares a fresh ``BENCH_lint.json`` (written by
``benchmarks/bench_lint.py``) against the committed budget in
``benchmarks/baselines/lint_perf_baseline.json``:

- ``warm_s`` must be ≤ ``warm_budget_s`` × ``REPRO_LINT_PERF_FACTOR``
  (default 1.5) — the whole-program layers (call graph, escape
  fixpoint, resource walker) may cost cold time, but a warm developer
  loop re-linting an unchanged tree must stay interactive;
- ``warm_summary_hit_rate`` must be ≥ ``min_warm_summary_hit_rate`` —
  a drop means cache keys churn between identical runs (e.g. an
  unstable fingerprint input), which silently turns every warm run
  cold long before the wall-time budget notices on a fast machine.

Usage::

    python benchmarks/check_lint_perf.py [CURRENT_JSON] [BASELINE_JSON]

Exit codes mirror ``check_perf_smoke.py``: 0 pass, 1 regression,
2 bad input.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

__all__ = ["main"]

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_CURRENT = REPO_ROOT / "BENCH_lint.json"
DEFAULT_BASELINE = (
    REPO_ROOT / "benchmarks" / "baselines" / "lint_perf_baseline.json"
)
DEFAULT_FACTOR = 1.5


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"lint-perf: missing {path}", file=sys.stderr)
        raise SystemExit(2) from None
    except json.JSONDecodeError as exc:
        print(f"lint-perf: unreadable {path}: {exc}", file=sys.stderr)
        raise SystemExit(2) from None


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    current_path = Path(argv[0]) if argv else DEFAULT_CURRENT
    baseline_path = Path(argv[1]) if len(argv) > 1 else DEFAULT_BASELINE
    current = _load(current_path)
    baseline = _load(baseline_path)

    try:
        factor = float(
            os.environ.get("REPRO_LINT_PERF_FACTOR", DEFAULT_FACTOR)
        )
    except ValueError:
        print("lint-perf: REPRO_LINT_PERF_FACTOR not a float", file=sys.stderr)
        return 2
    try:
        warm_s = float(current["warm_s"])
        hit_rate = float(current["warm_summary_hit_rate"])
        budget_s = float(baseline["warm_budget_s"])
        min_hit_rate = float(baseline.get("min_warm_summary_hit_rate", 0.0))
    except (KeyError, TypeError, ValueError) as exc:
        print(f"lint-perf: malformed payload: {exc!r}", file=sys.stderr)
        return 2

    failures: list[str] = []
    ceiling = budget_s * factor
    if warm_s > ceiling:
        failures.append(
            f"warm lint run took {warm_s:.3f}s, budget is "
            f"{budget_s:.3f}s x {factor:.2f} = {ceiling:.3f}s"
        )
    if hit_rate < min_hit_rate:
        failures.append(
            f"warm summary hit rate {hit_rate:.0%} below the "
            f"{min_hit_rate:.0%} floor (cache keys churning between "
            "identical runs?)"
        )
    if failures:
        for failure in failures:
            print(f"lint-perf REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(
        f"lint-perf: ok (warm {warm_s:.3f}s <= {ceiling:.3f}s, "
        f"summary hit rate {hit_rate:.0%})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
