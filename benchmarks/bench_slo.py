"""Deadline SLO under bursty load — open-loop vs latency feedback.

The paper's controllability experiment (Figure 6) measures how often an
interval's Truth Discovery work drains within a deadline.  The open-loop
system re-decodes every claim that received reports, so a traffic burst
(or the steadily growing cumulative decode cost) blows straight through
the deadline.  The closed loop added in this PR feeds measured per-claim
cost back into an admission controller that defers overflow work to
calmer intervals and sheds hopelessly stale claims, trading estimate
freshness for deadline hits.

This benchmark drives one bursty trace through ``run_intervals`` on the
process backend twice:

- **baseline** — ``feedback=None``: execution times are deadline-
  independent, so this leg doubles as the calibration run.  The deadline
  is set at the 40th percentile of the baseline's own per-interval
  execution times, which pins the baseline hit rate near 0.4 by
  construction on any machine — a deadline the open loop mostly misses.
- **feedback** — ``FeedbackConfig`` with admission control and a
  trajectory recorder: the leg the CI gate holds to a hit-rate floor
  the baseline is *not* required to meet.

The feedback leg's PID trajectory is replayed in-process and must be
bit-identical (the same guarantee ``repro-cli replay-controller``
checks from the command line).  Results land in ``BENCH_slo.json`` at
the repo root (consumed by ``benchmarks/check_slo.py``), the stitched
Chrome trace in ``BENCH_slo_trace.json`` (uploaded by CI), and the
human-readable table in ``benchmarks/results/slo.txt``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.control import (
    AdmissionConfig,
    FeedbackConfig,
    load_trajectory,
    replay_trajectory,
)
from repro.hmm.kernels import active_kernel_info
from repro.obs import percentile, stitch_metadata, write_chrome_trace
from repro.streams.events import PopulationConfig, ScenarioSpec
from repro.streams.generator import GeneratorConfig, generate_trace
from repro.system.deadline import hit_rate_curve
from repro.system.sstd_system import DistributedSSTD, SSTDSystemConfig

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, report_lines

N_CLAIMS = 24
N_INTERVALS = 16
N_WORKERS = 2
DEADLINE_PERCENTILE = 40.0
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_slo.json"
BENCH_TRACE = Path(__file__).resolve().parent.parent / "BENCH_slo_trace.json"
TRAJECTORY_PATH = Path(__file__).resolve().parent / "results" / "slo_trajectory.jsonl"


def _effective_cpu_count() -> int:
    """Cores this process may actually run on (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _bursty_trace():
    """A trace whose per-interval load swings hard around truth flips.

    High burst amplitude with a short decay concentrates reports around
    each claim's truth transitions, so some replay intervals carry
    several times the claim churn of their neighbours — the shape the
    admission controller exists to absorb.
    """
    spec = ScenarioSpec(
        name="SLO Bench",
        duration=6 * 3600.0,
        n_reports=max(600, int(300_000 * BENCH_SCALE)),
        n_claims=N_CLAIMS,
        claim_texts=("the bridge is closed", "the station is evacuated"),
        topic="bench-slo",
        mean_truth_flips=3.0,
        claim_zipf_exponent=0.7,
        burst_amplitude=8.0,
        burst_decay=450.0,
        diurnal_amplitude=0.6,
        population=PopulationConfig(
            n_sources=max(50, int(10_000 * BENCH_SCALE))
        ),
    )
    return generate_trace(
        spec, seed=BENCH_SEED, config=GeneratorConfig(with_text=False)
    )


def _leg_stats(result, deadline: float) -> dict:
    times = result.execution_times
    return {
        "deadline_s": round(deadline, 6),
        "hit_rate": round(result.hit_rate, 4),
        "p50_s": round(percentile(times, 50.0), 6),
        "p95_s": round(percentile(times, 95.0), 6),
        "p99_s": round(percentile(times, 99.0), 6),
        "mean_s": round(result.tracker.mean_execution_time, 6),
        "total_lateness_s": round(result.tracker.total_lateness, 6),
        "deferred_total": result.tracker.total_deferred,
        "shed_total": result.tracker.total_shed,
    }


def test_slo_feedback_vs_open_loop():
    trace = _bursty_trace()

    # Baseline (calibration) leg: open loop, deadline-independent times.
    # The placeholder deadline only labels hit/miss records we recompute
    # below; execution times themselves do not depend on it.
    # Both legs dispatch per claim (claims_per_shard=1): admission
    # control decides *claims*, and the auto-sharded batched kernel
    # amortizes decode so heavily across a shard that dropping claims
    # from a shard barely drops its cost — per-claim tasks make the
    # interval cost linear in what admission admits.
    baseline_system = DistributedSSTD(
        SSTDSystemConfig(
            n_workers=N_WORKERS,
            backend="processes",
            control_enabled=False,
            observability=True,
            claims_per_shard=1,
        )
    )
    baseline = baseline_system.run_intervals(
        trace, n_intervals=N_INTERVALS, deadline=1e9
    )
    times = baseline.execution_times
    assert len(times) == N_INTERVALS
    deadline = percentile(times, DEADLINE_PERCENTILE)
    assert deadline > 0
    ((_, baseline_hit_rate),) = hit_rate_curve(times, [deadline])

    # Feedback leg: latency-fed admission control at the calibrated
    # deadline, with the PID trajectory recorded for offline replay.
    TRAJECTORY_PATH.parent.mkdir(exist_ok=True)
    feedback_system = DistributedSSTD(
        SSTDSystemConfig(
            n_workers=N_WORKERS,
            backend="processes",
            control_enabled=False,
            observability=True,
            claims_per_shard=1,
            feedback=FeedbackConfig(
                # Loss-bounds-latency mode: the calibrated deadline puts
                # the workload in sustained overload (p40 of full-batch
                # times), where force-admitting stale work would re-blow
                # the deadline; shedding keeps the loop on budget.
                admission=AdmissionConfig(shed_after=3),
                trajectory_path=str(TRAJECTORY_PATH),
            ),
        )
    )
    feedback = feedback_system.run_intervals(
        trace, n_intervals=N_INTERVALS, deadline=deadline
    )
    assert len(feedback.execution_times) == N_INTERVALS

    # The recorded trajectory must replay bit-identically at the
    # recorded gains — the invariant `repro-cli replay-controller`
    # enforces before accepting a what-if gain sweep.
    samples = load_trajectory(TRAJECTORY_PATH)
    assert len(samples) == N_INTERVALS
    steps = replay_trajectory(samples)
    replay_bit_identical = all(step.matches for step in steps)
    assert replay_bit_identical, "PID replay diverged at recorded gains"

    # Export the stitched cross-process timeline CI uploads.  Two
    # workers ran, so two clock syncs must have been stitched in.
    stitch = stitch_metadata(feedback_system.obs.stitch)
    assert len(stitch) == N_WORKERS
    dropped = feedback_system.obs.tracer.dropped
    write_chrome_trace(
        feedback_system.obs.tracer.events(),
        BENCH_TRACE,
        metrics=feedback_system.obs.metrics.snapshot(),
        clock_kind=feedback_system.obs.clock.kind,
        dropped=dropped,
        stitch=stitch,
    )

    effective_cpus = _effective_cpu_count()
    baseline_stats = _leg_stats(baseline, deadline)
    baseline_stats["hit_rate"] = round(baseline_hit_rate, 4)
    feedback_stats = _leg_stats(feedback, deadline)
    payload = {
        "schema": 1,
        "benchmark": "slo",
        "scale": BENCH_SCALE,
        "seed": BENCH_SEED,
        "cpu_count": os.cpu_count(),
        "effective_cpu_count": effective_cpus,
        "kernel": active_kernel_info(),
        "n_reports": len(trace.reports),
        "n_claims": N_CLAIMS,
        "n_intervals": N_INTERVALS,
        "n_workers": N_WORKERS,
        "deadline_s": round(deadline, 6),
        "deadline_percentile": DEADLINE_PERCENTILE,
        "legs": {"baseline": baseline_stats, "feedback": feedback_stats},
        "replay_bit_identical": replay_bit_identical,
        "trajectory_samples": len(samples),
        "stitched_workers": len(stitch),
        "trace_dropped_events": dropped,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    lines = [
        "Deadline SLO under bursty load — open loop vs latency feedback",
        f"{len(trace.reports):,} reports, {N_CLAIMS} claims, "
        f"{N_INTERVALS} intervals, {N_WORKERS} workers, scale={BENCH_SCALE}, "
        f"cpus={os.cpu_count()} (effective {effective_cpus})",
        f"deadline (p{DEADLINE_PERCENTILE:.0f} of baseline): {deadline * 1e3:.1f} ms",
        f"{'leg':>10}{'hit rate':>10}{'p50 ms':>9}{'p95 ms':>9}"
        f"{'p99 ms':>9}{'defer':>7}{'shed':>6}",
    ]
    for name, stats in (("baseline", baseline_stats), ("feedback", feedback_stats)):
        lines.append(
            f"{name:>10}{stats['hit_rate']:>10.3f}"
            f"{stats['p50_s'] * 1e3:>9.1f}{stats['p95_s'] * 1e3:>9.1f}"
            f"{stats['p99_s'] * 1e3:>9.1f}"
            f"{stats['deferred_total']:>7}{stats['shed_total']:>6}"
        )
    lines.append(
        f"replay: {len(samples)} PID updates, bit-identical="
        f"{replay_bit_identical}; stitched workers={len(stitch)}, "
        f"dropped events={dropped}"
    )
    report_lines("slo", lines)

    # The open loop admits everything; the closed loop must actually
    # have exercised admission control on this workload.
    assert baseline_stats["deferred_total"] == 0
    assert feedback_stats["deferred_total"] > 0
    # The hit-rate *floor* is enforced by benchmarks/check_slo.py with
    # the committed baseline; here we only pin the structural claim that
    # feedback cannot do worse than open loop by more than one interval
    # (timing noise on a shared CI box).
    assert feedback.hit_rate >= baseline_hit_rate - 1.0 / N_INTERVALS
