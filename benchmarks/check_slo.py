"""CI gate for the SLO benchmark (``benchmarks/bench_slo.py``).

Usage::

    python benchmarks/check_slo.py [BENCH_slo.json] [baseline.json]

Compares a fresh ``BENCH_slo.json`` against the committed policy in
``benchmarks/baselines/slo_baseline.json``:

- the **feedback** leg's deadline hit rate must meet ``hit_rate_floor``;
- the **baseline** (open-loop) leg is *exempt* from the floor — it is
  expected to miss it, and the gate fails if it doesn't stay below the
  floor, because then the workload no longer stresses the deadline and
  the feedback leg's pass is vacuous;
- the recorded PID trajectory must have replayed bit-identically;
- both process-backend workers must have been clock-stitched into the
  exported timeline.

Exit codes: 0 = pass, 1 = SLO regression, 2 = missing/invalid inputs
(e.g. the benchmark did not run, or scale mismatch with the baseline).
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_slo.json"
BASELINE_JSON = REPO_ROOT / "benchmarks" / "baselines" / "slo_baseline.json"


def _load(path: Path, what: str) -> dict:
    if not path.exists():
        print(f"FAIL: {what} not found at {path}")
        raise SystemExit(2)
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"FAIL: could not parse {what} at {path}: {exc}")
        raise SystemExit(2) from exc


def main(argv: list[str]) -> int:
    bench_path = Path(argv[1]) if len(argv) > 1 else BENCH_JSON
    baseline_path = Path(argv[2]) if len(argv) > 2 else BASELINE_JSON
    bench = _load(bench_path, "benchmark result")
    baseline = _load(baseline_path, "committed baseline")

    if bench.get("scale") != baseline.get("scale"):
        print(
            f"FAIL: scale mismatch — benchmark ran at "
            f"{bench.get('scale')}, baseline expects {baseline.get('scale')}"
        )
        return 2

    floor = float(baseline["hit_rate_floor"])
    floor_env = os.environ.get("REPRO_SLO_HIT_RATE_FLOOR")
    if floor_env:
        floor = float(floor_env)
        print(f"using hit-rate floor {floor} from REPRO_SLO_HIT_RATE_FLOOR")

    legs = bench.get("legs", {})
    feedback = legs.get("feedback", {})
    open_loop = legs.get("baseline", {})
    failures: list[str] = []

    fb_rate = float(feedback.get("hit_rate", 0.0))
    verdict = "ok" if fb_rate >= floor else "FAIL"
    print(f"{verdict}: feedback hit rate {fb_rate:.4f} (floor {floor})")
    if fb_rate < floor:
        failures.append(
            f"feedback leg hit rate {fb_rate:.4f} below floor {floor}"
        )

    # The open loop is exempt from the floor by design — but if it
    # *meets* the floor, the calibrated deadline no longer stresses the
    # system and the feedback pass proves nothing.
    ol_rate = float(open_loop.get("hit_rate", 1.0))
    verdict = "ok" if ol_rate < floor else "FAIL"
    print(
        f"{verdict}: open-loop hit rate {ol_rate:.4f} stays below the "
        f"floor (exempt from meeting it)"
    )
    if ol_rate >= floor:
        failures.append(
            f"open-loop leg hit rate {ol_rate:.4f} reached the floor "
            f"{floor} — the workload no longer stresses the deadline"
        )

    if not bench.get("replay_bit_identical", False):
        failures.append("PID trajectory did not replay bit-identically")
    print(
        ("ok" if bench.get("replay_bit_identical") else "FAIL")
        + ": trajectory replay bit-identical at recorded gains"
    )

    stitched = int(bench.get("stitched_workers", 0))
    expected_workers = int(bench.get("n_workers", 0))
    verdict = "ok" if stitched == expected_workers else "FAIL"
    print(f"{verdict}: {stitched}/{expected_workers} workers clock-stitched")
    if stitched != expected_workers:
        failures.append(
            f"only {stitched} of {expected_workers} workers were stitched"
        )

    if failures:
        print("\nSLO gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nSLO gate passed.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
