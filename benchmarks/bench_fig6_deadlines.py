"""Figure 6 — deadline hit rate of all schemes vs deadline (3 traces).

The paper's controllability experiment: "We divide each data trace into
100 equal time intervals ... For each time interval, we record the
total execution time to process all the tweets in that time interval.
We compare the execution with the deadline and we record the percentage
of intervals where the execution time is less than the deadline (i.e.,
hit rate)."

Setup here:

- interval report volumes are scaled to the paper's full trace sizes
  (the session traces are generated at ``REPRO_BENCH_SCALE``; Figure 6
  is about system load, so volumes matter);
- every scheme's processing costs are *measured* on this machine
  (benchmarks/calibration.py): centralized schemes process each
  interval on one worker, so their interval time is
  ``fixed + per_report * n_i`` and bursty intervals blow tight
  deadlines;
- SSTD runs through the full simulated deployment
  (:class:`repro.system.DistributedSSTD`): per-claim TD jobs on 4 Work
  Queue workers (elastic to 32) with PID-controlled priorities; its
  task cost model is grounded in SSTD's own measured costs — per-report
  push cost plus the per-claim decode (tick) cost — so its advantage
  comes from incremental processing, parallelism and control, not from
  a cheaper cost basis;
- the deadline sweeps the range of observed interval times.

Expected shape (paper Fig. 6): SSTD's hit rate dominates every baseline
at every deadline, with the largest margins at tight deadlines.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.baselines import DynaTD, EvaluationGrid, make_algorithm
from repro.core import SSTDConfig, StreamingSSTD
from repro.core.acs import ACSConfig
from repro.streams import StreamReplayer
from repro.system import DTMConfig, DistributedSSTD, SSTDSystemConfig
from repro.system.deadline import hit_rate_curve
from repro.workqueue import CostModel

from benchmarks.conftest import BENCH_SCALE, report_lines
from benchmarks.calibration import calibrate

N_INTERVALS = 100
BATCH_SCHEMES = ("TruthFinder", "RTD", "CATD")
TRACES = ["boston_trace", "paris_trace", "football_trace"]
CALIBRATION_SECONDS = 30.0


def _interval_counts(trace, n_intervals: int) -> list[int]:
    span = trace.end - trace.start
    edges = [trace.start + span * k / n_intervals for k in range(n_intervals + 1)]
    edges[-1] = trace.end + 1e-9
    timestamps = np.array([r.timestamp for r in trace.reports])
    counts, _ = np.histogram(timestamps, bins=edges)
    return counts.tolist()


def _measure_sstd_costs(trace) -> tuple[float, float]:
    """(seconds per pushed report, per-claim decode seconds per tick)."""
    replayer = StreamReplayer(trace, speed=800.0, duration=CALIBRATION_SECONDS)
    config = SSTDConfig(
        acs=ACSConfig(window=10.0, step=1.0), min_observations=4
    )
    engine = StreamingSSTD(config, retrain_every=20, max_buffer=240)
    n = 0
    push_time = 0.0
    tick_time = 0.0
    for batch in replayer.batches():
        t0 = time.perf_counter()
        for report in batch.reports:
            engine.push(report)
            n += 1
        push_time += time.perf_counter() - t0
        t0 = time.perf_counter()
        engine.tick(batch.arrival_time)
        tick_time += time.perf_counter() - t0
    n_claims = max(len(engine.claim_ids), 1)
    per_report = max(push_time / max(n, 1), 1e-9)
    per_claim_tick = tick_time / (CALIBRATION_SECONDS * n_claims)
    return per_report, per_claim_tick


@pytest.mark.parametrize("trace_fixture", TRACES)
def test_deadline_hit_rates(benchmark, request, trace_fixture):
    trace = request.getfixturevalue(trace_fixture)
    volume_factor = 1.0 / BENCH_SCALE

    def run():
        counts = _interval_counts(trace, N_INTERVALS)
        full_counts = [n * volume_factor for n in counts]
        calib_grid = EvaluationGrid(trace.start, trace.end, step=3600.0)
        calib_slice = trace.reports[: min(len(trace.reports), 20_000)]

        # Centralized schemes: measured linear cost per interval.
        interval_times: dict[str, list[float]] = {}
        for name in BATCH_SCHEMES:
            profile = calibrate(
                make_algorithm(name), calib_slice, calib_grid, streaming=False
            )
            interval_times[name] = [
                profile.batch_cost(n) for n in full_counts
            ]
        dynatd_profile = calibrate(
            DynaTD(), calib_slice, calib_grid, streaming=True
        )
        interval_times["DynaTD"] = [
            dynatd_profile.batch_cost(n) for n in full_counts
        ]

        # Deadline sweep anchored on the observed interval times.
        pooled = np.concatenate([np.array(v) for v in interval_times.values()])
        deadlines = sorted(
            {
                round(max(float(np.quantile(pooled, q)), 1e-3), 4)
                for q in (0.05, 0.2, 0.5, 0.8, 0.95)
            }
        )

        # SSTD through the simulated deployment, once per deadline.
        per_report, per_claim_tick = _measure_sstd_costs(trace)
        cost_model = CostModel(
            init_time=per_claim_tick,
            unit_cost=per_report * volume_factor,
            transfer_cost=per_report * volume_factor * 0.05,
        )
        sstd_rates = []
        for deadline in deadlines:
            system = DistributedSSTD(
                SSTDSystemConfig(
                    n_workers=4,
                    max_workers=32,
                    deadline=deadline,
                    cost_model=cost_model,
                    control_enabled=True,
                    dtm=DTMConfig(
                        elastic=True,
                        sample_period=max(deadline / 5.0, 1e-3),
                    ),
                )
            )
            outcome = system.run_intervals(
                trace, n_intervals=N_INTERVALS, deadline=deadline
            )
            sstd_rates.append(outcome.hit_rate)

        table: dict[str, list[float]] = {"SSTD": sstd_rates}
        for name, times in interval_times.items():
            table[name] = [rate for _, rate in hit_rate_curve(times, deadlines)]
        return deadlines, table

    deadlines, table = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"Figure 6 — Deadline Hit Rate vs Deadline — {trace.name}",
        "(100 intervals at paper-scale volume; centralized baselines on 1",
        " worker, SSTD on 4-32 PID-controlled simulated workers; costs",
        " measured on this machine)",
        f"{'Scheme':<13}" + "".join(f"{d:>9.3f}s" for d in deadlines),
    ]
    order = ["SSTD", "DynaTD"] + list(BATCH_SCHEMES)
    for name in order:
        lines.append(
            f"{name:<13}"
            + "".join(f"{rate:>10.1%}" for rate in table[name])
        )
    report_lines(f"fig6_{trace.name.lower().replace(' ', '_')}", lines)

    # Shape: SSTD meets at least as many deadlines as every baseline at
    # every deadline, and strictly dominates at the tightest one.
    for name in order[1:]:
        for k in range(len(deadlines)):
            assert table["SSTD"][k] >= table[name][k] - 1e-9, (name, k)
    assert table["SSTD"][0] > max(table[name][0] for name in order[1:])
