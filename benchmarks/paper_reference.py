"""The paper's reported numbers, for side-by-side comparison.

Source: Tables II-V of Zhang et al., "Towards Scalable and Dynamic
Social Sensing Using A Distributed Computing Framework", ICDCS 2017.
Benchmarks print these next to the measured values; EXPERIMENTS.md
records the comparison.  Absolute values are not expected to match (our
traces are synthetic and our cluster is simulated); orderings and gaps
are.
"""

# Table II — data trace statistics.
TABLE2 = {
    "Paris Shooting": {"reports": 253_798, "sources": 217_718, "days": 3},
    "Boston Bombing": {"reports": 553_609, "sources": 493_855, "days": 4},
    "College Football": {"reports": 429_019, "sources": 413_782, "days": 3},
}

# Tables III-V — (accuracy, precision, recall, F1) per method per trace.
TABLE3_BOSTON = {
    "SSTD": (0.828, 0.834, 0.831, 0.833),
    "DynaTD": (0.722, 0.811, 0.756, 0.783),
    "TruthFinder": (0.653, 0.689, 0.787, 0.734),
    "RTD": (0.763, 0.748, 0.824, 0.784),
    "CATD": (0.667, 0.764, 0.748, 0.751),
    "Invest": (0.609, 0.639, 0.626, 0.632),
    "3-Estimates": (0.616, 0.626, 0.807, 0.705),
}

TABLE4_PARIS = {
    "SSTD": (0.802, 0.834, 0.905, 0.872),
    "DynaTD": (0.731, 0.822, 0.788, 0.805),
    "TruthFinder": (0.616, 0.653, 0.806, 0.721),
    "RTD": (0.753, 0.791, 0.823, 0.807),
    "CATD": (0.669, 0.689, 0.760, 0.723),
    "Invest": (0.661, 0.722, 0.780, 0.750),
    "3-Estimates": (0.647, 0.704, 0.765, 0.733),
}

TABLE5_FOOTBALL = {
    "SSTD": (0.801, 0.661, 0.792, 0.723),
    "DynaTD": (0.765, 0.471, 0.570, 0.515),
    "TruthFinder": (0.612, 0.542, 0.455, 0.495),
    "RTD": (0.752, 0.555, 0.649, 0.598),
    "CATD": (0.736, 0.542, 0.764, 0.634),
    "Invest": (0.722, 0.478, 0.716, 0.574),
    "3-Estimates": (0.674, 0.396, 0.677, 0.501),
}

PAPER_TABLES = {
    "Boston Bombing": TABLE3_BOSTON,
    "Paris Shooting": TABLE4_PARIS,
    "College Football": TABLE5_FOOTBALL,
}
