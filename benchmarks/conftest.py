"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md Section 4).  Traces are generated once per session at a
configurable scale (``REPRO_BENCH_SCALE``, default 0.05 — i.e. 5% of the
paper's report volumes) so the whole suite stays laptop-friendly; the
Table II benchmark always reports full-size statistics.

Results are printed AND appended to ``benchmarks/results/<name>.txt`` so
they survive pytest's output capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.streams import (
    boston_bombing,
    college_football,
    generate_trace,
    paris_shooting,
)

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))
RESULTS_DIR = Path(__file__).parent / "results"


def report_lines(name: str, lines: list[str]) -> None:
    """Print result lines and persist them under benchmarks/results/."""
    text = "\n".join(lines)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def boston_trace():
    return generate_trace(boston_bombing().scaled(BENCH_SCALE), seed=BENCH_SEED)


@pytest.fixture(scope="session")
def paris_trace():
    return generate_trace(paris_shooting().scaled(BENCH_SCALE), seed=BENCH_SEED)


@pytest.fixture(scope="session")
def football_trace():
    return generate_trace(
        college_football().scaled(BENCH_SCALE), seed=BENCH_SEED
    )


@pytest.fixture(scope="session")
def all_traces(boston_trace, paris_trace, football_trace):
    return {
        "Boston Bombing": boston_trace,
        "Paris Shooting": paris_trace,
        "College Football": football_trace,
    }
