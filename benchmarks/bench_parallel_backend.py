"""Threads vs processes — real batch-TD throughput on real cores.

The paper's scalability claim (Section IV, Figure 7) rests on fanning
per-claim Truth Discovery jobs out over Work Queue workers.  The thread
backend (:class:`repro.workqueue.local.LocalWorkQueue`) cannot cash that
claim in: Baum-Welch and Viterbi are CPU-bound Python, so the GIL
serializes them no matter how many threads run.  This benchmark measures
what the process backend (:class:`repro.workqueue.process.ProcessWorkQueue`)
buys on actual hardware: batch TD throughput (reports/second) for both
real backends at 1, 2 and 4 workers on a generated trace.

Results land in two places:

- ``BENCH_parallel.json`` at the repo root — machine-readable, consumed
  by the CI ``perf-smoke`` gate (``benchmarks/check_perf_smoke.py``);
- ``benchmarks/results/parallel_backend.txt`` — the human-readable table.

Since PR 5 the run also compares the two dispatch modes on the process
backend at max workers: ``per_claim`` (``claims_per_shard=1``, one Work
Queue task per claim — the PR-4 shape) against ``sharded`` (auto shard
sizing, many claims per task sharing one batched HMM kernel call).  The
``dispatch_comparison`` JSON section carries both, and the perf-smoke
gate checks them when the committed baseline has them.

Since PR 7 (schema 3) the process backend ships shard inputs through the
zero-copy shared-memory data plane by default, and the run measures the
payload collapse directly: the ``payload_bytes`` section compares bytes
pickled per task on the legacy path (``zero_copy=False``) against the
default zero-copy path, and asserts the >= 10x reduction the data plane
exists to deliver.  The perf-smoke gate holds ``zero_copy_per_task`` to
a hard byte ceiling on every CI leg, single- or multi-core.

Since PR 10 (schema 4) the payload records which HMM kernel backend
(``repro.hmm.kernels``) the run resolved under the ``kernel`` key, so a
baseline produced with the numba fast path is never compared against a
numpy-fallback run without the difference being visible in both files.

Knobs: ``REPRO_BENCH_SCALE`` scales report volume (CI smoke uses 0.01),
``REPRO_BENCH_SEED`` the generator seed.  The workload shape is fixed —
32 claims over six hours (≈360 ACS grid points per claim) — so per-claim
EM cost stays constant while scale moves the ACS accumulation cost.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.hmm.kernels import active_kernel_info
from repro.obs import write_chrome_trace
from repro.streams.events import PopulationConfig, ScenarioSpec
from repro.streams.generator import GeneratorConfig, generate_trace
from repro.system.sstd_system import DistributedSSTD, SSTDSystemConfig

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, report_lines

WORKER_COUNTS = (1, 2, 4)
REAL_BACKENDS = ("threads", "processes")
N_CLAIMS = 32
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
BENCH_TRACE = (
    Path(__file__).resolve().parent.parent / "BENCH_parallel_trace.json"
)


def _effective_cpu_count() -> int:
    """Cores this process may actually run on (cgroup/affinity aware).

    ``os.cpu_count()`` reports the machine; CI containers often pin the
    process to fewer cores, and scaling assertions must gate on what is
    really available.
    """
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _bench_trace():
    """A TD workload with enough per-claim grain to occupy 4 workers."""
    spec = ScenarioSpec(
        name="Parallel Backend Bench",
        duration=6 * 3600.0,
        n_reports=max(400, int(400_000 * BENCH_SCALE)),
        n_claims=N_CLAIMS,
        claim_texts=("the road is closed", "the station is open"),
        topic="bench",
        mean_truth_flips=1.0,
        claim_zipf_exponent=0.5,
        population=PopulationConfig(
            n_sources=max(50, int(20_000 * BENCH_SCALE))
        ),
    )
    return generate_trace(
        spec, seed=BENCH_SEED, config=GeneratorConfig(with_text=False)
    )


def _measure(
    reports,
    backend: str,
    workers: int,
    claims_per_shard: int | None = None,
    zero_copy: bool | None = None,
) -> dict:
    config = SSTDSystemConfig(
        n_workers=workers,
        backend=backend,
        control_enabled=False,
        claims_per_shard=claims_per_shard,
        zero_copy=zero_copy,
    )
    start = time.perf_counter()
    outcome = DistributedSSTD(config).run_batch(reports)
    wall = time.perf_counter() - start
    return {
        "makespan_s": outcome.makespan,
        "wall_s": wall,
        "throughput_rps": len(reports) / outcome.makespan,
        "n_jobs": outcome.n_jobs,
        "n_tasks": outcome.n_tasks,
        "payload_bytes_per_task": outcome.payload_bytes_per_task,
        "result_bytes_per_task": outcome.result_bytes_per_task,
        "estimates": outcome.estimates,
    }


def _batch_fit_stats(reports, workers: int) -> dict:
    """Shard-level ``sstd.batch_fit`` span stats from a traced run.

    The thread backend is used because process-backend workers keep
    their spans local (only metrics snapshots cross the pickle
    boundary); threads share the master's tracer, so each shard's
    batched-kernel span is visible here.
    """
    system = DistributedSSTD(
        SSTDSystemConfig(
            n_workers=workers,
            backend="threads",
            control_enabled=False,
            observability=True,
        )
    )
    system.run_batch(reports)
    spans = [
        e
        for e in system.obs.tracer.events()
        if e.name == "sstd.batch_fit" and e.kind == "span"
    ]
    if not spans:
        return {}
    durations = [e.duration for e in spans]
    attrs = [e.attr_dict() for e in spans]
    return {
        "span_count": len(spans),
        "total_s": round(sum(durations), 4),
        "mean_s": round(sum(durations) / len(durations), 4),
        "claims_total": sum(a.get("n_claims", 0) for a in attrs),
        "observations_total": sum(a.get("n_observations", 0) for a in attrs),
        "max_iterations": max(a.get("iterations", 0) for a in attrs),
    }


def _traced_run(reports, workers: int) -> dict:
    """One extra *traced* process-backend run, outside the timing loop.

    The throughput table above measures the disabled-path overhead (the
    perf-smoke gate compares it against the committed baseline); this run
    turns observability on to break the makespan into per-phase span
    timings and to export the Chrome trace CI uploads as an artifact.
    """
    system = DistributedSSTD(
        SSTDSystemConfig(
            n_workers=workers,
            backend="processes",
            control_enabled=False,
            observability=True,
        )
    )
    outcome = system.run_batch(reports)
    events = system.obs.tracer.events()
    task_durations = [
        e.duration for e in events if e.name == "wq.task" and e.kind == "span"
    ]
    phases: dict[str, float] = {"makespan_s": round(outcome.makespan, 4)}
    for name in ("system.submit", "system.run_batch"):
        spans = [e for e in events if e.name == name and e.kind == "span"]
        if spans:
            phases[name + "_s"] = round(sum(e.duration for e in spans), 4)
    if task_durations:
        phases["wq.task_total_s"] = round(sum(task_durations), 4)
        phases["wq.task_mean_s"] = round(
            sum(task_durations) / len(task_durations), 4
        )
        phases["wq.task_count"] = len(task_durations)
    write_chrome_trace(
        events,
        BENCH_TRACE,
        metrics=system.obs.metrics.snapshot(),
        clock_kind=system.obs.clock.kind,
    )
    return phases


def test_parallel_backend_throughput():
    trace = _bench_trace()
    reports = list(trace.reports)

    table: dict[str, dict[int, dict]] = {}
    final_estimates: dict[str, tuple] = {}
    for backend in REAL_BACKENDS:
        table[backend] = {}
        for workers in WORKER_COUNTS:
            measured = _measure(reports, backend, workers)
            final_estimates[backend] = measured.pop("estimates")
            table[backend][workers] = measured

    # Both real backends must produce bit-identical truth estimates.
    assert final_estimates["threads"] == final_estimates["processes"]

    max_workers = WORKER_COUNTS[-1]
    speedup = (
        table["processes"][max_workers]["throughput_rps"]
        / table["threads"][max_workers]["throughput_rps"]
    )

    # Dispatch-mode comparison at max workers on the process backend:
    # the table above already runs the default (auto-sharded) mode, so
    # one extra run covers the PR-4 shape of one task per claim.
    per_claim = _measure(
        reports, "processes", max_workers, claims_per_shard=1
    )
    assert per_claim.pop("estimates") == final_estimates["processes"]
    sharded = {
        key: value
        for key, value in table["processes"][max_workers].items()
    }
    dispatch_speedup = (
        sharded["throughput_rps"] / per_claim["throughput_rps"]
    )
    dispatch = {
        "backend": "processes",
        "workers": max_workers,
        "per_claim": per_claim,
        "sharded": sharded,
        "sharded_over_per_claim_speedup": round(dispatch_speedup, 4),
    }

    # Payload collapse: the same workload over the legacy pickled path.
    # Estimates must stay bit-identical — the data plane is a transport.
    pickled = _measure(
        reports, "processes", max_workers, zero_copy=False
    )
    assert pickled.pop("estimates") == final_estimates["processes"]
    zero_copy_bytes = sharded["payload_bytes_per_task"]
    pickled_bytes = pickled["payload_bytes_per_task"]
    payload_reduction = pickled_bytes / zero_copy_bytes
    payload_bytes = {
        "pickled_per_task": round(pickled_bytes, 1),
        "zero_copy_per_task": round(zero_copy_bytes, 1),
        "reduction_factor": round(payload_reduction, 2),
        "pickled_result_per_task": round(
            pickled["result_bytes_per_task"], 1
        ),
        "zero_copy_result_per_task": round(
            sharded["result_bytes_per_task"], 1
        ),
    }

    effective_cpus = _effective_cpu_count()
    phases = _traced_run(reports, max_workers)
    batch_fit = _batch_fit_stats(reports, max_workers)
    payload = {
        "schema": 4,
        "benchmark": "parallel_backend",
        "scale": BENCH_SCALE,
        "seed": BENCH_SEED,
        "cpu_count": os.cpu_count(),
        "effective_cpu_count": effective_cpus,
        "kernel": active_kernel_info(),
        "n_reports": len(reports),
        "n_claims": N_CLAIMS,
        "worker_counts": list(WORKER_COUNTS),
        "backends": {
            backend: {
                str(workers): {
                    key: round(value, 4) if isinstance(value, float) else value
                    for key, value in stats.items()
                }
                for workers, stats in per_backend.items()
            }
            for backend, per_backend in table.items()
        },
        "process_over_thread_speedup_at_max_workers": round(speedup, 4),
        "dispatch_comparison": {
            key: (
                {
                    k: round(v, 4) if isinstance(v, float) else v
                    for k, v in value.items()
                }
                if isinstance(value, dict)
                else value
            )
            for key, value in dispatch.items()
        },
        "payload_bytes": payload_bytes,
        "batch_fit_spans": batch_fit,
        "phases": phases,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    lines = [
        "Parallel backends — batch TD throughput (reports/s), threads vs processes",
        f"{len(reports):,} reports, {N_CLAIMS} claims, scale={BENCH_SCALE}, "
        f"cpus={os.cpu_count()} (effective {effective_cpus})",
        f"{'backend':>12}" + "".join(f"{w:>10}w" for w in WORKER_COUNTS),
    ]
    for backend in REAL_BACKENDS:
        lines.append(
            f"{backend:>12}"
            + "".join(
                f"{table[backend][w]['throughput_rps']:>10.1f} "
                for w in WORKER_COUNTS
            )
        )
    lines.append(
        f"processes/threads at {max_workers} workers: {speedup:.2f}x"
    )
    lines.append(
        f"dispatch at {max_workers} workers (processes): per-claim "
        f"{per_claim['throughput_rps']:.1f} rps ({per_claim['n_tasks']} "
        f"tasks) vs sharded {sharded['throughput_rps']:.1f} rps "
        f"({sharded['n_tasks']} tasks) = {dispatch_speedup:.2f}x"
    )
    lines.append(
        f"payload per task: pickled {pickled_bytes:.0f} B vs zero-copy "
        f"{zero_copy_bytes:.0f} B = {payload_reduction:.1f}x smaller"
    )
    report_lines("parallel_backend", lines)

    # Sanity: every configuration decoded the full claim set, and the
    # sharded default used strictly fewer tasks than claims.
    for backend in REAL_BACKENDS:
        for workers in WORKER_COUNTS:
            assert table[backend][workers]["n_jobs"] == N_CLAIMS
    assert per_claim["n_tasks"] == N_CLAIMS
    assert sharded["n_tasks"] < N_CLAIMS

    # Sharding exists to amortize dispatch overhead; it must never lose
    # to per-claim dispatch, and the sharded process backend must not
    # fall below its own single-worker throughput (the PR-4 failure
    # mode this PR removes).
    assert dispatch_speedup >= 0.95, (
        f"sharded dispatch {dispatch_speedup:.2f}x vs per-claim at "
        f"{max_workers} workers"
    )
    assert (
        table["processes"][max_workers]["throughput_rps"]
        >= 0.9 * table["processes"][1]["throughput_rps"]
    ), "sharded process backend slower at max workers than at 1 worker"

    # The zero-copy plane's reason to exist: shard payloads collapse to
    # ids + offsets.  Anything under 10x means reports leaked back into
    # the task pickle (acceptance criterion).
    assert payload_reduction >= 10.0, (
        f"zero-copy payload only {payload_reduction:.1f}x smaller than "
        f"pickled ({zero_copy_bytes:.0f} vs {pickled_bytes:.0f} B/task)"
    )

    # The headline claim only holds where the cores exist to back it:
    # with >= 4 effectively usable cores, processes must at least double
    # thread throughput at 4 workers (GIL removal; acceptance criterion).
    if effective_cpus >= 4:
        assert speedup >= 2.0, (
            f"process backend only {speedup:.2f}x over threads at "
            f"{max_workers} workers on {effective_cpus} effective cores"
        )
