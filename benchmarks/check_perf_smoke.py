"""CI perf-smoke gate: fail on large process-backend throughput regressions.

Compares a fresh ``BENCH_parallel.json`` (written by
``benchmarks/bench_parallel_backend.py``) against the committed baseline
and exits non-zero when the process backend's batch-TD throughput has
regressed by more than the allowed factor at any measured worker count,
or — when the baseline records a ``dispatch_comparison`` section — when
either dispatch mode (``per_claim`` / ``sharded``) has.

Usage::

    python benchmarks/check_perf_smoke.py [CURRENT_JSON] [BASELINE_JSON]

Defaults: ``BENCH_parallel.json`` at the repo root and
``benchmarks/baselines/perf_smoke_baseline.json``.

The tolerance is deliberately loose — ``REPRO_PERF_REGRESSION_FACTOR``
(default ``2.0``) — because CI runners vary in speed; the gate exists to
catch algorithmic regressions (an accidental re-serialization of the hot
path), not 10% noise.  Exit codes: 0 pass, 1 regression, 2 bad input.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

__all__ = ["main"]

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_CURRENT = REPO_ROOT / "BENCH_parallel.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "perf_smoke_baseline.json"
GATED_BACKEND = "processes"


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"perf-smoke: missing {path}", file=sys.stderr)
        raise SystemExit(2) from None
    except json.JSONDecodeError as exc:
        print(f"perf-smoke: unparsable {path}: {exc}", file=sys.stderr)
        raise SystemExit(2) from None


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    current_path = Path(argv[0]) if len(argv) > 0 else DEFAULT_CURRENT
    baseline_path = Path(argv[1]) if len(argv) > 1 else DEFAULT_BASELINE
    factor = float(os.environ.get("REPRO_PERF_REGRESSION_FACTOR", "2.0"))
    if factor < 1.0:
        print("perf-smoke: regression factor must be >= 1.0", file=sys.stderr)
        return 2

    current = _load(current_path)
    baseline = _load(baseline_path)

    if current.get("scale") != baseline.get("scale"):
        print(
            f"perf-smoke: scale mismatch — current {current.get('scale')} vs "
            f"baseline {baseline.get('scale')}; run the benchmark with "
            "REPRO_BENCH_SCALE matching the committed baseline",
            file=sys.stderr,
        )
        return 2

    current_stats = current.get("backends", {}).get(GATED_BACKEND, {})
    baseline_stats = baseline.get("backends", {}).get(GATED_BACKEND, {})
    if not current_stats or not baseline_stats:
        print(f"perf-smoke: no {GATED_BACKEND!r} stats to compare", file=sys.stderr)
        return 2

    failures = []
    print(
        f"perf-smoke: {GATED_BACKEND} throughput vs baseline "
        f"(allowed regression {factor:.1f}x)"
    )
    for workers in sorted(baseline_stats, key=int):
        base = baseline_stats[workers].get("throughput_rps")
        now = current_stats.get(workers, {}).get("throughput_rps")
        if base is None or now is None:
            print(f"  {workers}w: missing throughput_rps", file=sys.stderr)
            failures.append(workers)
            continue
        floor = base / factor
        verdict = "ok" if now >= floor else "REGRESSED"
        print(
            f"  {workers}w: {now:>10.1f} rps  (baseline {base:.1f}, "
            f"floor {floor:.1f})  {verdict}"
        )
        if now < floor:
            failures.append(workers)

    # Dispatch-mode gate: only when the committed baseline carries the
    # section (older baselines predate sharded dispatch).
    baseline_dispatch = baseline.get("dispatch_comparison", {})
    current_dispatch = current.get("dispatch_comparison", {})
    for mode in ("per_claim", "sharded"):
        base = baseline_dispatch.get(mode, {}).get("throughput_rps")
        if base is None:
            continue
        now = current_dispatch.get(mode, {}).get("throughput_rps")
        if now is None:
            print(f"  dispatch {mode}: missing throughput_rps", file=sys.stderr)
            failures.append(f"dispatch:{mode}")
            continue
        floor = base / factor
        verdict = "ok" if now >= floor else "REGRESSED"
        print(
            f"  dispatch {mode}: {now:>10.1f} rps  (baseline {base:.1f}, "
            f"floor {floor:.1f})  {verdict}"
        )
        if now < floor:
            failures.append(f"dispatch:{mode}")

    if failures:
        print(
            f"perf-smoke: throughput regressed >{factor:.1f}x at "
            f"{', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
