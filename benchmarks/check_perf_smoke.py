"""CI perf-smoke gate: fail on large process-backend perf regressions.

Compares a fresh ``BENCH_parallel.json`` (written by
``benchmarks/bench_parallel_backend.py``) against the committed baseline
``benchmarks/baselines/perf_smoke_baseline.json``.

Baselines are schema 3: measurements live under ``legs``, keyed by the
``effective_cpu_count`` they were recorded at.  (Current-run files are
schema 4 — they additionally carry the resolved HMM ``kernel`` backend —
but the gate reads the same keys from both.)  Legs exist because a
1-core runner
and a 4-core runner have *different* truths (on one core the process
backend legitimately trails threads; on many cores it must beat them).
The gate picks the leg matching the current run's effective cpu count —
exact match first, else the largest leg that does not exceed it — and
applies whichever checks that leg defines:

- ``backends.processes.<workers>.throughput_rps`` — throughput floors
  (``baseline / REPRO_PERF_REGRESSION_FACTOR``, default factor 2.0);
- ``dispatch_comparison.{per_claim,sharded}.throughput_rps`` — same
  floors for the two dispatch modes;
- ``payload_bytes_ceiling`` — **hard** byte ceiling on the zero-copy
  ``payload_bytes.zero_copy_per_task``; not scaled by the factor, since
  serialized bytes are deterministic, not runner-speed dependent;
- ``process_over_thread_floor`` — minimum
  ``process_over_thread_speedup_at_max_workers``; the multi-core legs
  use this to pin the parallelism win itself.

``REPRO_PERF_EXPECT_MIN_CPUS`` makes a leg self-verifying: when set, a
run on fewer effective cpus exits 2 (runner misconfiguration) instead of
silently gating against a smaller leg.

Usage::

    python benchmarks/check_perf_smoke.py [CURRENT_JSON] [BASELINE_JSON]

Throughput tolerance is deliberately loose because CI runners vary in
speed; the gate exists to catch algorithmic regressions (an accidental
re-serialization of the hot path), not 10% noise.  Exit codes: 0 pass,
1 regression, 2 bad input/environment.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

__all__ = ["main"]

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_CURRENT = REPO_ROOT / "BENCH_parallel.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "perf_smoke_baseline.json"
GATED_BACKEND = "processes"


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"perf-smoke: missing {path}", file=sys.stderr)
        raise SystemExit(2) from None
    except json.JSONDecodeError as exc:
        print(f"perf-smoke: unparsable {path}: {exc}", file=sys.stderr)
        raise SystemExit(2) from None


def _select_leg(legs: dict, effective_cpus: int) -> tuple[str, dict] | None:
    """The baseline leg for this runner: exact cpu match, else largest <=."""
    exact = legs.get(str(effective_cpus))
    if exact is not None:
        return str(effective_cpus), exact
    eligible = [int(key) for key in legs if int(key) <= effective_cpus]
    if not eligible:
        return None
    best = str(max(eligible))
    return best, legs[best]


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    current_path = Path(argv[0]) if len(argv) > 0 else DEFAULT_CURRENT
    baseline_path = Path(argv[1]) if len(argv) > 1 else DEFAULT_BASELINE
    factor = float(os.environ.get("REPRO_PERF_REGRESSION_FACTOR", "2.0"))
    if factor < 1.0:
        print("perf-smoke: regression factor must be >= 1.0", file=sys.stderr)
        return 2

    current = _load(current_path)
    baseline = _load(baseline_path)

    if current.get("scale") != baseline.get("scale"):
        print(
            f"perf-smoke: scale mismatch — current {current.get('scale')} vs "
            f"baseline {baseline.get('scale')}; run the benchmark with "
            "REPRO_BENCH_SCALE matching the committed baseline",
            file=sys.stderr,
        )
        return 2

    effective_cpus = int(current.get("effective_cpu_count") or 1)
    expect_min = os.environ.get("REPRO_PERF_EXPECT_MIN_CPUS")
    if expect_min is not None and effective_cpus < int(expect_min):
        print(
            f"perf-smoke: runner has {effective_cpus} effective cpus but "
            f"REPRO_PERF_EXPECT_MIN_CPUS={expect_min} — the multi-core leg "
            "cannot measure what it claims to; fix the runner/matrix",
            file=sys.stderr,
        )
        return 2

    legs = baseline.get("legs")
    if not isinstance(legs, dict) or not legs:
        print(
            "perf-smoke: baseline has no 'legs' section (schema 3 required)",
            file=sys.stderr,
        )
        return 2
    selected = _select_leg(legs, effective_cpus)
    if selected is None:
        print(
            f"perf-smoke: no baseline leg for {effective_cpus} effective "
            f"cpus (have {sorted(legs, key=int)})",
            file=sys.stderr,
        )
        return 2
    leg_key, leg = selected
    print(
        f"perf-smoke: {effective_cpus} effective cpus -> baseline leg "
        f"{leg_key!r} (allowed throughput regression {factor:.1f}x)"
    )

    failures: list[str] = []

    # --- throughput floors per worker count -------------------------------
    leg_stats = leg.get("backends", {}).get(GATED_BACKEND, {})
    current_stats = current.get("backends", {}).get(GATED_BACKEND, {})
    for workers in sorted(leg_stats, key=int):
        base = leg_stats[workers].get("throughput_rps")
        now = current_stats.get(workers, {}).get("throughput_rps")
        if base is None:
            continue
        if now is None:
            print(f"  {workers}w: missing throughput_rps", file=sys.stderr)
            failures.append(f"{workers}w")
            continue
        floor = base / factor
        verdict = "ok" if now >= floor else "REGRESSED"
        print(
            f"  {workers}w: {now:>10.1f} rps  (baseline {base:.1f}, "
            f"floor {floor:.1f})  {verdict}"
        )
        if now < floor:
            failures.append(f"{workers}w")

    # --- dispatch-mode floors ---------------------------------------------
    leg_dispatch = leg.get("dispatch_comparison", {})
    current_dispatch = current.get("dispatch_comparison", {})
    for mode in ("per_claim", "sharded"):
        base = leg_dispatch.get(mode, {}).get("throughput_rps")
        if base is None:
            continue
        now = current_dispatch.get(mode, {}).get("throughput_rps")
        if now is None:
            print(f"  dispatch {mode}: missing throughput_rps", file=sys.stderr)
            failures.append(f"dispatch:{mode}")
            continue
        floor = base / factor
        verdict = "ok" if now >= floor else "REGRESSED"
        print(
            f"  dispatch {mode}: {now:>10.1f} rps  (baseline {base:.1f}, "
            f"floor {floor:.1f})  {verdict}"
        )
        if now < floor:
            failures.append(f"dispatch:{mode}")

    # --- zero-copy payload ceiling (hard, factor-independent) -------------
    ceiling = leg.get("payload_bytes_ceiling")
    if ceiling is not None:
        now = current.get("payload_bytes", {}).get("zero_copy_per_task")
        if now is None:
            print(
                "  payload: missing payload_bytes.zero_copy_per_task",
                file=sys.stderr,
            )
            failures.append("payload")
        else:
            verdict = "ok" if now <= ceiling else "EXCEEDED"
            print(
                f"  payload: {now:>10.1f} B/task  (hard ceiling {ceiling}) "
                f" {verdict}"
            )
            if now > ceiling:
                failures.append("payload")

    # --- process-over-thread floor ----------------------------------------
    pvt_floor = leg.get("process_over_thread_floor")
    if pvt_floor is not None:
        now = current.get("process_over_thread_speedup_at_max_workers")
        if now is None:
            print(
                "  process/threads: missing speedup measurement",
                file=sys.stderr,
            )
            failures.append("process_over_thread")
        else:
            verdict = "ok" if now >= pvt_floor else "BELOW FLOOR"
            print(
                f"  process/threads: {now:>6.2f}x  (floor {pvt_floor}) "
                f" {verdict}"
            )
            if now < pvt_floor:
                failures.append("process_over_thread")

    if failures:
        print(
            f"perf-smoke: gate failed at {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
