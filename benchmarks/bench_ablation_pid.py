"""Ablation A3 — PID gain tuning vs deadline hit rate (paper §V-A3).

The paper tuned the controller by sweeping each coefficient from 0.0 to
3.0 and picking "the set of values when the tasks in the system meet
the most deadlines", landing on (Kp, Ki, Kd) = (1.2, 0.3, 0.2).  This
ablation reruns the interval experiment under several gain settings —
including control fully off — and reports the hit rates.
"""

from __future__ import annotations

from repro.control import PIDGains
from repro.system import DTMConfig, DistributedSSTD, SSTDSystemConfig
from repro.workqueue import CostModel

from benchmarks.conftest import report_lines

GAIN_SETTINGS = {
    "off (no control)": None,
    "P only (1.2,0,0)": PIDGains(kp=1.2, ki=0.0, kd=0.0),
    "paper (1.2,.3,.2)": PIDGains(kp=1.2, ki=0.3, kd=0.2),
    "aggressive (3,1,1)": PIDGains(kp=3.0, ki=1.0, kd=1.0),
    "sluggish (.1,0,0)": PIDGains(kp=0.1, ki=0.0, kd=0.0),
}
N_INTERVALS = 100
#: Per-report virtual cost; the deadline is deliberately tight relative
#: to the bursty interval volumes so control has something to do.
UNIT_COST = 2e-4


def _mean_uncontrolled_time(trace) -> float:
    """Mean interval execution time with a static 2-worker pool."""
    config = SSTDSystemConfig(
        n_workers=2,
        max_workers=2,
        deadline=1.0,
        cost_model=CostModel(
            init_time=0.01, unit_cost=UNIT_COST, transfer_cost=0.0
        ),
        control_enabled=False,
        dtm=DTMConfig(elastic=False),
    )
    outcome = DistributedSSTD(config).run_intervals(
        trace, n_intervals=N_INTERVALS, deadline=1.0
    )
    return outcome.tracker.mean_execution_time


def _hit_rate(trace, gains, deadline: float) -> float:
    config = SSTDSystemConfig(
        n_workers=2,
        max_workers=16,
        deadline=deadline,
        cost_model=CostModel(
            init_time=0.01, unit_cost=UNIT_COST, transfer_cost=0.0
        ),
        control_enabled=gains is not None,
        dtm=DTMConfig(
            elastic=True,
            pid_gains=gains or PIDGains(kp=0.0, ki=0.0, kd=0.0),
        ),
    )
    system = DistributedSSTD(config)
    outcome = system.run_intervals(
        trace, n_intervals=N_INTERVALS, deadline=deadline
    )
    return outcome.hit_rate


def test_pid_gain_ablation(benchmark, boston_trace):
    # Tight deadline: 80% of the mean uncontrolled interval time, so
    # the static pool misses most intervals while a controller that
    # scales the pool and rebalances priorities can catch up.
    deadline = 0.8 * _mean_uncontrolled_time(boston_trace)

    def run():
        return {
            name: _hit_rate(boston_trace, gains, deadline)
            for name, gains in GAIN_SETTINGS.items()
        }

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Ablation A3 — PID gains vs deadline hit rate (Boston trace)",
        f"(deadline {deadline:.2f}s, 100 intervals, 2 workers elastic to 16)",
        f"{'Gains':<20}{'Hit rate':>9}",
    ]
    for name, rate in table.items():
        lines.append(f"{name:<20}{rate:>9.1%}")
    report_lines("ablation_pid", lines)

    # Feedback control is what matters: every controlled setting meets
    # far more deadlines than the uncontrolled pool.  (In this simulated
    # actuator, scaling up is cheap and unpenalized, so even a tiny P
    # gain saturates the benefit; the paper's testbed — where worker
    # startup competes for shared Condor slots — differentiated the
    # gains more.  Recorded in EXPERIMENTS.md.)
    off = table["off (no control)"]
    assert table["paper (1.2,.3,.2)"] > off + 0.3
    for name, rate in table.items():
        if name != "off (no control)":
            assert rate > off, name
