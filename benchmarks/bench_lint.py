"""Lint-engine wall-time benchmark: cold vs warm cache over src/repro.

The whole-program layers added in PRs 6–8 (call graph, lock-order
fixpoint, exception-escape fixpoint, resource-lifecycle walker) are
only sustainable if the ``.lint_cache`` keeps the *warm* developer loop
fast: an unchanged tree should re-lint from cached summaries and
findings in a fraction of the cold time.  This benchmark measures both
runs against a fresh cache directory and writes ``BENCH_lint.json``:

- ``cold_s`` / ``warm_s`` — wall time of the first (empty-cache) and
  second (fully warm) run;
- ``warm_summary_hit_rate`` / ``warm_findings_hit_rate`` — cache
  effectiveness on the warm run (1.0 = nothing re-analyzed);
- ``files`` / ``findings`` — scope sanity numbers.

``benchmarks/check_lint_perf.py`` gates the warm time against the
committed budget in ``benchmarks/baselines/lint_perf_baseline.json``.

Usage::

    python benchmarks/bench_lint.py [--paths src/repro] [--out BENCH_lint.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

__all__ = ["main", "run_once"]

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.devtools.lint import all_rules, lint_paths  # noqa: E402
from repro.devtools.lint.cache import LintCache  # noqa: E402


def run_once(paths: list[Path], cache_dir: Path) -> dict:
    """One timed lint pass; returns wall time plus cache stats."""
    stats: dict = {}
    cache = LintCache(cache_dir)
    start = time.perf_counter()
    findings = lint_paths(paths, rules=all_rules(), cache=cache, stats=stats)
    elapsed = time.perf_counter() - start
    return {
        "elapsed_s": elapsed,
        "findings": len(findings),
        "files": stats.get("files_seen", 0),
        "summary_hits": stats.get("summary_hits", 0),
        "summary_misses": stats.get("summary_misses", 0),
        "findings_hits": stats.get("findings_hits", 0),
        "findings_misses": stats.get("findings_misses", 0),
    }


def _hit_rate(hits: int, misses: int) -> float:
    total = hits + misses
    return hits / total if total else 0.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--paths",
        nargs="*",
        type=Path,
        default=[REPO_ROOT / "src" / "repro"],
        help="paths to lint (default: src/repro)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_lint.json",
        help="output JSON path (default: BENCH_lint.json)",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="lint_bench_cache_") as tmp:
        cache_dir = Path(tmp)
        cold = run_once(args.paths, cache_dir)
        warm = run_once(args.paths, cache_dir)

    payload = {
        "schema": 1,
        "paths": [str(p) for p in args.paths],
        "files": cold["files"],
        "findings": cold["findings"],
        "cold_s": round(cold["elapsed_s"], 4),
        "warm_s": round(warm["elapsed_s"], 4),
        "warm_over_cold": round(
            warm["elapsed_s"] / cold["elapsed_s"], 4
        )
        if cold["elapsed_s"]
        else 0.0,
        "warm_summary_hit_rate": round(
            _hit_rate(warm["summary_hits"], warm["summary_misses"]), 4
        ),
        "warm_findings_hit_rate": round(
            _hit_rate(warm["findings_hits"], warm["findings_misses"]), 4
        ),
        "cold_summary_hits": cold["summary_hits"],
        "warm_summary_hits": warm["summary_hits"],
        "warm_summary_misses": warm["summary_misses"],
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(
        f"lint bench: {payload['files']} files, cold {payload['cold_s']}s, "
        f"warm {payload['warm_s']}s, warm summary hit rate "
        f"{payload['warm_summary_hit_rate']:.0%} -> {args.out}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
