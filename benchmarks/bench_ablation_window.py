"""Ablation A1 — sliding-window size vs truth discovery accuracy.

Paper Section III-B: "The size of the sliding window is decided based
on the expected change frequency of the truth from the observed event."
This ablation makes that design choice measurable: on the College
Football trace (fast truth flips) accuracy peaks at a moderate window —
too small and the ACS is noise, too large and the window straddles
truth transitions and blurs them.  The Boston trace (slow flips)
tolerates much larger windows.
"""

from __future__ import annotations

from repro.baselines import EvaluationGrid
from repro.baselines.registry import SSTDAlgorithm
from repro.core import evaluate_estimates
from repro.core.acs import ACSConfig
from repro.core.sstd import SSTDConfig

from benchmarks.conftest import report_lines

#: Window sizes in hours.
WINDOW_HOURS = (0.5, 1.5, 4.0, 12.0, 36.0)
GRID_STEP = 1800.0


def _accuracy(trace, window_seconds: float) -> float:
    grid = EvaluationGrid(trace.start, trace.end, step=GRID_STEP)
    config = SSTDConfig(
        acs=ACSConfig(
            window=window_seconds, step=max(window_seconds / 2, GRID_STEP / 2)
        )
    )
    algorithm = SSTDAlgorithm(config=config)
    estimates = algorithm.discover(trace.reports, grid)
    return evaluate_estimates("SSTD", estimates, trace.timelines).accuracy


def test_window_ablation(benchmark, football_trace, boston_trace):
    def run():
        table = {}
        for name, trace in (
            ("College Football", football_trace),
            ("Boston Bombing", boston_trace),
        ):
            table[name] = [
                _accuracy(trace, hours * 3600.0) for hours in WINDOW_HOURS
            ]
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Ablation A1 — ACS sliding-window size vs SSTD accuracy",
        f"{'Trace':<18}" + "".join(f"{h:>8.1f}h" for h in WINDOW_HOURS),
    ]
    for name, accs in table.items():
        lines.append(f"{name:<18}" + "".join(f"{a:>9.3f}" for a in accs))
    report_lines("ablation_window", lines)

    football = table["College Football"]
    boston = table["Boston Bombing"]
    # The fast-flipping trace must punish the huge window relative to
    # its best setting much harder than the slow trace does.
    football_drop = max(football) - football[-1]
    boston_drop = max(boston) - boston[-1]
    assert football_drop > boston_drop
    # And a moderate window must beat the extremes on football.
    assert max(football[1:4]) >= football[0]
    assert max(football[1:4]) > football[-1]
