"""CI gate for the HMM kernel backends benchmark.

Reads ``BENCH_kernels.json`` (written by ``benchmarks/bench_kernels.py``)
and enforces the PR-10 acceptance criterion on the numba-enabled CI leg:

- with ``REPRO_KERNEL_EXPECT_NUMBA=1`` the run must have had real numba
  kernels (exit 2 if the leg silently fell back to numpy — that means
  the CI environment broke, not the code) and the worst-shape
  kernel-level speedup (``kernel_speedup_min``: numpy total over numba
  total for fit+decode+posteriors) must clear the floor —
  ``REPRO_KERNEL_MIN_SPEEDUP``, default 3.0;
- without it (the numpy-fallback legs) the gate only checks that the
  benchmark ran and recorded the numpy backend; the numpy path's
  absolute performance is held by the existing perf-smoke gate
  (``benchmarks/check_perf_smoke.py``), not here.

Usage::

    python benchmarks/check_kernels.py [CURRENT_JSON]

Exit codes: 0 pass, 1 speedup below floor, 2 bad input/environment.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

__all__ = ["main"]

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_CURRENT = REPO_ROOT / "BENCH_kernels.json"


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"check-kernels: missing {path}", file=sys.stderr)
        raise SystemExit(2) from None
    except json.JSONDecodeError as exc:
        print(f"check-kernels: unparsable {path}: {exc}", file=sys.stderr)
        raise SystemExit(2) from None


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    current_path = Path(argv[0]) if len(argv) > 0 else DEFAULT_CURRENT
    payload = _load(current_path)
    info = payload.get("kernel", {})
    expect_numba = os.environ.get("REPRO_KERNEL_EXPECT_NUMBA") == "1"
    floor = float(os.environ.get("REPRO_KERNEL_MIN_SPEEDUP", "3.0"))

    if not expect_numba:
        backend = info.get("backend")
        if backend not in ("numpy", "numba"):
            print(
                f"check-kernels: no resolved backend in {current_path}",
                file=sys.stderr,
            )
            return 2
        print(
            f"check-kernels: numpy-fallback leg, backend={backend!r} — "
            "absolute perf held by the perf-smoke gate"
        )
        return 0

    if not info.get("numba_available"):
        print(
            "check-kernels: REPRO_KERNEL_EXPECT_NUMBA=1 but the benchmark "
            "ran without numba — the CI leg's environment is broken",
            file=sys.stderr,
        )
        return 2

    speedup = payload.get("kernel_speedup_min")
    if speedup is None:
        print(
            "check-kernels: numba was available but no kernel_speedup_min "
            "was recorded",
            file=sys.stderr,
        )
        return 2

    shapes = payload.get("shapes", {})
    for label, entry in shapes.items():
        per_shape = entry.get("numba_over_numpy_speedup")
        if per_shape is not None:
            print(f"  {label}: numba {per_shape:.2f}x over numpy")
    discover = payload.get("discover_speedup")
    if discover is not None:
        print(f"  SSTD.discover: numba {discover:.2f}x over numpy")

    verdict = "ok" if speedup >= floor else "BELOW FLOOR"
    print(
        f"check-kernels: worst-shape kernel speedup {speedup:.2f}x "
        f"(floor {floor:.1f}x)  {verdict}"
    )
    if speedup < floor:
        print(
            f"check-kernels: fused numba kernels only {speedup:.2f}x over "
            f"the numpy reference — the compiled fast path regressed",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
