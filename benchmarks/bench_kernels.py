"""Kernel backends head to head — numpy reference vs fused numba loops.

PR 10 moved the batched HMM time recursions behind the pluggable
backend layer :mod:`repro.hmm.kernels`.  This benchmark measures what
the compiled backend actually buys, at three levels:

- **model ops** — wall time of ``fit`` / ``decode`` (Viterbi) /
  ``state_posteriors`` on ragged stacks at several N x T x K shapes,
  per backend, plus the numba-over-numpy speedup per shape;
- **end to end** — ``SSTD.discover`` reports/second over a generated
  trace with each backend forced via ``SSTDConfig.kernel``;
- **threads scaling** — the same decode workload fanned over a thread
  pool: the numba kernels run under ``nogil=True``, so this is the one
  configuration where the ``threads`` backend stops being serialized
  by CPU-bound Python (the numpy rows chart the GIL wall for
  contrast).

Backends are bit-identical by contract, and the benchmark re-asserts
it on every timed shape before trusting the timings.

Results land in ``BENCH_kernels.json`` at the repo root (consumed by
``benchmarks/check_kernels.py``, the CI gate on the numba leg) and in
``benchmarks/results/kernels.txt``.  Without numba installed the
benchmark still runs and records the numpy columns — the JSON's
``kernel.numba_available`` field tells the gate which case it is
looking at.

Knobs: ``REPRO_BENCH_SCALE`` scales the discover-trace report volume,
``REPRO_BENCH_SEED`` the generator seed.  The op shapes are fixed so
kernel timings stay comparable across runs.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.core.sstd import SSTD, SSTDConfig
from repro.hmm import BatchGaussianHMM, stack_ragged
from repro.hmm.kernels import active_kernel_info, available_backends
from repro.streams.events import PopulationConfig, ScenarioSpec
from repro.streams.generator import GeneratorConfig, generate_trace

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, report_lines

#: (n_seqs, t_max, n_states) stacks the model ops are timed on.  The
#: first is the SSTD production shape (32 claims, ~360 grid points,
#: 2-state truth chain); the others vary batch width and state count.
SHAPES = ((32, 360, 2), (8, 64, 2), (64, 128, 3))
REPEATS = 3
EM_ITER = 10
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


def _effective_cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _make_sequences(n: int, t: int, seed: int = 0) -> list[np.ndarray]:
    """Ragged two-regime sequences (the SSTD workload shape)."""
    rng = np.random.default_rng(seed)
    sequences = []
    for _ in range(n):
        length = int(rng.integers(max(2, t // 2), t + 1))
        flip = length // 2
        sequences.append(
            np.concatenate(
                [
                    rng.normal(-1.0, 0.3, size=flip),
                    rng.normal(1.0, 0.3, size=length - flip),
                ]
            )
        )
    return sequences


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _time_model_ops(backend: str, n: int, t: int, k: int) -> dict:
    """Best-of-N wall times for fit / decode / posteriors on one shape."""
    observations, lengths, _ = stack_ragged(_make_sequences(n, t))

    def fresh():
        return BatchGaussianHMM(n, k, kernel=backend)

    model = fresh()
    model.fit(observations, lengths, max_iter=EM_ITER, seed=0)
    emissions = model.emission_probabilities(observations)
    timings = {
        "fit_s": _best_of(
            lambda: fresh().fit(
                observations, lengths, max_iter=EM_ITER, seed=0
            )
        ),
        "decode_s": _best_of(lambda: model.viterbi(emissions, lengths)),
        "posteriors_s": _best_of(
            lambda: model.state_posteriors(
                observations, lengths, emissions=emissions
            )
        ),
    }
    timings["total_s"] = sum(timings.values())
    return timings


def _assert_shape_parity(n: int, t: int, k: int) -> None:
    """Timings are only comparable if the outputs are the same bits."""
    observations, lengths, _ = stack_ragged(_make_sequences(n, t))
    outputs = {}
    for backend in ("numpy", "numba"):
        model = BatchGaussianHMM(n, k, kernel=backend)
        model.fit(observations, lengths, max_iter=EM_ITER, seed=0)
        emissions = model.emission_probabilities(observations)
        states, joints = model.viterbi(emissions, lengths)
        posteriors = model.state_posteriors(
            observations, lengths, emissions=emissions
        )
        outputs[backend] = (model.means, states, joints, posteriors)
    for ref, got in zip(outputs["numpy"], outputs["numba"]):
        assert (ref == got).all(), f"backend mismatch at N{n}xT{t}xK{k}"


def _discover_trace():
    spec = ScenarioSpec(
        name="Kernel Bench",
        duration=6 * 3600.0,
        n_reports=max(400, int(400_000 * BENCH_SCALE)),
        n_claims=32,
        claim_texts=("the road is closed", "the station is open"),
        topic="bench",
        mean_truth_flips=1.0,
        claim_zipf_exponent=0.5,
        population=PopulationConfig(
            n_sources=max(50, int(20_000 * BENCH_SCALE))
        ),
    )
    return generate_trace(
        spec, seed=BENCH_SEED, config=GeneratorConfig(with_text=False)
    )


def _time_discover(reports, backend: str) -> dict:
    engine = SSTD(SSTDConfig(kernel=backend))
    engine.discover(reports)  # warm (JIT compile on the numba path)
    wall = _best_of(lambda: SSTD(SSTDConfig(kernel=backend)).discover(reports))
    return {"wall_s": round(wall, 4), "rps": round(len(reports) / wall, 1)}


def _time_thread_pool(backend: str, workers: int, shards: int = 8) -> float:
    """Decode ``shards`` independent stacks across a thread pool.

    One stack per shard, all CPU-bound: with the GIL held (numpy
    backend, or interpreted numba) adding threads cannot help; the
    compiled nogil kernels let them run in parallel.
    """
    n, t, k = 16, 256, 2
    stacks = []
    for shard in range(shards):
        observations, lengths, _ = stack_ragged(
            _make_sequences(n, t, seed=shard)
        )
        model = BatchGaussianHMM(n, k, kernel=backend)
        emissions = model.emission_probabilities(observations)
        stacks.append((model, emissions, lengths))

    def decode(item):
        model, emissions, lengths = item
        return model.viterbi(emissions, lengths)

    for item in stacks:  # warm outside the timed region
        decode(item)

    def run():
        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(decode, stacks))

    return _best_of(run)


def test_kernel_backends():
    backends = available_backends()
    info = active_kernel_info()
    effective_cpus = _effective_cpu_count()

    shapes: dict[str, dict] = {}
    for n, t, k in SHAPES:
        label = f"N{n}xT{t}xK{k}"
        if "numba" in backends:
            _assert_shape_parity(n, t, k)
        entry = {
            backend: {
                key: round(value, 5)
                for key, value in _time_model_ops(backend, n, t, k).items()
            }
            for backend in backends
        }
        if "numba" in backends:
            entry["numba_over_numpy_speedup"] = round(
                entry["numpy"]["total_s"] / entry["numba"]["total_s"], 2
            )
        shapes[label] = entry

    trace = _discover_trace()
    reports = list(trace.reports)
    discover = {
        backend: _time_discover(reports, backend) for backend in backends
    }

    pool_workers = min(4, effective_cpus) if effective_cpus >= 2 else None
    threads_scaling: dict[str, object] = {}
    if pool_workers:
        threads_scaling["workers"] = pool_workers
        for backend in backends:
            serial = _time_thread_pool(backend, 1)
            pooled = _time_thread_pool(backend, pool_workers)
            threads_scaling[backend] = {
                "serial_s": round(serial, 5),
                "pooled_s": round(pooled, 5),
                "speedup": round(serial / pooled, 2),
            }

    payload = {
        "schema": 1,
        "benchmark": "kernels",
        "scale": BENCH_SCALE,
        "seed": BENCH_SEED,
        "cpu_count": os.cpu_count(),
        "effective_cpu_count": effective_cpus,
        "kernel": info,
        "backends_measured": list(backends),
        "em_iterations": EM_ITER,
        "shapes": shapes,
        "discover": {
            "n_reports": len(reports),
            **discover,
        },
        "threads_scaling": threads_scaling,
    }
    if "numba" in backends:
        payload["kernel_speedup_min"] = min(
            entry["numba_over_numpy_speedup"] for entry in shapes.values()
        )
        payload["discover_speedup"] = round(
            discover["numba"]["rps"] / discover["numpy"]["rps"], 2
        )
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    lines = [
        "HMM kernel backends — numpy reference vs fused numba loops",
        f"backends: {', '.join(backends)} (auto resolves to "
        f"{info['backend']}), numba {info['numba_version'] or 'absent'}, "
        f"cpus={os.cpu_count()} (effective {effective_cpus})",
        f"{'shape':>14}{'op':>12}"
        + "".join(f"{b:>12}" for b in backends)
        + ("   speedup" if "numba" in backends else ""),
    ]
    for label, entry in shapes.items():
        for op in ("fit_s", "decode_s", "posteriors_s"):
            row = f"{label:>14}{op[:-2]:>12}" + "".join(
                f"{entry[b][op] * 1e3:>10.2f}ms" for b in backends
            )
            lines.append(row)
        if "numba" in backends:
            lines.append(
                f"{label:>14}{'total':>12}"
                + "".join(
                    f"{entry[b]['total_s'] * 1e3:>10.2f}ms" for b in backends
                )
                + f"{entry['numba_over_numpy_speedup']:>9.2f}x"
            )
    lines.append(
        "SSTD.discover: "
        + ", ".join(
            f"{b} {discover[b]['rps']:.0f} rps" for b in backends
        )
    )
    if pool_workers:
        lines.append(
            f"threads-pool decode x{pool_workers}: "
            + ", ".join(
                f"{b} {threads_scaling[b]['speedup']:.2f}x" for b in backends
            )
            + "  (nogil kernels parallelize; GIL-bound numpy cannot)"
        )
    report_lines("kernels", lines)
