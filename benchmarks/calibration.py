"""Throughput calibration for the system-side figures.

Figures 4-6 compare *processing time* across schemes.  The paper ran on
2017 hardware with the authors' implementations; our implementations on
this machine have different absolute costs.  To keep the comparisons
internally consistent we measure each scheme's real throughput
(reports/second, wall clock) on a calibration slice of the actual trace,
and feed those measured service rates into the replay/queueing models.

This is a *measurement*, not an assumption: rerunning on different
hardware recalibrates everything automatically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.baselines import EvaluationGrid, TruthDiscoveryAlgorithm
from repro.core.types import Report


@dataclass(frozen=True, slots=True)
class SchemeProfile:
    """Measured cost profile of one truth-discovery scheme.

    Attributes:
        name: Scheme name.
        seconds_per_report: Marginal processing cost per report.
        fixed_seconds: Fixed cost per invocation — per poll for batch
            schemes, per stream-second (the tick: filtering/decoding all
            claims) for streaming schemes.
        streaming: Whether the scheme processes increments (True) or
            must recompute over accumulated data (False).
    """

    name: str
    seconds_per_report: float
    fixed_seconds: float
    streaming: bool

    def batch_cost(self, n_reports: int) -> float:
        """Cost of one invocation over ``n_reports``."""
        return self.fixed_seconds + self.seconds_per_report * n_reports


def calibrate(
    algorithm: TruthDiscoveryAlgorithm,
    reports: Sequence[Report],
    grid: EvaluationGrid,
    streaming: bool,
    fractions: Sequence[float] = (0.25, 0.5, 1.0),
    repeats: int = 2,
) -> SchemeProfile:
    """Measure an algorithm's (fixed, per-report) cost by linear fit.

    Times the algorithm on several prefix sizes (best of ``repeats``
    runs each, to shed scheduler noise) and least-squares fits
    ``time = fixed + per_report * n``.
    """
    import numpy as np

    if not reports:
        raise ValueError("calibration needs reports")
    sizes = sorted({max(1, int(len(reports) * f)) for f in fractions})
    if len(sizes) < 2:
        raise ValueError("calibration needs at least two distinct sizes")

    points = []
    for size in sizes:
        prefix = list(reports[:size])
        best = min(
            _time_once(algorithm, prefix, grid) for _ in range(repeats)
        )
        points.append((size, best))

    ns = np.array([n for n, _ in points], dtype=float)
    ts = np.array([t for _, t in points])
    per_report, fixed = np.polyfit(ns, ts, 1)
    return SchemeProfile(
        name=algorithm.name,
        seconds_per_report=max(float(per_report), 1e-9),
        fixed_seconds=max(float(fixed), 0.0),
        streaming=streaming,
    )


def _time_once(algorithm, reports, grid) -> float:
    t0 = time.perf_counter()
    algorithm.discover(reports, grid)
    return time.perf_counter() - t0


def arrival_counts(
    trace, speed: float, duration: float
) -> list[tuple[float, int]]:
    """Per-second arrival counts for a replay at ``speed`` reports/s.

    Preserves the trace's own burstiness pattern (rescaled onto the
    stream duration) and scales the per-second counts so the total is
    ``speed * duration`` — this lets the queueing experiments sweep
    rates beyond the raw trace volume without materializing millions of
    Report objects.
    """
    import numpy as np

    if speed <= 0 or duration <= 0:
        raise ValueError("speed and duration must be > 0")
    timestamps = np.array([r.timestamp for r in trace.reports])
    if timestamps.size == 0:
        raise ValueError("trace has no reports")
    span = max(timestamps.max() - timestamps.min(), 1e-9)
    rescaled = (timestamps - timestamps.min()) / span * duration
    n_bins = max(1, int(duration))
    counts, _ = np.histogram(rescaled, bins=n_bins, range=(0.0, duration))
    target = speed * duration
    scaled = counts.astype(float) * (target / counts.sum())
    result = []
    carry = 0.0
    for second, value in enumerate(scaled):
        carry += value
        emit = int(carry)
        carry -= emit
        result.append((float(second + 1), emit))
    return result


def fit_streaming_profile(
    name: str,
    measurements: Sequence[tuple[int, float, float]],
) -> SchemeProfile:
    """Solve (fixed per-second, per-report) costs from two runs.

    ``measurements`` holds ``(n_reports, n_seconds, elapsed_seconds)``
    for two runs at different rates over the same wall duration.
    """
    (n1, s1, e1), (n2, s2, e2) = measurements[0], measurements[-1]
    if n1 == n2:
        raise ValueError("need two runs at different rates")
    per_report = max((e2 - e1) / (n2 - n1), 1e-9)
    fixed = max((e1 - per_report * n1) / max(s1, 1.0), 0.0)
    return SchemeProfile(
        name=name,
        seconds_per_report=per_report,
        fixed_seconds=fixed,
        streaming=True,
    )


def queue_completion_time(
    arrivals: Sequence[tuple[float, int]],
    profile: SchemeProfile,
    chunk_seconds: float = 5.0,
) -> float:
    """Total running time of a single-server scheme fed by a stream.

    ``arrivals`` is a list of ``(arrival_time, n_reports)`` batches (one
    per stream second).  Batch schemes poll every ``chunk_seconds`` and
    recompute over ALL data received so far (they are batch precisely
    because source-reliability estimation needs the accumulated
    history); streaming schemes process each increment as it arrives.
    Service is single-server FIFO: work queues up when the scheme is
    slower than the stream.

    Returns the completion time of the last piece of work — the paper's
    "total running time" for a 100 s stream (Figure 5).
    """
    server_free = 0.0
    total_seen = 0
    if profile.streaming:
        # One tick per stream second: fixed decode cost plus the
        # marginal cost of that second's arrivals.
        for arrival_time, n_reports in arrivals:
            start = max(arrival_time, server_free)
            server_free = start + profile.batch_cost(n_reports)
        return server_free

    pending = 0
    next_poll = chunk_seconds
    last_arrival = 0.0
    for arrival_time, n_reports in arrivals:
        pending += n_reports
        last_arrival = max(last_arrival, arrival_time)
        while next_poll <= arrival_time:
            if pending > 0:
                total_seen += pending
                pending = 0
                start = max(next_poll, server_free)
                server_free = start + profile.batch_cost(total_seen)
            next_poll += chunk_seconds
    if pending > 0:
        total_seen += pending
        start = max(next_poll, server_free, last_arrival)
        server_free = start + profile.batch_cost(total_seen)
    return server_free
