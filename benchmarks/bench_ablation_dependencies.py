"""Ablation A4 — claim-dependency extension (paper §VII).

Measures what evidence sharing across a claim-correlation graph buys on
sparse claims: a synthetic population of claim *pairs* where one member
is richly observed and its partner nearly silent (the long-tail regime
the paper's sparsity discussion targets).  Truths within a pair are
perfectly correlated by construction.

Reported: truth-discovery accuracy on the sparse members with plain
per-claim SSTD vs :class:`repro.core.CorrelatedSSTD` at several blend
weights.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    ClaimDependencyGraph,
    CorrelatedSSTD,
    CorrelationConfig,
    SSTD,
    SSTDConfig,
    evaluate_estimates,
)
from repro.core.acs import ACSConfig
from repro.core.types import Attitude, Report, TruthLabel, TruthTimeline, TruthValue

from benchmarks.conftest import report_lines

N_PAIRS = 12
DURATION = 20_000.0
CONFIG = SSTDConfig(acs=ACSConfig(window=800.0, step=400.0))


def build_paired_dataset(seed: int = 0):
    """(reports, timelines, graph, sparse_claim_ids)."""
    rng = np.random.default_rng(seed)
    reports: list[Report] = []
    timelines: dict[str, TruthTimeline] = {}
    edges = []
    sparse_ids = []
    for pair in range(N_PAIRS):
        rich = f"rich-{pair:02d}"
        sparse = f"sparse-{pair:02d}"
        flip_at = float(rng.uniform(0.25, 0.75) * DURATION)
        starts_true = bool(rng.random() < 0.5)
        values = (
            (TruthValue.TRUE, TruthValue.FALSE)
            if starts_true
            else (TruthValue.FALSE, TruthValue.TRUE)
        )
        for claim in (rich, sparse):
            timelines[claim] = TruthTimeline(
                claim,
                [
                    TruthLabel(claim, 0.0, flip_at, values[0]),
                    TruthLabel(claim, flip_at, DURATION, values[1]),
                ],
            )
        edges.append((rich, sparse, 1.0))
        sparse_ids.append(sparse)

        for k in range(900):
            t = float(rng.uniform(0, DURATION))
            truth = timelines[rich].value_at(t) is TruthValue.TRUE
            says = truth if rng.random() < 0.85 else not truth
            reports.append(
                Report(
                    f"{rich}-s{k % 200}", rich, t,
                    attitude=Attitude.AGREE if says else Attitude.DISAGREE,
                )
            )
        # The sparse partner: a handful of reports early on only.
        for k in range(5):
            t = float(rng.uniform(0, 0.15 * DURATION))
            truth = timelines[sparse].value_at(t) is TruthValue.TRUE
            says = truth if rng.random() < 0.85 else not truth
            reports.append(
                Report(
                    f"{sparse}-q{k}", sparse, t,
                    attitude=Attitude.AGREE if says else Attitude.DISAGREE,
                )
            )
    reports.sort(key=lambda r: r.timestamp)
    return reports, timelines, ClaimDependencyGraph.from_edges(edges), sparse_ids


def test_dependency_ablation(benchmark):
    def run():
        reports, timelines, graph, sparse_ids = build_paired_dataset()
        sparse_set = set(sparse_ids)

        def sparse_accuracy(estimates):
            subset = [e for e in estimates if e.claim_id in sparse_set]
            return evaluate_estimates("x", subset, timelines).accuracy

        span = (reports[0].timestamp, reports[-1].timestamp)
        results = {
            "independent (paper core)": sparse_accuracy(
                SSTD(CONFIG).discover(reports, start=span[0], end=span[1])
            )
        }
        for blend in (0.2, 0.5, 0.8):
            engine = CorrelatedSSTD(
                graph, CONFIG, CorrelationConfig(blend=blend)
            )
            results[f"correlated blend={blend}"] = sparse_accuracy(
                engine.discover(reports)
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Ablation A4 — claim-dependency extension (sparse-claim accuracy)",
        f"({N_PAIRS} perfectly correlated rich/sparse claim pairs)",
        f"{'Variant':<28}{'Accuracy':>10}",
    ]
    for name, accuracy in results.items():
        lines.append(f"{name:<28}{accuracy:>10.3f}")
    report_lines("ablation_dependencies", lines)

    independent = results["independent (paper core)"]
    best_correlated = max(
        v for k, v in results.items() if k.startswith("correlated")
    )
    # Evidence sharing must substantially lift sparse-claim accuracy.
    assert best_correlated > independent + 0.15
