"""Tables III, IV, V — truth discovery accuracy on the three traces.

For each trace, runs SSTD plus the six baselines on the common
evaluation grid, scores them against the ground-truth timelines, and
prints the table side by side with the paper's reported numbers.

The headline *shape* that must reproduce: SSTD leads accuracy and F1 on
every trace, the dynamic baseline (DynaTD) is strong, and static batch
methods fall furthest behind on the fast-flipping football trace.
"""

from __future__ import annotations

import pytest

from repro.baselines import EvaluationGrid, make_algorithm
from repro.baselines.registry import PAPER_TABLE_METHODS
from repro.core import evaluate_estimates

from benchmarks.conftest import report_lines
from benchmarks.paper_reference import PAPER_TABLES

GRID_STEP = 1800.0

#: (trace fixture name, paper table id)
TRACES = [
    ("boston_trace", "Table III"),
    ("paris_trace", "Table IV"),
    ("football_trace", "Table V"),
]

_results: dict[str, dict[str, tuple[float, float, float, float]]] = {}


@pytest.mark.parametrize("trace_fixture,table_id", TRACES)
@pytest.mark.parametrize("method", PAPER_TABLE_METHODS)
def test_accuracy(benchmark, request, trace_fixture, table_id, method):
    """Benchmark one algorithm on one trace; stash the metrics."""
    trace = request.getfixturevalue(trace_fixture)
    grid = EvaluationGrid(trace.start, trace.end, step=GRID_STEP)
    algorithm = make_algorithm(method)

    estimates = benchmark.pedantic(
        lambda: algorithm.discover(trace.reports, grid),
        rounds=1,
        iterations=1,
    )
    result = evaluate_estimates(method, estimates, trace.timelines)
    _results.setdefault(trace.name, {})[method] = (
        result.accuracy,
        result.precision,
        result.recall,
        result.f1,
    )
    assert result.matrix.total > 0


@pytest.mark.parametrize("trace_fixture,table_id", TRACES)
def test_print_table(benchmark, request, trace_fixture, table_id):
    """Render the paper-style table (measured vs paper)."""
    trace = request.getfixturevalue(trace_fixture)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    measured = _results.get(trace.name, {})
    if len(measured) < len(PAPER_TABLE_METHODS):
        pytest.skip("per-method benchmarks did not all run")

    paper = PAPER_TABLES[trace.name]
    lines = [
        f"{table_id} — Truth Discovery Results — {trace.name}",
        f"(measured on synthetic trace, {len(trace.reports):,} reports; "
        f"paper values in parentheses)",
        f"{'Method':<13} {'Accuracy':>16} {'Precision':>16} "
        f"{'Recall':>16} {'F1':>16}",
    ]
    for method in PAPER_TABLE_METHODS:
        acc, prec, rec, f1 = measured[method]
        p_acc, p_prec, p_rec, p_f1 = paper[method]
        lines.append(
            f"{method:<13} "
            f"{acc:>7.3f} ({p_acc:.3f}) "
            f"{prec:>7.3f} ({p_prec:.3f}) "
            f"{rec:>7.3f} ({p_rec:.3f}) "
            f"{f1:>7.3f} ({p_f1:.3f})"
        )

    sstd_acc = measured["SSTD"][0]
    best_baseline = max(
        (m for m in PAPER_TABLE_METHODS if m != "SSTD"),
        key=lambda m: measured[m][0],
    )
    lines.append(
        f"SSTD accuracy gain over best baseline ({best_baseline}): "
        f"{(sstd_acc - measured[best_baseline][0]) * 100:+.1f} points"
    )
    report_lines(f"{table_id.lower().replace(' ', '')}_{trace.name.lower().replace(' ', '_')}", lines)

    # Shape assertions: SSTD leads accuracy and F1.
    assert sstd_acc >= max(measured[m][0] for m in PAPER_TABLE_METHODS)
    assert measured["SSTD"][3] >= max(
        measured[m][3] for m in PAPER_TABLE_METHODS if m != "SSTD"
    ) - 0.02
