"""Ablation A2 — contribution-score components on/off (paper Eq. (1)).

The paper attributes part of SSTD's accuracy gain to "incorporating
contribution scores of reports to compensate the sparsity of the social
sensing data".  This ablation quantifies each factor of
``CS = attitude x (1 - uncertainty) x independence``: dropping the
uncertainty discount lets hedged rumors count as confident assertions;
dropping the independence discount lets retweet cascades amplify
whatever attitude they copied (including misinformation).
"""

from __future__ import annotations

from repro.baselines import EvaluationGrid
from repro.baselines.registry import SSTDAlgorithm
from repro.core import evaluate_estimates
from repro.core.acs import ACSConfig
from repro.core.scores import ScoreWeights
from repro.core.sstd import SSTDConfig

from benchmarks.conftest import report_lines

VARIANTS = {
    "full (Eq. 1)": ScoreWeights(),
    "no uncertainty": ScoreWeights(use_uncertainty=False),
    "no independence": ScoreWeights(use_independence=False),
    "attitude only": ScoreWeights(use_uncertainty=False, use_independence=False),
}
GRID_STEP = 1800.0
WINDOW = 4 * 3600.0


def _scores(trace, weights: ScoreWeights):
    grid = EvaluationGrid(trace.start, trace.end, step=GRID_STEP)
    config = SSTDConfig(
        acs=ACSConfig(window=WINDOW, step=WINDOW / 2, weights=weights)
    )
    estimates = SSTDAlgorithm(config=config).discover(trace.reports, grid)
    result = evaluate_estimates("SSTD", estimates, trace.timelines)
    return result.accuracy, result.f1


def test_score_component_ablation(benchmark, boston_trace):
    def run():
        return {
            name: _scores(boston_trace, weights)
            for name, weights in VARIANTS.items()
        }

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Ablation A2 — contribution-score components (Boston trace)",
        f"{'Variant':<18}{'Accuracy':>10}{'F1':>8}",
    ]
    for name, (acc, f1) in table.items():
        lines.append(f"{name:<18}{acc:>10.3f}{f1:>8.3f}")
    report_lines("ablation_scores", lines)

    full_acc = table["full (Eq. 1)"][0]
    # The full score is at least as good as every ablated variant and
    # strictly better than attitude-only voting.
    for name, (acc, _) in table.items():
        assert full_acc >= acc - 0.005, name
    assert full_acc > table["attitude only"][0]
