"""Table II — data trace statistics at full paper scale.

Generates each synthetic trace at the paper's full report volume
(553,609 / 253,798 / 429,019 reports) and prints the Table II row next
to the paper's numbers.  The substitution target (DESIGN.md Section 3)
is the *statistical regime*: report counts match exactly by
construction, distinct-source counts must land within ~15% of the
paper's (the near-one-report-per-source sparsity), and durations match.

Set ``REPRO_TABLE2_FULL=0`` to skip the two larger traces on
memory-constrained machines (the Paris trace always runs).
"""

from __future__ import annotations

import gc
import os

import pytest

from repro.streams import (
    GeneratorConfig,
    boston_bombing,
    college_football,
    generate_trace,
    paris_shooting,
)

from benchmarks.conftest import report_lines
from benchmarks.paper_reference import TABLE2

RUN_FULL = os.environ.get("REPRO_TABLE2_FULL", "1") != "0"

SCENARIOS = [
    pytest.param(paris_shooting, id="paris"),
    pytest.param(
        boston_bombing,
        id="boston",
        marks=pytest.mark.skipif(not RUN_FULL, reason="REPRO_TABLE2_FULL=0"),
    ),
    pytest.param(
        college_football,
        id="football",
        marks=pytest.mark.skipif(not RUN_FULL, reason="REPRO_TABLE2_FULL=0"),
    ),
]

_rows: dict[str, dict[str, float]] = {}


@pytest.mark.parametrize("factory", SCENARIOS)
def test_full_scale_trace(benchmark, factory):
    spec = factory()

    def build():
        # Text generation off: Table II is about volume statistics, and
        # the full-size traces with text would hold ~1 GB of strings.
        return generate_trace(
            spec, seed=1, config=GeneratorConfig(with_text=False)
        )

    trace = benchmark.pedantic(build, rounds=1, iterations=1)
    stats = trace.stats()
    paper = TABLE2[spec.name]
    _rows[spec.name] = {
        "reports": stats.n_reports,
        "sources": stats.n_sources,
        "days": stats.duration_days,
    }

    assert stats.n_reports == paper["reports"]
    assert abs(stats.n_sources - paper["sources"]) / paper["sources"] < 0.15
    assert round(stats.duration_days) == paper["days"]
    del trace
    gc.collect()


def test_print_table2(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _rows:
        pytest.skip("no traces generated")
    lines = [
        "Table II — Data Trace Statistics (measured / paper)",
        f"{'Data Trace':<18} {'Duration(d)':>12} {'# Reports':>22} {'# Sources':>22}",
    ]
    for name, paper in TABLE2.items():
        if name not in _rows:
            lines.append(f"{name:<18} (skipped)")
            continue
        row = _rows[name]
        lines.append(
            f"{name:<18} {row['days']:>5.1f} / {paper['days']:<4} "
            f"{row['reports']:>10,.0f} / {paper['reports']:<10,} "
            f"{row['sources']:>10,.0f} / {paper['sources']:<10,}"
        )
    report_lines("table2_trace_statistics", lines)
