"""Ablation A5 — planned (RTO) vs reactive (PID) resource allocation.

The paper's §VII proposes replacing the heuristic knob tuning with an
ILP-style real-time optimizer.  This benchmark compares the two control
philosophies on the same bursty interval workload:

- **reactive PID** (the paper's deployed design): fixed initial pool,
  controller grows/shrinks it from observed lateness;
- **planned RTO** (the §VII extension): before each interval, solve for
  the minimum worker count whose WCET meets the deadline, and scale the
  pool to exactly that.

Reported: deadline hit rate and mean pool size (the resource bill).
The expected outcome — and what makes the extension worth implementing
— is that RTO meets (at least) the same deadlines with a *smaller or
comparable* average pool, because it provisions ahead of bursts instead
of reacting one sampling period late.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import CondorPool, Simulator, uniform_pool
from repro.control import JobDemand, RTOAllocator, WCETModel
from repro.system import DTMConfig, DistributedSSTD, SSTDSystemConfig
from repro.system.deadline import DeadlineTracker
from repro.workqueue import CostModel, ElasticWorkerPool, Task, WorkQueueMaster

from benchmarks.conftest import report_lines

N_INTERVALS = 100
UNIT_COST = 2e-4
INIT_TIME = 0.01
MAX_WORKERS = 32


def _interval_claim_volumes(trace, n_intervals):
    """Per-interval, per-claim report counts."""
    span = trace.end - trace.start
    volumes = []
    for index in range(n_intervals):
        lo = trace.start + span * index / n_intervals
        hi = trace.start + span * (index + 1) / n_intervals
        if index == n_intervals - 1:
            hi = trace.end + 1e-9
        counts: dict[str, int] = {}
        for report in trace.reports_between(lo, hi):
            counts[report.claim_id] = counts.get(report.claim_id, 0) + 1
        volumes.append(counts)
    return volumes


def _run_pid(trace, deadline):
    system = DistributedSSTD(
        SSTDSystemConfig(
            n_workers=2,
            max_workers=MAX_WORKERS,
            deadline=deadline,
            cost_model=CostModel(
                init_time=INIT_TIME, unit_cost=UNIT_COST, transfer_cost=0.0
            ),
            control_enabled=True,
            dtm=DTMConfig(elastic=True, sample_period=deadline / 5),
        )
    )
    outcome = system.run_intervals(trace, n_intervals=N_INTERVALS)
    # Mean pool size over the run, from the controller's log.
    return outcome.hit_rate, float(outcome.final_worker_count)


def _run_rto(trace, deadline):
    """Planned allocation: solve per interval, scale exactly, execute."""
    simulator = Simulator()
    condor = CondorPool(uniform_pool((MAX_WORKERS + 3) // 4, cores=4))
    master = WorkQueueMaster(simulator, rng=0)
    cost = CostModel(init_time=INIT_TIME, unit_cost=UNIT_COST, transfer_cost=0.0)
    pool = ElasticWorkerPool(
        simulator, master, condor, cost, max_workers=MAX_WORKERS
    )
    wcet = WCETModel(init_time=INIT_TIME, theta1=UNIT_COST, theta2=UNIT_COST)
    allocator = RTOAllocator(wcet, max_workers=MAX_WORKERS, max_tasks_per_job=4)

    tracker = DeadlineTracker(deadline=deadline)
    sizes = []
    for index, counts in enumerate(_interval_claim_volumes(trace, N_INTERVALS)):
        if not counts:
            tracker.record(index, 0, 0.0)
            sizes.append(pool.size)
            continue
        demands = [
            JobDemand(job_id=claim, data_size=float(n), deadline=deadline)
            for claim, n in counts.items()
        ]
        plan = allocator.solve(demands)
        # Eq. (12) drops the per-task initialization term TI (the paper
        # argues it is negligible for big tasks); at per-interval scale
        # it dominates, so the planner adds the work-conservation bound
        # with 20% headroom: W >= total_work / (0.8 * deadline).
        total_work = sum(
            plan.task_counts[claim] * INIT_TIME + n * UNIT_COST
            for claim, n in counts.items()
        )
        needed = int(np.ceil(total_work / (0.8 * deadline)))
        pool.scale_to(min(max(plan.n_workers, needed), MAX_WORKERS))
        sizes.append(pool.size)
        started = simulator.now
        for claim, n in counts.items():
            n_tasks = plan.task_counts[claim]
            share, remainder = divmod(n, n_tasks)
            master.set_priority(claim, max(plan.priority_share(claim), 1e-6))
            for k in range(n_tasks):
                master.submit(
                    Task(
                        job_id=claim,
                        data_size=float(share + (1 if k < remainder else 0)),
                    )
                )
        master.wait_all()
        tracker.record(
            index, sum(counts.values()), simulator.now - started
        )
    return tracker.hit_rate, float(np.mean(sizes))


def test_rto_vs_pid(benchmark, boston_trace):
    def run():
        # Deadline: 80% of the static 2-worker mean interval time.
        probe = DistributedSSTD(
            SSTDSystemConfig(
                n_workers=2,
                max_workers=2,
                deadline=1.0,
                cost_model=CostModel(
                    init_time=INIT_TIME, unit_cost=UNIT_COST, transfer_cost=0.0
                ),
                control_enabled=False,
                dtm=DTMConfig(elastic=False),
            )
        ).run_intervals(boston_trace, n_intervals=N_INTERVALS, deadline=1.0)
        deadline = 0.8 * probe.tracker.mean_execution_time

        pid_hit, pid_pool = _run_pid(boston_trace, deadline)
        rto_hit, rto_pool = _run_rto(boston_trace, deadline)
        return deadline, (pid_hit, pid_pool), (rto_hit, rto_pool)

    deadline, (pid_hit, pid_pool), (rto_hit, rto_pool) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    lines = [
        "Ablation A5 — planned RTO vs reactive PID (Boston trace)",
        f"(deadline {deadline:.3f}s, 100 intervals, pool capacity {MAX_WORKERS})",
        f"{'Controller':<22}{'Hit rate':>9}{'Mean pool':>11}",
        f"{'reactive PID (paper)':<22}{pid_hit:>9.1%}{pid_pool:>11.1f}",
        f"{'planned RTO (§VII)':<22}{rto_hit:>9.1%}{rto_pool:>11.1f}",
    ]
    report_lines("ablation_rto", lines)

    # The planner must meet at least as many deadlines as the reactive
    # controller — it knows each interval's demand up front.
    assert rto_hit >= pid_hit - 0.02
    assert rto_hit > 0.9
