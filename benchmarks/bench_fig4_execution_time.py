"""Figure 4 — execution time of all schemes vs data size (3 traces).

Sweeps prefix sizes of each trace **at the paper's full report volume**
(253k-554k reports; text generation disabled to keep memory in check)
and measures the *real wall-clock* execution time of every scheme on
this machine.  SSTD appears twice:

- ``SSTD(serial)`` — the engine run in-process (the lower bound for any
  distributed deployment);
- ``SSTD(4 workers)`` — the paper's configuration: per-claim TD jobs on
  4 simulated Work Queue workers, with the simulation's cost model
  calibrated from the measured serial run (so simulated seconds are
  grounded in real ones).

Expected shape (paper Fig. 4): at small sizes the cheap single-pass
baselines win (their per-report constants are tiny), but SSTD's cost is
dominated by the per-claim observation grid rather than the report
count, so as data grows SSTD becomes the fastest scheme and the gap to
the iterative batch baselines (TruthFinder, Invest, RTD) keeps
widening — the crossover the paper's scalability argument rests on.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.baselines import EvaluationGrid, make_algorithm
from repro.baselines.registry import PAPER_TABLE_METHODS
from repro.streams import (
    GeneratorConfig,
    boston_bombing,
    college_football,
    generate_trace,
    paris_shooting,
)
from repro.system import DTMConfig, DistributedSSTD, SSTDSystemConfig
from repro.workqueue import CostModel

from benchmarks.conftest import report_lines

SIZE_FRACTIONS = (0.2, 0.5, 1.0)
SCENARIOS = {
    "boston": boston_bombing,
    "paris": paris_shooting,
    "football": college_football,
}


def _measure(algorithm, reports, grid) -> float:
    t0 = time.perf_counter()
    algorithm.discover(reports, grid)
    return time.perf_counter() - t0


@pytest.mark.parametrize("scenario", list(SCENARIOS))
def test_execution_time_sweep(benchmark, scenario):
    trace = generate_trace(
        SCENARIOS[scenario](), seed=1, config=GeneratorConfig(with_text=False)
    )
    grid = EvaluationGrid(trace.start, trace.end, step=1800.0)
    sizes = [int(len(trace.reports) * f) for f in SIZE_FRACTIONS]
    series: dict[str, list[tuple[int, float]]] = {}

    def run_sweep():
        for method in PAPER_TABLE_METHODS:
            algorithm = make_algorithm(method)
            label = "SSTD(serial)" if method == "SSTD" else method
            for size in sizes:
                prefix = trace.reports[:size]
                elapsed = _measure(algorithm, prefix, grid)
                series.setdefault(label, []).append((size, elapsed))
                if method == "SSTD":
                    # Ground the simulation in the measured serial cost.
                    unit = max(elapsed / size, 1e-9)
                    system = DistributedSSTD(
                        SSTDSystemConfig(
                            n_workers=4,
                            max_workers=4,
                            # Per-task init is kept small, mirroring the
                            # paper's design ("we keep the number of
                            # tasks in each TD job small" to bound the
                            # initialization overhead, Section IV-C4).
                            cost_model=CostModel(
                                init_time=0.01,
                                unit_cost=unit,
                                transfer_cost=unit * 0.02,
                            ),
                            dtm=DTMConfig(elastic=False),
                        )
                    )
                    result = system.run_batch(
                        prefix, start=trace.start, end=trace.end
                    )
                    series.setdefault("SSTD(4 workers)", []).append(
                        (size, result.makespan)
                    )

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    lines = [
        f"Figure 4 — Execution Time vs Data Size — {trace.name}",
        "(real wall-clock per scheme; SSTD(4 workers) simulated from the",
        " measured serial cost)",
        f"{'Scheme':<16}" + "".join(f"{s:>12,}" for s in sizes),
    ]
    for label, points in series.items():
        lines.append(
            f"{label:<16}"
            + "".join(f"{elapsed:>11.2f}s" for _, elapsed in points)
        )
    report_lines(f"fig4_{trace.name.lower().replace(' ', '_')}", lines)

    # Shape: at the largest size, distributed SSTD beats every batch
    # scheme outright.  DynaTD gets special treatment: our DynaTD is a
    # single-pass dictionary scan, far faster relative to SSTD than the
    # paper's implementation, so instead of absolute dominance we assert
    # the structural property the paper's curves encode — SSTD's cost is
    # near-flat in data size while DynaTD's grows linearly, so SSTD
    # overtakes it as traces grow (it does, on the largest trace; see
    # EXPERIMENTS.md).
    largest = sizes[-1]
    at_largest = {
        label: dict(points)[largest] for label, points in series.items()
    }
    sstd4 = at_largest["SSTD(4 workers)"]
    for label, elapsed in at_largest.items():
        if label not in ("SSTD(4 workers)", "DynaTD"):
            assert sstd4 <= elapsed + 1e-6, (label, at_largest)
    sstd_growth = sstd4 - dict(series["SSTD(4 workers)"])[sizes[0]]
    dynatd_growth = at_largest["DynaTD"] - dict(series["DynaTD"])[sizes[0]]
    assert sstd_growth < dynatd_growth + 0.05, series
    # Shape: the gap to the slowest baseline grows with data size.
    slowest_label = max(
        (l for l in at_largest if not l.startswith("SSTD")),
        key=at_largest.get,
    )
    gaps = [
        dict(series[slowest_label])[s] - dict(series["SSTD(4 workers)"])[s]
        for s in sizes
    ]
    assert gaps[-1] > gaps[0]
    del trace
    gc.collect()
