"""Figure 5 — total running time vs streaming speed (3 traces).

Reproduces the paper's setup: "we stream the data into compared schemes
at different speed for a duration of 100 seconds.  The batch (static)
truth discovery schemes retrieve and process 5 seconds of data each
time periodically.  The streaming schemes keep reading new data and
process them as they arrive."

Mechanics (see benchmarks/calibration.py): every scheme's fixed and
per-report costs are *measured on this machine* — streaming schemes by
replaying the trace at two rates and solving the two-point cost model,
batch schemes by timing two batch invocations — then a single-server
FIFO queue computes when each scheme finishes the 100-second stream.
Batch schemes recompute over all accumulated data at each 5 s poll
(they are batch precisely because source-reliability estimation needs
the history); streaming schemes touch each report once.

Scaling note (recorded in EXPERIMENTS.md): our vectorized baselines
process a report in ~5-10 microseconds, roughly an order of magnitude
faster than the paper's 2017 implementations, so the batch-scheme
blow-up appears at correspondingly higher stream rates.  The sweep
therefore runs to 20,000 tweets/s; the paper's crossover *shape* —
batch schemes' total time grows steeply past the 100 s stream duration
while streaming schemes stay flat, SSTD flattest — is what reproduces.
"""

from __future__ import annotations

import time

import pytest

from repro.baselines import DynaTD, EvaluationGrid, make_algorithm
from repro.core import SSTDConfig, StreamingSSTD
from repro.core.acs import ACSConfig
from repro.streams import StreamReplayer

from benchmarks.conftest import report_lines
from benchmarks.calibration import (
    arrival_counts,
    calibrate,
    fit_streaming_profile,
    queue_completion_time,
)

SPEEDS = (1_000, 2_000, 5_000, 10_000, 20_000, 50_000)
DURATION = 100.0
CALIBRATION_RATES = (100.0, 400.0)
CALIBRATION_SECONDS = 30.0
BATCH_SCHEMES = ("TruthFinder", "RTD", "CATD")
TRACES = ["boston_trace", "paris_trace", "football_trace"]


SSTD_WORKERS = 4


def _profile_streaming_sstd(trace) -> "SchemeProfile":
    """Measure SSTD's streaming costs: per-report push, per-second tick.

    The two cost classes are timed separately because they scale with
    different variables — pushes with the report rate, ticks (filter
    advance + periodic per-claim refits) with time and claim count.  The
    deployed SSTD partitions claims across Work Queue workers, so both
    components divide by the paper's 4-worker configuration.
    """
    from benchmarks.calibration import SchemeProfile

    replayer = StreamReplayer(
        trace, speed=400.0, duration=CALIBRATION_SECONDS
    )
    config = SSTDConfig(
        acs=ACSConfig(window=10.0, step=1.0), min_observations=4
    )
    engine = StreamingSSTD(config, retrain_every=20, max_buffer=240)
    n = 0
    push_time = 0.0
    tick_time = 0.0
    for batch in replayer.batches():
        t0 = time.perf_counter()
        for report in batch.reports:
            engine.push(report)
            n += 1
        push_time += time.perf_counter() - t0
        t0 = time.perf_counter()
        engine.tick(batch.arrival_time)
        tick_time += time.perf_counter() - t0
    return SchemeProfile(
        name="SSTD",
        seconds_per_report=max(push_time / max(n, 1), 1e-9) / SSTD_WORKERS,
        fixed_seconds=(tick_time / CALIBRATION_SECONDS) / SSTD_WORKERS,
        streaming=True,
    )


def _profile_streaming_dynatd(trace) -> "SchemeProfile":
    """Measure DynaTD (centralized, single worker) at two rates."""
    measurements = []
    for rate in CALIBRATION_RATES:
        replayer = StreamReplayer(
            trace, speed=rate, duration=CALIBRATION_SECONDS
        )
        algo = DynaTD()
        n = 0
        t0 = time.perf_counter()
        for batch in replayer.batches():
            algo.step(list(batch.reports), now=batch.arrival_time)
            n += len(batch.reports)
        measurements.append((n, CALIBRATION_SECONDS, time.perf_counter() - t0))
    return fit_streaming_profile("DynaTD", measurements)


@pytest.mark.parametrize("trace_fixture", TRACES)
def test_streaming_speed_sweep(benchmark, request, trace_fixture):
    trace = request.getfixturevalue(trace_fixture)

    def run():
        profiles = [
            _profile_streaming_sstd(trace),
            _profile_streaming_dynatd(trace),
        ]
        calib_grid = EvaluationGrid(trace.start, trace.end, step=3600.0)
        calib_slice = trace.reports[: min(len(trace.reports), 20_000)]
        for name in BATCH_SCHEMES:
            profiles.append(
                calibrate(
                    make_algorithm(name), calib_slice, calib_grid,
                    streaming=False,
                )
            )

        table: dict[str, list[float]] = {p.name: [] for p in profiles}
        for speed in SPEEDS:
            arrivals = arrival_counts(trace, speed, DURATION)
            for profile in profiles:
                total = queue_completion_time(arrivals, profile)
                table[profile.name].append(max(total, DURATION))
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"Figure 5 — Total Running Time vs Streaming Speed — {trace.name}",
        "(100 s stream; batch schemes poll every 5 s over accumulated data;",
        " costs measured on this machine — see EXPERIMENTS.md on rate scaling)",
        f"{'Scheme':<13}" + "".join(f"{s:>9}/s" for s in SPEEDS),
    ]
    for name, totals in table.items():
        lines.append(
            f"{name:<13}" + "".join(f"{t:>9.1f}s" for t in totals)
        )
    report_lines(f"fig5_{trace.name.lower().replace(' ', '_')}", lines)

    # Shape: streaming schemes stay near the stream duration...
    assert table["SSTD"][-1] < DURATION * 1.5
    assert table["DynaTD"][-1] < DURATION * 1.5
    # ...SSTD's total time is the least sensitive to streaming speed...
    sstd_growth = table["SSTD"][-1] - table["SSTD"][0]
    for name in BATCH_SCHEMES:
        batch_growth = table[name][-1] - table[name][0]
        assert sstd_growth <= batch_growth + 1e-6
        # ...batch totals grow much faster than streaming totals...
        assert batch_growth > 5.0 * max(sstd_growth, 0.01)
    # ...and every batch scheme eventually falls behind the stream.
    for name in BATCH_SCHEMES:
        assert table[name][-1] > DURATION * 1.02
