"""HTCondor-like matchmaking pool.

A thin reproduction of the HTCondor role in the paper's architecture:
the pool owns a set of (heterogeneous) machines and *matchmakes* worker
placement requests against nodes with free resources.  Work Queue then
runs its worker processes inside these placements — exactly the layering
the paper uses (Work Queue on top of HTCondor, Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.cluster.node import ComputeNode, NodeSpec
from repro.cluster.resources import WORKER_FOOTPRINT, ResourceSpec

__all__ = [
    "CondorPool",
    "MatchmakingError",
    "Placement",
]


@dataclass(frozen=True, slots=True)
class Placement:
    """A granted slot: resources claimed on a specific node."""

    node: ComputeNode
    request: ResourceSpec

    def release(self) -> None:
        self.node.release(self.request)


class MatchmakingError(RuntimeError):
    """No node in the pool can satisfy a placement request."""


class CondorPool:
    """Machines plus best-fit matchmaking.

    Placement policy: among alive nodes that can host the request, pick
    the one with the most free cores (load spreading), breaking ties by
    highest speed factor then by name for determinism.
    """

    def __init__(self, specs: Iterable[NodeSpec]) -> None:
        self.nodes = [ComputeNode(spec) for spec in specs]
        if not self.nodes:
            raise ValueError("a pool needs at least one node")
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError("duplicate node names in pool")

    @property
    def alive_nodes(self) -> list[ComputeNode]:
        return [node for node in self.nodes if node.alive]

    def total_capacity(self) -> ResourceSpec:
        total = ResourceSpec(cores=0, memory_mb=0, disk_mb=0)
        for node in self.alive_nodes:
            total = total + node.spec.capacity
        return total

    def free_cores(self) -> int:
        return sum(node.ledger.available.cores for node in self.alive_nodes)

    def place(self, request: ResourceSpec = WORKER_FOOTPRINT) -> Placement:
        """Claim ``request`` on the best matching node.

        Raises:
            MatchmakingError: When no alive node has room.
        """
        candidates = [node for node in self.alive_nodes if node.can_host(request)]
        if not candidates:
            raise MatchmakingError(
                f"no node can host {request}; "
                f"free cores: {self.free_cores()}"
            )
        best = max(
            candidates,
            key=lambda node: (
                node.ledger.available.cores,
                node.speed_factor,
                node.name,
            ),
        )
        best.claim(request)
        return Placement(node=best, request=request)

    def place_many(
        self, count: int, request: ResourceSpec = WORKER_FOOTPRINT
    ) -> list[Placement]:
        """Claim ``count`` placements; rolls back on partial failure."""
        placements: list[Placement] = []
        try:
            for _ in range(count):
                placements.append(self.place(request))
        except MatchmakingError:
            for placement in placements:
                placement.release()
            raise
        return placements

    def fail_node(self, name: str) -> ComputeNode:
        """Fault injection: kill a node by name."""
        for node in self.nodes:
            if node.name == name:
                node.fail()
                return node
        raise KeyError(f"no node named {name!r}")
