"""Resource vectors and constraints (paper Section II, ``RC_k``).

Each cluster node carries a set of resource constraints — cores, memory,
disk — that cap what can run on it simultaneously.  :class:`ResourceSpec`
is an immutable vector with the fits/add/subtract algebra the scheduler
needs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ResourceError",
    "ResourceLedger",
    "ResourceSpec",
    "WORKER_FOOTPRINT",
]


@dataclass(frozen=True, slots=True)
class ResourceSpec:
    """A resource vector: CPU cores, memory (MB), disk (MB)."""

    cores: int = 1
    memory_mb: int = 1024
    disk_mb: int = 4096

    def __post_init__(self) -> None:
        for name in ("cores", "memory_mb", "disk_mb"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")

    def fits_within(self, capacity: "ResourceSpec") -> bool:
        """Whether this request fits inside ``capacity``."""
        return (
            self.cores <= capacity.cores
            and self.memory_mb <= capacity.memory_mb
            and self.disk_mb <= capacity.disk_mb
        )

    def __add__(self, other: "ResourceSpec") -> "ResourceSpec":
        return ResourceSpec(
            cores=self.cores + other.cores,
            memory_mb=self.memory_mb + other.memory_mb,
            disk_mb=self.disk_mb + other.disk_mb,
        )

    def __sub__(self, other: "ResourceSpec") -> "ResourceSpec":
        result = ResourceSpec(
            cores=self.cores - other.cores,
            memory_mb=self.memory_mb - other.memory_mb,
            disk_mb=self.disk_mb - other.disk_mb,
        )
        return result

    def scaled(self, factor: int) -> "ResourceSpec":
        """This spec multiplied by an integer factor."""
        if factor < 0:
            raise ValueError("factor must be >= 0")
        return ResourceSpec(
            cores=self.cores * factor,
            memory_mb=self.memory_mb * factor,
            disk_mb=self.disk_mb * factor,
        )


#: Default footprint of one Work Queue worker process.
WORKER_FOOTPRINT = ResourceSpec(cores=1, memory_mb=512, disk_mb=1024)


class ResourceLedger:
    """Tracks allocations against a fixed capacity.

    Raises :class:`ResourceError` on violations, which is how the paper's
    "RC_k is satisfied" constraint is enforced in the simulation.
    """

    def __init__(self, capacity: ResourceSpec) -> None:
        self.capacity = capacity
        self.allocated = ResourceSpec(cores=0, memory_mb=0, disk_mb=0)

    @property
    def available(self) -> ResourceSpec:
        return self.capacity - self.allocated

    def can_allocate(self, request: ResourceSpec) -> bool:
        return request.fits_within(self.available)

    def allocate(self, request: ResourceSpec) -> None:
        if not self.can_allocate(request):
            raise ResourceError(
                f"request {request} exceeds available {self.available} "
                f"(capacity {self.capacity})"
            )
        self.allocated = self.allocated + request

    def release(self, request: ResourceSpec) -> None:
        try:
            self.allocated = self.allocated - request
        except ValueError:
            raise ResourceError(
                f"releasing {request} exceeds allocation {self.allocated}"
            ) from None


class ResourceError(RuntimeError):
    """A resource constraint was violated."""
