"""Failure injection for the simulated cluster.

A campus HTCondor pool is opportunistic: desktops reboot, owners evict
jobs, machines disappear mid-task.  The SSTD master must survive this —
Work Queue's model is that a lost worker's task is simply re-queued.
This module drives that behaviour in the simulator: each node fails
after an exponential time with its configured MTBF, takes its workers
down (in-flight tasks are recovered through
:meth:`~repro.workqueue.master.WorkQueueMaster.requeue_from`), and
recovers after a repair time, after which the elastic pool may place
new workers on it again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.cluster.condor import CondorPool
from repro.cluster.node import ComputeNode
from repro.cluster.simulation import Simulator
from repro.workqueue.master import WorkQueueMaster

__all__ = [
    "FailureConfig",
    "FailureInjector",
    "FailureLogEntry",
]


@dataclass
class FailureLogEntry:
    """One failure or recovery event, for assertions and reports."""

    time: float
    node_name: str
    event: str  # "fail" | "recover"
    requeued_tasks: int = 0


@dataclass(frozen=True, slots=True)
class FailureConfig:
    """Failure process parameters.

    Attributes:
        mean_repair_time: Mean of the exponential repair time (seconds).
        default_mtbf: MTBF applied to nodes whose spec has none set
            (``mtbf_seconds == 0``); 0 keeps them immortal.
    """

    mean_repair_time: float = 120.0
    default_mtbf: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_repair_time <= 0:
            raise ValueError("mean_repair_time must be > 0")
        if self.default_mtbf < 0:
            raise ValueError("default_mtbf must be >= 0")


class FailureInjector:
    """Schedules node failures and recoveries on the simulator."""

    def __init__(
        self,
        simulator: Simulator,
        condor: CondorPool,
        master: WorkQueueMaster,
        config: FailureConfig | None = None,
        rng: np.random.Generator | int | None = None,
        on_failure: Optional[Callable[[ComputeNode], None]] = None,
    ) -> None:
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self.simulator = simulator
        self.condor = condor
        self.master = master
        self.config = config or FailureConfig()
        self.rng = rng
        self.on_failure = on_failure
        self.log: list[FailureLogEntry] = []
        self._armed = False

    def start(self) -> None:
        """Arm a failure clock on every mortal node (idempotent)."""
        if self._armed:
            return
        self._armed = True
        for node in self.condor.nodes:
            mtbf = node.spec.mtbf_seconds or self.config.default_mtbf
            if mtbf > 0:
                self._schedule_failure(node, mtbf)

    def _schedule_failure(self, node: ComputeNode, mtbf: float) -> None:
        delay = float(self.rng.exponential(mtbf))
        self.simulator.schedule(delay, lambda: self._fail(node, mtbf))

    def _fail(self, node: ComputeNode, mtbf: float) -> None:
        if not node.alive:
            return
        node.fail()
        requeued = 0
        # Recover in-flight tasks from every worker pinned to this node.
        for worker in list(self.master.workers):
            if worker.placement.node is node:
                if self.master.requeue_from(worker) is not None:
                    requeued += 1
        self.log.append(
            FailureLogEntry(
                time=self.simulator.now,
                node_name=node.name,
                event="fail",
                requeued_tasks=requeued,
            )
        )
        if self.on_failure is not None:
            self.on_failure(node)
        repair = float(self.rng.exponential(self.config.mean_repair_time))
        self.simulator.schedule(repair, lambda: self._recover(node, mtbf))

    def _recover(self, node: ComputeNode, mtbf: float) -> None:
        node.recover()
        # A recovered machine comes back empty.
        node.ledger.allocated = type(node.ledger.allocated)(
            cores=0, memory_mb=0, disk_mb=0
        )
        self.log.append(
            FailureLogEntry(
                time=self.simulator.now, node_name=node.name, event="recover"
            )
        )
        self._schedule_failure(node, mtbf)

    @property
    def failures(self) -> int:
        return sum(1 for entry in self.log if entry.event == "fail")

    @property
    def recoveries(self) -> int:
        return sum(1 for entry in self.log if entry.event == "recover")

    @property
    def tasks_requeued(self) -> int:
        return sum(entry.requeued_tasks for entry in self.log)
