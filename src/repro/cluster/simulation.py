"""Discrete-event simulation core.

The substrate under the Work Queue / HTCondor reproduction: a virtual
clock plus an event queue.  Everything that "takes time" in the
distributed framework (task transfer, task execution, controller
sampling) is scheduled here, so system experiments (Figures 4-7) are
deterministic, fast, and independent of the host machine — which has a
single CPU and could never exhibit real 64-worker speedups.

The design is deliberately minimal: callbacks on a heap.  Processes that
need state machines keep it in their own objects and reschedule
themselves; no coroutine magic (see the style guide: avoid the magical
wand).
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "EventHandle",
    "PeriodicTask",
    "Simulator",
]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class Simulator:
    """A virtual clock with an ordered event queue.

    Events scheduled for the same instant fire in scheduling order
    (stable FIFO), which keeps runs reproducible.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list[_ScheduledEvent] = []
        self._counter = itertools.count()
        self._processed = 0

    @property
    def pending_events(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def processed_events(self) -> int:
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(
        self, time: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Run ``callback`` at absolute virtual time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time}, clock is already at {self.now}"
            )
        event = _ScheduledEvent(time=time, seq=next(self._counter), callback=callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            self._processed += 1
            event.callback()
            return True
        return False

    def run(self, until: float = math.inf, max_events: int = 10_000_000) -> None:
        """Run events in order until the queue drains or ``until``.

        The clock is advanced to ``until`` when it is finite and the queue
        drains earlier, so periodic observers see a consistent horizon.
        """
        fired = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > until:
                break
            self.step()
            fired += 1
            if fired >= max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events — runaway loop?"
                )
        if math.isfinite(until) and until > self.now:
            self.now = until

    def run_for(self, duration: float) -> None:
        """Run for ``duration`` seconds of virtual time."""
        if duration < 0:
            raise ValueError("duration must be >= 0")
        self.run(until=self.now + duration)


class PeriodicTask:
    """A callback re-armed on a fixed period (e.g. PID sampling at 1 Hz).

    The callback may call :meth:`stop` to cancel future firings.
    """

    def __init__(
        self,
        simulator: Simulator,
        period: float,
        callback: Callable[[], None],
        start_delay: float | None = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        self.simulator = simulator
        self.period = period
        self.callback = callback
        self._stopped = False
        delay = period if start_delay is None else start_delay
        self._handle = simulator.schedule(delay, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.callback()
        if not self._stopped:
            self._handle = self.simulator.schedule(self.period, self._fire)

    def stop(self) -> None:
        self._stopped = True
        self._handle.cancel()
