"""Heterogeneous compute nodes.

The paper's third critique of Hadoop-based truth discovery is its
homogeneity assumption; the Notre Dame HTCondor pool mixes desktop
workstations, classroom machines, and server clusters.  A
:class:`ComputeNode` therefore carries both a resource capacity *and* a
``speed_factor`` — the relative execution speed of the machine — plus an
optional failure model for fault-injection tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.resources import ResourceLedger, ResourceSpec

__all__ = [
    "ComputeNode",
    "NodeSpec",
    "heterogeneous_pool",
    "uniform_pool",
]


@dataclass(frozen=True, slots=True)
class NodeSpec:
    """Static description of one machine in the pool."""

    name: str
    capacity: ResourceSpec = field(default_factory=ResourceSpec)
    speed_factor: float = 1.0
    mtbf_seconds: float = 0.0  # 0 disables failures

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node name must be non-empty")
        if self.speed_factor <= 0:
            raise ValueError(f"speed_factor must be > 0, got {self.speed_factor}")
        if self.mtbf_seconds < 0:
            raise ValueError("mtbf_seconds must be >= 0")


class ComputeNode:
    """Runtime state of one machine: a resource ledger plus liveness."""

    def __init__(self, spec: NodeSpec) -> None:
        self.spec = spec
        self.ledger = ResourceLedger(spec.capacity)
        self.alive = True

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def speed_factor(self) -> float:
        return self.spec.speed_factor

    def can_host(self, request: ResourceSpec) -> bool:
        return self.alive and self.ledger.can_allocate(request)

    def claim(self, request: ResourceSpec) -> None:
        if not self.alive:
            raise RuntimeError(f"node {self.name} is down")
        self.ledger.allocate(request)

    def release(self, request: ResourceSpec) -> None:
        self.ledger.release(request)

    def fail(self) -> None:
        """Mark the node dead (fault injection)."""
        self.alive = False

    def recover(self) -> None:
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ComputeNode({self.name!r}, speed={self.speed_factor}, "
            f"alive={self.alive}, free={self.ledger.available})"
        )


def heterogeneous_pool(
    n_nodes: int,
    rng: np.random.Generator | int | None = None,
    cores_choices: tuple[int, ...] = (2, 4, 8, 16),
    speed_range: tuple[float, float] = (0.5, 2.0),
    memory_per_core_mb: int = 2048,
) -> list[NodeSpec]:
    """A random heterogeneous pool in the spirit of a campus HTCondor grid.

    Mixes small desktops with beefy servers; speeds vary by up to 4x,
    matching the paper's point that real clusters are not uniform.
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    specs = []
    for k in range(n_nodes):
        cores = int(rng.choice(cores_choices))
        specs.append(
            NodeSpec(
                name=f"node-{k:04d}",
                capacity=ResourceSpec(
                    cores=cores,
                    memory_mb=cores * memory_per_core_mb,
                    disk_mb=65_536,
                ),
                speed_factor=float(rng.uniform(*speed_range)),
            )
        )
    return specs


def uniform_pool(
    n_nodes: int, cores: int = 4, speed_factor: float = 1.0
) -> list[NodeSpec]:
    """A homogeneous pool (baseline for heterogeneity experiments)."""
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    return [
        NodeSpec(
            name=f"node-{k:04d}",
            capacity=ResourceSpec(
                cores=cores, memory_mb=cores * 2048, disk_mb=65_536
            ),
            speed_factor=speed_factor,
        )
        for k in range(n_nodes)
    ]
