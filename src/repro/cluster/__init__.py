"""Simulated HTCondor-like cluster substrate."""

from repro.cluster.condor import CondorPool, MatchmakingError, Placement
from repro.cluster.failures import FailureConfig, FailureInjector, FailureLogEntry
from repro.cluster.node import (
    ComputeNode,
    NodeSpec,
    heterogeneous_pool,
    uniform_pool,
)
from repro.cluster.resources import (
    WORKER_FOOTPRINT,
    ResourceError,
    ResourceLedger,
    ResourceSpec,
)
from repro.cluster.simulation import EventHandle, PeriodicTask, Simulator

__all__ = [
    "ComputeNode",
    "CondorPool",
    "EventHandle",
    "FailureConfig",
    "FailureInjector",
    "FailureLogEntry",
    "MatchmakingError",
    "NodeSpec",
    "PeriodicTask",
    "Placement",
    "ResourceError",
    "ResourceLedger",
    "ResourceSpec",
    "Simulator",
    "WORKER_FOOTPRINT",
    "heterogeneous_pool",
    "uniform_pool",
]
