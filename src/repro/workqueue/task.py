"""Work Queue tasks and results.

A *task* is the unit Work Queue ships to a worker.  In SSTD each Truth
Discovery (TD) job — one per claim — is split into one or more tasks
(paper Section IV-C4); a task's cost is dominated by the amount of
social sensing data it must process, captured by ``data_size``.

Tasks optionally carry a Python callable so the same object runs on both
the simulated workers (which only charge virtual time) and the local
thread-backed executor (which really calls it).
"""

from __future__ import annotations

import itertools
import traceback as traceback_module
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

__all__ = [
    "CostModel",
    "PayloadSpec",
    "Task",
    "TaskError",
    "TaskResult",
]

_task_counter = itertools.count(1)


@dataclass(frozen=True, slots=True)
class TaskError:
    """Serialization-safe record of a task failure.

    Executors never ship raw exception objects back to the master: an
    exception can hold arbitrary unpicklable state (locks, sockets, HMM
    instances), which would make results backend-dependent.  Both the
    thread and the process executors capture failures as a
    :class:`TaskError` — type name, message, formatted traceback — so a
    result round-trips identically through either backend.

    Attributes:
        type_name: Qualified exception class name (e.g. ``ValueError``).
        message: ``str(exc)`` of the original exception.
        traceback: Formatted traceback text, empty when unavailable.
    """

    type_name: str
    message: str
    traceback: str = ""

    @classmethod
    def from_exception(cls, exc: BaseException) -> "TaskError":
        """Capture an exception raised by a task payload."""
        return cls(
            type_name=type(exc).__name__,
            message=str(exc),
            traceback="".join(
                traceback_module.format_exception(type(exc), exc, exc.__traceback__)
            ),
        )

    def __str__(self) -> str:
        return f"{self.type_name}: {self.message}"


@dataclass(frozen=True)
class PayloadSpec:
    """Picklable task payload: a module-level function plus its arguments.

    Closures cannot cross a process boundary, so tasks destined for
    :class:`repro.workqueue.process.ProcessWorkQueue` carry a spec
    instead: ``fn`` must be an importable module-level callable and the
    arguments must themselves be picklable.  The spec is callable with no
    arguments, so it slots into :attr:`Task.fn` and runs unchanged on the
    simulated and thread backends too.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.fn is None:
            raise ValueError("PayloadSpec needs a callable")
        qualname = getattr(self.fn, "__qualname__", "")
        if "<lambda>" in qualname or "<locals>" in qualname:
            raise ValueError(
                f"PayloadSpec payload {qualname!r} is a lambda or closure; "
                "use a module-level function so the spec can be pickled"
            )

    def __call__(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


@dataclass(frozen=True, slots=True)
class CostModel:
    """Execution-time model of a TD task (paper Eq. (10)).

        ET = TI + data_size * unit_cost

    scaled by the executing node's speed factor, plus a transfer cost
    charged for moving the task's input data to the worker (the
    "communication and I/O overhead" the paper blames for sub-ideal
    speedup in Figure 7).

    Attributes:
        init_time: Per-task initialization overhead ``TI`` in seconds.
        unit_cost: Seconds of compute per unit of data (theta_1).
        transfer_cost: Seconds per unit of data for input transfer; not
            affected by node speed (it is network-bound).
    """

    init_time: float = 0.5
    unit_cost: float = 1e-3
    transfer_cost: float = 5e-5

    def __post_init__(self) -> None:
        if self.init_time < 0 or self.unit_cost < 0 or self.transfer_cost < 0:
            raise ValueError("cost components must be >= 0")

    def execution_time(self, data_size: float, speed_factor: float = 1.0) -> float:
        """Wall time a task of ``data_size`` takes on a node."""
        if speed_factor <= 0:
            raise ValueError("speed_factor must be > 0")
        compute = (self.init_time + data_size * self.unit_cost) / speed_factor
        return compute + data_size * self.transfer_cost


@dataclass(slots=True)
class Task:
    """One schedulable unit of work.

    Attributes:
        job_id: The TD job this task belongs to (claims map 1:1 to jobs).
        data_size: Input size in data units (e.g. number of reports).
        fn: Optional callable executed by real executors; simulated
            workers call it too (so results are real) but charge virtual
            time from the :class:`CostModel` instead of wall time.
        timeout: Optional execution-time cap.  A task that would exceed
            it is aborted at the cap and retried elsewhere — Work Queue's
            straggler defense against slow opportunistic machines.
        max_retries: Additional attempts allowed after a timeout.
        task_id: Unique id, auto-assigned.
        submitted_at: Virtual time of submission (set by the master).
        attempts: Executions started so far (managed by the master).
        tried_workers: Worker names that already attempted this task.
        payload_bytes: Size of the serialized payload actually shipped to
            a worker, recorded at first dispatch by executors that cross
            a process boundary (``None`` on in-process executors, which
            never serialize).  This is the per-task number the
            ``wq.payload_bytes`` histogram and the perf-smoke
            ``payload_bytes_per_task`` gate aggregate.
    """

    job_id: str
    data_size: float = 0.0
    fn: Optional[Callable[[], Any]] = None
    timeout: Optional[float] = None
    max_retries: int = 3
    task_id: int = field(default_factory=lambda: next(_task_counter))
    submitted_at: float = 0.0
    attempts: int = 0
    tried_workers: set = field(default_factory=set)
    payload_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ValueError("job_id must be non-empty")
        if self.data_size < 0:
            raise ValueError("data_size must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be > 0 when set")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    def run(self) -> Any:
        """Execute the payload, if any."""
        if self.fn is None:
            return None
        return self.fn()


@dataclass(frozen=True, slots=True)
class TaskResult:
    """Completion record of one task."""

    task_id: int
    job_id: str
    worker_name: str
    submitted_at: float
    started_at: float
    finished_at: float
    output: Any = None

    def __post_init__(self) -> None:
        if not (
            self.submitted_at <= self.started_at <= self.finished_at
        ):
            raise ValueError(
                "task timestamps must satisfy submitted <= started <= finished"
            )

    @property
    def queue_time(self) -> float:
        return self.started_at - self.submitted_at

    @property
    def execution_time(self) -> float:
        return self.finished_at - self.started_at

    @property
    def turnaround(self) -> float:
        return self.finished_at - self.submitted_at
