"""Elastic worker pool (the Global Control Knob's actuator).

Work Queue "maintains an elastic worker pool that allows users to scale
the number of workers up or down" (paper Section IV-A2).  The pool sits
between the master and the HTCondor matchmaker: scaling up places new
workers on cluster nodes, scaling down retires workers (draining busy
ones) and releases their resources.
"""

from __future__ import annotations

from repro.cluster.condor import CondorPool, MatchmakingError
from repro.cluster.simulation import Simulator
from repro.workqueue.master import WorkQueueMaster
from repro.workqueue.task import CostModel
from repro.cluster.resources import WORKER_FOOTPRINT, ResourceSpec
from repro.workqueue.worker import SimulatedWorker

__all__ = [
    "ElasticWorkerPool",
]


class ElasticWorkerPool:
    """Scales the worker count against an HTCondor pool.

    Args:
        min_dwell: Minimum (virtual) seconds between scaling moves in
            *opposite* directions.  A latency-fed controller can flip
            its pool-size target between adjacent sizes on consecutive
            monitor ticks (observed p95 moves with every sample); the
            dwell window suppresses the reversal, so the pool holds its
            last direction until the signal persists.  Same-direction
            moves are never delayed; ``0`` (default) disables damping.
    """

    def __init__(
        self,
        simulator: Simulator,
        master: WorkQueueMaster,
        condor: CondorPool,
        cost_model: CostModel,
        worker_footprint: ResourceSpec = WORKER_FOOTPRINT,
        min_workers: int = 1,
        max_workers: int | None = None,
        min_dwell: float = 0.0,
    ) -> None:
        if min_workers < 0:
            raise ValueError("min_workers must be >= 0")
        if max_workers is not None and max_workers < min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if min_dwell < 0:
            raise ValueError("min_dwell must be >= 0")
        self.simulator = simulator
        self.master = master
        self.condor = condor
        self.cost_model = cost_model
        self.worker_footprint = worker_footprint
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.min_dwell = min_dwell
        self._last_direction = 0
        self._last_scale_at = float("-inf")

    @property
    def size(self) -> int:
        """Current number of non-retired workers."""
        return self.master.active_worker_count

    def capacity_limit(self) -> int:
        """Upper bound on workers given cluster resources and config."""
        per_node = []
        for node in self.condor.alive_nodes:
            count = 0
            available = node.ledger.available
            while self.worker_footprint.scaled(count + 1).fits_within(available):
                count += 1
            per_node.append(count)
        fit = self.size + sum(per_node)
        if self.max_workers is not None:
            return min(fit, self.max_workers)
        return fit

    def scale_to(self, target: int) -> int:
        """Grow or shrink toward ``target`` workers; returns the new size.

        Growth stops early (without raising) when the cluster runs out of
        room — the controller treats the actuator as saturated.  A move
        that reverses the previous scaling direction within ``min_dwell``
        seconds is suppressed (oscillation damping); the current size is
        returned unchanged.
        """
        if target < 0:
            raise ValueError("target must be >= 0")
        target = max(target, self.min_workers)
        if self.max_workers is not None:
            target = min(target, self.max_workers)

        direction = (target > self.size) - (target < self.size)
        if (
            direction != 0
            and self.min_dwell > 0
            and self._last_direction != 0
            and direction != self._last_direction
            and self.simulator.now - self._last_scale_at < self.min_dwell
        ):
            return self.size
        if direction != 0:
            self._last_direction = direction
            self._last_scale_at = self.simulator.now

        while self.size < target:
            try:
                placement = self.condor.place(self.worker_footprint)
            except MatchmakingError:
                break
            worker = SimulatedWorker(
                self.simulator, placement, self.cost_model
            )
            self.master.attach_worker(worker)

        if self.size > target:
            # Retire idle workers first; drain busy ones only if needed.
            excess = self.size - target
            idle = [w for w in self.master.workers if not w.busy and not w.retired]
            busy = [w for w in self.master.workers if w.busy and not w.retired]
            for worker in (idle + busy)[:excess]:
                self.master.detach_worker(worker)
        return self.size

    def scale_by(self, delta: int) -> int:
        """Relative scaling; returns the new size."""
        return self.scale_to(self.size + delta)
