"""Simulated Work Queue workers.

A worker is a process pinned to a cluster placement (node + resources).
It executes one task at a time: input transfer + initialization +
compute, all charged in virtual time according to the task
:class:`~repro.workqueue.task.CostModel` and the node's speed factor.

Workers really *run* the task payload (``task.fn``) at completion time,
so simulated distributed runs produce bit-identical truth estimates to a
serial run — only the timing is simulated.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.cluster.condor import Placement
from repro.cluster.simulation import EventHandle, Simulator
from repro.workqueue.task import CostModel, Task, TaskResult

__all__ = [
    "SimulatedWorker",
]

_worker_counter = itertools.count(1)


class SimulatedWorker:
    """One worker process executing tasks on a simulated cluster node."""

    def __init__(
        self,
        simulator: Simulator,
        placement: Placement,
        cost_model: CostModel,
        name: str | None = None,
    ) -> None:
        self.simulator = simulator
        self.placement = placement
        self.cost_model = cost_model
        self.name = name or f"worker-{next(_worker_counter):04d}"
        self.current_task: Optional[Task] = None
        self.retired = False
        self.completed_count = 0
        self._completion: Optional[EventHandle] = None

    @property
    def busy(self) -> bool:
        return self.current_task is not None

    @property
    def node_name(self) -> str:
        return self.placement.node.name

    def execute(
        self,
        task: Task,
        on_done: Callable[["SimulatedWorker", TaskResult], None],
        start_delay: float = 0.0,
        on_timeout: Callable[["SimulatedWorker", Task], None] | None = None,
    ) -> None:
        """Start ``task``; calls ``on_done(worker, result)`` at completion.

        ``start_delay`` models time spent before execution begins on the
        worker (e.g. waiting for the master's serial dispatch/transfer
        pipeline); the worker is reserved immediately but the clock only
        charges execution from ``now + start_delay``.

        When the task carries a ``timeout`` and this node is too slow to
        finish within it, the attempt is aborted at the cap and
        ``on_timeout(worker, task)`` fires instead of ``on_done`` —
        Work Queue's straggler defense.
        """
        if self.busy:
            raise RuntimeError(f"{self.name} is already running a task")
        if self.retired:
            raise RuntimeError(f"{self.name} is retired")
        if not self.placement.node.alive:
            raise RuntimeError(f"node {self.node_name} is down")
        if start_delay < 0:
            raise ValueError("start_delay must be >= 0")
        self.current_task = task
        task.attempts += 1
        task.tried_workers.add(self.name)
        started = self.simulator.now + start_delay
        execution = self.cost_model.execution_time(
            task.data_size, self.placement.node.speed_factor
        )
        if (
            task.timeout is not None
            and execution > task.timeout
            and on_timeout is not None
        ):
            def _abort() -> None:
                self.current_task = None
                self._completion = None
                on_timeout(self, task)

            self._completion = self.simulator.schedule(
                start_delay + task.timeout, _abort
            )
            return
        duration = start_delay + execution

        def _complete() -> None:
            self.current_task = None
            self._completion = None
            self.completed_count += 1
            output = task.run()
            result = TaskResult(
                task_id=task.task_id,
                job_id=task.job_id,
                worker_name=self.name,
                submitted_at=task.submitted_at,
                started_at=started,
                finished_at=self.simulator.now,
                output=output,
            )
            on_done(self, result)

        self._completion = self.simulator.schedule(duration, _complete)

    def interrupt(self) -> Optional[Task]:
        """Abort the in-flight task (node failure); returns it for requeue."""
        task = self.current_task
        if self._completion is not None:
            self._completion.cancel()
            self._completion = None
        self.current_task = None
        return task

    def retire(self) -> None:
        """Stop accepting tasks and release the placement when idle.

        A busy worker finishes its current task first (drain); the pool
        calls :meth:`release_if_drained` from the completion callback.
        """
        self.retired = True
        self.release_if_drained()

    def release_if_drained(self) -> bool:
        """Release cluster resources once retired and idle."""
        if self.retired and not self.busy:
            self.placement.release()
            return True
        return False
