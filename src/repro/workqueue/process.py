"""Process-backed Work Queue executor: real parallelism on real cores.

:class:`repro.workqueue.local.LocalWorkQueue` runs payloads on threads,
so CPU-bound Truth Discovery work (Baum-Welch, Viterbi) serializes on
the GIL.  :class:`ProcessWorkQueue` keeps the same submit / priority /
drain API but executes payloads in worker *processes*, which is what the
paper's Work Queue deployment actually does (Section IV-A): one master,
N single-task workers, tasks shipped to whichever worker is free.

Design points, mirroring Work Queue's fault model:

- **Picklable payloads.**  Tasks must carry a payload that survives a
  process boundary — a :class:`repro.workqueue.task.PayloadSpec`
  (module-level function + args) rather than a closure.  Closures are
  rejected at submit time with a pointed error.
- **Bounded in-flight dispatch.**  Each worker holds at most one task;
  the master keeps the backlog and feeds workers as they free up, using
  the same priority-weighted draw as the thread backend.  No task data
  is serialized before a worker is ready for it.
- **Per-task timeout.**  A task that exceeds ``task.timeout`` has its
  worker terminated and is retried (Work Queue's straggler defense).
- **Retry on worker death.**  When a worker process dies mid-task —
  injected fault, OOM kill, segfault in native code — the task is
  re-queued (up to ``task.max_retries``) and a replacement worker is
  spawned, matching the re-queue semantics of the simulated master.

Failures are always reported as data: a task that exhausts its retries
yields a result whose ``error`` is a picklable
:class:`repro.workqueue.task.TaskError`, never a raised exception.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import pickle
import queue
import threading
from typing import Any, Optional

import numpy as np

from repro.obs import BYTE_BUCKETS, MetricsSnapshot, Observability, WallClock, using
from repro.obs.stitch import ClockSync, rebase_events
from repro.workqueue.local import LocalResult
from repro.workqueue.task import Task, TaskError

__all__ = [
    "ProcessWorkQueue",
]

#: Sentinel tag routing clock-offset handshake tuples through the same
#: inbox/outbox pair as tasks and results.  Probe (master -> worker):
#: ``(_HANDSHAKE, t0)``; reply (worker -> master): ``(_HANDSHAKE, name,
#: t0, w1)``.  FIFO queues guarantee the probe precedes every dispatch
#: and the reply precedes every result, so the master always holds a
#: :class:`~repro.obs.stitch.ClockSync` before it must rebase.
_HANDSHAKE = "__clock_sync__"


def _worker_main(
    inbox: Any, outbox: Any, worker_name: str, record_metrics: bool = False
) -> None:
    """Worker process loop: run pickled payloads, report results.

    The payload arrives pre-pickled (the master controls serialization
    errors explicitly) and the output is pre-pickled on the way back for
    the same reason: a ``multiprocessing.Queue`` pickles in a background
    feeder thread, where failures would vanish silently.

    With ``record_metrics`` the worker installs a fresh ambient
    :class:`~repro.obs.Observability` per task, so engine code running
    in the payload (Baum-Welch, decoding) records into it; the resulting
    :class:`~repro.obs.MetricsSnapshot` and the worker's span buffer
    travel back in the result tuple.  Spans are recorded against this
    process's own ``WallClock`` — the master rebases them onto its
    clockline using the spawn-time handshake (:mod:`repro.obs.stitch`).
    """
    clock = WallClock()
    while True:
        item = inbox.get()
        if item is None:
            return
        if item[0] == _HANDSHAKE:
            _, master_sent = item
            outbox.put((_HANDSHAKE, worker_name, master_sent, clock.now()))
            continue
        task_id, job_id, payload_bytes = item
        worker_obs = (
            Observability(clock=clock, capacity=256) if record_metrics else None
        )
        start = clock.now()
        output = None
        error: Optional[TaskError] = None
        try:
            payload = pickle.loads(payload_bytes)
            if worker_obs is not None:
                with using(worker_obs):
                    with worker_obs.tracer.span(
                        "worker.task", task_id=task_id, job_id=job_id
                    ):
                        output = payload() if payload is not None else None
            else:
                output = payload() if payload is not None else None
        except Exception as exc:  # deliberate: task errors are data
            error = TaskError.from_exception(exc)
        try:
            output_bytes = pickle.dumps(output)
        except Exception as exc:  # deliberate: unpicklable output is a task error
            error = TaskError.from_exception(exc)
            output_bytes = pickle.dumps(None)
        metrics: Optional[MetricsSnapshot] = None
        spans: Optional[tuple] = None
        if worker_obs is not None:
            worker_obs.metrics.inc("worker.tasks")
            if error is not None:
                worker_obs.metrics.inc("worker.task_errors")
            worker_obs.metrics.observe(
                "worker.task_seconds", clock.now() - start
            )
            metrics = worker_obs.metrics.snapshot()
            spans = (tuple(worker_obs.tracer.events()), worker_obs.tracer.dropped)
        outbox.put(
            (
                worker_name,
                task_id,
                job_id,
                output_bytes,
                clock.now() - start,
                error,
                metrics,
                len(payload_bytes),
                spans,
            )
        )


class _WorkerHandle:
    """Master-side record of one worker process."""

    __slots__ = ("process", "inbox", "name", "current", "dispatched_at")

    def __init__(self, process: Any, inbox: Any, name: str) -> None:
        self.process = process
        self.inbox = inbox
        self.name = name
        self.current: Optional[Task] = None
        self.dispatched_at: float = 0.0


class ProcessWorkQueue:
    """Multiprocessing executor with priority-weighted bounded dispatch.

    Drop-in for :class:`~repro.workqueue.local.LocalWorkQueue` wherever
    payloads are picklable:

        >>> from repro.workqueue.task import PayloadSpec, Task
        >>> wq = ProcessWorkQueue(n_workers=2)        # doctest: +SKIP
        >>> wq.submit(Task(job_id="j", fn=PayloadSpec(pow, (2, 10))))
        ...                                           # doctest: +SKIP
        >>> [r.output for r in wq.drain()]            # doctest: +SKIP
        [1024]

    Args:
        n_workers: Worker process count.
        rng: Seed or generator for the priority-weighted task draw.
        start_method: ``multiprocessing`` start method; defaults to
            ``fork`` where available (cheap startup) else ``spawn``.
        poll_interval: Supervisor wake-up period in seconds; bounds how
            fast deaths/timeouts are detected.
        obs: Tracing/metrics recorder (wall clock).  When enabled,
            workers additionally record per-task engine metrics and ship
            snapshots back for a master-side merge.
    """

    def __init__(
        self,
        n_workers: int = 2,
        rng: np.random.Generator | int | None = None,
        start_method: str | None = None,
        poll_interval: float = 0.02,
        obs: Observability | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if poll_interval <= 0:
            raise ValueError("poll_interval must be > 0")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self.obs = obs if obs is not None else Observability.from_env()
        if start_method is None:
            start_method = os.environ.get("REPRO_MP_START_METHOD") or None
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._poll_interval = poll_interval
        self._outbox = self._ctx.Queue()  # process-safe
        self._results: "queue.Queue[LocalResult]" = queue.Queue()  # thread-safe

        self._lock = threading.Lock()
        self._rng = rng  # guarded-by: _lock
        self._pending: list[Task] = []  # guarded-by: _lock
        self._outstanding = 0  # guarded-by: _lock
        self.priorities: dict[str, float] = {}  # guarded-by: _lock
        self._shutdown = False  # guarded-by: _lock
        self._workers: list[_WorkerHandle] = []  # guarded-by: _lock
        self._completed: set[int] = set()  # guarded-by: _lock
        self._worker_serial = 0  # guarded-by: _lock
        self._clock_sync: dict[str, ClockSync] = {}  # guarded-by: _lock

        # No other thread exists yet, so the initial spawn runs unlocked;
        # forking with the master lock held would stall the first submits.
        self._workers.extend(self._spawn_worker() for _ in range(n_workers))
        self._supervisor = threading.Thread(
            target=self._supervise, name="process-wq-supervisor", daemon=True
        )
        self._supervisor.start()

    # ------------------------------------------------------------------
    # Public API (mirrors LocalWorkQueue)
    # ------------------------------------------------------------------
    def set_priority(self, job_id: str, priority: float) -> None:  # raises: ValueError
        if priority <= 0:
            raise ValueError("priority must be > 0")
        with self._lock:
            self.priorities[job_id] = priority

    def submit(self, task: Task) -> None:  # raises: ValueError, RuntimeError
        if task.fn is None:
            raise ValueError("process tasks need a callable payload (task.fn)")
        qualname = getattr(task.fn, "__qualname__", "")
        if "<lambda>" in qualname or "<locals>" in qualname:
            raise ValueError(
                f"task payload {qualname!r} is a lambda or closure and cannot "
                "cross a process boundary; wrap a module-level function in "
                "repro.workqueue.task.PayloadSpec instead"
            )
        with self._lock:
            if self._shutdown:
                raise RuntimeError("queue is shut down")
            self._pending.append(task)
            self._outstanding += 1

    def drain(self, timeout: float = 60.0) -> list[LocalResult]:  # raises: TimeoutError
        """Block until every submitted task has finished; return results."""
        deadline = self.obs.clock.now() + timeout
        collected: list[LocalResult] = []
        while True:
            with self._lock:
                outstanding = self._outstanding
            if outstanding == 0:
                break
            remaining = deadline - self.obs.clock.now()
            if remaining <= 0:
                raise TimeoutError(f"{outstanding} tasks still outstanding")
            try:
                result = self._results.get(timeout=min(remaining, 0.5))
            except queue.Empty:
                continue
            collected.append(result)
            with self._lock:
                self._outstanding -= 1
        # Pick up any results that raced the counter.
        while True:
            try:
                collected.append(self._results.get_nowait())
            except queue.Empty:
                break
        return collected

    def shutdown(self) -> None:
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            workers = list(self._workers)
        for worker in workers:
            try:
                worker.inbox.put(None)
            except (OSError, ValueError):
                continue  # worker already gone; nothing to signal
            if self.obs.enabled:
                self.obs.tracer.instant(
                    "wq.poison_pill", track="master", worker=worker.name
                )
        self._supervisor.join(timeout=10.0)
        for worker in workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)

    # ------------------------------------------------------------------
    # Supervisor internals
    # ------------------------------------------------------------------
    def _spawn_worker(self) -> _WorkerHandle:
        """Start one worker process; the caller appends the handle.

        Never called with the master lock held: ``process.start()``
        blocks on the OS fork/spawn, and ``submit()``/``drain()`` must
        not stall behind it.  Only the serial counter needs the lock.
        """
        with self._lock:
            serial = self._worker_serial
            self._worker_serial += 1
        name = f"proc-worker-{serial}"
        inbox = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(inbox, self._outbox, name, self.obs.enabled),
            name=name,
            daemon=True,
        )
        process.start()
        if self.obs.enabled:
            # Clock-offset probe: first item through the inbox, so the
            # reply reaches the master before any result from this
            # worker ever needs rebasing.
            inbox.put((_HANDSHAKE, self.obs.clock.now()))
            self.obs.metrics.inc("wq.worker_spawned")
            self.obs.tracer.instant(
                "wq.worker_spawned", track="master", worker=name
            )
        return _WorkerHandle(process, inbox, name)

    def _pick_task(self) -> Optional[Task]:  # holds-lock: _lock
        """Priority-weighted pop; caller holds the lock."""
        if not self._pending:
            return None
        if len(self._pending) == 1:
            return self._pending.pop(0)
        weights = np.array(
            [self.priorities.get(t.job_id, 1.0) for t in self._pending]
        )
        index = int(self._rng.choice(len(self._pending), p=weights / weights.sum()))
        return self._pending.pop(index)

    def _dispatch_one(self, worker: _WorkerHandle) -> bool:  # holds-lock: _lock
        """Feed one pending task to an idle worker; caller holds the lock."""
        task = self._pick_task()
        if task is None:
            return False
        try:
            payload_bytes = pickle.dumps(task.fn)
        except Exception as exc:  # deliberate: unpicklable payload fails the task
            self._results.put(
                LocalResult(
                    task_id=task.task_id,
                    job_id=task.job_id,
                    worker_name=worker.name,
                    output=None,
                    wall_time=0.0,
                    error=TaskError.from_exception(exc),
                )
            )
            return True
        task.attempts += 1
        task.tried_workers.add(worker.name)
        task.payload_bytes = len(payload_bytes)
        worker.current = task
        worker.dispatched_at = self.obs.clock.now()
        worker.inbox.put((task.task_id, task.job_id, payload_bytes))
        if self.obs.enabled:
            self.obs.metrics.inc("wq.dispatched")
            self.obs.metrics.observe(
                "wq.payload_bytes", len(payload_bytes), bounds=BYTE_BUCKETS
            )
            # The master-side anchor of the happens-before relation the
            # stitch test asserts: every rebased worker span starts at
            # or after the dispatch instant that caused it.
            self.obs.tracer.instant(
                "wq.dispatch",
                track="master",
                worker=worker.name,
                job_id=task.job_id,
                task_id=task.task_id,
            )
        return True

    def _handle_result(self, item: tuple) -> None:
        if item[0] == _HANDSHAKE:
            _, worker_name, master_sent, worker_reply = item
            sync = ClockSync(
                worker=worker_name,
                master_sent=master_sent,
                worker_reply=worker_reply,
                master_received=self.obs.clock.now(),
            )
            with self._lock:
                self._clock_sync[worker_name] = sync
            self.obs.stitch[worker_name] = sync
            return
        worker_name, task_id, job_id, output_bytes, wall_time, error = item[:6]
        with self._lock:
            if task_id in self._completed:
                return  # duplicate from a retry whose first attempt landed
            self._completed.add(task_id)
            for worker in self._workers:
                if worker.name == worker_name:
                    worker.current = None
        metrics = item[6] if len(item) > 6 else None
        payload_nbytes = item[7] if len(item) > 7 else None
        span_payload = item[8] if len(item) > 8 else None
        result_nbytes = len(output_bytes)
        if self.obs.enabled:
            self.obs.metrics.inc("wq.completed")
            self.obs.metrics.observe("wq.task_seconds", wall_time)
            self.obs.metrics.observe(
                "wq.result_bytes", result_nbytes, bounds=BYTE_BUCKETS
            )
            end = self.obs.clock.now()
            self.obs.tracer.record_span(
                "wq.task",
                start=end - wall_time,
                end=end,
                track=worker_name,
                job_id=job_id,
                task_id=task_id,
                ok=error is None,
            )
            if metrics is not None:
                self.obs.metrics.merge(metrics)
            if span_payload is not None:
                self._stitch_spans(worker_name, span_payload)
        self._results.put(
            LocalResult(
                task_id=task_id,
                job_id=job_id,
                worker_name=worker_name,
                output=pickle.loads(output_bytes),
                wall_time=wall_time,
                error=error,
                metrics=metrics,
                payload_bytes=payload_nbytes,
                result_bytes=result_nbytes,
            )
        )

    def _stitch_spans(self, worker_name: str, span_payload: tuple) -> None:
        """Rebase one worker's shipped spans onto the master timeline.

        Runs on the supervisor thread after a result lands.  Without a
        :class:`ClockSync` for the worker (tracing enabled mid-run, or a
        lost handshake reply) the spans are dropped and counted rather
        than recorded with meaningless timestamps.
        """
        events, worker_dropped = span_payload
        with self._lock:
            sync = self._clock_sync.get(worker_name)
            if sync is not None and worker_dropped:
                sync = dataclasses.replace(
                    sync, dropped_spans=sync.dropped_spans + worker_dropped
                )
                self._clock_sync[worker_name] = sync
        if sync is None:
            self.obs.metrics.inc("wq.unstitched_spans", len(events))
            return
        self.obs.stitch[worker_name] = sync
        for event in rebase_events(events, sync):
            if event.kind == "instant":
                self.obs.tracer.record_instant(
                    event.name, event.start, track=event.track,
                    **event.attr_dict(),
                )
            else:
                self.obs.tracer.record_span(
                    event.name, event.start, event.end, track=event.track,
                    **event.attr_dict(),
                )

    def _fail_or_requeue(self, task: Task, reason: str) -> None:  # holds-lock: _lock
        """Retry a task lost to a dead/timed-out worker; caller holds lock."""
        if task.task_id in self._completed:
            return  # its result already came back; nothing was lost
        if task.attempts <= task.max_retries:
            self._pending.append(task)
            if self.obs.enabled:
                self.obs.metrics.inc("wq.requeued")
                self.obs.tracer.instant(
                    "wq.requeue",
                    track="master",
                    job_id=task.job_id,
                    task_id=task.task_id,
                    reason=reason,
                    attempt=task.attempts,
                )
            return
        self._completed.add(task.task_id)
        if self.obs.enabled:
            self.obs.metrics.inc("wq.failed")
            self.obs.tracer.instant(
                "wq.task_failed",
                track="master",
                job_id=task.job_id,
                task_id=task.task_id,
                reason=reason,
                attempts=task.attempts,
            )
        self._results.put(
            LocalResult(
                task_id=task.task_id,
                job_id=task.job_id,
                worker_name="<master>",
                output=None,
                wall_time=0.0,
                error=TaskError(
                    type_name="WorkerLost",
                    message=(
                        f"{reason} after {task.attempts} attempt(s) "
                        f"on workers {sorted(task.tried_workers)}"
                    ),
                ),
                payload_bytes=task.payload_bytes,
            )
        )

    def _reap_and_dispatch(self) -> bool:
        """One supervisor pass; returns True when the loop should exit.

        Straggler termination, death detection, and replacement spawning
        all block on the OS, so they run with the master lock released:
        the pass snapshots the worker list under the lock, reaps
        unlocked, then reacquires the lock to requeue lost tasks,
        install the new worker list, and dispatch.  ``_workers`` is only
        reassigned on this (supervisor) thread — ``submit``/``shutdown``
        just read it — so the snapshot cannot lose a concurrent append,
        and ``worker.current`` is likewise supervisor-private.
        """
        now = self.obs.clock.now()
        with self._lock:
            workers = list(self._workers)
            shutting_down = self._shutdown
        survivors: list[_WorkerHandle] = []
        dead: list[tuple[_WorkerHandle, bool]] = []
        for worker in workers:
            timed_out = (
                worker.current is not None
                and worker.current.timeout is not None
                and now - worker.dispatched_at > worker.current.timeout
            )
            if timed_out and worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                survivors.append(worker)
            else:
                dead.append((worker, timed_out))
        if dead and self.obs.enabled:
            for worker, timed_out in dead:
                if timed_out:
                    self.obs.metrics.inc("wq.timeouts")
                else:
                    self.obs.metrics.inc("wq.worker_death")
                self.obs.tracer.instant(
                    "wq.worker_death",
                    track="master",
                    worker=worker.name,
                    reason="timeout" if timed_out else "died",
                )
        any_alive = bool(survivors)
        replacements: list[_WorkerHandle] = []
        if dead and not shutting_down:
            replacements = [self._spawn_worker() for _ in dead]
            any_alive = True
            if self.obs.enabled:
                self.obs.metrics.inc("wq.worker_respawn", len(replacements))
        with self._lock:
            for worker, timed_out in dead:
                if worker.current is not None:
                    reason = (
                        f"task exceeded timeout={worker.current.timeout}s"
                        if timed_out
                        else f"worker {worker.name} died"
                    )
                    self._fail_or_requeue(worker.current, reason)
                    worker.current = None
            self._workers = survivors + replacements
            shutting_down = self._shutdown
            if not shutting_down:
                for worker in self._workers:
                    if worker.current is None and not self._dispatch_one(worker):
                        break
        if shutting_down:
            # Replacements spawned while shutdown() was signalling missed
            # its poison pills; stop them here so the loop can converge.
            for worker in replacements:
                try:
                    worker.inbox.put(None)
                except (OSError, ValueError):
                    continue  # queue already closed; worker is exiting anyway
                if self.obs.enabled:
                    self.obs.tracer.instant(
                        "wq.poison_pill", track="master", worker=worker.name
                    )
        return shutting_down and not any_alive

    def _supervise(self) -> None:
        while True:
            try:
                item = self._outbox.get(timeout=self._poll_interval)
            except queue.Empty:
                item = None
            if item is not None:
                self._handle_result(item)
                # Drain whatever else is ready before the housekeeping pass.
                while True:
                    try:
                        self._handle_result(self._outbox.get_nowait())
                    except queue.Empty:
                        break
            if self._reap_and_dispatch():
                return
