"""Local thread-backed Work Queue executor.

The simulated workers (:mod:`repro.workqueue.worker`) model timing; this
executor really runs task payloads on a pool of threads with the same
submit / priority / collect API, so examples and small deployments can
use actual concurrency without the simulation layer.  On a one-core box
this obviously does not show parallel speedup — that is exactly why the
scalability experiments use the simulator — but it exercises the same
dispatch logic against real wall time.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.obs import MetricsSnapshot, Observability
from repro.workqueue.task import Task, TaskError

__all__ = [
    "LocalResult",
    "LocalWorkQueue",
]


@dataclass(frozen=True, slots=True)
class LocalResult:
    """Completion record of a locally executed task.

    ``error`` is a picklable :class:`repro.workqueue.task.TaskError`
    (never a raw exception object), so results from the thread and the
    process backends are interchangeable.  ``metrics`` carries the
    worker-side :class:`repro.obs.MetricsSnapshot` for this task (the
    process backend's channel for shipping engine metrics back to the
    master); ``None`` when tracing is off or the backend records into
    the master registry directly.  ``payload_bytes`` / ``result_bytes``
    are the serialized sizes the task actually shipped across the
    process boundary (payload out, output back); ``None`` on in-process
    executors, which never serialize.  The parallel-backend benchmark
    and the ``wq.payload_bytes`` / ``wq.result_bytes`` histograms read
    the same numbers, so the bench and a live operator agree.
    """

    task_id: int
    job_id: str
    worker_name: str
    output: Any
    wall_time: float
    error: Optional[TaskError] = None
    metrics: Optional[MetricsSnapshot] = None
    payload_bytes: Optional[int] = None
    result_bytes: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class LocalWorkQueue:
    """Thread-pool executor with priority-weighted dispatch.

    Example:
        >>> wq = LocalWorkQueue(n_workers=2)
        >>> wq.submit(Task(job_id="j", fn=lambda: 21 * 2))
        >>> [r.output for r in wq.drain()]
        [42]
        >>> wq.shutdown()
    """

    def __init__(
        self,
        n_workers: int = 2,
        rng: np.random.Generator | int | None = None,
        obs: Observability | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self.obs = obs if obs is not None else Observability.from_env()
        self._lock = threading.Lock()
        self._rng = rng  # guarded-by: _lock
        self._pending: list[Task] = []  # guarded-by: _lock
        self._results: "queue.Queue[LocalResult]" = queue.Queue()  # thread-safe
        self._outstanding = 0  # guarded-by: _lock
        self.priorities: dict[str, float] = {}  # guarded-by: _lock
        self._shutdown = False  # guarded-by: _lock
        self._wakeup = threading.Condition(self._lock)  # lock-alias: _lock
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"local-worker-{k}", daemon=True
            )
            for k in range(n_workers)
        ]
        for thread in self._threads:
            thread.start()

    def set_priority(self, job_id: str, priority: float) -> None:  # raises: ValueError
        if priority <= 0:
            raise ValueError("priority must be > 0")
        with self._lock:
            self.priorities[job_id] = priority

    def submit(self, task: Task) -> None:  # raises: ValueError, RuntimeError
        if task.fn is None:
            raise ValueError("local tasks need a callable payload (task.fn)")
        with self._wakeup:
            if self._shutdown:
                raise RuntimeError("queue is shut down")
            self._pending.append(task)
            self._outstanding += 1
            self._wakeup.notify()

    def _pick_task(self) -> Optional[Task]:  # holds-lock: _lock
        """Priority-weighted pop; caller holds the lock."""
        if not self._pending:
            return None
        if len(self._pending) == 1:
            return self._pending.pop(0)
        weights = np.array(
            [self.priorities.get(t.job_id, 1.0) for t in self._pending]
        )
        index = int(self._rng.choice(len(self._pending), p=weights / weights.sum()))
        return self._pending.pop(index)

    def _worker_loop(self) -> None:
        name = threading.current_thread().name
        while True:
            with self._wakeup:
                while not self._pending and not self._shutdown:
                    self._wakeup.wait()
                if self._shutdown and not self._pending:
                    return
                task = self._pick_task()
            if task is None:
                continue
            start = self.obs.clock.now()
            error: Optional[TaskError] = None
            output = None
            try:
                output = task.run()
            except Exception as exc:  # deliberate: task errors are data
                error = TaskError.from_exception(exc)
            end = self.obs.clock.now()
            if self.obs.enabled:
                self.obs.metrics.inc("wq.completed")
                self.obs.metrics.inc("worker.tasks")
                if error is not None:
                    self.obs.metrics.inc("worker.task_errors")
                self.obs.metrics.observe("wq.task_seconds", end - start)
                self.obs.metrics.observe("worker.task_seconds", end - start)
                self.obs.tracer.record_span(
                    "wq.task",
                    start=start,
                    end=end,
                    track=name,
                    job_id=task.job_id,
                    task_id=task.task_id,
                    ok=error is None,
                )
            self._results.put(
                LocalResult(
                    task_id=task.task_id,
                    job_id=task.job_id,
                    worker_name=name,
                    output=output,
                    wall_time=end - start,
                    error=error,
                )
            )

    def drain(self, timeout: float = 60.0) -> list[LocalResult]:  # raises: TimeoutError
        """Block until every submitted task has finished; return results."""
        deadline = self.obs.clock.now() + timeout
        collected: list[LocalResult] = []
        while True:
            with self._lock:
                outstanding = self._outstanding
            if outstanding == 0:
                break
            remaining = deadline - self.obs.clock.now()
            if remaining <= 0:
                raise TimeoutError(
                    f"{outstanding} tasks still outstanding"
                )
            try:
                result = self._results.get(timeout=min(remaining, 0.5))
            except queue.Empty:
                continue
            collected.append(result)
            with self._lock:
                self._outstanding -= 1
        # Pick up any results that raced the counter.
        while True:
            try:
                collected.append(self._results.get_nowait())
            except queue.Empty:
                break
        return collected

    def shutdown(self) -> None:
        with self._wakeup:
            self._shutdown = True
            self._wakeup.notify_all()
        for thread in self._threads:
            thread.join(timeout=5.0)
