"""Work Queue reproduction: master, workers, elastic pool, local executor."""

from repro.workqueue.local import LocalResult, LocalWorkQueue
from repro.workqueue.master import JobAccounting, WorkQueueMaster
from repro.workqueue.pool import ElasticWorkerPool
from repro.workqueue.task import CostModel, Task, TaskResult
from repro.workqueue.worker import SimulatedWorker

__all__ = [
    "CostModel",
    "ElasticWorkerPool",
    "JobAccounting",
    "LocalResult",
    "LocalWorkQueue",
    "SimulatedWorker",
    "Task",
    "TaskResult",
    "WorkQueueMaster",
]
