"""Work Queue reproduction: master, workers, elastic pool, real executors."""

from repro.workqueue.local import LocalResult, LocalWorkQueue
from repro.workqueue.master import JobAccounting, WorkQueueMaster
from repro.workqueue.pool import ElasticWorkerPool
from repro.workqueue.process import ProcessWorkQueue
from repro.workqueue.task import CostModel, PayloadSpec, Task, TaskError, TaskResult
from repro.workqueue.worker import SimulatedWorker

__all__ = [
    "CostModel",
    "ElasticWorkerPool",
    "JobAccounting",
    "LocalResult",
    "LocalWorkQueue",
    "PayloadSpec",
    "ProcessWorkQueue",
    "SimulatedWorker",
    "Task",
    "TaskError",
    "TaskResult",
    "WorkQueueMaster",
]
