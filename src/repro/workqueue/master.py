"""The Work Queue master: task pool, dispatch, and job accounting.

Reproduces the master process of paper Section IV-A2: it owns a *Task
Pool* of pending tasks and a *Worker Pool* of simulated workers, and
dispatches tasks to idle workers.

Dispatch follows the paper's priority semantics (Section IV-C4): a job's
priority is the probability that one of its tasks is chosen next, so a
high-priority job's tasks are *more likely* — not guaranteed — to run
earlier.  Priorities are per-job (the Local Control Knob) and can be
changed at any time by the Dynamic Task Manager.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.cluster.simulation import Simulator
from repro.obs import Observability, VirtualClock
from repro.workqueue.task import Task, TaskResult
from repro.workqueue.worker import SimulatedWorker

__all__ = [
    "JobAccounting",
    "WorkQueueMaster",
]


@dataclass
class JobAccounting:
    """Execution bookkeeping of one TD job."""

    job_id: str
    submitted: int = 0
    completed: int = 0
    first_submit_at: float = 0.0
    last_finish_at: float = 0.0
    busy_time: float = 0.0
    data_processed: float = 0.0

    @property
    def pending(self) -> int:
        return self.submitted - self.completed

    @property
    def elapsed(self) -> float:
        return self.last_finish_at - self.first_submit_at


class WorkQueueMaster:
    """Master process: submit tasks, dispatch by job priority, collect results."""

    def __init__(
        self,
        simulator: Simulator,
        rng: np.random.Generator | int | None = None,
        dispatch_overhead: float = 0.0,
        obs: Observability | None = None,
    ) -> None:
        """Args:
            simulator: The virtual clock.
            rng: Seed for priority-weighted dispatch sampling.
            dispatch_overhead: Seconds of *master-side* work per task
                dispatch (matchmaking, input staging).  The master is a
                single process, so this cost serializes — the classic
                Work Queue scalability bottleneck that caps speedup for
                overhead-dominated (small) workloads.
            obs: Tracing/metrics recorder; defaults to an instance on
                the simulation's virtual clock, enabled only when
                ``REPRO_TRACE`` asks for it.
        """
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        if dispatch_overhead < 0:
            raise ValueError("dispatch_overhead must be >= 0")
        self.simulator = simulator
        self.rng = rng
        self.dispatch_overhead = dispatch_overhead
        self.obs = (
            obs
            if obs is not None
            else Observability.from_env(clock=VirtualClock(simulator))
        )
        self._master_free = 0.0
        self.pending: list[Task] = []
        self.workers: list[SimulatedWorker] = []
        self.results: list[TaskResult] = []
        self.failed: list[Task] = []
        self.jobs: dict[str, JobAccounting] = {}
        self.priorities: dict[str, float] = {}
        self._result_listeners: list[Callable[[TaskResult], None]] = []
        self._drained_workers: list[SimulatedWorker] = []

    # ------------------------------------------------------------------
    # Worker pool management
    # ------------------------------------------------------------------
    def attach_worker(self, worker: SimulatedWorker) -> None:
        self.workers.append(worker)
        self._dispatch()

    def detach_worker(self, worker: SimulatedWorker) -> None:
        """Retire a worker; it drains its current task first."""
        worker.retire()
        if not worker.busy:
            self._forget(worker)

    def _forget(self, worker: SimulatedWorker) -> None:
        if worker in self.workers:
            self.workers.remove(worker)

    @property
    def idle_workers(self) -> list[SimulatedWorker]:
        return [
            w
            for w in self.workers
            if not w.busy and not w.retired and w.placement.node.alive
        ]

    @property
    def active_worker_count(self) -> int:
        return sum(1 for w in self.workers if not w.retired)

    # ------------------------------------------------------------------
    # Job priorities (Local Control Knob)
    # ------------------------------------------------------------------
    def set_priority(self, job_id: str, priority: float) -> None:
        if priority <= 0:
            raise ValueError(f"priority must be > 0, got {priority}")
        self.priorities[job_id] = priority

    def priority_of(self, job_id: str) -> float:
        return self.priorities.get(job_id, 1.0)

    # ------------------------------------------------------------------
    # Submission and dispatch
    # ------------------------------------------------------------------
    def submit(self, task: Task) -> None:
        task.submitted_at = self.simulator.now
        account = self.jobs.get(task.job_id)
        if account is None:
            account = JobAccounting(
                job_id=task.job_id, first_submit_at=self.simulator.now
            )
            self.jobs[task.job_id] = account
        account.submitted += 1
        self.pending.append(task)
        if self.obs.enabled:
            self.obs.metrics.inc("wq.submitted")
            self.obs.tracer.instant(
                "wq.submit",
                track="master",
                job_id=task.job_id,
                task_id=task.task_id,
            )
            self._update_gauges()
        self._dispatch()

    def on_result(self, listener: Callable[[TaskResult], None]) -> None:
        self._result_listeners.append(listener)

    def _pick_task_index(self) -> int:
        """Priority-weighted random choice over the pending pool."""
        if len(self.pending) == 1:
            return 0
        weights = np.array(
            [self.priority_of(task.job_id) for task in self.pending]
        )
        total = weights.sum()
        if total <= 0:
            return 0
        return int(self.rng.choice(len(self.pending), p=weights / total))

    def _worker_for(
        self, task: Task, idle: list[SimulatedWorker]
    ) -> Optional[SimulatedWorker]:
        """Retry-elsewhere placement: prefer a worker that has not yet
        attempted ``task``; only reuse a tried worker once every active
        worker has had a go (else a too-slow node burns all retries)."""
        fresh = [w for w in idle if w.name not in task.tried_workers]
        if fresh:
            return fresh[0]
        active_names = {w.name for w in self.workers if not w.retired}
        if active_names <= task.tried_workers and idle:
            return idle[0]
        return None

    def _dispatch(self) -> None:
        while self.pending:
            idle = self.idle_workers
            if not idle:
                return
            index = self._pick_task_index()
            task = self.pending[index]
            worker = self._worker_for(task, idle)
            if worker is None:
                # The sampled task must wait for a fresh worker; see if
                # any other pending task can use the idle capacity now.
                for alt_index, alt_task in enumerate(self.pending):
                    alt_worker = self._worker_for(alt_task, idle)
                    if alt_worker is not None:
                        index, task, worker = alt_index, alt_task, alt_worker
                        break
                if worker is None:
                    return
            self.pending.pop(index)
            if self.obs.enabled:
                self.obs.metrics.inc("wq.dispatched")
                self.obs.tracer.instant(
                    "wq.dispatch",
                    track="master",
                    job_id=task.job_id,
                    task_id=task.task_id,
                    worker=worker.name,
                    attempt=task.attempts + 1,
                )
            if self.dispatch_overhead > 0:
                now = self.simulator.now
                dispatch_done = (
                    max(now, self._master_free) + self.dispatch_overhead
                )
                self._master_free = dispatch_done
                worker.execute(
                    task,
                    self._task_done,
                    start_delay=dispatch_done - now,
                    on_timeout=self._task_timed_out,
                )
            else:
                worker.execute(
                    task, self._task_done, on_timeout=self._task_timed_out
                )
            if self.obs.enabled:
                self._update_gauges()

    def _task_timed_out(self, worker: SimulatedWorker, task: Task) -> None:
        """A straggler attempt hit its cap: retry elsewhere or give up."""
        if self.obs.enabled:
            self.obs.metrics.inc("wq.timeouts")
        if task.attempts > task.max_retries:
            self.failed.append(task)
            account = self.jobs[task.job_id]
            account.completed += 1  # terminal: no longer outstanding
            account.last_finish_at = self.simulator.now
            if self.obs.enabled:
                self.obs.metrics.inc("wq.failed")
                self.obs.tracer.instant(
                    "wq.task_failed",
                    track="master",
                    job_id=task.job_id,
                    task_id=task.task_id,
                    attempts=task.attempts,
                )
        else:
            self.pending.append(task)
            if self.obs.enabled:
                self.obs.metrics.inc("wq.requeued")
                self.obs.tracer.instant(
                    "wq.requeue",
                    track="master",
                    job_id=task.job_id,
                    task_id=task.task_id,
                    reason="timeout",
                    worker=worker.name,
                )
        if self.obs.enabled:
            self._update_gauges()
        self._dispatch()

    def _task_done(self, worker: SimulatedWorker, result: TaskResult) -> None:
        self.results.append(result)
        account = self.jobs[result.job_id]
        account.completed += 1
        account.last_finish_at = result.finished_at
        account.busy_time += result.execution_time
        if self.obs.enabled:
            self.obs.metrics.inc("wq.completed")
            self.obs.metrics.observe("wq.task_seconds", result.execution_time)
            self.obs.tracer.record_span(
                "wq.task",
                start=result.started_at,
                end=result.finished_at,
                track=worker.name,
                job_id=result.job_id,
                task_id=result.task_id,
            )
            if account.pending == 0:
                self.obs.tracer.record_span(
                    "wq.job",
                    start=account.first_submit_at,
                    end=account.last_finish_at,
                    track=f"job:{result.job_id}",
                    job_id=result.job_id,
                    tasks=account.completed,
                )
            self._update_gauges()
        for listener in self._result_listeners:
            listener(result)
        if worker.release_if_drained():
            self._forget(worker)
        else:
            self._dispatch()

    def requeue_from(self, worker: SimulatedWorker) -> Optional[Task]:
        """Recover the in-flight task of a failed worker back into the pool.

        The worker itself is removed from the pool — its node is gone.
        """
        task = worker.interrupt()
        worker.retired = True
        self._forget(worker)
        if self.obs.enabled:
            self.obs.metrics.inc("wq.worker_lost")
            self.obs.tracer.instant(
                "wq.worker_lost", track="master", worker=worker.name
            )
        if task is not None:
            if self.obs.enabled:
                self.obs.metrics.inc("wq.requeued")
                self.obs.tracer.instant(
                    "wq.requeue",
                    track="master",
                    job_id=task.job_id,
                    task_id=task.task_id,
                    reason="worker_lost",
                    worker=worker.name,
                )
            self.pending.append(task)
            self._dispatch()
        return task

    def _update_gauges(self) -> None:
        """Refresh queue-shape gauges; call only when ``obs.enabled``."""
        self.obs.metrics.set_gauge("wq.queue_depth", float(len(self.pending)))
        self.obs.metrics.set_gauge(
            "wq.busy_workers", float(sum(1 for w in self.workers if w.busy))
        )
        self.obs.metrics.set_gauge(
            "wq.active_workers", float(self.active_worker_count)
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def outstanding(self) -> int:
        """Tasks submitted but not finished."""
        running = sum(1 for w in self.workers if w.busy)
        return len(self.pending) + running

    def wait_all(self, until: float = float("inf")) -> None:
        """Run the simulation until every submitted task completes."""
        while self.outstanding() and self.simulator.now < until:
            if not self.simulator.step():
                break

    def job_elapsed(self, job_id: str) -> float:
        """Current elapsed (virtual) time of a job since first submit."""
        account = self.jobs.get(job_id)
        if account is None:
            return 0.0
        if account.pending > 0:
            return self.simulator.now - account.first_submit_at
        return account.elapsed
