"""Sliding-window majority voting — a cheap dynamic baseline.

The paper positions majority voting as the "very fast but low accuracy"
end of the spectrum (§II); its natural dynamic variant votes over a
sliding window so old reports age out, which lets it track truth
changes without any model.  It serves the benches as a lower bound for
the *dynamic* schemes: a dynamic method that cannot beat windowed
voting adds no value over the trivial approach.
"""

from __future__ import annotations

import collections
from typing import Sequence

from repro.baselines.base import EvaluationGrid, TruthDiscoveryAlgorithm
from repro.core.types import Report, TruthEstimate, TruthValue

__all__ = [
    "SlidingVote",
]


class SlidingVote(TruthDiscoveryAlgorithm):
    """Majority vote over a sliding time window, per claim.

    Args:
        window_steps: Window length as a multiple of the evaluation
            grid step.
        carry_forward: Keep the previous verdict through empty windows
            (True, default) or fall back to FALSE (False).
    """

    name = "SlidingVote"

    def __init__(
        self, window_steps: float = 2.0, carry_forward: bool = True
    ) -> None:
        if window_steps <= 0:
            raise ValueError("window_steps must be > 0")
        self.window_steps = window_steps
        self.carry_forward = carry_forward

    def discover(
        self, reports: Sequence[Report], grid: EvaluationGrid
    ) -> list[TruthEstimate]:
        window = self.window_steps * grid.step
        by_claim: dict[str, list[Report]] = collections.defaultdict(list)
        for report in reports:
            by_claim[report.claim_id].append(report)

        estimates: list[TruthEstimate] = []
        times = grid.times()
        for claim_id in sorted(by_claim):
            ordered = sorted(
                by_claim[claim_id], key=lambda report: report.timestamp
            )
            queue: collections.deque[tuple[float, int]] = collections.deque()
            net = 0
            count = 0
            cursor = 0
            current = TruthValue.FALSE
            for t in times:
                while cursor < len(ordered) and ordered[cursor].timestamp <= t:
                    vote = int(ordered[cursor].attitude)
                    queue.append((ordered[cursor].timestamp, vote))
                    net += vote
                    count += abs(vote)
                    cursor += 1
                while queue and queue[0][0] <= t - window:
                    _, vote = queue.popleft()
                    net -= vote
                    count -= abs(vote)
                if count > 0:
                    current = (
                        TruthValue.TRUE if net > 0 else TruthValue.FALSE
                    )
                elif not self.carry_forward:
                    current = TruthValue.FALSE
                confidence = abs(net) / count if count else 0.0
                estimates.append(
                    TruthEstimate(
                        claim_id=claim_id,
                        timestamp=float(t),
                        value=current,
                        confidence=min(confidence, 1.0),
                    )
                )
        return estimates
