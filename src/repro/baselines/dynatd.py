"""DynaTD baseline (Li et al., KDD 2015 — "On the Discovery of Evolving Truth").

DynaTD is the strongest baseline in the paper: a *dynamic* truth
discovery scheme that processes the stream incrementally with a Maximum A
Posteriori update.  At each time step the posterior evidence for a claim
combines

- the decayed evidence from previous steps (the evolution prior: truth
  tends to persist), and
- a reliability-weighted vote over the reports of the current step.

Source reliabilities are updated online from agreement with the running
truth estimates, with exponential forgetting.  Unlike SSTD, DynaTD has no
explicit transition model learned per claim and does not use the
contribution-score components (uncertainty / independence), which is
where SSTD's accuracy edge comes from in the paper's evaluation.
"""

from __future__ import annotations

import collections
import math
from typing import Sequence

from repro.baselines.base import EvaluationGrid, TruthDiscoveryAlgorithm
from repro.core.types import Report, TruthEstimate, TruthValue

__all__ = [
    "DynaTD",
]

_EPS = 1e-9


class DynaTD(TruthDiscoveryAlgorithm):
    """Streaming MAP truth discovery with evolving source reliability.

    Args:
        decay: Forgetting factor of accumulated claim evidence per step;
            1.0 never forgets (static), 0.0 trusts only the current step.
        reliability_lr: Learning rate of the per-source reliability EMA.
        initial_reliability: Reliability prior for unseen sources.
    """

    name = "DynaTD"

    def __init__(
        self,
        decay: float = 0.7,
        reliability_lr: float = 0.1,
        initial_reliability: float = 0.6,
    ) -> None:
        if not 0.0 <= decay <= 1.0:
            raise ValueError(f"decay must be in [0, 1], got {decay}")
        if not 0.0 < reliability_lr <= 1.0:
            raise ValueError("reliability_lr must be in (0, 1]")
        if not 0.0 < initial_reliability < 1.0:
            raise ValueError("initial_reliability must be in (0, 1)")
        self.decay = decay
        self.reliability_lr = reliability_lr
        self.initial_reliability = initial_reliability
        self.reset()

    def reset(self) -> None:
        """Clear all streaming state (evidence and reliabilities)."""
        self._evidence: dict[str, float] = collections.defaultdict(float)
        self._reliability: dict[str, float] = {}
        self._truth: dict[str, TruthValue] = {}

    # ------------------------------------------------------------------
    # Streaming API
    # ------------------------------------------------------------------
    def step(self, reports: Sequence[Report], now: float) -> list[TruthEstimate]:
        """Consume one time-step of reports, emit current estimates.

        ``reports`` are the reports that arrived since the previous step.
        """
        votes: dict[str, list[tuple[str, float]]] = collections.defaultdict(list)
        for report in reports:
            if report.attitude:
                votes[report.claim_id].append(
                    (report.source_id, float(report.attitude))
                )

        # Decay all accumulated evidence (evolution prior).
        for claim_id in self._evidence:
            self._evidence[claim_id] *= self.decay

        # Reliability-weighted vote of the current step, in log-odds form.
        for claim_id, claim_votes in votes.items():
            step_evidence = 0.0
            for source_id, sign in claim_votes:
                rel = self._reliability.get(source_id, self.initial_reliability)
                rel = min(max(rel, _EPS), 1.0 - _EPS)
                step_evidence += sign * math.log(rel / (1.0 - rel))
            self._evidence[claim_id] += step_evidence

        # New truth decisions.
        for claim_id in votes:
            self._truth[claim_id] = (
                TruthValue.TRUE
                if self._evidence[claim_id] > 0
                else TruthValue.FALSE
            )

        # Online reliability update from agreement with the new truth.
        for claim_id, claim_votes in votes.items():
            truth_sign = 1.0 if self._truth[claim_id] is TruthValue.TRUE else -1.0
            for source_id, sign in claim_votes:
                agreed = 1.0 if sign == truth_sign else 0.0
                old = self._reliability.get(source_id, self.initial_reliability)
                self._reliability[source_id] = (
                    1.0 - self.reliability_lr
                ) * old + self.reliability_lr * agreed

        estimates = []
        for claim_id in sorted(self._truth):
            evidence = self._evidence[claim_id]
            confidence = 1.0 - math.exp(-abs(evidence)) if evidence else 0.0
            estimates.append(
                TruthEstimate(
                    claim_id=claim_id,
                    timestamp=now,
                    value=self._truth[claim_id],
                    confidence=confidence,
                )
            )
        return estimates

    def source_reliability(self, source_id: str) -> float:
        """Current reliability estimate for ``source_id``."""
        return self._reliability.get(source_id, self.initial_reliability)

    # ------------------------------------------------------------------
    # Batch-compatible API: replay the trace through the streaming core
    # ------------------------------------------------------------------
    def discover(
        self, reports: Sequence[Report], grid: EvaluationGrid
    ) -> list[TruthEstimate]:
        self.reset()
        ordered = sorted(reports, key=lambda report: report.timestamp)
        estimates: list[TruthEstimate] = []
        cursor = 0
        for t in grid.times():
            batch = []
            while cursor < len(ordered) and ordered[cursor].timestamp <= t:
                batch.append(ordered[cursor])
                cursor += 1
            estimates.extend(self.step(batch, float(t)))
        return estimates
