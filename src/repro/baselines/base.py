"""Shared interface and helpers for truth discovery algorithms.

All algorithms — SSTD and the six baselines of paper Section V-A1 —
consume a sequence of :class:`~repro.core.types.Report` and emit
:class:`~repro.core.types.TruthEstimate` points on a common evaluation
grid, so the metrics module can score them identically.

Batch (static) algorithms such as TruthFinder estimate *one* truth value
per claim from the whole trace; :class:`BatchTruthDiscovery` replicates
that value across the evaluation grid.  This mirrors the paper's
evaluation: static schemes are inherently penalized on traces whose
ground truth changes over time, which is exactly the phenomenon the
dynamic-truth experiments measure.
"""

from __future__ import annotations

import abc
import collections
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.types import Report, TruthEstimate, TruthValue

__all__ = [
    "BatchTruthDiscovery",
    "EvaluationGrid",
    "TruthDiscoveryAlgorithm",
    "group_by_claim",
    "positive_fraction_decision",
    "source_claim_votes",
]


@dataclass(frozen=True, slots=True)
class EvaluationGrid:
    """Regular grid of timestamps on which estimates are emitted."""

    start: float
    end: float
    step: float = 60.0

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise ValueError(f"step must be > 0, got {self.step}")
        if self.end < self.start:
            raise ValueError(f"end {self.end} before start {self.start}")

    def times(self) -> np.ndarray:
        """Grid timestamps: ``start + step, start + 2*step, ...``"""
        count = max(1, int(np.ceil((self.end - self.start) / self.step)))
        return self.start + self.step * np.arange(1, count + 1)

    @classmethod
    def from_reports(
        cls, reports: Sequence[Report], step: float = 60.0
    ) -> "EvaluationGrid":
        if not reports:
            raise ValueError("cannot build a grid from zero reports")
        timestamps = [report.timestamp for report in reports]
        return cls(start=min(timestamps), end=max(timestamps), step=step)


def group_by_claim(reports: Iterable[Report]) -> dict[str, list[Report]]:
    """Reports partitioned by claim, each sorted by time."""
    grouped: dict[str, list[Report]] = collections.defaultdict(list)
    for report in reports:
        grouped[report.claim_id].append(report)
    for claim_reports in grouped.values():
        claim_reports.sort(key=lambda report: report.timestamp)
    return dict(grouped)


def source_claim_votes(
    reports: Iterable[Report],
) -> dict[tuple[str, str], int]:
    """Net attitude of each (source, claim) pair.

    A source that reported a claim several times votes once, with the
    sign of its cumulative attitude — the standard reduction from report
    streams to the source-claim matrix that the classic batch algorithms
    (TruthFinder, Invest, 3-Estimates, CATD) operate on.
    """
    net: dict[tuple[str, str], float] = collections.defaultdict(float)
    for report in reports:
        net[(report.source_id, report.claim_id)] += float(report.attitude)
    votes = {}
    for key, value in net.items():
        if value > 0:
            votes[key] = 1
        elif value < 0:
            votes[key] = -1
    return votes


class TruthDiscoveryAlgorithm(abc.ABC):
    """Common API of every truth discovery scheme in this repository."""

    #: Human-readable name used in the results tables.
    name: str = "base"

    @abc.abstractmethod
    def discover(
        self, reports: Sequence[Report], grid: EvaluationGrid
    ) -> list[TruthEstimate]:
        """Estimate the truth of every claim at every grid timestamp."""


class BatchTruthDiscovery(TruthDiscoveryAlgorithm):
    """Base class for static algorithms: one decision per claim.

    Subclasses implement :meth:`estimate_claims`, mapping the full trace
    to one :class:`TruthValue` (and confidence) per claim; the base class
    replicates it over the grid.
    """

    @abc.abstractmethod
    def estimate_claims(
        self, reports: Sequence[Report]
    ) -> Mapping[str, tuple[TruthValue, float]]:
        """Single truth decision (value, confidence) per claim."""

    def discover(
        self, reports: Sequence[Report], grid: EvaluationGrid
    ) -> list[TruthEstimate]:
        decisions = self.estimate_claims(reports)
        times = grid.times()
        estimates = []
        for claim_id in sorted(decisions):
            value, confidence = decisions[claim_id]
            for t in times:
                estimates.append(
                    TruthEstimate(
                        claim_id=claim_id,
                        timestamp=float(t),
                        value=value,
                        confidence=confidence,
                    )
                )
        return estimates


def positive_fraction_decision(score: float) -> TruthValue:
    """Map a signed aggregate score to a truth decision (ties -> FALSE)."""
    return TruthValue.TRUE if score > 0 else TruthValue.FALSE
