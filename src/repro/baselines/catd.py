"""CATD baseline (Li et al., VLDB 2014).

CATD ("Confidence-Aware Truth Discovery") targets *long-tail* data: most
sources contribute very few claims, so a point estimate of their
reliability is meaningless.  CATD instead scores each source with the
upper bound of a chi-squared confidence interval on its error variance:

    w_s = chi2.ppf(alpha/2, df=n_s) / sum_of_squared_errors(s)

A source with few observations gets a small chi-squared quantile, hence a
conservative (small) weight, while well-observed accurate sources get
large weights.  Truth values are then weight-voted, and the loop
(truth -> errors -> weights -> truth) repeats.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np
from scipy import stats

from repro.baselines.base import BatchTruthDiscovery, source_claim_votes
from repro.core.types import Report, TruthValue

__all__ = [
    "CATD",
]

_EPS = 1e-9


class CATD(BatchTruthDiscovery):
    """Confidence-aware weighted voting for sparse sources.

    Args:
        alpha: Significance level of the chi-squared interval (0.05 in
            the original paper).
        max_iter: Truth/weight alternation cap.
    """

    name = "CATD"

    def __init__(self, alpha: float = 0.05, max_iter: int = 10, tol: float = 1e-4) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha
        self.max_iter = max_iter
        self.tol = tol

    def estimate_claims(
        self, reports: Sequence[Report]
    ) -> Mapping[str, tuple[TruthValue, float]]:
        votes = source_claim_votes(reports)
        if not votes:
            return {}

        sources = sorted({source for source, _ in votes})
        claims = sorted({claim for _, claim in votes})
        source_index = {s: k for k, s in enumerate(sources)}
        claim_index = {c: k for k, c in enumerate(claims)}

        rows = np.asarray([source_index[s] for (s, _) in votes])
        cols = np.asarray([claim_index[c] for (_, c) in votes])
        signs = np.asarray([float(v) for v in votes.values()])

        n_sources = len(sources)
        n_claims = len(claims)
        counts = np.bincount(rows, minlength=n_sources).astype(float)

        # Initialize truth with the unweighted vote.
        numer = np.bincount(cols, weights=signs, minlength=n_claims)
        truth = np.sign(numer)

        # chi-squared lower-tail quantile at each source's df; df >= 1.
        quantiles = stats.chi2.ppf(self.alpha / 2.0, np.maximum(counts, 1.0))
        weights = np.ones(n_sources)

        for _ in range(self.max_iter):
            # squared error of each vote against current truth in {0, 1}
            sq_err = ((signs - truth[cols]) / 2.0) ** 2
            sse = np.bincount(rows, weights=sq_err, minlength=n_sources)
            weights = quantiles / np.maximum(sse, _EPS)
            # Cap so a perfect prolific source cannot dominate alone.
            weights = np.minimum(weights, np.percentile(weights, 99))

            numer = np.bincount(cols, weights=signs * weights[rows], minlength=n_claims)
            new_truth = np.sign(numer)
            new_truth[new_truth == 0] = -1.0
            if float(np.mean(new_truth != truth)) < self.tol:
                truth = new_truth
                break
            truth = new_truth

        denom = np.bincount(cols, weights=weights[rows], minlength=n_claims)
        margin = np.abs(numer) / np.maximum(denom, _EPS)

        decisions: dict[str, tuple[TruthValue, float]] = {}
        for claim_id, idx in claim_index.items():
            value = TruthValue.TRUE if numer[idx] > 0 else TruthValue.FALSE
            decisions[claim_id] = (value, float(min(1.0, margin[idx])))
        return decisions
