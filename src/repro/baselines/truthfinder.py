"""TruthFinder baseline (Yin, Han & Yu, TKDE 2008).

TruthFinder iterates between source *trustworthiness* and claim
*confidence* with a pseudo-probabilistic model:

- a source's trustworthiness ``t(s)`` is the average confidence of the
  facts it provides;
- a fact's confidence combines the trustworthiness of its providers in
  log-odds space: ``sigma(f) = -sum_s ln(1 - t(s))``, mapped back with
  ``s(f) = 1 / (1 + exp(-gamma * sigma(f)))`` (the dampening factor
  ``gamma`` compensates for correlated sources).

For binary social-sensing claims each claim has two mutually exclusive
"facts" — *the claim is true* (supported by AGREE votes) and *the claim
is false* (supported by DISAGREE votes).  Mutual exclusion enters through
the implication term ``rho``: support for one fact is negative evidence
for the other.
"""

from __future__ import annotations

import collections
import math
from typing import Mapping, Sequence

from repro.baselines.base import BatchTruthDiscovery, source_claim_votes
from repro.core.types import Report, TruthValue

__all__ = [
    "TruthFinder",
]

_EPS = 1e-6


class TruthFinder(BatchTruthDiscovery):
    """Iterative pseudo-probabilistic truth finder.

    Args:
        initial_trust: Starting trustworthiness of every source.
        gamma: Dampening factor for correlated sources.
        rho: Weight of the mutual-exclusion (implication) term.
        max_iter: Iteration cap.
        tol: Convergence threshold on the max change of source trust.
    """

    name = "TruthFinder"

    def __init__(
        self,
        initial_trust: float = 0.9,
        gamma: float = 0.3,
        rho: float = 0.5,
        max_iter: int = 20,
        tol: float = 1e-4,
    ) -> None:
        if not 0.0 < initial_trust < 1.0:
            raise ValueError("initial_trust must be in (0, 1)")
        self.initial_trust = initial_trust
        self.gamma = gamma
        self.rho = rho
        self.max_iter = max_iter
        self.tol = tol

    def estimate_claims(
        self, reports: Sequence[Report]
    ) -> Mapping[str, tuple[TruthValue, float]]:
        votes = source_claim_votes(reports)
        if not votes:
            return {}

        # facts: (claim_id, polarity) with polarity in {+1, -1}
        supporters: dict[tuple[str, int], list[str]] = collections.defaultdict(list)
        facts_of_source: dict[str, list[tuple[str, int]]] = collections.defaultdict(list)
        claims: set[str] = set()
        for (source_id, claim_id), vote in votes.items():
            fact = (claim_id, vote)
            supporters[fact].append(source_id)
            facts_of_source[source_id].append(fact)
            claims.add(claim_id)

        trust = {source: self.initial_trust for source in facts_of_source}
        confidence: dict[tuple[str, int], float] = {}

        for _ in range(self.max_iter):
            # fact confidence from source trust
            raw: dict[tuple[str, int], float] = {}
            for fact, sources in supporters.items():
                tau = sum(-math.log(max(1.0 - trust[s], _EPS)) for s in sources)
                raw[fact] = tau
            for claim_id in claims:
                for polarity in (1, -1):
                    fact = (claim_id, polarity)
                    if fact not in raw and (claim_id, -polarity) not in raw:
                        continue
                    own = raw.get(fact, 0.0)
                    other = raw.get((claim_id, -polarity), 0.0)
                    adjusted = own - self.rho * other
                    # Clamp the exponent: thousands of agreeing sources
                    # would otherwise overflow exp().
                    exponent = min(max(-self.gamma * adjusted, -500.0), 500.0)
                    confidence[fact] = 1.0 / (1.0 + math.exp(exponent))
            # source trust from fact confidence
            delta = 0.0
            for source_id, facts in facts_of_source.items():
                new_trust = sum(confidence.get(f, 0.5) for f in facts) / len(facts)
                new_trust = min(max(new_trust, _EPS), 1.0 - _EPS)
                delta = max(delta, abs(new_trust - trust[source_id]))
                trust[source_id] = new_trust
            if delta < self.tol:
                break

        decisions: dict[str, tuple[TruthValue, float]] = {}
        for claim_id in claims:
            true_conf = confidence.get((claim_id, 1), 0.0)
            false_conf = confidence.get((claim_id, -1), 0.0)
            if true_conf >= false_conf:
                decisions[claim_id] = (TruthValue.TRUE, true_conf)
            else:
                decisions[claim_id] = (TruthValue.FALSE, false_conf)
        return decisions
