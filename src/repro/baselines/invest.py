"""Invest and PooledInvest baselines (Pasternack & Roth, COLING 2010).

In *Invest* each source uniformly invests its trustworthiness among the
facts it claims; a fact's belief grows the pooled investment with a
non-linear function ``G(x) = x**g``; sources then collect returns
proportional to the share of a fact's belief their investment bought.
*PooledInvest* applies the growth function to a source's per-fact
allocation before pooling (linear returns afterwards).

Binary claims map to two mutually exclusive facts per claim, as in
:mod:`repro.baselines.truthfinder`.
"""

from __future__ import annotations

import collections
from typing import Mapping, Sequence

from repro.baselines.base import BatchTruthDiscovery, source_claim_votes
from repro.core.types import Report, TruthValue

__all__ = [
    "Invest",
    "PooledInvest",
]

_EPS = 1e-9


class Invest(BatchTruthDiscovery):
    """The Invest algorithm with growth exponent ``g`` (paper used 1.2)."""

    name = "Invest"
    _pooled = False

    def __init__(self, g: float = 1.2, max_iter: int = 20, tol: float = 1e-4) -> None:
        if g <= 0:
            raise ValueError(f"growth exponent g must be > 0, got {g}")
        self.g = g
        self.max_iter = max_iter
        self.tol = tol

    def estimate_claims(
        self, reports: Sequence[Report]
    ) -> Mapping[str, tuple[TruthValue, float]]:
        votes = source_claim_votes(reports)
        if not votes:
            return {}

        supporters: dict[tuple[str, int], list[str]] = collections.defaultdict(list)
        facts_of_source: dict[str, list[tuple[str, int]]] = collections.defaultdict(list)
        for (source_id, claim_id), vote in votes.items():
            fact = (claim_id, vote)
            supporters[fact].append(source_id)
            facts_of_source[source_id].append(fact)

        trust = {source: 1.0 for source in facts_of_source}
        belief: dict[tuple[str, int], float] = {}

        for _ in range(self.max_iter):
            invested: dict[tuple[str, int], float] = collections.defaultdict(float)
            allocation: dict[tuple[str, tuple[str, int]], float] = {}
            for source_id, facts in facts_of_source.items():
                share = trust[source_id] / len(facts)
                for fact in facts:
                    if self._pooled:
                        grown = share**self.g
                        invested[fact] += grown
                        allocation[(source_id, fact)] = grown
                    else:
                        invested[fact] += share
                        allocation[(source_id, fact)] = share
            if self._pooled:
                belief = dict(invested)
            else:
                belief = {fact: x**self.g for fact, x in invested.items()}

            delta = 0.0
            for source_id, facts in facts_of_source.items():
                returns = 0.0
                for fact in facts:
                    pool = invested[fact]
                    if pool > _EPS:
                        returns += belief[fact] * (
                            allocation[(source_id, fact)] / pool
                        )
                new_trust = max(returns, _EPS)
                delta = max(delta, abs(new_trust - trust[source_id]))
                trust[source_id] = new_trust
            # Normalize trust so the fixed point is scale-free.
            mean_trust = sum(trust.values()) / len(trust)
            for source_id in trust:
                trust[source_id] /= max(mean_trust, _EPS)
            if delta < self.tol:
                break

        decisions: dict[str, tuple[TruthValue, float]] = {}
        claims = {claim_id for claim_id, _ in belief}
        for claim_id in claims:
            true_belief = belief.get((claim_id, 1), 0.0)
            false_belief = belief.get((claim_id, -1), 0.0)
            total = true_belief + false_belief
            if true_belief >= false_belief:
                conf = true_belief / total if total > _EPS else 0.0
                decisions[claim_id] = (TruthValue.TRUE, conf)
            else:
                conf = false_belief / total if total > _EPS else 0.0
                decisions[claim_id] = (TruthValue.FALSE, conf)
        return decisions


class PooledInvest(Invest):
    """PooledInvest variant: growth applied per-allocation before pooling."""

    name = "PooledInvest"
    _pooled = True

    def __init__(self, g: float = 1.4, max_iter: int = 20, tol: float = 1e-4) -> None:
        super().__init__(g=g, max_iter=max_iter, tol=tol)
