"""3-Estimates baseline (Galland, Abiteboul, Marian & Senellart, WSDM 2010).

3-Estimates jointly estimates three quantities:

- the *truth* of each fact,
- the *error rate* (inverse trust) of each source,
- the *difficulty* (hardness) of each claim — an easy claim answered
  wrongly hurts a source's trust more than a hard one.

This implementation follows the paper's "cosine-style" normalized update
equations on the signed vote matrix: votes are ``+1``/``-1`` per
(source, claim); each iteration recomputes truth values from
difficulty-weighted trusted votes, then error rates and difficulties from
the disagreement between votes and current truth, with all three
estimates renormalized into their nominal ranges (the paper's
normalization step, which it reports as essential for convergence).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.baselines.base import BatchTruthDiscovery, source_claim_votes
from repro.core.types import Report, TruthValue

__all__ = [
    "ThreeEstimates",
]

_EPS = 1e-9


class ThreeEstimates(BatchTruthDiscovery):
    """The 3-Estimates algorithm on binary signed votes."""

    name = "3-Estimates"

    def __init__(self, max_iter: int = 25, tol: float = 1e-4) -> None:
        self.max_iter = max_iter
        self.tol = tol

    def estimate_claims(
        self, reports: Sequence[Report]
    ) -> Mapping[str, tuple[TruthValue, float]]:
        votes = source_claim_votes(reports)
        if not votes:
            return {}

        sources = sorted({source for source, _ in votes})
        claims = sorted({claim for _, claim in votes})
        source_index = {s: k for k, s in enumerate(sources)}
        claim_index = {c: k for k, c in enumerate(claims)}

        rows, cols, signs = [], [], []
        for (source_id, claim_id), vote in votes.items():
            rows.append(source_index[source_id])
            cols.append(claim_index[claim_id])
            signs.append(float(vote))
        rows = np.asarray(rows)
        cols = np.asarray(cols)
        signs = np.asarray(signs)

        n_sources = len(sources)
        n_claims = len(claims)
        truth = np.zeros(n_claims)  # in [-1, 1]
        error = np.full(n_sources, 0.2)  # in [0, 1]
        hardness = np.full(n_claims, 0.5)  # in [0, 1]

        for _ in range(self.max_iter):
            # --- truth from trusted, difficulty-adjusted votes ---------
            trust = (1.0 - error[rows]) * (1.0 - hardness[cols])
            numer = np.bincount(cols, weights=signs * trust, minlength=n_claims)
            denom = np.bincount(cols, weights=trust, minlength=n_claims)
            new_truth = numer / np.maximum(denom, _EPS)
            new_truth = np.clip(new_truth, -1.0, 1.0)

            # --- disagreement of each vote with the current truth ------
            # in [0, 1]: 0 = fully agrees, 1 = fully contradicts
            disagree = (1.0 - signs * new_truth[cols]) / 2.0

            # --- source error: mean disagreement, discounted on hard claims
            weight = 1.0 - hardness[cols]
            err_num = np.bincount(rows, weights=disagree * weight, minlength=n_sources)
            err_den = np.bincount(rows, weights=weight, minlength=n_sources)
            new_error = err_num / np.maximum(err_den, _EPS)

            # --- claim hardness: mean disagreement of trustworthy sources
            trust_w = 1.0 - error[rows]
            hard_num = np.bincount(cols, weights=disagree * trust_w, minlength=n_claims)
            hard_den = np.bincount(cols, weights=trust_w, minlength=n_claims)
            new_hardness = hard_num / np.maximum(hard_den, _EPS)

            # --- normalization (the paper's range rescaling) ------------
            new_error = _rescale_unit(new_error)
            new_hardness = _rescale_unit(new_hardness)

            delta = float(np.max(np.abs(new_truth - truth))) if n_claims else 0.0
            truth, error, hardness = new_truth, new_error, new_hardness
            if delta < self.tol:
                break

        decisions: dict[str, tuple[TruthValue, float]] = {}
        for claim_id, idx in claim_index.items():
            value = TruthValue.TRUE if truth[idx] > 0 else TruthValue.FALSE
            decisions[claim_id] = (value, float(abs(truth[idx])))
        return decisions


def _rescale_unit(values: np.ndarray) -> np.ndarray:
    """Affinely rescale into [eps, 1-eps]; constant vectors collapse to 0.5."""
    if values.size == 0:
        return values
    lo, hi = float(values.min()), float(values.max())
    if hi - lo < _EPS:
        return np.full_like(values, 0.5)
    scaled = (values - lo) / (hi - lo)
    return np.clip(scaled, 1e-3, 1.0 - 1e-3)
