"""Heuristic baselines: majority voting and median.

The paper (Section II) cites Majority Voting and Median as the "very fast
but low accuracy" end of the truth discovery spectrum; they anchor the
accuracy comparison and the efficiency figures.
"""

from __future__ import annotations

import collections
from typing import Mapping, Sequence

from repro.baselines.base import (
    BatchTruthDiscovery,
    positive_fraction_decision,
    source_claim_votes,
)
from repro.core.types import Report, TruthValue

__all__ = [
    "MajorityVote",
    "MedianVote",
]


class MajorityVote(BatchTruthDiscovery):
    """One vote per (source, claim); majority sign wins."""

    name = "MajorityVote"

    def estimate_claims(
        self, reports: Sequence[Report]
    ) -> Mapping[str, tuple[TruthValue, float]]:
        votes = source_claim_votes(reports)
        totals: dict[str, int] = collections.defaultdict(int)
        counts: dict[str, int] = collections.defaultdict(int)
        for (_, claim_id), vote in votes.items():
            totals[claim_id] += vote
            counts[claim_id] += 1
        decisions = {}
        for claim_id, total in totals.items():
            value = positive_fraction_decision(total)
            confidence = abs(total) / counts[claim_id] if counts[claim_id] else 0.0
            decisions[claim_id] = (value, confidence)
        return decisions


class MedianVote(BatchTruthDiscovery):
    """Median of per-report attitudes (report-weighted, not source-weighted).

    Differs from :class:`MajorityVote` on traces where a few prolific
    sources dominate the report volume.
    """

    name = "Median"

    def estimate_claims(
        self, reports: Sequence[Report]
    ) -> Mapping[str, tuple[TruthValue, float]]:
        attitudes: dict[str, list[int]] = collections.defaultdict(list)
        for report in reports:
            if report.attitude:
                attitudes[report.claim_id].append(int(report.attitude))
        decisions = {}
        for claim_id, values in attitudes.items():
            values.sort()
            mid = len(values) // 2
            if len(values) % 2:
                median = float(values[mid])
            else:
                median = (values[mid - 1] + values[mid]) / 2.0
            decisions[claim_id] = (
                positive_fraction_decision(median),
                min(1.0, abs(median)),
            )
        return decisions
