"""Truth discovery baselines from the paper's evaluation (Section V-A1)."""

from repro.baselines.base import (
    BatchTruthDiscovery,
    EvaluationGrid,
    TruthDiscoveryAlgorithm,
    group_by_claim,
    source_claim_votes,
)
from repro.baselines.catd import CATD
from repro.baselines.dynatd import DynaTD
from repro.baselines.invest import Invest, PooledInvest
from repro.baselines.registry import (
    ALGORITHM_FACTORIES,
    PAPER_TABLE_METHODS,
    SSTDAlgorithm,
    make_algorithm,
    paper_comparison_set,
)
from repro.baselines.rtd import RTD
from repro.baselines.sliding_vote import SlidingVote
from repro.baselines.three_estimates import ThreeEstimates
from repro.baselines.truthfinder import TruthFinder
from repro.baselines.voting import MajorityVote, MedianVote

__all__ = [
    "ALGORITHM_FACTORIES",
    "BatchTruthDiscovery",
    "CATD",
    "DynaTD",
    "EvaluationGrid",
    "Invest",
    "MajorityVote",
    "MedianVote",
    "PAPER_TABLE_METHODS",
    "PooledInvest",
    "RTD",
    "SlidingVote",
    "SSTDAlgorithm",
    "ThreeEstimates",
    "TruthDiscoveryAlgorithm",
    "TruthFinder",
    "group_by_claim",
    "make_algorithm",
    "paper_comparison_set",
    "source_claim_votes",
]
