"""RTD baseline (Zhang, Han & Wang, IEEE BigData 2016).

RTD ("Robust Truth Discovery") targets *sparse* social media sensing
where widely-spread misinformation can out-shout the truth.  Its two key
ideas, reproduced here:

1. **Historical contribution weighting** — a source's influence on a
   claim is weighted by how well its *past* reports agreed with the
   current consensus, so prolific rumor-spreaders are discounted even if
   each individual rumor is popular.
2. **Independence discounting** — copied reports (retweets and
   near-duplicates, low independence score) contribute little, which
   breaks the "bandwagon" amplification that defeats plain voting.

The algorithm alternates between per-claim weighted votes and per-source
reliability updates, with reliability shrunk toward a prior in
proportion to the source's evidence count (the robustness device for the
long tail of one-report sources).
"""

from __future__ import annotations

import collections
from typing import Mapping, Sequence

from repro.baselines.base import BatchTruthDiscovery
from repro.core.types import Report, TruthValue

__all__ = [
    "RTD",
]

_EPS = 1e-9


class RTD(BatchTruthDiscovery):
    """Robust truth discovery with misinformation penalties.

    Args:
        prior_reliability: Prior mean of source reliability.
        prior_strength: Pseudo-count of the reliability prior; a source
            needs this many consistent reports to move far from the prior.
        max_iter: Vote/reliability alternation cap.
    """

    name = "RTD"

    def __init__(
        self,
        prior_reliability: float = 0.6,
        prior_strength: float = 4.0,
        max_iter: int = 15,
        tol: float = 1e-4,
    ) -> None:
        if not 0.0 < prior_reliability < 1.0:
            raise ValueError("prior_reliability must be in (0, 1)")
        if prior_strength <= 0:
            raise ValueError("prior_strength must be > 0")
        self.prior_reliability = prior_reliability
        self.prior_strength = prior_strength
        self.max_iter = max_iter
        self.tol = tol

    def estimate_claims(
        self, reports: Sequence[Report]
    ) -> Mapping[str, tuple[TruthValue, float]]:
        # Net independence-weighted attitude per (source, claim).
        net: dict[tuple[str, str], float] = collections.defaultdict(float)
        for report in reports:
            if report.attitude:
                net[(report.source_id, report.claim_id)] += (
                    float(report.attitude)
                    * report.independence
                    * (1.0 - report.uncertainty)
                )
        if not net:
            return {}

        votes_of_claim: dict[str, list[tuple[str, float]]] = collections.defaultdict(list)
        votes_of_source: dict[str, list[tuple[str, float]]] = collections.defaultdict(list)
        for (source_id, claim_id), weight in net.items():
            votes_of_claim[claim_id].append((source_id, weight))
            votes_of_source[source_id].append((claim_id, weight))

        reliability = {
            source: self.prior_reliability for source in votes_of_source
        }
        truth_sign: dict[str, float] = {}

        for _ in range(self.max_iter):
            # --- claim truth from reliability-weighted votes -----------
            new_sign: dict[str, float] = {}
            for claim_id, claim_votes in votes_of_claim.items():
                total = sum(
                    weight * (2.0 * reliability[source] - 1.0)
                    for source, weight in claim_votes
                )
                new_sign[claim_id] = 1.0 if total > 0 else -1.0

            # --- source reliability from agreement history -------------
            delta = 0.0
            for source_id, source_votes in votes_of_source.items():
                agree = 0.0
                weight_total = 0.0
                for claim_id, weight in source_votes:
                    sign = new_sign[claim_id]
                    magnitude = abs(weight)
                    if magnitude < _EPS:
                        continue
                    weight_total += magnitude
                    if (weight > 0) == (sign > 0):
                        agree += magnitude
                # Shrink toward the prior: robust on the long tail.
                numer = agree + self.prior_reliability * self.prior_strength
                denom = weight_total + self.prior_strength
                new_rel = min(max(numer / denom, _EPS), 1.0 - _EPS)
                delta = max(delta, abs(new_rel - reliability[source_id]))
                reliability[source_id] = new_rel

            changed = sum(
                1
                for claim_id in new_sign
                if truth_sign.get(claim_id) != new_sign[claim_id]
            )
            truth_sign = new_sign
            if delta < self.tol and changed == 0:
                break

        decisions: dict[str, tuple[TruthValue, float]] = {}
        for claim_id, sign in truth_sign.items():
            support = sum(
                abs(w) * reliability[s] for s, w in votes_of_claim[claim_id]
            )
            agree = sum(
                abs(w) * reliability[s]
                for s, w in votes_of_claim[claim_id]
                if (w > 0) == (sign > 0)
            )
            confidence = agree / support if support > _EPS else 0.0
            value = TruthValue.TRUE if sign > 0 else TruthValue.FALSE
            decisions[claim_id] = (value, confidence)
        return decisions
