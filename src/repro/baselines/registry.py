"""Registry of all truth-discovery algorithms used in the evaluation.

Gives benchmarks one place to instantiate "SSTD plus the six baselines of
paper Section V-A1" with consistent configuration, and adapts the SSTD
engine (which lives in :mod:`repro.core`) to the common
:class:`~repro.baselines.base.TruthDiscoveryAlgorithm` interface.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.baselines.base import EvaluationGrid, TruthDiscoveryAlgorithm
from repro.baselines.catd import CATD
from repro.baselines.dynatd import DynaTD
from repro.baselines.invest import Invest, PooledInvest
from repro.baselines.rtd import RTD
from repro.baselines.sliding_vote import SlidingVote
from repro.baselines.three_estimates import ThreeEstimates
from repro.baselines.truthfinder import TruthFinder
from repro.baselines.voting import MajorityVote, MedianVote
from repro.core.acs import ACSConfig
from repro.core.sstd import SSTD, SSTDConfig
from repro.core.types import Report, TruthEstimate

__all__ = [
    "ALGORITHM_FACTORIES",
    "PAPER_TABLE_METHODS",
    "SSTDAlgorithm",
    "make_algorithm",
    "paper_comparison_set",
]


class SSTDAlgorithm(TruthDiscoveryAlgorithm):
    """Adapter exposing the SSTD engine through the common interface.

    The ACS window adapts to report density: the paper picks the sliding
    window "based on the expected change frequency of the truth from the
    observed event", but on sparse traces the binding constraint is that
    a window needs several reports for a meaningful aggregated score.
    The adapter targets ``target_reports_per_window`` on the *average*
    claim (clamped to ``[window_steps x grid.step, span/8]``), decodes on
    its own grid, and resamples estimates onto the evaluation grid by
    carrying the latest decoded value forward.
    """

    name = "SSTD"

    def __init__(
        self,
        window_steps: float = 2.0,
        target_reports_per_window: float = 12.0,
        config: SSTDConfig | None = None,
    ) -> None:
        if window_steps <= 0:
            raise ValueError("window_steps must be > 0")
        if target_reports_per_window <= 0:
            raise ValueError("target_reports_per_window must be > 0")
        self.window_steps = window_steps
        self.target_reports_per_window = target_reports_per_window
        self._config_override = config

    def _choose_window(
        self, reports: Sequence[Report], grid: EvaluationGrid
    ) -> float:
        span = max(grid.end - grid.start, grid.step)
        n_claims = max(1, len({r.claim_id for r in reports}))
        per_claim = len(reports) / n_claims
        if per_claim <= 0:
            return self.window_steps * grid.step
        density_window = span * self.target_reports_per_window / per_claim
        floor = self.window_steps * grid.step
        ceiling = max(span / 8.0, floor)
        return float(min(max(density_window, floor), ceiling))

    def discover(
        self, reports: Sequence[Report], grid: EvaluationGrid
    ) -> list[TruthEstimate]:
        config = self._config_override
        if config is None:
            window = self._choose_window(reports, grid)
            acs = ACSConfig(
                window=window, step=window / self.window_steps
            )
            config = SSTDConfig(acs=acs)
        engine = SSTD(config)
        decoded = engine.discover(reports, start=grid.start, end=grid.end)
        return self._resample(decoded, grid)

    @staticmethod
    def _resample(
        decoded: Sequence[TruthEstimate], grid: EvaluationGrid
    ) -> list[TruthEstimate]:
        """Sample decoded series onto the evaluation grid (carry forward)."""
        by_claim: dict[str, list[TruthEstimate]] = {}
        for estimate in decoded:
            by_claim.setdefault(estimate.claim_id, []).append(estimate)
        times = grid.times()
        resampled: list[TruthEstimate] = []
        for claim_id in sorted(by_claim):
            series = sorted(by_claim[claim_id], key=lambda e: e.timestamp)
            cursor = 0
            current = series[0]
            for t in times:
                while (
                    cursor < len(series)
                    and series[cursor].timestamp <= t
                ):
                    current = series[cursor]
                    cursor += 1
                resampled.append(
                    TruthEstimate(
                        claim_id=claim_id,
                        timestamp=float(t),
                        value=current.value,
                        confidence=current.confidence,
                    )
                )
        return resampled


#: Factories for the full comparison set, keyed by paper name.
ALGORITHM_FACTORIES: dict[str, Callable[[], TruthDiscoveryAlgorithm]] = {
    "SSTD": SSTDAlgorithm,
    "DynaTD": DynaTD,
    "TruthFinder": TruthFinder,
    "RTD": RTD,
    "CATD": CATD,
    "Invest": Invest,
    "3-Estimates": ThreeEstimates,
    "MajorityVote": MajorityVote,
    "Median": MedianVote,
    "PooledInvest": PooledInvest,
    "SlidingVote": SlidingVote,
}

#: The seven methods compared in the paper's Tables III-V, in table order.
PAPER_TABLE_METHODS = (
    "SSTD",
    "DynaTD",
    "TruthFinder",
    "RTD",
    "CATD",
    "Invest",
    "3-Estimates",
)


def make_algorithm(name: str) -> TruthDiscoveryAlgorithm:
    """Instantiate an algorithm by its paper name."""
    try:
        factory = ALGORITHM_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; known: {sorted(ALGORITHM_FACTORIES)}"
        ) from None
    return factory()


def paper_comparison_set() -> list[TruthDiscoveryAlgorithm]:
    """SSTD plus the six baselines, in the paper's table order."""
    return [make_algorithm(name) for name in PAPER_TABLE_METHODS]
