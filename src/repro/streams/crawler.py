"""Simulated data crawler (the paper's Figure 2 "crawler" box).

"[The master node] is connected to the data crawler which continuously
fetches the social sensing data."  The real system polled Twitter's
search/streaming APIs; this adapter replays a synthetic trace as *raw
tweets* — text, author, timestamp only — so the downstream application
must run the full text pipeline (clustering, attitude, uncertainty,
independence) exactly as a live deployment would.  Nothing from the
generator's ground truth leaks through except the text itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.streams.replay import StreamReplayer
from repro.streams.trace import Trace
from repro.text.pipeline import RawTweet

__all__ = [
    "CrawlBatch",
    "SimulatedCrawler",
]


@dataclass(frozen=True, slots=True)
class CrawlBatch:
    """One poll's worth of raw tweets."""

    poll_time: float
    tweets: tuple[RawTweet, ...]

    def __len__(self) -> int:
        return len(self.tweets)


class SimulatedCrawler:
    """Polls a replayed trace like a search-API crawler.

    Args:
        trace: Source trace; its reports must carry text (generate with
            ``GeneratorConfig(with_text=True)``, the default).
        speed: Replay rate in tweets/second.
        duration: Replay duration in seconds.
        poll_interval: Seconds between polls (the crawler's API cadence).
    """

    def __init__(
        self,
        trace: Trace,
        speed: float = 100.0,
        duration: float = 60.0,
        poll_interval: float = 5.0,
    ) -> None:
        if poll_interval <= 0:
            raise ValueError("poll_interval must be > 0")
        if trace.reports and not any(r.text for r in trace.reports[:100]):
            raise ValueError(
                "trace has no tweet text; regenerate with with_text=True"
            )
        self.trace = trace
        self.poll_interval = poll_interval
        self._replayer = StreamReplayer(trace, speed=speed, duration=duration)

    def total_tweets(self) -> int:
        return self._replayer.total_reports()

    def polls(self) -> Iterator[CrawlBatch]:
        """Yield one :class:`CrawlBatch` per poll interval."""
        pending: list[RawTweet] = []
        boundary = self.poll_interval
        for batch in self._replayer.batches():
            for report in batch.reports:
                pending.append(
                    RawTweet(
                        source_id=report.source_id,
                        text=report.text,
                        timestamp=report.timestamp,
                    )
                )
            if batch.arrival_time >= boundary:
                yield CrawlBatch(poll_time=boundary, tweets=tuple(pending))
                pending = []
                boundary += self.poll_interval
        if pending:
            yield CrawlBatch(poll_time=boundary, tweets=tuple(pending))
