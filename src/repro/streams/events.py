"""Scenario models for the three evaluation traces (paper Table II).

Each :class:`ScenarioSpec` describes one social sensing event — its
duration, claim set, truth dynamics, source population and traffic shape
— plus text templates so generated reports carry realistic tweet-like
text for the NLP pipeline (:mod:`repro.text`) to score.

The three built-in scenarios mirror the paper's traces:

- :func:`boston_bombing` — 4 days, large volume, emergency-response
  claims whose truth flips occasionally (suspect located, arrest made);
- :func:`paris_shooting` — 3 days, similar emergency profile;
- :func:`college_football` — 3 days covering five games; "score change"
  claims flip *frequently*, which is what makes this trace hardest for
  static truth discovery (the paper's Table V shows the largest SSTD
  margin here).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.streams.sources import PopulationConfig

__all__ = [
    "AGREE_HEDGED_TEMPLATES",
    "AGREE_TEMPLATES",
    "DISAGREE_HEDGED_TEMPLATES",
    "DISAGREE_TEMPLATES",
    "RETWEET_PREFIX",
    "SCENARIOS",
    "ScenarioSpec",
    "boston_bombing",
    "college_football",
    "osu_attack",
    "paris_shooting",
]

# ---------------------------------------------------------------------------
# Tweet text templates.  {claim} is replaced by the claim text.  The
# attitude/uncertainty classifiers in repro.text key off the cue words.
# ---------------------------------------------------------------------------

AGREE_TEMPLATES = (
    "BREAKING: {claim}",
    "confirmed: {claim} #news",
    "{claim} — happening right now, I am on the scene",
    "police confirm {claim}",
    "just saw it myself: {claim}",
    "update: {claim}, stay safe everyone",
    "yes — {claim}. multiple witnesses",
)

AGREE_HEDGED_TEMPLATES = (
    "unconfirmed reports that {claim}",
    "hearing that {claim}, possibly — can anyone confirm?",
    "{claim}?? maybe, sources unclear",
    "rumor going around that {claim}, might be true",
    "it seems {claim}, but i am not sure",
)

DISAGREE_TEMPLATES = (
    "{claim} is FALSE, stop spreading it",
    "fake news: {claim} has been debunked",
    "not true that {claim}, officials deny it",
    "rumor that {claim} is false, please RT the correction",
    "{claim}? no. that claim was debunked an hour ago",
)

DISAGREE_HEDGED_TEMPLATES = (
    "pretty sure {claim} is not true, but waiting for confirmation",
    "doubt that {claim}, seems like a hoax maybe",
    "{claim} looks fake to me, possibly misreported",
)

RETWEET_PREFIX = "RT @{original}: "


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """Full description of one synthetic social sensing event.

    Attributes:
        name: Trace name (Table II row label).
        duration: Event duration in seconds.
        n_reports: Target report count.
        n_claims: Number of distinct claims.
        claim_texts: Claim statements, cycled if fewer than ``n_claims``.
        topic: Topic tag stored on the claims.
        mean_truth_flips: Expected number of ground-truth transitions per
            claim over the event (0 = static truth).
        initial_true_fraction: Fraction of claims that start out true.
        claim_zipf_exponent: Skew of report volume across claims.
        population: Source population shape.
        burst_amplitude: Traffic spike multiplier at truth transitions.
        burst_decay: Spike decay constant in seconds.
        diurnal_amplitude: Day/night traffic modulation.
        keywords: Query keywords (Table II "Search Keywords" column).
    """

    name: str
    duration: float
    n_reports: int
    n_claims: int
    claim_texts: tuple[str, ...]
    topic: str
    mean_truth_flips: float = 1.0
    initial_true_fraction: float = 0.5
    claim_zipf_exponent: float = 1.0
    population: PopulationConfig = field(default_factory=PopulationConfig)
    burst_amplitude: float = 4.0
    burst_decay: float = 900.0
    diurnal_amplitude: float = 0.4
    keywords: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be > 0")
        if self.n_reports < 0:
            raise ValueError("n_reports must be >= 0")
        if self.n_claims < 1:
            raise ValueError("n_claims must be >= 1")
        if not self.claim_texts:
            raise ValueError("need at least one claim text")
        if self.mean_truth_flips < 0:
            raise ValueError("mean_truth_flips must be >= 0")

    def scaled(self, fraction: float) -> "ScenarioSpec":
        """Copy with report volume and population scaled by ``fraction``.

        Keeps claim structure and dynamics intact, so a 10% trace
        exercises the same phenomena at lower cost (used by the accuracy
        benchmarks; the Table II benchmark generates full size).
        """
        if not 0.0 < fraction:
            raise ValueError("fraction must be > 0")
        population = PopulationConfig(
            n_sources=max(10, int(self.population.n_sources * fraction)),
            zipf_exponent=self.population.zipf_exponent,
            reliable_fraction=self.population.reliable_fraction,
            reliable_range=self.population.reliable_range,
            noisy_range=self.population.noisy_range,
            spreader_fraction=self.population.spreader_fraction,
            spreader_range=self.population.spreader_range,
            retweet_propensity_range=self.population.retweet_propensity_range,
        )
        return ScenarioSpec(
            name=self.name,
            duration=self.duration,
            n_reports=max(1, int(self.n_reports * fraction)),
            n_claims=self.n_claims,
            claim_texts=self.claim_texts,
            topic=self.topic,
            mean_truth_flips=self.mean_truth_flips,
            initial_true_fraction=self.initial_true_fraction,
            claim_zipf_exponent=self.claim_zipf_exponent,
            population=population,
            burst_amplitude=self.burst_amplitude,
            burst_decay=self.burst_decay,
            diurnal_amplitude=self.diurnal_amplitude,
            keywords=self.keywords,
        )


_BOSTON_CLAIMS = (
    "there was a second bomb at the JFK library",
    "a suspect has been arrested near the marathon finish line",
    "police are searching a house in Watertown",
    "cell phone service has been shut down in Boston",
    "an eight year old was among the casualties",
    "the bridge into Cambridge is closed",
    "a third explosive device was found and defused",
    "the suspect escaped in a grey Honda",
    "a police officer was shot at MIT campus",
    "the public transit system is suspended city wide",
)

_PARIS_CLAIMS = (
    "the shooters are still inside the Charlie Hebdo building",
    "hostages are being held at a kosher supermarket",
    "one suspect has surrendered to police",
    "the suspects were spotted near Porte de Vincennes",
    "schools in the 11th arrondissement are on lockdown",
    "a second shooting occurred at Montrouge",
    "the getaway car was found abandoned in the 19th",
    "police have identified three attackers",
    "the metro line 8 is shut down",
    "an accomplice crossed the border into Belgium",
)

_FOOTBALL_CLAIMS = (
    "Notre Dame is leading the game",
    "the Buckeyes just scored a touchdown",
    "the Fighting Irish quarterback left with an injury",
    "the game is tied going into the fourth quarter",
    "Clemson scored on the opening drive",
    "the field goal attempt was blocked",
    "Michigan is up by two scores",
    "the game went into overtime",
    "Stanford fumbled on their own twenty",
    "the running back broke the school rushing record",
)


def boston_bombing() -> ScenarioSpec:
    """Boston Bombing trace profile (Table II: 553,609 reports, 4 days)."""
    return ScenarioSpec(
        name="Boston Bombing",
        duration=4 * 86_400.0,
        n_reports=553_609,
        n_claims=60,
        claim_texts=_BOSTON_CLAIMS,
        topic="emergency",
        mean_truth_flips=1.2,
        initial_true_fraction=0.45,
        population=PopulationConfig(
            n_sources=2_600_000, zipf_exponent=0.18, spreader_fraction=0.12
        ),
        burst_amplitude=5.0,
        burst_decay=1_200.0,
        keywords=("Bombing", "Marathon", "Attack"),
    )


def paris_shooting() -> ScenarioSpec:
    """Paris (Charlie Hebdo) Shooting profile (253,798 reports, 3 days)."""
    return ScenarioSpec(
        name="Paris Shooting",
        duration=3 * 86_400.0,
        n_reports=253_798,
        n_claims=50,
        claim_texts=_PARIS_CLAIMS,
        topic="emergency",
        mean_truth_flips=1.0,
        initial_true_fraction=0.5,
        population=PopulationConfig(
            n_sources=950_000, zipf_exponent=0.18, spreader_fraction=0.10
        ),
        burst_amplitude=4.0,
        burst_decay=1_000.0,
        keywords=("Paris", "Shooting", "Charlie Hebdo"),
    )


def college_football() -> ScenarioSpec:
    """College Football profile (429,019 reports, 3 days, 5 games).

    Score/lead claims flip often — the dynamic-truth stress test.
    """
    return ScenarioSpec(
        name="College Football",
        duration=3 * 86_400.0,
        n_reports=429_019,
        n_claims=80,
        claim_texts=_FOOTBALL_CLAIMS,
        topic="sports",
        mean_truth_flips=4.0,
        initial_true_fraction=0.5,
        population=PopulationConfig(
            n_sources=3_200_000, zipf_exponent=0.15, spreader_fraction=0.06
        ),
        burst_amplitude=6.0,
        burst_decay=600.0,
        diurnal_amplitude=0.5,
        keywords=("Team/College names",),
    )


_OSU_CLAIMS = (
    "there is an active shooting at the OSU campus",
    "the attacker used a car and a knife, not a gun",
    "the suspect is an OSU student",
    "a second attacker is at large near the stadium",
    "the campus lockdown has been lifted",
    "nine people were transported to hospitals",
    "the attacker was shot by a campus police officer",
    "buildings on 19th avenue are being evacuated",
)


def osu_attack() -> ScenarioSpec:
    """OSU campus attack (Nov 2016) — the paper's motivating example.

    Table I of the paper shows its contradicting tweets: early reports
    of a *shooting* that later turn out false (car-and-knife attack),
    i.e. claims whose truth value flips as facts emerge.  Small and
    fast — sized for demos and quickstarts rather than benchmarks.
    """
    return ScenarioSpec(
        name="OSU Attack",
        duration=86_400.0,
        n_reports=40_000,
        n_claims=16,
        claim_texts=_OSU_CLAIMS,
        topic="emergency",
        mean_truth_flips=1.5,
        initial_true_fraction=0.5,
        population=PopulationConfig(
            n_sources=120_000, zipf_exponent=0.2, spreader_fraction=0.15
        ),
        burst_amplitude=6.0,
        burst_decay=900.0,
        keywords=("OSU", "shooting", "attack"),
    )


SCENARIOS = {
    "boston": boston_bombing,
    "paris": paris_shooting,
    "football": college_football,
    "osu": osu_attack,
}
