"""Trace sanity validation.

Generated or externally supplied traces pass through these checks
before experiments run: report hygiene (ordering, bounds), ground-truth
coverage, and the statistical regime the evaluation relies on (sparsity
ratio, claim coverage).  The CLI and test suites use it; benchmarks
assume traces that pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.streams.trace import Trace

__all__ = [
    "ValidationIssue",
    "ValidationReport",
    "assert_valid",
    "validate_trace",
]


@dataclass(frozen=True, slots=True)
class ValidationIssue:
    """One problem found in a trace."""

    severity: str  # "error" | "warning"
    code: str
    message: str


@dataclass
class ValidationReport:
    """All issues found, plus convenience predicates."""

    issues: list[ValidationIssue] = field(default_factory=list)

    @property
    def errors(self) -> list[ValidationIssue]:
        return [issue for issue in self.issues if issue.severity == "error"]

    @property
    def warnings(self) -> list[ValidationIssue]:
        return [issue for issue in self.issues if issue.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when the trace has no errors (warnings allowed)."""
        return not self.errors

    def summary(self) -> str:
        if not self.issues:
            return "trace OK"
        return "; ".join(
            f"[{issue.severity}] {issue.code}: {issue.message}"
            for issue in self.issues
        )


def validate_trace(
    trace: Trace,
    min_sparsity_ratio: float = 0.0,
    require_text: bool = False,
) -> ValidationReport:
    """Check a trace's structural and statistical invariants.

    Args:
        trace: The trace to check.
        min_sparsity_ratio: Minimum distinct-sources / reports ratio to
            accept without a warning (the paper's traces sit near 0.9).
        require_text: Flag missing tweet text as an error (needed by
            the NLP pipeline and the crawler).
    """
    report = ValidationReport()

    def error(code: str, message: str) -> None:
        report.issues.append(ValidationIssue("error", code, message))

    def warning(code: str, message: str) -> None:
        report.issues.append(ValidationIssue("warning", code, message))

    if not trace.reports:
        error("empty", "trace contains no reports")
        return report

    # --- report hygiene -------------------------------------------------
    previous = None
    for index, record in enumerate(trace.reports):
        if previous is not None and record.timestamp < previous:
            error(
                "unordered",
                f"report {index} at t={record.timestamp} precedes its "
                f"predecessor at t={previous}",
            )
            break
        previous = record.timestamp

    # --- ground-truth coverage ------------------------------------------
    claim_ids = {record.claim_id for record in trace.reports}
    unlabelled = sorted(claim_ids - set(trace.timelines))
    if unlabelled:
        warning(
            "unlabelled-claims",
            f"{len(unlabelled)} claims lack ground-truth timelines "
            f"(e.g. {unlabelled[0]})",
        )
    for claim_id, timeline in trace.timelines.items():
        claim_reports = [
            r.timestamp for r in trace.reports if r.claim_id == claim_id
        ]
        if not claim_reports:
            continue
        if max(claim_reports) > timeline.end or min(claim_reports) < (
            timeline.start - 1e-9
        ):
            warning(
                "timeline-span",
                f"claim {claim_id}: reports fall outside the labelled "
                f"span [{timeline.start}, {timeline.end})",
            )

    # --- source metadata --------------------------------------------------
    active = {record.source_id for record in trace.reports}
    missing_sources = len(active - set(trace.sources))
    if missing_sources:
        warning(
            "missing-sources",
            f"{missing_sources} reporting sources have no Source record",
        )

    # --- statistical regime -----------------------------------------------
    stats = trace.stats()
    ratio = stats.n_sources / stats.n_reports
    if ratio < min_sparsity_ratio:
        warning(
            "sparsity",
            f"distinct-source ratio {ratio:.2f} below the required "
            f"{min_sparsity_ratio:.2f}",
        )

    if require_text:
        textless = sum(1 for record in trace.reports if not record.text)
        if textless:
            error(
                "missing-text",
                f"{textless}/{len(trace.reports)} reports carry no text",
            )

    return report


def assert_valid(trace: Trace, **kwargs) -> None:
    """Raise ``ValueError`` when :func:`validate_trace` finds errors."""
    report = validate_trace(trace, **kwargs)
    if not report.ok:
        raise ValueError(f"invalid trace: {report.summary()}")
