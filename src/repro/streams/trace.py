"""Trace container: a full social sensing dataset plus ground truth.

A :class:`Trace` bundles everything one evaluation run needs — the
report stream, the source and claim populations, and the ground-truth
timelines — together with the summary statistics reported in the paper's
Table II and JSONL (de)serialization so generated traces can be cached on
disk and shared between benchmarks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.core.types import (
    Attitude,
    Claim,
    Report,
    Source,
    TruthLabel,
    TruthTimeline,
    TruthValue,
)

__all__ = [
    "Trace",
    "TraceStats",
    "merge_traces",
]


@dataclass(frozen=True, slots=True)
class TraceStats:
    """Summary statistics in the shape of the paper's Table II."""

    name: str
    duration_seconds: float
    n_reports: int
    n_sources: int
    n_claims: int

    @property
    def duration_days(self) -> float:
        return self.duration_seconds / 86_400.0

    def as_row(self) -> dict[str, object]:
        return {
            "data_trace": self.name,
            "time_duration_days": round(self.duration_days, 2),
            "#_of_reports": self.n_reports,
            "#_of_sources": self.n_sources,
            "#_of_claims": self.n_claims,
        }


@dataclass
class Trace:
    """A social sensing data trace with ground truth.

    Attributes:
        name: Scenario name (e.g. ``"Boston Bombing"``).
        reports: All reports, sorted by timestamp.
        sources: Source population keyed by source id.
        claims: Claim set keyed by claim id.
        timelines: Ground-truth timeline per claim id.
    """

    name: str
    reports: list[Report]
    sources: dict[str, Source] = field(default_factory=dict)
    claims: dict[str, Claim] = field(default_factory=dict)
    timelines: dict[str, TruthTimeline] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.reports.sort(key=lambda report: report.timestamp)

    @property
    def start(self) -> float:
        return self.reports[0].timestamp if self.reports else 0.0

    @property
    def end(self) -> float:
        return self.reports[-1].timestamp if self.reports else 0.0

    def stats(self) -> TraceStats:
        """Table II row for this trace."""
        return TraceStats(
            name=self.name,
            duration_seconds=self.end - self.start,
            n_reports=len(self.reports),
            n_sources=len({report.source_id for report in self.reports}),
            n_claims=len({report.claim_id for report in self.reports}),
        )

    def subset(self, max_reports: int) -> "Trace":
        """Prefix of the trace with at most ``max_reports`` reports.

        Used by the data-size sweeps (Fig. 4): the prefix keeps arrival
        order so it is exactly "the first k tweets of the event".
        """
        if max_reports < 0:
            raise ValueError("max_reports must be >= 0")
        return Trace(
            name=self.name,
            reports=self.reports[:max_reports],
            sources=self.sources,
            claims=self.claims,
            timelines=self.timelines,
        )

    def reports_between(self, start: float, end: float) -> list[Report]:
        """Reports with ``start <= timestamp < end``."""
        return [r for r in self.reports if start <= r.timestamp < end]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the trace as JSON-lines (one record per line)."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            fh.write(json.dumps({"kind": "trace", "name": self.name}) + "\n")
            for source in self.sources.values():
                fh.write(
                    json.dumps(
                        {
                            "kind": "source",
                            "source_id": source.source_id,
                            "reliability": source.reliability,
                            "is_spreader": source.is_spreader,
                        }
                    )
                    + "\n"
                )
            for claim in self.claims.values():
                fh.write(
                    json.dumps(
                        {
                            "kind": "claim",
                            "claim_id": claim.claim_id,
                            "text": claim.text,
                            "topic": claim.topic,
                        }
                    )
                    + "\n"
                )
            for timeline in self.timelines.values():
                fh.write(
                    json.dumps(
                        {
                            "kind": "timeline",
                            "claim_id": timeline.claim_id,
                            "labels": [
                                [lab.start, lab.end, int(lab.value)]
                                for lab in timeline
                            ],
                        }
                    )
                    + "\n"
                )
            for report in self.reports:
                fh.write(
                    json.dumps(
                        {
                            "kind": "report",
                            "source_id": report.source_id,
                            "claim_id": report.claim_id,
                            "timestamp": report.timestamp,
                            "attitude": int(report.attitude),
                            "uncertainty": report.uncertainty,
                            "independence": report.independence,
                            "text": report.text,
                            "is_retweet": report.is_retweet,
                        }
                    )
                    + "\n"
                )

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Read a trace written by :meth:`save`."""
        path = Path(path)
        name = ""
        reports: list[Report] = []
        sources: dict[str, Source] = {}
        claims: dict[str, Claim] = {}
        timelines: dict[str, TruthTimeline] = {}
        with path.open("r", encoding="utf-8") as fh:
            for line in fh:
                record = json.loads(line)
                kind = record.pop("kind")
                if kind == "trace":
                    name = record["name"]
                elif kind == "source":
                    source = Source(**record)
                    sources[source.source_id] = source
                elif kind == "claim":
                    claim = Claim(**record)
                    claims[claim.claim_id] = claim
                elif kind == "timeline":
                    claim_id = record["claim_id"]
                    labels = [
                        TruthLabel(
                            claim_id=claim_id,
                            start=start,
                            end=end,
                            value=TruthValue(value),
                        )
                        for start, end, value in record["labels"]
                    ]
                    timelines[claim_id] = TruthTimeline(claim_id, labels)
                elif kind == "report":
                    record["attitude"] = Attitude(record["attitude"])
                    reports.append(Report(**record))
                else:
                    raise ValueError(f"unknown record kind {kind!r} in {path}")
        return cls(
            name=name,
            reports=reports,
            sources=sources,
            claims=claims,
            timelines=timelines,
        )


def merge_traces(name: str, traces: Iterable[Trace]) -> Trace:
    """Concatenate several traces into one (ids must not collide)."""
    reports: list[Report] = []
    sources: dict[str, Source] = {}
    claims: dict[str, Claim] = {}
    timelines: dict[str, TruthTimeline] = {}
    for trace in traces:
        reports.extend(trace.reports)
        for mapping, update in (
            (sources, trace.sources),
            (claims, trace.claims),
            (timelines, trace.timelines),
        ):
            for key, value in update.items():
                if key in mapping:
                    raise ValueError(f"duplicate id {key!r} while merging traces")
                mapping[key] = value
    return Trace(
        name=name,
        reports=reports,
        sources=sources,
        claims=claims,
        timelines=timelines,
    )
