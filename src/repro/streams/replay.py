"""Stream replay: feed a trace to consumers at a controlled rate.

The paper's Figure 5 experiment streams each trace "at different speed
for a duration of 100 seconds" and compares how batch and streaming
schemes keep up.  :class:`StreamReplayer` rescales a trace's timestamps
onto a wall-clock-like axis at a target rate (tweets/second) and yields
per-second batches; it works against either the real clock or a virtual
one so experiments stay deterministic and fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.types import Report
from repro.streams.trace import Trace

__all__ = [
    "StreamBatch",
    "StreamReplayer",
]


@dataclass(frozen=True, slots=True)
class StreamBatch:
    """Reports that arrived during one replay second."""

    second: int
    reports: tuple[Report, ...]

    @property
    def arrival_time(self) -> float:
        """End of the batch's arrival second on the replay clock."""
        return float(self.second + 1)


class StreamReplayer:
    """Replay a trace at a fixed rate of ``speed`` reports per second.

    The replayer compresses/stretches the trace's own time axis so that
    exactly ``speed`` reports (on average) arrive per replay second, for
    ``duration`` seconds, preserving the original arrival *order* and
    relative burstiness within the replayed prefix.

    Report timestamps in the emitted batches are remapped onto the replay
    clock, so consumers (e.g. :class:`repro.core.sstd.StreamingSSTD`) see
    a coherent stream.
    """

    def __init__(self, trace: Trace, speed: float, duration: float = 100.0) -> None:
        if speed <= 0:
            raise ValueError(f"speed must be > 0, got {speed}")
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        self.trace = trace
        self.speed = speed
        self.duration = duration

    def total_reports(self) -> int:
        """Number of reports the replay will deliver."""
        return min(int(self.speed * self.duration), len(self.trace.reports))

    def batches(self) -> Iterator[StreamBatch]:
        """Yield one :class:`StreamBatch` per replay second.

        Seconds with no arrivals still yield (empty) batches, so
        consumers tick on every second exactly like a polling loop.
        """
        count = self.total_reports()
        prefix = self.trace.reports[:count]
        if not prefix:
            for second in range(int(self.duration)):
                yield StreamBatch(second=second, reports=())
            return

        t0 = prefix[0].timestamp
        t1 = prefix[-1].timestamp
        span = max(t1 - t0, 1e-9)
        scale = self.duration / span

        # Remap each report onto the replay clock.
        remapped: list[Report] = []
        from dataclasses import replace

        for report in prefix:
            new_ts = (report.timestamp - t0) * scale
            new_ts = min(new_ts, self.duration - 1e-6)
            remapped.append(replace(report, timestamp=new_ts))

        cursor = 0
        for second in range(int(self.duration)):
            batch: list[Report] = []
            limit = float(second + 1)
            while cursor < len(remapped) and remapped[cursor].timestamp < limit:
                batch.append(remapped[cursor])
                cursor += 1
            yield StreamBatch(second=second, reports=tuple(batch))

    def chunked(self, chunk_seconds: float) -> Iterator[tuple[float, list[Report]]]:
        """Batch-scheme view: reports grouped into ``chunk_seconds`` chunks.

        Models the paper's batch baselines that "retrieve and process 5
        seconds of data each time periodically".  Yields
        ``(chunk_end_time, reports)`` pairs.
        """
        if chunk_seconds <= 0:
            raise ValueError("chunk_seconds must be > 0")
        pending: list[Report] = []
        boundary = chunk_seconds
        for batch in self.batches():
            pending.extend(batch.reports)
            if batch.arrival_time >= boundary:
                yield boundary, pending
                pending = []
                boundary += chunk_seconds
        if pending:
            yield boundary, pending
