"""Synthetic social sensing trace generator.

Substitutes for the paper's real Twitter traces (DESIGN.md Section 3):
given a :class:`~repro.streams.events.ScenarioSpec` it produces a
:class:`~repro.streams.trace.Trace` exhibiting the phenomena the paper's
evaluation exercises:

- **dynamic truth** — each claim gets a piecewise-constant ground-truth
  timeline with Poisson-distributed transitions;
- **bursty traffic** — arrivals follow a non-homogeneous Poisson process
  whose rate spikes at truth transitions (touchdowns, arrests);
- **data sparsity** — a large weakly-skewed population: most sources
  report exactly once, matching Table II's source/report ratios;
- **misinformation** — unreliable sources and deliberate spreaders
  report the opposite of the truth, and retweets *copy* earlier reports'
  attitudes, so popular falsehoods cascade exactly as the paper's OSU
  example describes;
- **noisy semantics** — reports hedge ("possibly", "unconfirmed") with
  scenario-realistic text, and the derived attitude labels carry a small
  error rate to model the paper's heuristic labeling.

Everything is driven by a single integer seed for exact reproducibility.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass

import numpy as np

from repro.core.types import (
    Attitude,
    Claim,
    Report,
    TruthLabel,
    TruthTimeline,
    TruthValue,
)
from repro.streams.events import (
    AGREE_HEDGED_TEMPLATES,
    AGREE_TEMPLATES,
    DISAGREE_HEDGED_TEMPLATES,
    DISAGREE_TEMPLATES,
    ScenarioSpec,
)
from repro.streams.sources import SourcePopulation
from repro.streams.trace import Trace
from repro.streams.traffic import TrafficModel, bursts_at_transitions

__all__ = [
    "GeneratorConfig",
    "generate_trace",
    "generate_truth_timeline",
]


@dataclass(frozen=True, slots=True)
class GeneratorConfig:
    """Noise knobs of the generator, separate from the scenario shape.

    Attributes:
        hedge_rate: Fraction of reports using hedged language.
        attitude_noise: Probability that a report's attitude label is
            flipped (models errors of the heuristic attitude classifier).
        report_lag_scale: Mean staleness (seconds) of the truth a source
            observes; reports just after a transition may reflect the old
            truth, exactly the noise that trips naive change detection.
        recent_buffer: How many recent reports per claim are retweetable.
        max_bursts: Cap on burst kernels (rate-bound blowup guard).
        with_text: Generate tweet text (disable for big fast traces).
    """

    hedge_rate: float = 0.25
    attitude_noise: float = 0.03
    report_lag_scale: float = 120.0
    recent_buffer: int = 20
    max_bursts: int = 64
    with_text: bool = True


def generate_truth_timeline(
    claim_id: str,
    spec: ScenarioSpec,
    rng: np.random.Generator,
) -> TruthTimeline:
    """Random piecewise-constant ground truth for one claim.

    Transition count is Poisson(``mean_truth_flips``); transition times
    are uniform over the middle 90% of the event (so every truth segment
    has some evidence on both sides).
    """
    n_flips = int(rng.poisson(spec.mean_truth_flips))
    lo, hi = 0.05 * spec.duration, 0.95 * spec.duration
    flip_times = np.sort(rng.uniform(lo, hi, size=n_flips))
    # Enforce a minimum gap so segments are observable.
    min_gap = spec.duration * 0.02
    kept: list[float] = []
    for t in flip_times:
        if not kept or t - kept[-1] >= min_gap:
            kept.append(float(t))

    value = TruthValue.from_bool(bool(rng.random() < spec.initial_true_fraction))
    labels = []
    start = 0.0
    for t in kept:
        labels.append(
            TruthLabel(claim_id=claim_id, start=start, end=t, value=value)
        )
        value = TruthValue(1 - int(value))
        start = t
    labels.append(
        TruthLabel(claim_id=claim_id, start=start, end=spec.duration, value=value)
    )
    return TruthTimeline(claim_id, labels)


def _render_text(
    template_pick: float,
    claim_text: str,
    attitude: Attitude,
    hedged: bool,
    retweet_of: str | None,
) -> str:
    if attitude is Attitude.AGREE:
        pool = AGREE_HEDGED_TEMPLATES if hedged else AGREE_TEMPLATES
    else:
        pool = DISAGREE_HEDGED_TEMPLATES if hedged else DISAGREE_TEMPLATES
    text = pool[int(template_pick * len(pool))].format(claim=claim_text)
    if retweet_of is not None:
        text = f"RT @{retweet_of}: {text}"
    return text


def generate_trace(
    spec: ScenarioSpec,
    seed: int = 0,
    config: GeneratorConfig | None = None,
) -> Trace:
    """Generate a complete trace for ``spec``.

    Deterministic given ``(spec, seed, config)``.
    """
    config = config or GeneratorConfig()
    rng = np.random.default_rng(seed)

    # --- populations ----------------------------------------------------
    population = SourcePopulation(spec.population, rng)

    claims: dict[str, Claim] = {}
    timelines: dict[str, TruthTimeline] = {}
    claim_ids = []
    for k in range(spec.n_claims):
        claim_id = f"claim-{k:04d}"
        text = spec.claim_texts[k % len(spec.claim_texts)]
        if k >= len(spec.claim_texts):
            text = f"{text} (variant {k // len(spec.claim_texts)})"
        claims[claim_id] = Claim(claim_id=claim_id, text=text, topic=spec.topic)
        timelines[claim_id] = generate_truth_timeline(claim_id, spec, rng)
        claim_ids.append(claim_id)

    # --- traffic ----------------------------------------------------------
    transitions = sorted(
        t for timeline in timelines.values() for t in timeline.transition_times()
    )
    if len(transitions) > config.max_bursts:
        idx = np.linspace(0, len(transitions) - 1, config.max_bursts).astype(int)
        transitions = [transitions[i] for i in idx]
    # Amplitude is split across kernels so the peak rate stays bounded
    # regardless of how many claims flip.
    per_burst = spec.burst_amplitude / max(1, len(transitions)) * 8.0
    traffic = TrafficModel(
        base_rate=max(spec.n_reports / spec.duration, 1e-9),
        diurnal_amplitude=spec.diurnal_amplitude,
        bursts=bursts_at_transitions(
            transitions, amplitude=per_burst, decay=spec.burst_decay
        ),
    )
    times = traffic.sample_times_exact(0.0, spec.duration, spec.n_reports, rng)

    # --- per-report vectorized draws ---------------------------------------
    n = times.size
    claim_weights = (np.arange(1, spec.n_claims + 1)) ** (
        -spec.claim_zipf_exponent
    )
    claim_weights = claim_weights / claim_weights.sum()
    claim_idx = rng.choice(spec.n_claims, size=n, p=claim_weights)
    source_idx = population.sample_indices(n, rng)
    source_reliability = population.reliability[source_idx]
    source_retweet_prop = population.retweet_propensity[source_idx]
    knows_truth = rng.random(n) < source_reliability
    hedged_draw = rng.random(n) < config.hedge_rate
    noise_draw = rng.random(n) < config.attitude_noise
    retweet_draw = rng.random(n) < source_retweet_prop
    template_pick = rng.random(n)
    copy_pick = rng.random(n)
    observed_at = np.maximum(
        0.0, times - rng.exponential(config.report_lag_scale, size=n)
    )
    uncertainty = np.where(
        hedged_draw,
        rng.uniform(0.4, 0.8, size=n),
        rng.uniform(0.0, 0.2, size=n),
    )
    indep_fresh = rng.uniform(0.8, 1.0, size=n)
    indep_copy = rng.uniform(0.1, 0.4, size=n)

    # Vectorized truth-at-observation-time lookup, per claim.
    truth_now = np.zeros(n, dtype=bool)
    for c, claim_id in enumerate(claim_ids):
        mask = claim_idx == c
        if not mask.any():
            continue
        timeline = timelines[claim_id]
        starts = np.array([lab.start for lab in timeline])
        values = np.array([int(lab.value) for lab in timeline], dtype=bool)
        seg = np.clip(
            np.searchsorted(starts, observed_at[mask], side="right") - 1,
            0,
            len(values) - 1,
        )
        truth_now[mask] = values[seg]

    says_true = np.where(knows_truth, truth_now, ~truth_now)

    recent: dict[int, collections.deque] = collections.defaultdict(
        lambda: collections.deque(maxlen=config.recent_buffer)
    )

    source_id = SourcePopulation.source_id
    reports: list[Report] = []
    append = reports.append
    for i in range(n):
        c = int(claim_idx[i])
        is_retweet = bool(retweet_draw[i]) and len(recent[c]) > 0
        if is_retweet:
            buffer = recent[c]
            copied_attitude, copied_source = buffer[
                int(copy_pick[i] * len(buffer))
            ]
            attitude = copied_attitude
            retweet_of = copied_source
            independence = float(indep_copy[i])
        else:
            attitude = Attitude.AGREE if says_true[i] else Attitude.DISAGREE
            retweet_of = None
            independence = float(indep_fresh[i])

        if noise_draw[i]:
            attitude = Attitude(-int(attitude)) if attitude else attitude

        hedged = bool(hedged_draw[i])
        text = ""
        if config.with_text:
            text = _render_text(
                float(template_pick[i]),
                claims[claim_ids[c]].text,
                attitude,
                hedged,
                retweet_of,
            )

        sid = source_id(int(source_idx[i]))
        append(
            Report(
                source_id=sid,
                claim_id=claim_ids[c],
                timestamp=float(times[i]),
                attitude=attitude,
                uncertainty=float(uncertainty[i]),
                independence=independence,
                text=text,
                is_retweet=is_retweet,
            )
        )
        if not is_retweet:
            recent[c].append((attitude, sid))

    sources = population.materialize(int(i) for i in set(source_idx.tolist()))

    return Trace(
        name=spec.name,
        reports=reports,
        sources=sources,
        claims=claims,
        timelines=timelines,
    )
