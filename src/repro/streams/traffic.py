"""Bursty arrival-time models for social sensing traffic.

The paper's third challenge is the *heterogeneity and unpredictability*
of streaming traffic: different events generate wildly different volume,
and volume spikes within an event (e.g. "a spike in the number of tweets
when there's a touchdown").  We model report arrival times as a
non-homogeneous Poisson process whose rate function is

    rate(t) = base(t) * (1 + sum of burst kernels)

where ``base`` carries a diurnal (day/night) cycle and each *burst* is an
exponentially decaying spike anchored at an exciting moment — in the
generator, the truth-transition times of the claims.

Sampling uses the standard thinning algorithm (Lewis & Shedler 1979).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = [
    "Burst",
    "TrafficModel",
    "bursts_at_transitions",
]


@dataclass(frozen=True, slots=True)
class Burst:
    """One traffic spike: rate multiplier decaying exponentially."""

    at: float
    amplitude: float
    decay: float

    def __post_init__(self) -> None:
        if self.amplitude < 0:
            raise ValueError("amplitude must be >= 0")
        if self.decay <= 0:
            raise ValueError("decay must be > 0")

    def intensity(self, t: float) -> float:
        """Contribution of this burst to the rate multiplier at ``t``."""
        if t < self.at:
            return 0.0
        return self.amplitude * math.exp(-(t - self.at) / self.decay)


@dataclass(frozen=True, slots=True)
class TrafficModel:
    """Non-homogeneous Poisson traffic with diurnal cycle and bursts.

    Attributes:
        base_rate: Mean arrival rate in reports/second, before modulation.
        diurnal_amplitude: Strength of the day/night cycle in ``[0, 1)``;
            0 disables it.
        diurnal_period: Cycle length in seconds (one day by default).
        bursts: Spikes layered on top of the base rate.
    """

    base_rate: float = 1.0
    diurnal_amplitude: float = 0.4
    diurnal_period: float = 86_400.0
    bursts: tuple[Burst, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ValueError("base_rate must be > 0")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.diurnal_period <= 0:
            raise ValueError("diurnal_period must be > 0")

    def rate(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t`` (reports/second)."""
        diurnal = 1.0 + self.diurnal_amplitude * math.sin(
            2.0 * math.pi * t / self.diurnal_period
        )
        burst = 1.0 + sum(b.intensity(t) for b in self.bursts)
        return self.base_rate * diurnal * burst

    def rate_bound(self) -> float:
        """Upper bound of :meth:`rate`."""
        peak_burst = 1.0 + sum(b.amplitude for b in self.bursts)
        return self.base_rate * (1.0 + self.diurnal_amplitude) * peak_burst

    def rate_array(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`rate` over an array of timestamps."""
        times = np.asarray(times, dtype=float)
        diurnal = 1.0 + self.diurnal_amplitude * np.sin(
            2.0 * np.pi * times / self.diurnal_period
        )
        burst = np.ones_like(times)
        for b in self.bursts:
            dt = times - b.at
            burst += np.where(dt >= 0, b.amplitude * np.exp(-dt / b.decay), 0.0)
        return self.base_rate * diurnal * burst

    def _cdf_grid(
        self, start: float, end: float, resolution: int
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Grid, normalized cumulative rate, and total integral."""
        grid = np.linspace(start, end, resolution)
        rates = self.rate_array(grid)
        increments = np.concatenate(
            [[0.0], 0.5 * (rates[1:] + rates[:-1]) * np.diff(grid)]
        )
        cumulative = np.cumsum(increments)
        total = float(cumulative[-1])
        if total <= 0:
            raise ValueError("rate integrates to zero over the interval")
        return grid, cumulative / total, total

    def sample_times(
        self,
        start: float,
        end: float,
        rng: np.random.Generator | int | None = None,
        max_events: int | None = None,
        resolution: int = 8192,
    ) -> np.ndarray:
        """Arrival timestamps in ``[start, end)``.

        Draws the event count from Poisson(integral of the rate) and
        scatters arrivals by inverse-CDF sampling of the normalized rate
        on a fine grid — exact up to grid resolution, and O(n) instead of
        thinning's rejection overhead under spiky rates.
        """
        if end <= start:
            raise ValueError(f"empty interval [{start}, {end})")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        grid, cdf, total = self._cdf_grid(start, end, resolution)
        count = int(rng.poisson(total))
        if max_events is not None:
            count = min(count, max_events)
        uniforms = rng.random(count)
        return np.sort(np.interp(uniforms, cdf, grid))

    def sample_times_exact(
        self,
        start: float,
        end: float,
        count: int,
        rng: np.random.Generator | int | None = None,
        resolution: int = 8192,
    ) -> np.ndarray:
        """Exactly ``count`` arrival times distributed like the process.

        Conditioned on the event count, a (non-homogeneous) Poisson
        process scatters points with density proportional to the rate;
        inverse-CDF sampling on a fine grid realizes that directly.
        Used when a benchmark needs a trace of an exact size (Table II).
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        if count == 0:
            return np.array([])
        grid, cdf, _ = self._cdf_grid(start, end, resolution)
        uniforms = rng.random(count)
        return np.sort(np.interp(uniforms, cdf, grid))


def bursts_at_transitions(
    transition_times: Sequence[float],
    amplitude: float = 4.0,
    decay: float = 600.0,
) -> tuple[Burst, ...]:
    """Burst kernels anchored at truth-transition times.

    Models the empirical spike of attention when something *happens* —
    the touchdown, the arrest, the new explosion report.
    """
    return tuple(
        Burst(at=t, amplitude=amplitude, decay=decay) for t in transition_times
    )
