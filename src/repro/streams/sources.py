"""Synthetic source populations with realistic participation skew.

Real social sensing traces are dominated by the long tail: in the
paper's Table II the Boston trace has 553,609 reports from 493,855
distinct sources — most sources contribute exactly one report (the *data
sparsity* challenge of Section II).  This module draws source
populations whose

- participation follows a Zipf-like law with a mild exponent, so report
  counts are heavy tailed but the distinct-source count matches the
  paper's near-one-report-per-source regime;
- reliability is a mixture of mostly-reliable citizens, noisy observers,
  and deliberate misinformation *spreaders* (the paper's OSU example:
  sources propagating "fake claims");
- retweet propensity varies per source (feeds the independence score).

The population is stored as flat numpy arrays rather than per-source
objects: evaluation-scale populations have millions of members, of which
only the active ones are ever materialized as
:class:`~repro.core.types.Source` records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.types import Source

__all__ = [
    "PopulationConfig",
    "SourcePopulation",
]


@dataclass(frozen=True, slots=True)
class PopulationConfig:
    """Shape of a synthetic source population.

    Attributes:
        n_sources: Total number of potential sources.
        zipf_exponent: Skew of the participation distribution (0 =
            uniform; ~1 = classic Zipf).  The evaluation scenarios use
            small exponents with large populations to reproduce the
            paper's extreme sparsity.
        reliable_fraction: Fraction of sources drawn from the reliable
            pool.
        reliable_range: Reliability range of the reliable pool.
        noisy_range: Reliability range of ordinary noisy sources.
        spreader_fraction: Fraction of deliberate misinformation
            spreaders (reliability below 0.5 — they report the *opposite*
            of the truth more often than not).
        spreader_range: Reliability range of spreaders.
        retweet_propensity_range: Per-source probability range that a
            report is a copy of an earlier report rather than an
            independent observation.
    """

    n_sources: int = 1000
    zipf_exponent: float = 0.6
    reliable_fraction: float = 0.65
    reliable_range: tuple[float, float] = (0.75, 0.95)
    noisy_range: tuple[float, float] = (0.5, 0.75)
    spreader_fraction: float = 0.1
    spreader_range: tuple[float, float] = (0.1, 0.35)
    retweet_propensity_range: tuple[float, float] = (0.0, 0.6)

    def __post_init__(self) -> None:
        if self.n_sources < 1:
            raise ValueError("n_sources must be >= 1")
        if self.zipf_exponent < 0:
            raise ValueError("zipf_exponent must be >= 0")
        if self.reliable_fraction + self.spreader_fraction > 1.0:
            raise ValueError(
                "reliable_fraction + spreader_fraction must be <= 1"
            )
        for name in ("reliable_range", "noisy_range", "spreader_range"):
            lo, hi = getattr(self, name)
            if not 0.0 <= lo <= hi <= 1.0:
                raise ValueError(f"{name} must satisfy 0 <= lo <= hi <= 1")

    def with_sources(self, n_sources: int) -> "PopulationConfig":
        """Copy with a different population size."""
        return PopulationConfig(
            n_sources=n_sources,
            zipf_exponent=self.zipf_exponent,
            reliable_fraction=self.reliable_fraction,
            reliable_range=self.reliable_range,
            noisy_range=self.noisy_range,
            spreader_fraction=self.spreader_fraction,
            spreader_range=self.spreader_range,
            retweet_propensity_range=self.retweet_propensity_range,
        )


class SourcePopulation:
    """A concrete population drawn from a :class:`PopulationConfig`.

    Per-source attributes live in flat arrays indexed by source number;
    :meth:`source_id` maps an index to its stable string id and
    :meth:`materialize` builds :class:`Source` records on demand.
    """

    def __init__(
        self, config: PopulationConfig, rng: np.random.Generator | int | None = None
    ) -> None:
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self.config = config
        n = config.n_sources

        kinds = rng.choice(
            3,
            size=n,
            p=[
                config.reliable_fraction,
                1.0 - config.reliable_fraction - config.spreader_fraction,
                config.spreader_fraction,
            ],
        )
        uniforms = rng.random(n)
        lows = np.array(
            [config.reliable_range[0], config.noisy_range[0], config.spreader_range[0]]
        )
        highs = np.array(
            [config.reliable_range[1], config.noisy_range[1], config.spreader_range[1]]
        )
        self.reliability = lows[kinds] + uniforms * (highs[kinds] - lows[kinds])
        self.is_spreader = kinds == 2

        lo, hi = config.retweet_propensity_range
        self.retweet_propensity = rng.uniform(lo, hi, size=n)

        # Zipf-like participation weights over a random permutation so
        # prolific accounts are not correlated with reliability kind.
        ranks = rng.permutation(n) + 1
        weights = ranks ** (-config.zipf_exponent)
        self._participation = weights / weights.sum()

    def __len__(self) -> int:
        return self.config.n_sources

    @staticmethod
    def source_id(index: int) -> str:
        """Stable string id of the source at ``index``."""
        return f"src-{index:07d}"

    def sample_indices(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` source indices by participation weight."""
        return rng.choice(len(self), size=size, p=self._participation)

    def make_source(self, index: int) -> Source:
        """Materialize one :class:`Source` record."""
        return Source(
            source_id=self.source_id(index),
            reliability=float(self.reliability[index]),
            is_spreader=bool(self.is_spreader[index]),
        )

    def materialize(self, indices: Iterable[int]) -> dict[str, Source]:
        """Materialize the sources at ``indices`` (deduplicated)."""
        return {
            self.source_id(i): self.make_source(i) for i in set(indices)
        }

    def expected_active_sources(self, n_reports: int) -> float:
        """Expected number of distinct sources among ``n_reports`` draws.

        Used to size populations so the generated trace matches the
        paper's Table II source counts.
        """
        p = self._participation
        return float(np.sum(1.0 - (1.0 - p) ** n_reports))
