"""Synthetic social sensing streams: scenarios, generator, traffic, replay."""

from repro.streams.crawler import CrawlBatch, SimulatedCrawler
from repro.streams.events import (
    SCENARIOS,
    ScenarioSpec,
    boston_bombing,
    college_football,
    osu_attack,
    paris_shooting,
)
from repro.streams.generator import GeneratorConfig, generate_trace
from repro.streams.replay import StreamBatch, StreamReplayer
from repro.streams.sources import PopulationConfig, SourcePopulation
from repro.streams.trace import Trace, TraceStats, merge_traces
from repro.streams.traffic import Burst, TrafficModel, bursts_at_transitions
from repro.streams.validation import (
    ValidationIssue,
    ValidationReport,
    assert_valid,
    validate_trace,
)

__all__ = [
    "Burst",
    "CrawlBatch",
    "GeneratorConfig",
    "PopulationConfig",
    "SCENARIOS",
    "ScenarioSpec",
    "SimulatedCrawler",
    "SourcePopulation",
    "StreamBatch",
    "StreamReplayer",
    "Trace",
    "TraceStats",
    "TrafficModel",
    "ValidationIssue",
    "ValidationReport",
    "assert_valid",
    "boston_bombing",
    "bursts_at_transitions",
    "college_football",
    "generate_trace",
    "merge_traces",
    "osu_attack",
    "paris_shooting",
    "validate_trace",
]
