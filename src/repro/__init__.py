"""repro: reproduction of "Towards Scalable and Dynamic Social Sensing
Using A Distributed Computing Framework" (SSTD, ICDCS 2017).

Layers (bottom up):

- :mod:`repro.hmm` — from-scratch HMM library (Baum-Welch, Viterbi).
- :mod:`repro.core` — data model, contribution scores, ACS, the SSTD
  truth-discovery engine, and evaluation metrics.
- :mod:`repro.baselines` — the six compared truth-discovery baselines.
- :mod:`repro.text` — tweet-processing pipeline (claims, attitudes,
  uncertainty, independence).
- :mod:`repro.streams` — synthetic social sensing traces and replay.
- :mod:`repro.cluster` / :mod:`repro.workqueue` — the simulated
  HTCondor + Work Queue execution substrate.
- :mod:`repro.control` / :mod:`repro.system` — PID feedback control and
  the integrated distributed deployment.
"""

from repro.core import (
    SSTD,
    Attitude,
    Claim,
    Report,
    SSTDConfig,
    Source,
    StreamingSSTD,
    TruthEstimate,
    TruthValue,
    evaluate_estimates,
)
from repro.system import DistributedSSTD, SSTDSystemConfig

__version__ = "1.0.0"

__all__ = [
    "Attitude",
    "Claim",
    "DistributedSSTD",
    "Report",
    "SSTD",
    "SSTDConfig",
    "SSTDSystemConfig",
    "Source",
    "StreamingSSTD",
    "TruthEstimate",
    "TruthValue",
    "evaluate_estimates",
    "__version__",
]
