"""Real-Time Optimization of worker/priority allocation (paper §VII).

The paper's third future-work item: "We plan to explore real-time
optimization (RTO) techniques to optimize resource allocation based on
control signals.  Specifically, we are planning to formulate the system
optimization as an integer linear programming (ILP) problem that targets
at finding the optimal integer values for the number of workers and the
number of tasks for each job in real time."

This module implements that formulation.  Using the simplified WCET
model (Eq. (12)), job ``u`` with data ``D_u`` and priority share
``P_u = T_u / sum(T)`` finishes in ``D_u * theta2 / (WK * P_u)``.
Substituting the share turns the deadline constraint into a *linear*
constraint in the task counts ``T_u`` once the worker count ``WK`` is
fixed:

    D_u * theta2 * sum(T) <= deadline_u * WK * T_u

The optimizer therefore searches the (small, integer) range of worker
counts; for each ``WK`` it solves the inner problem exactly:
feasibility of the linear system above has a classic structure — divide
both sides by ``sum(T)`` and the constraint becomes a *lower bound on
each job's share*, so a feasible assignment exists iff the required
shares sum to at most 1.  Integer task counts are then recovered with
largest-remainder rounding and verified.  The result is the cheapest
(fewest workers) allocation meeting every deadline, plus a graceful
fallback (minimize maximum lateness) when no allocation can.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.control.wcet import WCETModel

__all__ = [
    "Allocation",
    "JobDemand",
    "RTOAllocator",
]


@dataclass(frozen=True, slots=True)
class JobDemand:
    """One TD job's inputs to the allocation problem."""

    job_id: str
    data_size: float
    deadline: float

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ValueError("job_id must be non-empty")
        if self.data_size < 0:
            raise ValueError("data_size must be >= 0")
        if self.deadline <= 0:
            raise ValueError("deadline must be > 0")


@dataclass(frozen=True, slots=True)
class Allocation:
    """Solver output: worker count plus integer task counts per job."""

    n_workers: int
    task_counts: dict[str, int]
    feasible: bool
    max_lateness: float

    @property
    def total_tasks(self) -> int:
        return sum(self.task_counts.values())

    def priority_share(self, job_id: str) -> float:
        total = self.total_tasks
        return self.task_counts[job_id] / total if total else 0.0


class RTOAllocator:
    """Deadline-feasible allocation of workers and task counts.

    Args:
        wcet: Execution-time model supplying ``theta2``.
        max_workers: Actuator ceiling (cluster capacity).
        max_tasks_per_job: Cap on task splitting (the paper keeps task
            counts small to bound initialization overhead).
    """

    def __init__(
        self,
        wcet: WCETModel,
        max_workers: int = 64,
        max_tasks_per_job: int = 16,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if max_tasks_per_job < 1:
            raise ValueError("max_tasks_per_job must be >= 1")
        self.wcet = wcet
        self.max_workers = max_workers
        self.max_tasks_per_job = max_tasks_per_job

    # ------------------------------------------------------------------
    # Inner problem: shares for a fixed worker count
    # ------------------------------------------------------------------
    def required_shares(
        self, jobs: Sequence[JobDemand], n_workers: int
    ) -> dict[str, float]:
        """Minimum priority share each job needs to meet its deadline."""
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        shares = {}
        for job in jobs:
            shares[job.job_id] = (
                job.data_size * self.wcet.theta2 / (n_workers * job.deadline)
            )
        return shares

    def feasible_with(self, jobs: Sequence[JobDemand], n_workers: int) -> bool:
        """Whether some share assignment meets every deadline."""
        return sum(self.required_shares(jobs, n_workers).values()) <= 1.0 + 1e-12

    def _round_task_counts(
        self, shares: dict[str, float]
    ) -> dict[str, int]:
        """Integer task counts approximating the target shares.

        Largest-remainder rounding over ``max_tasks_per_job * n_jobs``
        virtual slots; every job keeps at least one task.
        """
        jobs = list(shares)
        budget = self.max_tasks_per_job * len(jobs)
        raw = {j: max(shares[j], 0.0) * budget for j in jobs}
        counts = {j: max(1, math.floor(raw[j])) for j in jobs}
        remaining = budget - sum(counts.values())
        if remaining > 0:
            by_remainder = sorted(
                jobs, key=lambda j: raw[j] - math.floor(raw[j]), reverse=True
            )
            for j in by_remainder:
                if remaining == 0:
                    break
                if counts[j] < self.max_tasks_per_job:
                    counts[j] += 1
                    remaining -= 1
        return {
            j: min(count, self.max_tasks_per_job)
            for j, count in counts.items()
        }

    def _max_lateness(
        self, jobs: Sequence[JobDemand], counts: dict[str, int], n_workers: int
    ) -> float:
        total = sum(counts.values())
        worst = 0.0
        for job in jobs:
            share = counts[job.job_id] / total if total else 0.0
            if share <= 0:
                return math.inf
            finish = self.wcet.job_wcet_simplified(
                job.data_size, share, n_workers
            )
            worst = max(worst, finish - job.deadline)
        return worst

    # ------------------------------------------------------------------
    # Outer problem: minimum worker count
    # ------------------------------------------------------------------
    def solve(self, jobs: Sequence[JobDemand]) -> Allocation:
        """Cheapest allocation meeting all deadlines.

        Binary-searches the smallest feasible worker count (feasibility
        is monotone in ``WK``), derives the share targets, rounds to
        integer task counts, and verifies the rounded solution; when the
        rounding breaks a deadline the worker count is bumped until it
        holds.  If even ``max_workers`` is infeasible, returns the
        allocation minimizing the maximum lateness at full capacity.
        """
        if not jobs:
            raise ValueError("need at least one job")
        ids = [job.job_id for job in jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate job ids")

        lo, hi = 1, self.max_workers
        best: int | None = None
        while lo <= hi:
            mid = (lo + hi) // 2
            if self.feasible_with(jobs, mid):
                best = mid
                hi = mid - 1
            else:
                lo = mid + 1

        if best is None:
            # Infeasible even at capacity: proportional-to-demand shares
            # minimize the maximum relative lateness.
            shares = self.required_shares(jobs, self.max_workers)
            total = sum(shares.values())
            normalized = {j: s / total for j, s in shares.items()}
            counts = self._round_task_counts(normalized)
            return Allocation(
                n_workers=self.max_workers,
                task_counts=counts,
                feasible=False,
                max_lateness=self._max_lateness(jobs, counts, self.max_workers),
            )

        for workers in range(best, self.max_workers + 1):
            shares = self.required_shares(jobs, workers)
            slack = 1.0 - sum(shares.values())
            # Spread slack proportionally so rounding has headroom.
            n = len(jobs)
            padded = {j: s + slack / n for j, s in shares.items()}
            counts = self._round_task_counts(padded)
            lateness = self._max_lateness(jobs, counts, workers)
            if lateness <= 1e-9:
                return Allocation(
                    n_workers=workers,
                    task_counts=counts,
                    feasible=True,
                    max_lateness=lateness,
                )
        counts = self._round_task_counts(
            self.required_shares(jobs, self.max_workers)
        )
        return Allocation(
            n_workers=self.max_workers,
            task_counts=counts,
            feasible=False,
            max_lateness=self._max_lateness(jobs, counts, self.max_workers),
        )
