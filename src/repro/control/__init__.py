"""Feedback control: PID controller, WCET model, control knobs, feedback loop."""

from repro.control.feedback import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
    FeedbackConfig,
    IntervalFeedbackLoop,
    ReplayStep,
    TrajectoryRecorder,
    TrajectorySample,
    load_trajectory,
    replay_trajectory,
)
from repro.control.knobs import GlobalControlKnob, KnobConfig, LocalControlKnob
from repro.control.pid import PAPER_GAINS, PIDController, PIDGains
from repro.control.rto import Allocation, JobDemand, RTOAllocator
from repro.control.wcet import WCETModel

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "Allocation",
    "FeedbackConfig",
    "GlobalControlKnob",
    "IntervalFeedbackLoop",
    "JobDemand",
    "KnobConfig",
    "LocalControlKnob",
    "PAPER_GAINS",
    "PIDController",
    "PIDGains",
    "ReplayStep",
    "RTOAllocator",
    "TrajectoryRecorder",
    "TrajectorySample",
    "WCETModel",
    "load_trajectory",
    "replay_trajectory",
]
