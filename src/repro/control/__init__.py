"""Feedback control: PID controller, WCET model, control knobs."""

from repro.control.knobs import GlobalControlKnob, KnobConfig, LocalControlKnob
from repro.control.pid import PAPER_GAINS, PIDController, PIDGains
from repro.control.rto import Allocation, JobDemand, RTOAllocator
from repro.control.wcet import WCETModel

__all__ = [
    "GlobalControlKnob",
    "KnobConfig",
    "LocalControlKnob",
    "PAPER_GAINS",
    "PIDController",
    "PIDGains",
    "Allocation",
    "JobDemand",
    "RTOAllocator",
    "WCETModel",
]
