"""Closed-loop feedback: controller trajectories and admission control.

The paper's control loop (Section IV-C) is open-loop about its own
behaviour: the PID steers priorities and pool size, but nothing records
*what the controller saw and did*, so a bad gain choice can only be
diagnosed by re-running the whole system.  This module closes that gap
and adds the admission-control half of controlled sensing (Krishnamurthy
et al. — observing everything is not free, so choose what to process
now and what to defer):

- :class:`TrajectoryRecorder` writes every ``pid.update`` — error,
  ``dt``, output, integral state, and the full controller configuration
  — to a JSONL file at full float precision.
- :func:`replay_trajectory` re-runs a recorded trajectory through a
  fresh :class:`~repro.control.pid.PIDController` offline.  At the
  recorded gains the replayed outputs are *bit-identical* (the
  controller is a deterministic function of its error/dt sequence);
  with modified gains the divergence shows what the alternative tuning
  would have done against the exact same disturbance sequence —
  counterfactual tuning without touching the live system.
- :class:`AdmissionController` partitions each interval's dirty claims
  into *admit* / *defer* / *shed* sets from a latency-derived capacity
  budget scaled by the PID's headroom signal.  Deferred claims age and
  are force-admitted after ``max_defer`` intervals (no starvation);
  shedding is opt-in and bounded.
- :class:`IntervalFeedbackLoop` bundles the three for the real-backend
  interval replay in :mod:`repro.system.sstd_system`.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, Sequence

from repro.control.pid import PAPER_GAINS, PIDController, PIDGains
from repro.obs import Observability, percentile

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "FeedbackConfig",
    "IntervalFeedbackLoop",
    "ReplayStep",
    "TrajectoryRecorder",
    "TrajectorySample",
    "load_trajectory",
    "replay_trajectory",
]


# ----------------------------------------------------------------------
# Trajectory recording
# ----------------------------------------------------------------------
class TrajectoryRecorder:
    """Appends one JSONL line per ``pid.update`` to a trajectory file.

    Values are serialized at full precision (``json`` round-trips Python
    floats exactly), because the replay contract is *bit-identical*
    outputs at the recorded gains — the rounded values in the trace
    instants are for humans, these are for the replayer.

    Use as a context manager, or :meth:`close` explicitly; the handle is
    covered by the SSTD014 resource-lifecycle lint rule.
    """

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self._handle: IO[str] | None = self.path.open("w", encoding="utf-8")
        self.recorded = 0

    def record(
        self,
        controller: PIDController,
        error: float,
        output: float,
        dt: float,
    ) -> None:
        """Append one sample; no-op after :meth:`close`."""
        if self._handle is None:
            return
        sample = {
            "controller": controller.name,
            "error": error,
            "dt": dt,
            "output": output,
            "integral": controller.integral,
            "gains": {
                "kp": controller.gains.kp,
                "ki": controller.gains.ki,
                "kd": controller.gains.kd,
            },
            "sample_time": controller.sample_time,
            "integral_limit": controller.integral_limit,
            "output_limit": controller.output_limit,
        }
        self._handle.write(
            json.dumps(sample, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self.recorded += 1

    def close(self) -> None:
        """Flush and release the file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TrajectoryRecorder":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass(frozen=True, slots=True)
class TrajectorySample:
    """One recorded ``pid.update`` with its controller configuration."""

    controller: str
    error: float
    dt: float
    output: float
    integral: float
    gains: PIDGains
    sample_time: float
    integral_limit: float
    output_limit: float


def load_trajectory(path: Path | str) -> list[TrajectorySample]:
    """Parse a recorded trajectory JSONL file, preserving order."""
    samples: list[TrajectorySample] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
                samples.append(
                    TrajectorySample(
                        controller=raw["controller"],
                        error=raw["error"],
                        dt=raw["dt"],
                        output=raw["output"],
                        integral=raw["integral"],
                        gains=PIDGains(**raw["gains"]),
                        sample_time=raw["sample_time"],
                        integral_limit=raw["integral_limit"],
                        output_limit=raw["output_limit"],
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"{path}:{line_no}: malformed trajectory sample: {exc}"
                ) from exc
    return samples


@dataclass(frozen=True, slots=True)
class ReplayStep:
    """One replayed sample: recorded output next to the replayed one."""

    controller: str
    index: int
    error: float
    dt: float
    recorded_output: float
    replayed_output: float

    @property
    def matches(self) -> bool:
        """Exact (bitwise) equality of recorded and replayed output."""
        return self.recorded_output == self.replayed_output

    @property
    def divergence(self) -> float:
        return abs(self.replayed_output - self.recorded_output)


def replay_trajectory(
    samples: Sequence[TrajectorySample],
    gains: PIDGains | None = None,
    integral_limit: float | None = None,
    output_limit: float | None = None,
) -> list[ReplayStep]:
    """Re-run a recorded error sequence through fresh controllers.

    One controller is rebuilt per distinct ``controller`` name, seeded
    with the recorded configuration unless ``gains`` /
    ``integral_limit`` / ``output_limit`` override it.  With no
    overrides the replayed outputs are bit-identical to the recording;
    with overrides the divergence *is* the answer to "what would this
    tuning have done?".
    """
    controllers: dict[str, PIDController] = {}
    steps: list[ReplayStep] = []
    for index, sample in enumerate(samples):
        pid = controllers.get(sample.controller)
        if pid is None:
            pid = PIDController(
                gains=gains if gains is not None else sample.gains,
                sample_time=sample.sample_time,
                integral_limit=(
                    integral_limit
                    if integral_limit is not None
                    else sample.integral_limit
                ),
                output_limit=(
                    output_limit
                    if output_limit is not None
                    else sample.output_limit
                ),
            )
            controllers[sample.controller] = pid
        replayed = pid.update(sample.error, dt=sample.dt)
        steps.append(
            ReplayStep(
                controller=sample.controller,
                index=index,
                error=sample.error,
                dt=sample.dt,
                recorded_output=sample.output,
                replayed_output=replayed,
            )
        )
    return steps


# ----------------------------------------------------------------------
# Deadline-aware admission control
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class AdmissionConfig:
    """Policy knobs for defer/shed decisions under bursty arrivals.

    Attributes:
        max_defer: Consecutive deferrals after which a claim is
            force-admitted regardless of budget (starvation bound).
            Only applies when ``shed_after`` is ``None``.
        shed_after: Consecutive deferrals after which a claim is shed —
            dropped from the dirty set until it receives new reports.
            ``None`` (default) never sheds.  Setting it switches the
            overflow policy from *latency bound without loss* (force-
            admit stale work, which under sustained overload re-blows
            the deadline every ``max_defer`` intervals) to *loss bounds
            latency* (drop stale work, keep hitting the deadline).
        min_admit: Floor on the per-interval admission budget; keeps the
            pipeline moving even when the cost estimate explodes.
        utilization_target: Fraction of ``workers x deadline`` treated
            as usable capacity.  The margin absorbs dispatch overhead
            and cost-estimate error; budgeting at 1.0 steers execution
            onto the deadline and loses the coin-flip intervals.
        scale_floor: Lower clamp on the PID-driven budget multiplier.
        scale_ceiling: Upper clamp on the PID-driven budget multiplier.
            Keep ``utilization_target * scale_ceiling <= 1`` or positive
            headroom lets the budget plan past the deadline.
    """

    max_defer: int = 3
    shed_after: int | None = None
    min_admit: int = 1
    utilization_target: float = 0.7
    scale_floor: float = 0.25
    scale_ceiling: float = 1.25

    def __post_init__(self) -> None:
        if self.max_defer < 1:
            raise ValueError("max_defer must be >= 1")
        if self.shed_after is not None and self.shed_after < 1:
            raise ValueError("shed_after must be >= 1")
        if self.min_admit < 1:
            raise ValueError("min_admit must be >= 1")
        if not 0.0 < self.utilization_target <= 1.0:
            raise ValueError("utilization_target must be in (0, 1]")
        if not 0.0 < self.scale_floor <= self.scale_ceiling:
            raise ValueError("need 0 < scale_floor <= scale_ceiling")


@dataclass(frozen=True, slots=True)
class AdmissionDecision:
    """Partition of one interval's dirty claims."""

    admitted: tuple[str, ...]
    deferred: tuple[str, ...]
    shed: tuple[str, ...]
    budget: int
    scale: float


class AdmissionController:
    """Chooses what to process now versus defer, per interval.

    The capacity budget is ``workers x deadline x utilization_target /
    p95_claim_cost`` claims, scaled by the PID headroom signal (positive
    headroom — the last interval finished under deadline — loosens the
    budget; lateness tightens it).  Oldest deferred claims are admitted
    first, and overflow staleness is bounded one of two ways: without
    ``shed_after`` a claim deferred ``max_defer`` times is admitted
    outside the budget; with it, stale overflow is shed instead (see
    :class:`AdmissionConfig`).
    """

    def __init__(
        self,
        deadline: float,
        config: AdmissionConfig | None = None,
        obs: Observability | None = None,
    ) -> None:
        if deadline <= 0:
            raise ValueError("deadline must be > 0")
        self.deadline = deadline
        self.config = config or AdmissionConfig()
        self.obs = obs if obs is not None else Observability.disabled()
        self._ages: dict[str, int] = {}  # consecutive deferrals per claim
        self.admitted_total = 0
        self.deferred_total = 0
        self.shed_total = 0

    def plan(
        self,
        claim_ids: Sequence[str],
        n_workers: float,
        p95_claim_cost: float,
        headroom: float,
    ) -> AdmissionDecision:
        """Partition ``claim_ids`` into admit/defer/shed for this interval.

        Args:
            claim_ids: Dirty claims (new or previously deferred work).
            n_workers: Execution lanes available this interval.  May be
                fractional — :class:`IntervalFeedbackLoop` passes the
                *measured* parallelism, not the nominal worker count,
                so an oversubscribed box does not inflate the budget.
            p95_claim_cost: Observed p95 per-claim decode cost in
                seconds; ``<= 0`` means no samples yet — admit all.
            headroom: Latest PID output (seconds of slack; negative
                when the previous interval overran its deadline).
        """
        config = self.config
        scale = 1.0
        if p95_claim_cost <= 0:
            budget = len(claim_ids)
        else:
            scale = min(
                max(1.0 + headroom / self.deadline, config.scale_floor),
                config.scale_ceiling,
            )
            capacity = (
                max(1.0, n_workers)
                * self.deadline
                * config.utilization_target
                * scale
                / p95_claim_cost
            )
            budget = max(config.min_admit, int(capacity))

        # Oldest deferred claims first (bounded deferral), then arrival
        # order; ties broken by claim id for determinism.
        ordered = sorted(
            claim_ids, key=lambda c: (-self._ages.get(c, 0), c)
        )
        admitted = ordered[:budget]
        overflow = ordered[budget:]
        deferred: list[str] = []
        shed: list[str] = []
        if config.shed_after is None:
            # Latency bound without loss: overflow that has waited
            # max_defer intervals is admitted outside the budget.
            forced = [
                c
                for c in overflow
                if self._ages.get(c, 0) >= config.max_defer
            ]
            admitted.extend(forced)
            deferred = [c for c in overflow if c not in forced]
        else:
            # Loss bounds latency: under sustained overload forcing
            # stale work back in just re-blows the deadline, so stale
            # overflow is dropped instead (it re-enters the dirty set
            # when new reports arrive).
            for claim_id in overflow:
                if self._ages.get(claim_id, 0) + 1 > config.shed_after:
                    shed.append(claim_id)
                else:
                    deferred.append(claim_id)

        for claim_id in admitted:
            self._ages.pop(claim_id, None)
        for claim_id in shed:
            self._ages.pop(claim_id, None)
        for claim_id in deferred:
            self._ages[claim_id] = self._ages.get(claim_id, 0) + 1

        self.admitted_total += len(admitted)
        self.deferred_total += len(deferred)
        self.shed_total += len(shed)
        if self.obs.enabled:
            self.obs.metrics.inc("admission.admitted", len(admitted))
            if deferred:
                self.obs.metrics.inc("admission.deferred", len(deferred))
            if shed:
                self.obs.metrics.inc("admission.shed", len(shed))
            if deferred or shed:
                self.obs.tracer.instant(
                    "admission.defer",
                    track="control",
                    n_admitted=len(admitted),
                    n_deferred=len(deferred),
                    n_shed=len(shed),
                    budget=budget,
                    scale=round(scale, 6),
                )
        return AdmissionDecision(
            admitted=tuple(admitted),
            deferred=tuple(deferred),
            shed=tuple(shed),
            budget=budget,
            scale=scale,
        )


# ----------------------------------------------------------------------
# The assembled loop
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class FeedbackConfig:
    """Configuration of the real-backend interval feedback loop.

    Attributes:
        gains: PID coefficients for the interval-lateness controller.
        sample_time: Nominal controller spacing (one interval).
        integral_limit: Anti-windup clamp (see
            :class:`~repro.control.pid.PIDController`).
        output_limit: Output clamp; 0 disables.
        window: Recent per-claim cost samples kept for the p95 estimate.
        admission: Defer/shed policy.
        trajectory_path: When set, every ``pid.update`` is recorded
            there for offline replay (``repro-cli replay-controller``).
    """

    gains: PIDGains = PAPER_GAINS
    sample_time: float = 1.0
    integral_limit: float = 100.0
    output_limit: float = 0.0
    window: int = 256
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    trajectory_path: str | None = None

    def __post_init__(self) -> None:
        if self.sample_time <= 0:
            raise ValueError("sample_time must be > 0")
        if self.window < 1:
            raise ValueError("window must be >= 1")


class IntervalFeedbackLoop:
    """PID + admission control over the real-backend interval replay.

    Per interval the system asks :meth:`plan` which dirty claims to
    decode now, runs them, then calls :meth:`observe` with the measured
    execution time and per-claim cost samples.  The PID turns
    ``deadline - execution_time`` into the headroom signal the next
    :meth:`plan` uses; costs feed an exact (sample-level, not
    histogram-bucket) nearest-rank p95.

    Owns the optional trajectory recorder; call :meth:`close` (or use
    ``with``) when the run ends.
    """

    def __init__(
        self,
        deadline: float,
        config: FeedbackConfig | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.config = config or FeedbackConfig()
        self.obs = obs if obs is not None else Observability.disabled()
        self.recorder = (  # owns-resource: closed in close()
            TrajectoryRecorder(self.config.trajectory_path)
            if self.config.trajectory_path
            else None
        )
        self.pid = PIDController(
            gains=self.config.gains,
            sample_time=self.config.sample_time,
            integral_limit=self.config.integral_limit,
            output_limit=self.config.output_limit,
            obs=self.obs,
            name="pid:interval",
            recorder=self.recorder,
        )
        self.admission = AdmissionController(
            deadline, self.config.admission, obs=self.obs
        )
        self.deadline = deadline
        self.headroom = 0.0
        self.effective_lanes = 0.0  # 0 until the first interval is measured
        self._costs: deque = deque(maxlen=self.config.window)

    def p95_claim_cost(self) -> float:
        """Exact nearest-rank p95 of recent per-claim costs (0.0 empty)."""
        return percentile(list(self._costs), 95.0)

    def plan(self, claim_ids: Sequence[str], n_workers: int) -> AdmissionDecision:
        """Admission decision for this interval's dirty claims.

        The capacity budget uses the *measured* parallelism from
        :meth:`observe` (capped at the nominal ``n_workers``) once it is
        available: on an oversubscribed box two workers sharing one core
        deliver ~1 lane of throughput, and budgeting for two would admit
        twice what the deadline can absorb.
        """
        lanes = float(max(1, n_workers))
        if self.effective_lanes > 0:
            lanes = min(lanes, max(1.0, self.effective_lanes))
        return self.admission.plan(
            claim_ids, lanes, self.p95_claim_cost(), self.headroom
        )

    def observe(
        self,
        execution_time: float,
        claim_costs: Iterable[float] = (),
        busy_time: float | None = None,
    ) -> float:
        """Feed one interval's measurements; returns the new headroom.

        Args:
            execution_time: Wall time the interval took to drain.
            claim_costs: Per-claim decode cost samples in seconds.
            busy_time: Summed task wall time across all workers for the
                interval; ``busy_time / execution_time`` is the measured
                parallelism (smoothed over intervals with an EMA).
        """
        for cost in claim_costs:
            if cost >= 0:
                self._costs.append(float(cost))
        if busy_time is not None and busy_time > 0 and execution_time > 0:
            lanes = busy_time / execution_time
            if self.effective_lanes > 0:
                lanes = 0.5 * self.effective_lanes + 0.5 * lanes
            self.effective_lanes = lanes
        self.headroom = self.pid.update(
            self.deadline - execution_time, dt=self.config.sample_time
        )
        return self.headroom

    def close(self) -> None:
        """Release the trajectory recorder, if any (idempotent)."""
        if self.recorder is not None:
            self.recorder.close()

    def __enter__(self) -> "IntervalFeedbackLoop":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
