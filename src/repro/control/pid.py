"""PID feedback controller (paper Section IV-C3, Eq. (9)).

    y(k) = Kp * e(k) + Ki * sum(e) * dt + Kd * (e(k) - e(k-1)) / dt

The SSTD deployment runs one controller per TD job: the *setpoint* is
the job's deadline, the *process variable* is its (projected) execution
time, and the control signal drives the Local Control Knob (priority)
and, aggregated across jobs, the Global Control Knob (worker count).

The implementation adds two standard practical guards the paper's
production system would need anyway: an integral clamp (anti-windup) and
an optional output clamp.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import Observability

__all__ = [
    "PAPER_GAINS",
    "PID_BUCKETS",
    "PIDController",
    "PIDGains",
]

#: Histogram bounds for controller error/output samples.  Symmetric
#: around zero: the sign of (deadline - projection) is the signal.
PID_BUCKETS = (-60.0, -10.0, -1.0, 0.0, 1.0, 10.0, 60.0)


@dataclass(frozen=True, slots=True)
class PIDGains:
    """Controller coefficients; the paper tunes these to (1.2, 0.3, 0.2)."""

    kp: float = 1.2
    ki: float = 0.3
    kd: float = 0.2

    def __post_init__(self) -> None:
        if self.kp < 0 or self.ki < 0 or self.kd < 0:
            raise ValueError("PID gains must be >= 0")


#: The coefficients the paper reports after its tuning sweep (Section V-A3).
PAPER_GAINS = PIDGains(kp=1.2, ki=0.3, kd=0.2)


class PIDController:
    """Discrete PID controller with anti-windup.

    Args:
        gains: Proportional / integral / derivative coefficients.
        sample_time: Nominal spacing of updates in seconds (the paper
            samples at 1 Hz).
        integral_limit: Clamp on |integral| (anti-windup); 0 disables.
        output_limit: Clamp on |output|; 0 disables.
        obs: Tracing/metrics recorder; each update samples the error
            and output into ``pid.error`` / ``pid.output`` histograms.
            Defaults to a disabled recorder (standalone use).
        name: Label distinguishing this controller's trace events (the
            DTM runs one controller per job).
        recorder: Optional trajectory recorder
            (:class:`repro.control.feedback.TrajectoryRecorder`); every
            update is appended at full float precision so the sequence
            can be replayed bit-identically offline.  Typed loosely to
            keep this module free of a feedback import.
    """

    def __init__(
        self,
        gains: PIDGains = PAPER_GAINS,
        sample_time: float = 1.0,
        integral_limit: float = 100.0,
        output_limit: float = 0.0,
        obs: Observability | None = None,
        name: str = "pid",
        recorder: object | None = None,
    ) -> None:
        if sample_time <= 0:
            raise ValueError("sample_time must be > 0")
        if integral_limit < 0 or output_limit < 0:
            raise ValueError("limits must be >= 0")
        self.gains = gains
        self.sample_time = sample_time
        self.integral_limit = integral_limit
        self.output_limit = output_limit
        self.obs = obs if obs is not None else Observability.disabled()
        self.name = name
        self.recorder = recorder
        self.reset()

    def reset(self) -> None:
        self._integral = 0.0
        self._last_error: float | None = None
        self.last_output = 0.0

    def update(self, error: float, dt: float | None = None) -> float:
        """Advance the controller one sample; returns the control signal.

        Args:
            error: Setpoint minus measurement.  Positive means the
                measured execution time is still below the deadline.
            dt: Actual elapsed time since the previous sample; defaults
                to the nominal ``sample_time``.
        """
        if dt is None:
            dt = self.sample_time
        if dt <= 0:
            raise ValueError("dt must be > 0")

        self._integral += error * dt
        if self.integral_limit:
            self._integral = min(
                max(self._integral, -self.integral_limit), self.integral_limit
            )

        derivative = 0.0
        if self._last_error is not None:
            derivative = (error - self._last_error) / dt
        self._last_error = error

        output = (
            self.gains.kp * error
            + self.gains.ki * self._integral
            + self.gains.kd * derivative
        )
        if self.output_limit:
            output = min(max(output, -self.output_limit), self.output_limit)
        self.last_output = output
        if self.recorder is not None:
            self.recorder.record(self, error=error, output=output, dt=dt)
        if self.obs.enabled:
            self.obs.metrics.observe("pid.error", error, bounds=PID_BUCKETS)
            self.obs.metrics.observe("pid.output", output, bounds=PID_BUCKETS)
            self.obs.tracer.instant(
                "pid.update",
                track="control",
                controller=self.name,
                error=round(error, 6),
                output=round(output, 6),
            )
        return output

    @property
    def integral(self) -> float:
        return self._integral
