"""Control knobs: the actuators the PID signals drive (Section IV-C2).

- :class:`LocalControlKnob` (LCK): one per TD job; maps a control signal
  into a multiplicative priority adjustment, bounded so no job can
  starve the pool.
- :class:`GlobalControlKnob` (GCK): one per system; aggregates per-job
  pressure into a worker-pool size target.

The paper tunes the knob aggressiveness with heuristic constants
``theta_3`` and ``theta_4`` (reported as 2 and 1.5); the same names are
kept here.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "GlobalControlKnob",
    "KnobConfig",
    "LocalControlKnob",
]


@dataclass(frozen=True, slots=True)
class KnobConfig:
    """Aggressiveness and bounds of the control knobs.

    Attributes:
        theta3: LCK gain: how strongly a control signal scales priority.
        theta4: GCK gain: how strongly aggregate lateness adds workers.
        min_priority: Floor so starved jobs keep making progress.
        max_priority: Ceiling so one job cannot monopolize dispatch.
    """

    theta3: float = 2.0
    theta4: float = 1.5
    min_priority: float = 0.05
    max_priority: float = 100.0

    def __post_init__(self) -> None:
        if self.theta3 <= 0 or self.theta4 <= 0:
            raise ValueError("theta3 and theta4 must be > 0")
        if not 0 < self.min_priority <= self.max_priority:
            raise ValueError("need 0 < min_priority <= max_priority")


class LocalControlKnob:
    """Per-job priority actuator.

    A *negative* PID signal means the job is projected to miss its
    deadline (measured time above setpoint), so priority must increase;
    a positive signal relaxes it.  The update is multiplicative in the
    signal's magnitude, clamped into the configured range.
    """

    def __init__(self, job_id: str, config: KnobConfig | None = None) -> None:
        self.job_id = job_id
        self.config = config or KnobConfig()
        self.priority = 1.0

    def apply(self, control_signal: float, reference: float = 1.0) -> float:
        """Update priority from a control signal; returns the new value.

        Args:
            control_signal: PID output, in seconds of (projected) slack
                (positive) or lateness (negative).
            reference: Time scale that normalizes the signal (typically
                the deadline), so tuning is deadline-independent.
        """
        if reference <= 0:
            raise ValueError("reference must be > 0")
        pressure = -control_signal / reference  # >0 when late
        factor = 1.0 + self.config.theta3 * pressure
        # A job can shrink at most 50% per update but can grow by the
        # full theta3-scaled pressure (reacting to lateness fast matters
        # more than decaying politely).
        factor = max(factor, 0.5)
        self.priority = float(
            min(
                max(self.priority * factor, self.config.min_priority),
                self.config.max_priority,
            )
        )
        return self.priority


class GlobalControlKnob:
    """Worker-pool size actuator.

    Aggregates the per-job pressures: when the total projected lateness
    across jobs is positive the pool grows proportionally (theta_4);
    shrinking is deliberately sluggish — only after ``shrink_patience``
    consecutive all-comfortable samples, one worker at a time — because
    scaling up is urgent while scaling down too eagerly makes the pool
    thrash on bursty traffic and miss the next spike's deadlines.
    """

    def __init__(
        self, config: KnobConfig | None = None, shrink_patience: int = 5
    ) -> None:
        if shrink_patience < 1:
            raise ValueError("shrink_patience must be >= 1")
        self.config = config or KnobConfig()
        self.shrink_patience = shrink_patience
        self._comfortable_streak = 0

    def target_size(
        self,
        current_size: int,
        control_signals: dict[str, float],
        reference: float = 1.0,
    ) -> int:
        """Compute the new worker-pool target.

        Args:
            current_size: Current worker count.
            control_signals: PID output per job (negative = late).
            reference: Normalizing time scale (typical deadline).
        """
        if current_size < 0:
            raise ValueError("current_size must be >= 0")
        if reference <= 0:
            raise ValueError("reference must be > 0")
        if not control_signals:
            return current_size
        lateness = sum(
            max(0.0, -signal) / reference for signal in control_signals.values()
        )
        if lateness > 0:
            self._comfortable_streak = 0
            grow = max(1, round(self.config.theta4 * lateness))
            return current_size + grow
        slack = min(control_signals.values()) / reference
        if slack > 0.5 and current_size > 1:
            self._comfortable_streak += 1
            if self._comfortable_streak >= self.shrink_patience:
                self._comfortable_streak = 0
                return current_size - 1
        else:
            self._comfortable_streak = 0
        return current_size
