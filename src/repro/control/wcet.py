"""Worst-Case Execution Time model (paper Section IV-C4, Eq. (10)-(12)).

The DTM predicts how long a TD job will take given its data volume, its
priority share, and the worker pool size:

    ET_task  = TI + D * theta_1                       (Eq. 10)
    WCET_job = TI * T_u + D * theta_2 * sum(T)/(WK * T_u)   (Eq. 11)
    WCET_job ~= D * theta_2 / (WK * P_u)              (Eq. 12, small T_u)

where ``D`` is the job's data in the interval, ``WK`` the number of
workers and ``P_u`` the job's priority share.  The simplified Eq. (12)
is what the knob-tuning logic inverts to compute priority and worker
targets.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "WCETModel",
]


@dataclass(frozen=True, slots=True)
class WCETModel:
    """Parameters of the execution-time prediction.

    Attributes:
        init_time: Per-task initialization overhead ``TI`` (seconds).
        theta1: Per-data-unit execution cost of a single task.
        theta2: Per-data-unit cost in the aggregated WCET formula.
    """

    init_time: float = 0.5
    theta1: float = 1e-3
    theta2: float = 1e-3

    def __post_init__(self) -> None:
        if self.init_time < 0 or self.theta1 < 0 or self.theta2 < 0:
            raise ValueError("WCET parameters must be >= 0")

    def task_execution_time(self, data_size: float) -> float:
        """Eq. (10): expected time of one task on a unit-speed worker."""
        if data_size < 0:
            raise ValueError("data_size must be >= 0")
        return self.init_time + data_size * self.theta1

    def job_wcet(
        self,
        data_size: float,
        n_tasks: int,
        total_tasks: int,
        n_workers: int,
    ) -> float:
        """Eq. (11): WCET of a job split into ``n_tasks`` tasks."""
        if n_tasks < 1 or total_tasks < n_tasks:
            raise ValueError("need 1 <= n_tasks <= total_tasks")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        priority = n_tasks / total_tasks
        return self.init_time * n_tasks + (
            data_size * self.theta2 / (n_workers * priority)
        )

    def job_wcet_simplified(
        self, data_size: float, priority: float, n_workers: int
    ) -> float:
        """Eq. (12): WCET with initialization overhead dropped."""
        if not 0.0 < priority <= 1.0:
            raise ValueError(f"priority share must be in (0, 1], got {priority}")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        return data_size * self.theta2 / (n_workers * priority)

    def required_priority(
        self, data_size: float, deadline: float, n_workers: int
    ) -> float:
        """Invert Eq. (12) for the priority share that meets ``deadline``."""
        if deadline <= 0:
            raise ValueError("deadline must be > 0")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        return data_size * self.theta2 / (n_workers * deadline)

    def required_workers(
        self, data_size: float, deadline: float, priority: float
    ) -> int:
        """Invert Eq. (12) for the worker count that meets ``deadline``."""
        if deadline <= 0:
            raise ValueError("deadline must be > 0")
        if not 0.0 < priority <= 1.0:
            raise ValueError("priority share must be in (0, 1]")
        import math

        return max(1, math.ceil(data_size * self.theta2 / (priority * deadline)))
