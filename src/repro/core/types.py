"""Core data model for social sensing truth discovery.

The paper (Section II) formulates social sensing as a group of *M* sources
``S = (S1..SM)`` reporting a set of *N* binary claims ``C = (C1..CN)``.
A :class:`Report` is one observation ``R[t][i][u]`` made by source ``Si``
about claim ``Cu`` at time ``t``.  Claims carry a *dynamic* ground truth:
the truth value of a claim may flip over time, so truth labels are indexed
by ``(claim, time)`` rather than by claim alone.

All records are plain frozen dataclasses so they can be hashed, compared,
serialized and used as dictionary keys without surprises.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Optional

__all__ = [
    "Attitude",
    "Claim",
    "Report",
    "Source",
    "TruthEstimate",
    "TruthLabel",
    "TruthTimeline",
    "TruthValue",
]


class TruthValue(enum.IntEnum):
    """The binary truth value of a claim at a time instant.

    The paper restricts claims to binary values (Section II): at any time
    instant a claim is either true or false, never both.
    """

    FALSE = 0
    TRUE = 1

    @classmethod
    def from_bool(cls, value: bool) -> "TruthValue":
        """Convert a Python bool into a :class:`TruthValue`."""
        return cls.TRUE if value else cls.FALSE

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return self is TruthValue.TRUE


class Attitude(enum.IntEnum):
    """Attitude score rho of a report (paper Definition 1).

    ``+1`` means the source asserts the claim is true, ``-1`` that it is
    false, and ``0`` that the source mentioned the claim without taking a
    position (or made no report).
    """

    DISAGREE = -1
    NEUTRAL = 0
    AGREE = 1


@dataclass(frozen=True, slots=True)
class Source:
    """A social sensor (e.g. one Twitter user).

    Attributes:
        source_id: Stable unique identifier.
        reliability: Optional ground-truth reliability in ``[0, 1]`` used
            by synthetic generators; real traces leave it ``None`` because
            source reliability is exactly what truth discovery must infer.
        is_spreader: Whether the synthetic generator marked this source as
            a misinformation spreader (propagates rumors).
    """

    source_id: str
    reliability: Optional[float] = None
    is_spreader: bool = False

    def __post_init__(self) -> None:
        if not self.source_id:
            raise ValueError("source_id must be a non-empty string")
        if self.reliability is not None and not 0.0 <= self.reliability <= 1.0:
            raise ValueError(
                f"reliability must be in [0, 1], got {self.reliability!r}"
            )


@dataclass(frozen=True, slots=True)
class Claim:
    """A statement about the physical world whose truth evolves over time.

    Attributes:
        claim_id: Stable unique identifier.
        text: Representative text of the claim (cluster centroid text for
            claims derived from tweets).
        topic: Free-form topic tag (e.g. ``"score-change"``).
    """

    claim_id: str
    text: str = ""
    topic: str = ""

    def __post_init__(self) -> None:
        if not self.claim_id:
            raise ValueError("claim_id must be a non-empty string")


@dataclass(frozen=True, slots=True)
class Report:
    """One observation by a source about a claim at a time instant.

    ``attitude``, ``uncertainty`` and ``independence`` are the three
    components of the contribution score (paper Definitions 1-3 and
    Eq. (1)); they are typically filled in by the text pipeline
    (:mod:`repro.text`) or by the synthetic generator.

    Attributes:
        source_id: The reporting source.
        claim_id: The claim being reported on.
        timestamp: Seconds since the start of the trace (float).
        attitude: Attitude score rho in ``{-1, 0, +1}``.
        uncertainty: Uncertainty score kappa in ``[0, 1)``; higher means
            the report hedges more.
        independence: Independence score eta in ``(0, 1]``; lower means the
            report is likely copied (e.g. a retweet).
        text: Raw text of the report, when available.
        is_retweet: Marker used by the independence scorer.
    """

    source_id: str
    claim_id: str
    timestamp: float
    attitude: Attitude = Attitude.NEUTRAL
    uncertainty: float = 0.0
    independence: float = 1.0
    text: str = ""
    is_retweet: bool = False

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError(f"timestamp must be >= 0, got {self.timestamp}")
        if not 0.0 <= self.uncertainty < 1.0:
            raise ValueError(
                f"uncertainty must be in [0, 1), got {self.uncertainty}"
            )
        if not 0.0 < self.independence <= 1.0:
            raise ValueError(
                f"independence must be in (0, 1], got {self.independence}"
            )

    @property
    def contribution_score(self) -> float:
        """Contribution score ``CS = rho * (1 - kappa) * eta`` (Eq. (1))."""
        return float(self.attitude) * (1.0 - self.uncertainty) * self.independence

    def with_scores(
        self,
        attitude: Optional[Attitude] = None,
        uncertainty: Optional[float] = None,
        independence: Optional[float] = None,
    ) -> "Report":
        """Return a copy with some score components replaced."""
        changes = {}
        if attitude is not None:
            changes["attitude"] = attitude
        if uncertainty is not None:
            changes["uncertainty"] = uncertainty
        if independence is not None:
            changes["independence"] = independence
        return replace(self, **changes)


@dataclass(frozen=True, slots=True)
class TruthLabel:
    """Ground truth of one claim over a half-open time interval.

    A claim's dynamic ground truth is a piecewise-constant function of
    time, represented as a sequence of labels whose intervals partition
    the trace duration.
    """

    claim_id: str
    start: float
    end: float
    value: TruthValue

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"label interval must be non-empty: [{self.start}, {self.end})"
            )

    def covers(self, timestamp: float) -> bool:
        """Whether ``timestamp`` falls inside ``[start, end)``."""
        return self.start <= timestamp < self.end


class TruthTimeline:
    """Piecewise-constant ground truth of a single claim.

    Wraps an ordered list of :class:`TruthLabel` covering contiguous,
    non-overlapping intervals, and answers point queries.
    """

    def __init__(self, claim_id: str, labels: Iterable[TruthLabel]) -> None:
        ordered = sorted(labels, key=lambda lab: lab.start)
        if not ordered:
            raise ValueError("a truth timeline needs at least one label")
        for label in ordered:
            if label.claim_id != claim_id:
                raise ValueError(
                    f"label for claim {label.claim_id!r} added to timeline "
                    f"of claim {claim_id!r}"
                )
        for prev, cur in zip(ordered, ordered[1:]):
            if cur.start < prev.end:
                raise ValueError(
                    f"overlapping truth labels for claim {claim_id!r}: "
                    f"[{prev.start}, {prev.end}) and [{cur.start}, {cur.end})"
                )
        self.claim_id = claim_id
        self._labels = ordered

    @property
    def labels(self) -> tuple[TruthLabel, ...]:
        """The ordered labels of this timeline."""
        return tuple(self._labels)

    @property
    def start(self) -> float:
        return self._labels[0].start

    @property
    def end(self) -> float:
        return self._labels[-1].end

    def value_at(self, timestamp: float) -> TruthValue:
        """Ground truth at ``timestamp``.

        Times before the first label clamp to the first value; times at or
        after the last interval clamp to the last value.  This makes the
        timeline total, which is what evaluation needs when report
        timestamps straggle slightly outside the labelled range.
        """
        if timestamp < self._labels[0].start:
            return self._labels[0].value
        for label in self._labels:
            if label.covers(timestamp):
                return label.value
        return self._labels[-1].value

    def transition_times(self) -> list[float]:
        """Times at which the ground truth actually changes value."""
        times = []
        for prev, cur in zip(self._labels, self._labels[1:]):
            if cur.value != prev.value:
                times.append(cur.start)
        return times

    def __iter__(self) -> Iterator[TruthLabel]:
        return iter(self._labels)

    def __len__(self) -> int:
        return len(self._labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TruthTimeline(claim_id={self.claim_id!r}, "
            f"labels={len(self._labels)}, span=[{self.start}, {self.end}))"
        )


@dataclass(frozen=True, slots=True)
class TruthEstimate:
    """One algorithm's estimate of a claim's truth at a time instant."""

    claim_id: str
    timestamp: float
    value: TruthValue
    confidence: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(
                f"confidence must be in [0, 1], got {self.confidence}"
            )
