"""Core truth-discovery layer: data model, scores, ACS, SSTD, metrics."""

from repro.core.acs import ACSConfig, SlidingWindowACS, acs_sequence
from repro.core.dependencies import (
    ClaimDependencyGraph,
    CorrelatedSSTD,
    CorrelationConfig,
)
from repro.core.estimates_io import (
    iter_estimates,
    load_estimates,
    save_estimates,
)
from repro.core.metrics import (
    ConfusionMatrix,
    EvaluationResult,
    evaluate_estimates,
    evaluate_per_claim,
    format_results_table,
    hardest_claims,
)
from repro.core.reliability import (
    ReliabilityEstimator,
    SourceReliability,
    rank_spreaders,
    reliability_histogram,
)
from repro.core.scores import FULL_WEIGHTS, ScoreWeights, contribution_score
from repro.core.sstd import SSTD, ClaimTruthModel, SSTDConfig, StreamingSSTD
from repro.core.types import (
    Attitude,
    Claim,
    Report,
    Source,
    TruthEstimate,
    TruthLabel,
    TruthTimeline,
    TruthValue,
)

__all__ = [
    "ACSConfig",
    "Attitude",
    "Claim",
    "ClaimDependencyGraph",
    "ClaimTruthModel",
    "CorrelatedSSTD",
    "CorrelationConfig",
    "ConfusionMatrix",
    "EvaluationResult",
    "FULL_WEIGHTS",
    "ReliabilityEstimator",
    "Report",
    "SSTD",
    "SSTDConfig",
    "ScoreWeights",
    "SlidingWindowACS",
    "SourceReliability",
    "Source",
    "StreamingSSTD",
    "TruthEstimate",
    "TruthLabel",
    "TruthTimeline",
    "TruthValue",
    "acs_sequence",
    "contribution_score",
    "evaluate_estimates",
    "evaluate_per_claim",
    "iter_estimates",
    "load_estimates",
    "rank_spreaders",
    "save_estimates",
    "reliability_histogram",
    "format_results_table",
    "hardest_claims",
]
