"""Evaluation metrics for dynamic truth discovery (paper Section V-B1).

The paper scores each method on Accuracy, Precision, Recall and F1 over
(claim, interval) decisions: the estimate of a claim's truth in each
evaluation interval is compared with the ground-truth timeline.  This
module provides the confusion-matrix arithmetic plus the interval-level
alignment between a set of :class:`~repro.core.types.TruthEstimate` and
ground-truth :class:`~repro.core.types.TruthTimeline` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.types import TruthEstimate, TruthTimeline, TruthValue

__all__ = [
    "ConfusionMatrix",
    "EvaluationResult",
    "evaluate_estimates",
    "evaluate_per_claim",
    "format_results_table",
    "hardest_claims",
]


@dataclass(frozen=True, slots=True)
class ConfusionMatrix:
    """Binary confusion counts with TRUE as the positive class."""

    tp: int = 0
    fp: int = 0
    tn: int = 0
    fn: int = 0

    def __post_init__(self) -> None:
        for name in ("tp", "fp", "tn", "fn"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.tn + self.fn

    @property
    def accuracy(self) -> float:
        """Fraction of correct decisions; 0.0 on an empty matrix."""
        return (self.tp + self.tn) / self.total if self.total else 0.0

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 0.0 when nothing was predicted positive."""
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 0.0 when there are no positives."""
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall; 0.0 when undefined."""
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) else 0.0

    def __add__(self, other: "ConfusionMatrix") -> "ConfusionMatrix":
        return ConfusionMatrix(
            tp=self.tp + other.tp,
            fp=self.fp + other.fp,
            tn=self.tn + other.tn,
            fn=self.fn + other.fn,
        )

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[TruthValue, TruthValue]]
    ) -> "ConfusionMatrix":
        """Build from ``(predicted, actual)`` pairs."""
        tp = fp = tn = fn = 0
        for predicted, actual in pairs:
            if predicted is TruthValue.TRUE:
                if actual is TruthValue.TRUE:
                    tp += 1
                else:
                    fp += 1
            else:
                if actual is TruthValue.TRUE:
                    fn += 1
                else:
                    tn += 1
        return cls(tp=tp, fp=fp, tn=tn, fn=fn)


@dataclass(frozen=True, slots=True)
class EvaluationResult:
    """Aggregated metrics for one algorithm on one trace."""

    method: str
    matrix: ConfusionMatrix

    @property
    def accuracy(self) -> float:
        return self.matrix.accuracy

    @property
    def precision(self) -> float:
        return self.matrix.precision

    @property
    def recall(self) -> float:
        return self.matrix.recall

    @property
    def f1(self) -> float:
        return self.matrix.f1

    def as_row(self) -> dict[str, float | str]:
        """Row for the paper-style results tables (Tables III-V)."""
        return {
            "method": self.method,
            "accuracy": round(self.accuracy, 3),
            "precision": round(self.precision, 3),
            "recall": round(self.recall, 3),
            "f1": round(self.f1, 3),
        }


def evaluate_estimates(
    method: str,
    estimates: Sequence[TruthEstimate],
    timelines: Mapping[str, TruthTimeline],
) -> EvaluationResult:
    """Score point estimates against ground-truth timelines.

    Each estimate is compared with the ground truth of its claim at its
    timestamp.  Estimates for claims without a ground-truth timeline are
    skipped (real traces can contain unlabelled claims).
    """
    pairs = []
    for estimate in estimates:
        timeline = timelines.get(estimate.claim_id)
        if timeline is None:
            continue
        pairs.append((estimate.value, timeline.value_at(estimate.timestamp)))
    return EvaluationResult(method=method, matrix=ConfusionMatrix.from_pairs(pairs))


def evaluate_per_claim(
    method: str,
    estimates: Sequence[TruthEstimate],
    timelines: Mapping[str, TruthTimeline],
) -> dict[str, EvaluationResult]:
    """Per-claim breakdown of :func:`evaluate_estimates`.

    Useful for diagnosing *which* claims an algorithm fails on — e.g.
    fast-flipping claims vs static ones, or sparse vs popular.
    """
    by_claim: dict[str, list[TruthEstimate]] = {}
    for estimate in estimates:
        if estimate.claim_id in timelines:
            by_claim.setdefault(estimate.claim_id, []).append(estimate)
    return {
        claim_id: evaluate_estimates(method, claim_estimates, timelines)
        for claim_id, claim_estimates in by_claim.items()
    }


def hardest_claims(
    per_claim: Mapping[str, EvaluationResult], worst_k: int = 5
) -> list[tuple[str, float]]:
    """Claims with the lowest accuracy, worst first."""
    ranked = sorted(
        ((claim_id, result.accuracy) for claim_id, result in per_claim.items()),
        key=lambda pair: pair[1],
    )
    return ranked[:worst_k]


def format_results_table(
    results: Sequence[EvaluationResult], title: str = ""
) -> str:
    """Render results in the layout of the paper's Tables III-V."""
    lines = []
    if title:
        lines.append(title)
    header = f"{'Method':<14}{'Accuracy':>10}{'Precision':>11}{'Recall':>9}{'F1':>8}"
    lines.append(header)
    lines.append("-" * len(header))
    for result in results:
        lines.append(
            f"{result.method:<14}{result.accuracy:>10.3f}"
            f"{result.precision:>11.3f}{result.recall:>9.3f}{result.f1:>8.3f}"
        )
    return "\n".join(lines)
