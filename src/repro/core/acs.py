"""Aggregated Contribution Score (ACS) sequences (paper Section III-B).

The SSTD HMM does not observe individual reports; it observes, per claim
and per time instant, the *Aggregated Contribution Score*:

    ACS_u^t = sum of CS_{i,u}^t' for t' in (t - sw, t]        (Eq. (4))

i.e. the sum of contribution scores of the claim's reports inside a
sliding window of length ``sw`` ending at ``t``.  The window length is
chosen from the expected change frequency of the monitored event (a
football score flips faster than a disaster casualty count).

Two refinements over the literal Eq. (4), both switchable:

- ``normalize=True`` divides the sum by the number of reports in the
  window, making the observation scale-invariant to traffic volume (raw
  sums conflate "how many people tweeted" with "what they said", which
  misleads an unsupervised Gaussian HMM during volume bursts);
- windows containing *no* reports yield ``NaN`` ("missing") instead of a
  hard 0 when ``empty_is_missing=True``, so the decoder bridges silent
  periods with its transition model rather than treating silence as
  evidence.

This module turns a claim's report stream into the observation sequence
``F(u) = (ACS_u^1 .. ACS_u^T)`` sampled on a regular grid, both in batch
form (:func:`acs_sequence`) and incrementally for streaming use
(:class:`SlidingWindowACS`).
"""

from __future__ import annotations

import bisect
import collections
import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.scores import FULL_WEIGHTS, ScoreWeights
from repro.core.types import Report

__all__ = [
    "ACSConfig",
    "SlidingWindowACS",
    "acs_at",
    "acs_sequence",
]


@dataclass(frozen=True, slots=True)
class ACSConfig:
    """Configuration of the ACS observation grid.

    Attributes:
        window: Sliding-window length ``sw`` in seconds.
        step: Spacing of the observation grid in seconds (one ACS value
            is emitted every ``step`` seconds).
        weights: Contribution-score component toggles (ablations).
        normalize: Divide each window sum by its report count.
        empty_is_missing: Emit NaN for windows with no reports.
    """

    window: float = 300.0
    step: float = 60.0
    weights: ScoreWeights = FULL_WEIGHTS
    normalize: bool = True
    empty_is_missing: bool = True

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError(f"window must be > 0, got {self.window}")
        if self.step <= 0:
            raise ValueError(f"step must be > 0, got {self.step}")

    def grid(self, start: float, end: float) -> np.ndarray:
        """Observation timestamps covering ``[start, end]``.

        The grid starts one step after ``start`` (a window needs some
        data behind it) and always contains at least one point.
        """
        if end < start:
            raise ValueError(f"end {end} before start {start}")
        count = max(1, int(math.ceil((end - start) / self.step)))
        return start + self.step * np.arange(1, count + 1)

    def finalize(self, total: float, count: int) -> float:
        """Map a window's (sum, count) to the observation value."""
        if count == 0:
            return math.nan if self.empty_is_missing else 0.0
        return total / count if self.normalize else total


def acs_at(
    reports: Sequence[Report],
    timestamps: Sequence[float],
    at: float,
    config: ACSConfig,
) -> float:
    """ACS of a claim at a single time ``at``.

    ``reports`` must be sorted by timestamp and ``timestamps`` must be
    the matching array of report timestamps (kept separate so the bisect
    can run on a plain float list).
    """
    lo = bisect.bisect_right(timestamps, at - config.window)
    hi = bisect.bisect_right(timestamps, at)
    total = sum(config.weights.score(reports[k]) for k in range(lo, hi))
    return config.finalize(total, hi - lo)


def acs_sequence(
    reports: Iterable[Report],
    config: ACSConfig,
    start: float | None = None,
    end: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Batch ACS observation sequence for one claim.

    Args:
        reports: The claim's reports, in any order.
        config: Grid and window configuration.
        start: Start of the observation span (defaults to the first
            report's timestamp).
        end: End of the span (defaults to the last report's timestamp).

    Returns:
        ``(times, values)``: the observation grid and the ACS at each
        grid point (NaN marks empty windows when configured).  Both
        arrays are empty when there are no reports and no explicit span.
    """
    ordered = sorted(reports, key=lambda report: report.timestamp)
    if not ordered and (start is None or end is None):
        return np.array([]), np.array([])
    if start is None:
        start = ordered[0].timestamp
    if end is None:
        end = ordered[-1].timestamp
    grid = config.grid(start, end)
    timestamps = np.array([report.timestamp for report in ordered])
    scores = np.array([config.weights.score(report) for report in ordered])
    prefix = np.concatenate([[0.0], np.cumsum(scores)])

    lo = np.searchsorted(timestamps, grid - config.window, side="right")
    hi = np.searchsorted(timestamps, grid, side="right")
    sums = prefix[hi] - prefix[lo]
    counts = hi - lo
    values = np.array(
        [config.finalize(float(s), int(c)) for s, c in zip(sums, counts)]
    )
    return grid, values


class SlidingWindowACS:
    """Incremental ACS for streaming truth discovery.

    Reports are pushed in timestamp order; :meth:`value_at` evicts
    reports that have slid out of the window and returns the current ACS
    in O(1) amortized time per report.

    Example:
        >>> from repro.core.types import Report, Attitude
        >>> acc = SlidingWindowACS(window=10.0, normalize=False)
        >>> acc.push(Report("s1", "c1", 1.0, Attitude.AGREE))
        >>> acc.value_at(5.0)
        1.0
    """

    def __init__(
        self,
        window: float,
        weights: ScoreWeights = FULL_WEIGHTS,
        normalize: bool = True,
        empty_is_missing: bool = True,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        self.window = window
        self.weights = weights
        self.normalize = normalize
        self.empty_is_missing = empty_is_missing
        self._queue: collections.deque[tuple[float, float]] = collections.deque()
        self._total = 0.0
        self._last_push = -math.inf

    def push(self, report: Report) -> None:
        """Add one report; reports must arrive in non-decreasing time."""
        if report.timestamp < self._last_push:
            raise ValueError(
                f"out-of-order report at t={report.timestamp} "
                f"(last push was t={self._last_push})"
            )
        self._last_push = report.timestamp
        score = self.weights.score(report)
        self._queue.append((report.timestamp, score))
        self._total += score

    def value_at(self, at: float) -> float:
        """ACS over the window ``(at - window, at]``.

        Evicts expired reports; queries, like pushes, move forward in
        time.  Returns NaN for an empty window when configured.
        """
        cutoff = at - self.window
        while self._queue and self._queue[0][0] <= cutoff:
            _, score = self._queue.popleft()
            self._total -= score
        # Reports newer than `at` have not "happened yet" for this query;
        # exclude them without evicting.
        pending_total = 0.0
        pending_count = 0
        for ts, score in reversed(self._queue):
            if ts <= at:
                break
            pending_total += score
            pending_count += 1
        total = self._total - pending_total
        count = len(self._queue) - pending_count
        if count == 0:
            return math.nan if self.empty_is_missing else 0.0
        return total / count if self.normalize else total

    def __len__(self) -> int:
        return len(self._queue)
