"""Serialization of truth estimates (JSONL).

Deployments archive their verdict streams; benchmarks cache expensive
runs.  One record per line keeps files streamable and diff-able.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.types import TruthEstimate, TruthValue

__all__ = [
    "iter_estimates",
    "load_estimates",
    "save_estimates",
]


def save_estimates(
    estimates: Iterable[TruthEstimate], path: str | Path
) -> int:
    """Write estimates as JSON-lines; returns the record count."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as fh:
        for estimate in estimates:
            fh.write(
                json.dumps(
                    {
                        "claim_id": estimate.claim_id,
                        "timestamp": estimate.timestamp,
                        "value": int(estimate.value),
                        "confidence": estimate.confidence,
                    }
                )
                + "\n"
            )
            count += 1
    return count


def iter_estimates(path: str | Path) -> Iterator[TruthEstimate]:
    """Stream estimates back from a JSONL file."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        for line_number, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                yield TruthEstimate(
                    claim_id=record["claim_id"],
                    timestamp=float(record["timestamp"]),
                    value=TruthValue(int(record["value"])),
                    confidence=float(record.get("confidence", 1.0)),
                )
            except (KeyError, ValueError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{line_number}: malformed estimate record"
                ) from exc


def load_estimates(path: str | Path) -> list[TruthEstimate]:
    """Read a whole estimates file into memory."""
    return list(iter_estimates(path))
