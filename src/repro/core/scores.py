"""Contribution-score computation (paper Section II, Eq. (1)).

A report's *contribution score* combines three semantic components:

    CS = attitude * (1 - uncertainty) * independence

- *attitude* (Definition 1) is ``+1`` / ``-1`` / ``0`` for agree /
  disagree / no position;
- *uncertainty* (Definition 2) in ``[0, 1)`` measures hedging ("possible
  shooting", "unconfirmed");
- *independence* (Definition 3) in ``(0, 1]`` down-weights copied reports
  (retweets, near-duplicates).

The contribution score is the quantity the SSTD HMM aggregates into its
observation sequence; the classes here also let ablation benchmarks switch
individual components off (experiment A2 in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.types import Report
from repro.devtools import contracts

__all__ = [
    "ATTITUDE_ONLY",
    "FULL_WEIGHTS",
    "ScoreWeights",
    "contribution_score",
    "normalized_support",
    "total_contribution",
]


def contribution_score(report: Report) -> float:
    """Contribution score of a single report, Eq. (1) of the paper."""
    return report.contribution_score


@dataclass(frozen=True, slots=True)
class ScoreWeights:
    """Toggles for the components of the contribution score.

    Used by ablation experiments: with ``use_uncertainty=False`` the
    ``(1 - kappa)`` factor is replaced by 1, and with
    ``use_independence=False`` the ``eta`` factor is replaced by 1.
    The attitude factor cannot be disabled because without it a report
    carries no signal at all.
    """

    use_uncertainty: bool = True
    use_independence: bool = True

    def score(self, report: Report) -> float:
        """Contribution score of ``report`` under these toggles."""
        value = float(report.attitude)
        if self.use_uncertainty:
            value *= 1.0 - report.uncertainty
        if self.use_independence:
            value *= report.independence
        contracts.assert_score_range(value, "contribution score (Eq. 1)")
        return value


FULL_WEIGHTS = ScoreWeights()
ATTITUDE_ONLY = ScoreWeights(use_uncertainty=False, use_independence=False)


def total_contribution(
    reports: Iterable[Report], weights: ScoreWeights = FULL_WEIGHTS
) -> float:
    """Sum of contribution scores over ``reports``."""
    return sum(weights.score(report) for report in reports)


def normalized_support(
    reports: Sequence[Report], weights: ScoreWeights = FULL_WEIGHTS
) -> float:
    """Average contribution per report, in ``[-1, 1]``.

    Useful as a size-independent signal: ``+1`` means unanimous confident
    independent agreement, ``-1`` unanimous confident denial, ``0`` either
    no reports or perfectly balanced evidence.
    """
    if not reports:
        return 0.0
    support = total_contribution(reports, weights) / len(reports)
    contracts.assert_score_range(support, "normalized support")
    return support
