"""Claim-dependency modeling (paper §VII, first future-work item).

"We assume no dependency between claims.  There may be cases, however,
where claims are not completely independent.  For example, weather
conditions at city A may be related to weather condition at city B when
A and B are close in distance.  Incorporating such dependency into our
model can be an interesting topic ... we need to explicitly model the
correlation between different claims and incorporate such correlation
into the HMM based model.  The key challenge is to maintain the
correlation between claims when the truth discovery task is implemented
on a distributed framework."

This module implements that extension with exactly the structure the
paper sketches:

- a :class:`ClaimDependencyGraph` (networkx) holds pairwise claim
  correlations in ``[-1, 1]`` (+1: truths move together, -1: mutually
  exclusive);
- :class:`CorrelatedSSTD` shares *evidence* along graph edges before
  per-claim decoding: each claim's ACS sequence is blended with its
  neighbors' (signed by the correlation), which transfers support
  between related claims without coupling their HMMs;
- because the blending is a pre-processing step on observation
  sequences, the per-claim jobs stay independent afterwards — solving
  the paper's distribution challenge: the master computes the blend
  (one pass over neighbor sequences), then ships per-claim jobs exactly
  as before.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import networkx as nx
import numpy as np

from repro.core.acs import acs_sequence
from repro.core.sstd import ClaimTruthModel, SSTD, SSTDConfig
from repro.core.types import Report, TruthEstimate

__all__ = [
    "ClaimDependencyGraph",
    "CorrelatedSSTD",
    "CorrelationConfig",
]


class ClaimDependencyGraph:
    """Weighted undirected graph of claim correlations."""

    def __init__(self) -> None:
        self._graph = nx.Graph()

    def add_claim(self, claim_id: str) -> None:
        self._graph.add_node(claim_id)

    def add_dependency(
        self, claim_a: str, claim_b: str, correlation: float
    ) -> None:
        """Declare that two claims' truths are correlated.

        Args:
            correlation: in ``[-1, 1]``; positive means the claims tend
                to be true together, negative that they exclude each
                other.  Zero removes the edge.
        """
        if claim_a == claim_b:
            raise ValueError("a claim cannot depend on itself")
        if not -1.0 <= correlation <= 1.0:
            raise ValueError(
                f"correlation must be in [-1, 1], got {correlation}"
            )
        if correlation == 0.0:
            if self._graph.has_edge(claim_a, claim_b):
                self._graph.remove_edge(claim_a, claim_b)
            return
        self._graph.add_edge(claim_a, claim_b, correlation=correlation)

    def neighbors(self, claim_id: str) -> list[tuple[str, float]]:
        """(neighbor, correlation) pairs of a claim."""
        if claim_id not in self._graph:
            return []
        return [
            (other, self._graph.edges[claim_id, other]["correlation"])
            for other in self._graph.neighbors(claim_id)
        ]

    def correlation(self, claim_a: str, claim_b: str) -> float:
        if self._graph.has_edge(claim_a, claim_b):
            return self._graph.edges[claim_a, claim_b]["correlation"]
        return 0.0

    def components(self) -> list[set[str]]:
        """Connected components — the units that must share a master."""
        return [set(c) for c in nx.connected_components(self._graph)]

    def __contains__(self, claim_id: str) -> bool:
        return claim_id in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    @classmethod
    def from_edges(
        cls, edges: Iterable[tuple[str, str, float]]
    ) -> "ClaimDependencyGraph":
        graph = cls()
        for claim_a, claim_b, correlation in edges:
            graph.add_dependency(claim_a, claim_b, correlation)
        return graph


@dataclass(frozen=True, slots=True)
class CorrelationConfig:
    """How strongly neighbor evidence is shared.

    Attributes:
        blend: Weight of the neighbor-evidence term in ``[0, 1)``; the
            blended sequence is
            ``(1 - blend) * own + blend * weighted-neighbor-average``.
        min_own_weight: Sequences with fewer informative windows than
            this keep full neighbor blending; data-rich claims blend
            less (their own evidence suffices).
    """

    blend: float = 0.3
    min_own_weight: float = 1e-9

    def __post_init__(self) -> None:
        if not 0.0 <= self.blend < 1.0:
            raise ValueError(f"blend must be in [0, 1), got {self.blend}")


class CorrelatedSSTD:
    """SSTD with evidence sharing across a claim-dependency graph.

    Example:
        >>> graph = ClaimDependencyGraph.from_edges(
        ...     [("rain-city-a", "rain-city-b", 0.8)]
        ... )
        >>> engine = CorrelatedSSTD(graph)
        >>> estimates = engine.discover(reports)       # doctest: +SKIP
    """

    name = "SSTD+deps"

    def __init__(
        self,
        graph: ClaimDependencyGraph,
        config: SSTDConfig | None = None,
        correlation: CorrelationConfig | None = None,
    ) -> None:
        self.graph = graph
        self.config = config or SSTDConfig()
        self.correlation = correlation or CorrelationConfig()

    def _blend_sequences(
        self,
        sequences: Mapping[str, np.ndarray],
    ) -> dict[str, np.ndarray]:
        """Mix each claim's ACS with its neighbors' (one synchronous pass).

        Missing (NaN) windows borrow fully from neighbors when any
        neighbor has evidence — correlation is most valuable exactly
        where a claim's own data is sparse.
        """
        blend = self.correlation.blend
        mixed: dict[str, np.ndarray] = {}
        for claim_id, own in sequences.items():
            neighbors = [
                (other, weight)
                for other, weight in self.graph.neighbors(claim_id)
                if other in sequences
            ]
            if not neighbors or blend == 0.0:
                mixed[claim_id] = own
                continue
            neighbor_sum = np.zeros_like(own)
            neighbor_weight = np.zeros_like(own)
            for other, weight in neighbors:
                series = sequences[other]
                present = ~np.isnan(series)
                neighbor_sum[present] += weight * series[present]
                neighbor_weight[present] += abs(weight)
            has_neighbor = neighbor_weight > 0
            neighbor_avg = np.zeros_like(own)
            neighbor_avg[has_neighbor] = (
                neighbor_sum[has_neighbor] / neighbor_weight[has_neighbor]
            )

            own_present = ~np.isnan(own)
            result = own.copy()
            both = own_present & has_neighbor
            result[both] = (1.0 - blend) * own[both] + blend * neighbor_avg[both]
            only_neighbor = ~own_present & has_neighbor
            result[only_neighbor] = neighbor_avg[only_neighbor]
            mixed[claim_id] = result
        return mixed

    def discover(
        self,
        reports: Sequence[Report],
        start: float | None = None,
        end: float | None = None,
    ) -> list[TruthEstimate]:
        """Correlated truth discovery over all claims in ``reports``."""
        engine = SSTD(self.config)
        grouped = engine.group_reports(reports)
        if not grouped:
            return []
        if start is None:
            start = min(r.timestamp for r in reports)
        if end is None:
            end = max(r.timestamp for r in reports)

        times: np.ndarray | None = None
        sequences: dict[str, np.ndarray] = {}
        for claim_id in sorted(grouped):
            grid, values = acs_sequence(
                grouped[claim_id], self.config.acs, start=start, end=end
            )
            times = grid
            sequences[claim_id] = values

        blended = self._blend_sequences(sequences)
        estimates: list[TruthEstimate] = []
        for claim_id in sorted(blended):
            model = ClaimTruthModel(claim_id, self.config)
            result = model.fit_decode(times, blended[claim_id])
            estimates.extend(result.estimates)
        return estimates
