"""SSTD: the HMM-based dynamic truth discovery engine (paper Section III).

For every claim ``Cu`` the engine

1. turns the claim's report stream into an Aggregated Contribution Score
   observation sequence ``F(u)`` on a regular time grid (Section III-B);
2. trains a 2-state Gaussian-emission HMM on ``F(u)`` with unsupervised
   Baum-Welch EM (Section III-C, Eq. (5));
3. decodes the most likely hidden truth sequence with Viterbi
   (Section III-D, Eq. (6)-(8)) — or with forward filtering when
   estimates must be emitted online before the sequence completes;
4. maps each hidden state to TRUE when its emission mean is positive:
   the contribution score of a report is signed by its attitude, so
   aggregated evidence above zero means the crowd (weighted by
   confidence and independence) asserts the claim.  When both states
   land on the same side of zero the claim's truth simply never flipped
   — the model is *not* forced to invent a transition.

Claims decompose independently (Section III-E) — the model never looks
at per-source reliability across claims, only at each claim's ACS —
which is exactly what makes SSTD parallelizable: each claim becomes one
Truth Discovery job in the distributed framework (:mod:`repro.system`).
"""

from __future__ import annotations

import collections
import dataclasses
import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.acs import ACSConfig, SlidingWindowACS, acs_sequence
from repro.core.types import Report, TruthEstimate, TruthValue
from repro.devtools import contracts
from repro.hmm.batch import BatchGaussianHMM, stack_ragged
from repro.hmm.gaussian import GaussianHMM
from repro.hmm.kernels import KERNEL_NAMES, kernel_gauge_value
from repro.hmm.utils import normalize_rows
from repro.obs import get_obs

__all__ = [
    "ClaimDecodeResult",
    "ClaimTruthModel",
    "SSTD",
    "SSTDConfig",
    "StreamingSSTD",
    "batch_fit_decode",
    "states_to_truth",
]


@dataclass(frozen=True, slots=True)
class SSTDConfig:
    """Configuration of the SSTD engine.

    Attributes:
        acs: Sliding-window / grid configuration for the observation
            sequence (window size ``sw`` of paper Eq. (4)).
        em_max_iter: Baum-Welch iteration cap.
        em_tol: Baum-Welch convergence tolerance on log-likelihood.
        min_observations: Non-empty grid points required before an HMM is
            trained; shorter sequences fall back to the ACS sign rule.
        sticky_prior: Initial self-transition probability of the truth
            chain.  Truth changes are rare relative to the observation
            grid, so a sticky prior (close to 1) regularizes EM away from
            rapid oscillation on noisy data.
        decode_online: When True, estimates use forward filtering (only
            past observations); when False, full Viterbi smoothing.
        seed: Seed for EM emission initialization.
        batch_claims: When True (default), :meth:`SSTD.discover` runs
            all claims through the batched multi-claim kernel
            (:class:`repro.hmm.batch.BatchGaussianHMM`) — one vectorized
            time recursion over the whole claim stack instead of a
            Python loop per claim.  Results are bit-identical either
            way; False keeps the per-claim loop (cheaper for a single
            short claim, and a useful differential-testing switch).
        kernel: Backend for the batched HMM time recursions — ``"numpy"``
            (reference einsum), ``"numba"`` (fused compiled loops; raises
            if numba is missing), ``"auto"`` (numba when importable and
            bit-verified, numpy otherwise), or ``None`` (the default) to
            defer to the ``REPRO_KERNEL`` environment variable (itself
            defaulting to ``auto``).  Backends are bit-identical, so this
            knob changes cost, never results — see
            :mod:`repro.hmm.kernels`.
    """

    acs: ACSConfig = field(default_factory=ACSConfig)
    em_max_iter: int = 30
    em_tol: float = 1e-3
    min_observations: int = 6
    sticky_prior: float = 0.98
    decode_online: bool = False
    seed: int = 7
    batch_claims: bool = True
    kernel: str | None = None

    def __post_init__(self) -> None:
        if self.kernel is not None and self.kernel not in KERNEL_NAMES:
            raise ValueError(
                f"kernel must be None or one of {KERNEL_NAMES}, "
                f"got {self.kernel!r}"
            )
        if self.em_max_iter < 1:
            raise ValueError("em_max_iter must be >= 1")
        if self.min_observations < 2:
            raise ValueError("min_observations must be >= 2")
        if not 0.5 <= self.sticky_prior < 1.0:
            raise ValueError(
                f"sticky_prior must be in [0.5, 1), got {self.sticky_prior}"
            )


@dataclass(frozen=True, slots=True)
class ClaimDecodeResult:
    """Decoded truth sequence of one claim."""

    claim_id: str
    times: np.ndarray
    values: tuple[TruthValue, ...]
    estimates: tuple[TruthEstimate, ...]
    used_hmm: bool
    #: The trained per-claim model (None on the fallback paths); carried
    #: so streaming callers can keep filtering incrementally after a
    #: batched fit.
    hmm: GaussianHMM | None = field(default=None, compare=False, repr=False)


def _sign_fallback(
    claim_id: str, times: np.ndarray, acs_values: np.ndarray
) -> ClaimDecodeResult:
    """Threshold decoding for claims too short/degenerate for an HMM.

    Positive aggregated evidence reads as TRUE.  Windows with no
    evidence (NaN or exactly zero ACS) keep the previous decision,
    defaulting to FALSE before any evidence arrives — the absence of
    confirmations is treated as the claim not (yet) being true.
    """
    values: list[TruthValue] = []
    current = TruthValue.FALSE
    for value in acs_values:
        if not math.isnan(value):
            if value > 0:
                current = TruthValue.TRUE
            elif value < 0:
                current = TruthValue.FALSE
        values.append(current)
    estimates = tuple(
        TruthEstimate(claim_id=claim_id, timestamp=float(t), value=v)
        for t, v in zip(times, values)
    )
    return ClaimDecodeResult(
        claim_id=claim_id,
        times=times,
        values=tuple(values),
        estimates=estimates,
        used_hmm=False,
    )


def states_to_truth(hmm: GaussianHMM, states: np.ndarray) -> list[TruthValue]:
    """Map decoded hidden states to truth values by emission-mean sign."""
    state_truth = [
        TruthValue.TRUE if mean > 0 else TruthValue.FALSE for mean in hmm.means
    ]
    return [state_truth[s] for s in states]


def batch_fit_decode(
    items: Sequence[tuple[str, np.ndarray, np.ndarray]],
    config: SSTDConfig,
) -> list[ClaimDecodeResult]:
    """Fit and decode many claims through one batched kernel invocation.

    ``items`` holds ``(claim_id, times, acs_values)`` triples; results
    come back in the same order.  Degenerate claims (too few informative
    windows, or no variation) take the sign-rule fallback exactly like
    the per-claim path; the rest are NaN-padded into one ragged stack
    and trained/decoded by :class:`repro.hmm.batch.BatchGaussianHMM` —
    the emission matrix is evaluated once per claim and reused for the
    decode and the posterior pass.  The kernel is row-deterministic, so
    each claim's result is bit-identical no matter how claims are
    grouped into batches (a shard of 4 and a serial N=1 call agree
    exactly); this is what keeps the sharded distributed backends and
    the serial engine interchangeable.
    """
    obs = get_obs()
    results: list[ClaimDecodeResult | None] = []
    hmm_items: list[int] = []
    for claim_id, times, acs_values in items:
        times = np.asarray(times, dtype=float)
        acs_values = np.asarray(acs_values, dtype=float)
        if times.size != acs_values.size:
            raise ValueError(
                f"times ({times.size}) and ACS ({acs_values.size}) differ"
            )
        if times.size == 0:
            results.append(
                ClaimDecodeResult(
                    claim_id=claim_id,
                    times=times,
                    values=(),
                    estimates=(),
                    used_hmm=False,
                )
            )
            continue
        informative = acs_values[~np.isnan(acs_values)]
        degenerate = (
            informative.size < config.min_observations
            or float(np.ptp(informative)) < 1e-9
        )
        if degenerate:
            if obs.enabled:
                obs.metrics.inc("sstd.claims_fallback")
            results.append(_sign_fallback(claim_id, times, acs_values))
            continue
        results.append(None)
        hmm_items.append(len(results) - 1)
    if not hmm_items:
        return results  # type: ignore[return-value]

    fit_start = obs.clock.now()
    sequences = [
        np.asarray(items[index][2], dtype=float) for index in hmm_items
    ]
    observations, lengths, order = stack_ragged(sequences)
    p = config.sticky_prior
    transmat = np.array([[p, 1.0 - p], [1.0 - p, p]])
    kernel = BatchGaussianHMM(
        len(sequences), n_states=2, transmat=transmat, kernel=config.kernel
    )
    if obs.enabled:
        obs.metrics.set_gauge(
            "hmm.kernel", kernel_gauge_value(kernel.kernel_name)
        )
    fit_results = kernel.fit(
        observations,
        lengths,
        max_iter=config.em_max_iter,
        tol=config.em_tol,
        seed=config.seed,
    )
    # One emission evaluation feeds the forward-backward pass, the
    # decode, and the posteriors — the per-claim path used to pay for it
    # three more times after EM.
    emissions = kernel.emission_probabilities(observations)
    alpha, scales, _ = kernel.forward(emissions, lengths)
    if config.decode_online:
        states_stack = kernel.filter_states(alpha)
    else:
        states_stack, _ = kernel.viterbi(emissions, lengths)
    beta = kernel.backward(emissions, scales, lengths)
    posteriors_stack = normalize_rows(alpha * beta)

    for row, source in enumerate(order):
        index = hmm_items[source]
        claim_id, times, acs_values = items[index]
        times = np.asarray(times, dtype=float)
        length = int(lengths[row])
        states = states_stack[row, :length]
        posteriors = posteriors_stack[row, :length]
        contracts.assert_probability_simplex(
            posteriors, f"state posteriors of claim {claim_id}"
        )
        hmm = kernel.extract(row)
        values = tuple(states_to_truth(hmm, states))
        estimates = tuple(
            TruthEstimate(
                claim_id=claim_id,
                timestamp=float(t),
                value=v,
                confidence=float(posteriors[k, states[k]]),
            )
            for k, (t, v) in enumerate(zip(times, values))
        )
        if obs.enabled:
            obs.metrics.inc("sstd.claims_hmm")
        results[index] = ClaimDecodeResult(
            claim_id=claim_id,
            times=times,
            values=values,
            estimates=estimates,
            used_hmm=True,
            hmm=hmm,
        )
    if obs.enabled:
        obs.tracer.record_span(
            "sstd.batch_fit",
            start=fit_start,
            end=obs.clock.now(),
            track="sstd",
            n_claims=len(items),
            n_hmm=len(hmm_items),
            n_observations=int(lengths.sum()),
            iterations=max(r.iterations for r in fit_results),
            kernel=kernel.kernel_name,
        )
    return results  # type: ignore[return-value]


class ClaimTruthModel:
    """Per-claim HMM wrapper: train on an ACS sequence, decode truth."""

    def __init__(self, claim_id: str, config: SSTDConfig) -> None:
        self.claim_id = claim_id
        self.config = config
        self.hmm: GaussianHMM | None = None

    def fit_decode(
        self, times: np.ndarray, acs_values: np.ndarray
    ) -> ClaimDecodeResult:
        """Train the claim HMM and decode its truth sequence.

        Falls back to the ACS sign rule when the sequence has too few
        informative windows or no variation for EM to separate states.
        Delegates to :func:`batch_fit_decode` with a batch of one, so a
        claim decoded alone is bit-identical to the same claim decoded
        inside any shard.
        """
        (result,) = batch_fit_decode(
            [(self.claim_id, times, acs_values)], self.config
        )
        if result.hmm is not None:
            self.hmm = result.hmm
        return result


class SSTD:
    """Batch API: run SSTD truth discovery over a set of reports.

    This is the single-process entry point; the distributed deployment
    (:class:`repro.system.sstd_system.DistributedSSTD`) runs one
    :class:`ClaimTruthModel` per claim as a Work Queue job but produces
    identical estimates.

    Example:
        >>> engine = SSTD()
        >>> estimates = engine.discover(reports)        # doctest: +SKIP
    """

    name = "SSTD"

    def __init__(self, config: SSTDConfig | None = None) -> None:
        self.config = config or SSTDConfig()
        #: Per-claim decode results of the most recent :meth:`discover`
        #: call (plus any later :meth:`discover_claim` calls); cleared at
        #: the start of each ``discover`` run so repeated runs on one
        #: engine do not accumulate stale claims without bound.
        self.results: dict[str, ClaimDecodeResult] = {}

    def group_reports(
        self, reports: Iterable[Report]
    ) -> dict[str, list[Report]]:
        """Partition reports by claim — the unit of distribution."""
        grouped: dict[str, list[Report]] = collections.defaultdict(list)
        for report in reports:
            grouped[report.claim_id].append(report)
        return dict(grouped)

    def discover_claim(
        self,
        claim_id: str,
        reports: Sequence[Report],
        start: float | None = None,
        end: float | None = None,
    ) -> ClaimDecodeResult:
        """Run the full SSTD pipeline for a single claim."""
        times, values = acs_sequence(
            reports, self.config.acs, start=start, end=end
        )
        model = ClaimTruthModel(claim_id, self.config)
        result = model.fit_decode(times, values)
        self.results[claim_id] = result
        return result

    def discover(
        self,
        reports: Iterable[Report],
        start: float | None = None,
        end: float | None = None,
    ) -> list[TruthEstimate]:
        """Run SSTD over all claims in ``reports``; returns all estimates.

        With ``config.batch_claims`` (the default) every claim's ACS
        sequence goes through one :func:`batch_fit_decode` call — the
        EM/decode time recursions run once over the whole claim stack.
        ``self.results`` is cleared first, so it always reflects exactly
        this run.
        """
        grouped = self.group_reports(reports)
        self.results.clear()
        estimates: list[TruthEstimate] = []
        if not self.config.batch_claims:
            for claim_id in sorted(grouped):
                result = self.discover_claim(
                    claim_id, grouped[claim_id], start=start, end=end
                )
                estimates.extend(result.estimates)
            return estimates
        items = []
        for claim_id in sorted(grouped):
            times, values = acs_sequence(
                grouped[claim_id], self.config.acs, start=start, end=end
            )
            items.append((claim_id, times, values))
        for result in batch_fit_decode(items, self.config):
            self.results[result.claim_id] = result
            estimates.extend(result.estimates)
        return estimates


class StreamingSSTD:
    """Streaming API: push reports, poll truth estimates as time advances.

    Maintains one sliding-window ACS accumulator per claim and an
    observation buffer; every ``retrain_every`` grid ticks the per-claim
    HMM is re-trained (warm-started from its current parameters, a few
    EM iterations) on the buffered sequence and the state re-decoded.
    Between retrains, each tick advances an *incremental* forward filter
    — one normalized alpha update — so the steady-state cost is O(1) per
    claim per tick and O(1) per pushed report.
    """

    name = "SSTD"

    def __init__(
        self,
        config: SSTDConfig | None = None,
        retrain_every: int = 20,
        max_buffer: int = 360,
        retrain_max_iter: int = 15,
    ) -> None:
        if retrain_every < 1:
            raise ValueError("retrain_every must be >= 1")
        if retrain_max_iter < 1:
            raise ValueError("retrain_max_iter must be >= 1")
        config = config or SSTDConfig()
        # Retrains run on every scheduled tick, so they use a tighter EM
        # budget than a one-shot batch fit; quantile re-initialization
        # converges in a handful of iterations on the bounded buffer.
        self.config = dataclasses.replace(
            config, em_max_iter=min(config.em_max_iter, retrain_max_iter)
        )
        self.retrain_every = retrain_every
        self.max_buffer = max_buffer
        self._windows: dict[str, SlidingWindowACS] = {}
        self._times: dict[str, list[float]] = collections.defaultdict(list)
        self._values: dict[str, list[float]] = collections.defaultdict(list)
        self._models: dict[str, ClaimTruthModel] = {}
        self._latest: dict[str, TruthEstimate] = {}
        self._ticks: dict[str, int] = collections.defaultdict(int)
        self._alphas: dict[str, np.ndarray] = {}

    @property
    def claim_ids(self) -> list[str]:
        return sorted(self._windows)

    def push(self, report: Report) -> None:
        """Ingest one report (timestamps non-decreasing per claim)."""
        window = self._windows.get(report.claim_id)
        if window is None:
            window = SlidingWindowACS(
                self.config.acs.window,
                self.config.acs.weights,
                normalize=self.config.acs.normalize,
                empty_is_missing=self.config.acs.empty_is_missing,
            )
            self._windows[report.claim_id] = window
            self._models[report.claim_id] = ClaimTruthModel(
                report.claim_id, self.config
            )
        window.push(report)

    def tick(self, now: float) -> list[TruthEstimate]:
        """Advance the observation grid to ``now`` for every claim.

        Appends one ACS observation per claim, retrains/decodes as
        scheduled, and returns the current truth estimate of every claim.
        """
        estimates: list[TruthEstimate] = []
        for claim_id in self.claim_ids:
            estimate = self._tick_claim(claim_id, now)
            if estimate is not None:
                estimates.append(estimate)
        return estimates

    def _tick_claim(self, claim_id: str, now: float) -> TruthEstimate | None:
        value = self._windows[claim_id].value_at(now)
        times = self._times[claim_id]
        values = self._values[claim_id]
        times.append(now)
        values.append(value)
        if len(times) > self.max_buffer:
            # Trim in blocks so the amortized cost per tick stays O(1).
            drop = max(1, self.max_buffer // 5)
            del times[:drop]
            del values[:drop]
        self._ticks[claim_id] += 1

        model = self._models[claim_id]
        retrain_due = self._ticks[claim_id] % self.retrain_every == 0
        informative = sum(1 for v in values if not math.isnan(v))
        enough = informative >= self.config.min_observations

        if retrain_due and enough:
            result = self._retrain(model, times, values)
            estimate = result.estimates[-1] if result.estimates else None
            if model.hmm is not None:
                # Re-seed the incremental filter from the fresh fit.
                alpha, _, _ = model.hmm._forward(
                    model.hmm._emission_probabilities(np.asarray(values))
                )
                self._alphas[claim_id] = alpha[-1]
        elif model.hmm is not None:
            alpha = self._advance_filter(claim_id, model.hmm, value)
            state = int(np.argmax(alpha))
            truth = states_to_truth(model.hmm, np.array([state]))[0]
            estimate = TruthEstimate(
                claim_id=claim_id, timestamp=now, value=truth
            )
        else:
            # Cold start: sign rule on the newest informative ACS value.
            previous = self._latest.get(claim_id)
            if not math.isnan(value):
                truth = TruthValue.TRUE if value > 0 else TruthValue.FALSE
            elif previous is not None:
                truth = previous.value
            else:
                truth = TruthValue.FALSE
            estimate = TruthEstimate(
                claim_id=claim_id, timestamp=now, value=truth
            )
        if estimate is not None:
            self._latest[claim_id] = estimate
        return estimate

    def _retrain(
        self, model: ClaimTruthModel, times: list[float], values: list[float]
    ) -> ClaimDecodeResult:
        """Refit the claim HMM on the (bounded) buffer and re-decode.

        The fit re-initializes emission parameters from the buffer's
        quantiles: a stale model after a truth transition would otherwise
        take many EM rounds to drag its means across zero.
        """
        return model.fit_decode(np.asarray(times), np.asarray(values))

    def _advance_filter(
        self, claim_id: str, hmm: GaussianHMM, observation: float
    ) -> np.ndarray:
        """One normalized forward-filter step (O(1) per tick)."""
        alpha = self._alphas.get(claim_id)
        if alpha is None:
            alpha = hmm.startprob.copy()
        emission = hmm._emission_probabilities(
            np.asarray([observation])
        )[0]
        alpha = (alpha @ hmm.transmat) * emission
        total = alpha.sum()
        if total <= 0:
            alpha = np.full(hmm.n_states, 1.0 / hmm.n_states)
        else:
            alpha = alpha / total
        contracts.assert_probability_simplex(
            alpha, f"forward filter of claim {claim_id}"
        )
        self._alphas[claim_id] = alpha
        return alpha

    def latest(self) -> Mapping[str, TruthEstimate]:
        """Most recent estimate per claim."""
        return dict(self._latest)
