"""Source reliability estimation and misinformation diagnostics.

Truth discovery's dual output (paper Section II: "the reliability of
the sources and the truthfulness of claims") — SSTD decodes truth
without per-source state, but once truth estimates exist, per-source
reliability follows by scoring each source's reports against them.
This module computes that posterior view and the derived diagnostics a
deployment needs: spreader detection, reliability distributions, and
agreement-weighted summaries that downstream applications (e.g. the
paper's critical-source-selection citation) can rank on.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.types import Attitude, Report, TruthEstimate, TruthValue

__all__ = [
    "ReliabilityEstimator",
    "SourceReliability",
    "evaluate_reliability_estimates",
    "rank_spreaders",
    "reliability_histogram",
]


@dataclass(frozen=True, slots=True)
class SourceReliability:
    """Posterior reliability of one source.

    Attributes:
        source_id: The source.
        n_scored: Reports that could be scored against an estimate.
        n_correct: Scored reports whose attitude matched the estimated
            truth at their timestamp.
        prior_weight: Pseudo-counts of the Beta prior used for the
            smoothed estimate.
    """

    source_id: str
    n_scored: int
    n_correct: int
    prior_weight: float = 2.0

    def __post_init__(self) -> None:
        if self.n_scored < 0 or self.n_correct < 0:
            raise ValueError("counts must be >= 0")
        if self.n_correct > self.n_scored:
            raise ValueError("n_correct cannot exceed n_scored")
        if self.prior_weight <= 0:
            raise ValueError("prior_weight must be > 0")

    @property
    def raw_accuracy(self) -> float:
        """Unsmoothed fraction of correct reports (0.5 when unscored)."""
        if self.n_scored == 0:
            return 0.5
        return self.n_correct / self.n_scored

    @property
    def reliability(self) -> float:
        """Beta-smoothed reliability: shrunk toward 0.5 on few reports."""
        alpha = self.n_correct + self.prior_weight / 2.0
        beta = (self.n_scored - self.n_correct) + self.prior_weight / 2.0
        return alpha / (alpha + beta)

    @property
    def is_likely_spreader(self) -> bool:
        """Whether the posterior says the source mostly contradicts truth."""
        return self.n_scored >= 3 and self.reliability < 0.35


class ReliabilityEstimator:
    """Scores sources against a set of truth estimates.

    The truth at a report's timestamp is taken from the nearest estimate
    at-or-before it (estimates are step functions of time); reports that
    precede every estimate of their claim are skipped.
    """

    def __init__(self, prior_weight: float = 2.0) -> None:
        if prior_weight <= 0:
            raise ValueError("prior_weight must be > 0")
        self.prior_weight = prior_weight

    def estimate(
        self,
        reports: Iterable[Report],
        estimates: Sequence[TruthEstimate],
    ) -> dict[str, SourceReliability]:
        """Per-source posterior reliabilities."""
        series: dict[str, list[TruthEstimate]] = collections.defaultdict(list)
        for estimate in estimates:
            series[estimate.claim_id].append(estimate)
        for claim_series in series.values():
            claim_series.sort(key=lambda e: e.timestamp)

        scored: dict[str, list[int]] = collections.defaultdict(list)
        for report in reports:
            if report.attitude is Attitude.NEUTRAL:
                continue
            claim_series = series.get(report.claim_id)
            if not claim_series:
                continue
            truth = self._truth_at(claim_series, report.timestamp)
            if truth is None:
                continue
            says_true = report.attitude is Attitude.AGREE
            scored[report.source_id].append(
                1 if says_true == (truth is TruthValue.TRUE) else 0
            )

        return {
            source_id: SourceReliability(
                source_id=source_id,
                n_scored=len(marks),
                n_correct=sum(marks),
                prior_weight=self.prior_weight,
            )
            for source_id, marks in scored.items()
        }

    @staticmethod
    def _truth_at(
        claim_series: Sequence[TruthEstimate], timestamp: float
    ) -> TruthValue | None:
        """Estimated truth at ``timestamp`` (None before first estimate)."""
        value: TruthValue | None = None
        for estimate in claim_series:
            if estimate.timestamp > timestamp:
                break
            value = estimate.value
        if value is None and claim_series:
            # Report precedes all estimates; the first estimate is the
            # best available proxy when it is close in time.
            first = claim_series[0]
            if first.timestamp - timestamp <= first.timestamp * 0.1 + 1.0:
                return first.value
        return value


def rank_spreaders(
    reliabilities: Mapping[str, SourceReliability], top_k: int = 10
) -> list[SourceReliability]:
    """Most-likely misinformation spreaders, worst first."""
    flagged = [r for r in reliabilities.values() if r.is_likely_spreader]
    flagged.sort(key=lambda r: (r.reliability, -r.n_scored))
    return flagged[:top_k]


def reliability_histogram(
    reliabilities: Mapping[str, SourceReliability],
    n_bins: int = 10,
) -> list[tuple[float, float, int]]:
    """(bin_low, bin_high, count) histogram of posterior reliabilities."""
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    counts = [0] * n_bins
    for record in reliabilities.values():
        index = min(int(record.reliability * n_bins), n_bins - 1)
        counts[index] += 1
    return [
        (k / n_bins, (k + 1) / n_bins, counts[k]) for k in range(n_bins)
    ]


def evaluate_reliability_estimates(
    reliabilities: Mapping[str, SourceReliability],
    true_reliabilities: Mapping[str, float],
    min_scored: int = 5,
) -> float:
    """Mean absolute error vs ground-truth reliabilities (generator traces).

    Only sources with at least ``min_scored`` scored reports count —
    one-report sources carry no signal, which is the paper's data
    sparsity point.
    """
    errors = []
    for source_id, record in reliabilities.items():
        if record.n_scored < min_scored:
            continue
        truth = true_reliabilities.get(source_id)
        if truth is None:
            continue
        errors.append(abs(record.raw_accuracy - truth))
    if not errors:
        return 0.0
    return sum(errors) / len(errors)
