"""HMM with categorical (discrete symbol) emissions."""

from __future__ import annotations

import numpy as np

from repro.devtools import contracts
from repro.hmm.base import BaseHMM
from repro.hmm.utils import PROB_FLOOR, normalize_rows

__all__ = ["DiscreteHMM"]


class DiscreteHMM(BaseHMM):
    """HMM whose observations are symbols in ``{0 .. n_symbols - 1}``.

    The emission matrix ``emissionprob`` has shape
    ``(n_states, n_symbols)`` with rows summing to one.
    """

    def __init__(
        self,
        n_states: int,
        n_symbols: int,
        startprob: np.ndarray | None = None,
        transmat: np.ndarray | None = None,
        emissionprob: np.ndarray | None = None,
    ) -> None:
        super().__init__(n_states, startprob=startprob, transmat=transmat)
        if n_symbols < 1:
            raise ValueError(f"n_symbols must be >= 1, got {n_symbols}")
        self.n_symbols = n_symbols
        if emissionprob is None:
            emissionprob = np.full((n_states, n_symbols), 1.0 / n_symbols)
        emissionprob = np.asarray(emissionprob, dtype=float)
        if emissionprob.shape != (n_states, n_symbols):
            raise ValueError(
                f"emissionprob must have shape {(n_states, n_symbols)}, "
                f"got {emissionprob.shape}"
            )
        if (emissionprob < 0).any() or not np.allclose(
            emissionprob.sum(axis=1), 1.0, atol=1e-6
        ):
            raise ValueError("emissionprob rows must be distributions")
        self.emissionprob = emissionprob

    def _validate_observations(self, observations: np.ndarray) -> np.ndarray:
        observations = np.asarray(observations, dtype=int)
        observations = super()._validate_observations(observations)
        if observations.min() < 0 or observations.max() >= self.n_symbols:
            raise ValueError(
                f"symbols must be in [0, {self.n_symbols}), "
                f"got range [{observations.min()}, {observations.max()}]"
            )
        return observations

    def _emission_probabilities(self, observations: np.ndarray) -> np.ndarray:
        return self.emissionprob[:, observations].T

    def _update_emissions(
        self, observations: np.ndarray, gamma: np.ndarray
    ) -> None:
        counts = np.zeros((self.n_states, self.n_symbols))
        for symbol in range(self.n_symbols):
            mask = observations == symbol
            if mask.any():
                counts[:, symbol] = gamma[mask].sum(axis=0)
        self.emissionprob = normalize_rows(counts + PROB_FLOOR)
        contracts.assert_stochastic_matrix(
            self.emissionprob, "DiscreteHMM emissionprob"
        )

    def _init_emissions(
        self, observations: np.ndarray, rng: np.random.Generator
    ) -> None:
        # Start from the empirical symbol distribution with per-state
        # random perturbation so EM can break state symmetry.
        empirical = np.bincount(observations, minlength=self.n_symbols).astype(float)
        empirical = (empirical + 1.0) / (empirical.sum() + self.n_symbols)
        noise = rng.uniform(0.5, 1.5, size=(self.n_states, self.n_symbols))
        self.emissionprob = normalize_rows(empirical[None, :] * noise)

    def _sample_emissions(
        self, states: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return np.array(
            [rng.choice(self.n_symbols, p=self.emissionprob[s]) for s in states]
        )
