"""HMM with univariate Gaussian emissions and missing-data support.

This is the emission model SSTD uses for truth decoding: the observation
at each grid point is a real-valued Aggregated Contribution Score, and
each hidden truth value (TRUE / FALSE) emits ACS values around a
state-specific mean (positive when the claim is true and sources confirm
it, negative when reliable sources debunk it).

Sliding windows with *no* reports carry no evidence either way; such
grid points are encoded as ``NaN`` and treated as missing: their
emission likelihood is 1 for every state, so decoding bridges them using
only the (sticky) transition structure.  This matters a lot on sparse
social sensing data where most windows of a long-tail claim are empty.
"""

from __future__ import annotations

import numpy as np

from repro.devtools import contracts
from repro.hmm.base import BaseHMM
from repro.hmm.utils import normal_densities

__all__ = ["GaussianHMM", "MIN_VARIANCE"]

#: Variance floor preventing EM from collapsing a state onto one point.
MIN_VARIANCE = 1e-3


class GaussianHMM(BaseHMM):
    """HMM whose per-state emission is ``Normal(means[i], variances[i])``."""

    def __init__(
        self,
        n_states: int,
        startprob: np.ndarray | None = None,
        transmat: np.ndarray | None = None,
        means: np.ndarray | None = None,
        variances: np.ndarray | None = None,
    ) -> None:
        super().__init__(n_states, startprob=startprob, transmat=transmat)
        if means is None:
            means = np.zeros(n_states)
        if variances is None:
            variances = np.ones(n_states)
        means = np.asarray(means, dtype=float)
        variances = np.asarray(variances, dtype=float)
        if means.shape != (n_states,) or variances.shape != (n_states,):
            raise ValueError(
                f"means and variances must have shape ({n_states},), got "
                f"{means.shape} and {variances.shape}"
            )
        if (variances <= 0).any():
            raise ValueError("variances must be strictly positive")
        self.means = means
        self.variances = variances

    def _validate_observations(self, observations: np.ndarray) -> np.ndarray:
        observations = np.asarray(observations, dtype=float)
        observations = super()._validate_observations(observations)
        if observations.ndim != 1:
            raise ValueError(
                f"observations must be 1-D, got shape {observations.shape}"
            )
        if np.isinf(observations).any():
            raise ValueError("observations must not be infinite")
        return observations

    def _emission_probabilities(self, observations: np.ndarray) -> np.ndarray:
        # densities[t, i] = N(obs[t]; mean_i, var_i); missing rows (NaN
        # observations) get likelihood 1 for every state.
        missing = np.isnan(observations)
        filled = np.where(missing, 0.0, observations)
        densities = normal_densities(filled, self.means, self.variances)
        densities[missing] = 1.0
        return densities

    def _update_emissions(
        self, observations: np.ndarray, gamma: np.ndarray
    ) -> None:
        # Missing observations contribute nothing to the emission M-step.
        present = ~np.isnan(observations)
        gamma = gamma[present]
        observations = observations[present]
        if observations.size == 0:
            return
        weights = gamma.sum(axis=0)
        safe = np.where(weights > 0, weights, 1.0)
        means = (gamma * observations[:, None]).sum(axis=0) / safe
        diff = observations[:, None] - means[None, :]
        variances = (gamma * diff**2).sum(axis=0) / safe
        # States with no posterior mass keep their previous parameters.
        keep = weights <= 0
        means[keep] = self.means[keep]
        variances[keep] = self.variances[keep]
        self.means = means
        self.variances = np.maximum(variances, MIN_VARIANCE)
        contracts.assert_finite(self.means, "GaussianHMM means")
        contracts.assert_finite(self.variances, "GaussianHMM variances")

    def _init_emissions(
        self, observations: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Spread initial means over the observation quantiles.

        Quantile initialization is deterministic given the data and keeps
        the states ordered by mean, which downstream code exploits when
        mapping states to truth values; a small jitter breaks ties on
        degenerate (constant) sequences.
        """
        observations = observations[~np.isnan(observations)]
        if observations.size == 0:
            raise ValueError("cannot initialize from all-missing observations")
        quantiles = np.linspace(0.0, 1.0, self.n_states + 2)[1:-1]
        self.means = np.quantile(observations, quantiles)
        spread = float(np.var(observations))
        if spread < MIN_VARIANCE:
            spread = 1.0
            self.means = self.means + rng.normal(0.0, 0.1, size=self.n_states)
        self.variances = np.full(self.n_states, max(spread, MIN_VARIANCE))

    def _sample_emissions(
        self, states: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return rng.normal(self.means[states], np.sqrt(self.variances[states]))

    def state_order_by_mean(self) -> np.ndarray:
        """State indices sorted by emission mean, ascending.

        SSTD maps the state with the highest ACS mean to TRUE: a true
        claim accumulates positive contribution scores, so the
        high-mean state corresponds to the claim being true.
        """
        return np.argsort(self.means)
