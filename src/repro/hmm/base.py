"""Hidden Markov Model core: scaled forward-backward, Viterbi, Baum-Welch.

This is the inference substrate for SSTD's dynamic truth discovery (paper
Section III).  The implementation follows Rabiner's classic tutorial:

- the *forward-backward* recursions use per-step scaling so sequences of
  tens of thousands of observations do not underflow;
- *Viterbi* runs in log space (Eq. (7)-(8) of the paper);
- *Baum-Welch* is the unsupervised EM procedure the paper cites (Baum
  1970) for Eq. (5); emission updates are delegated to subclasses so the
  same loop trains discrete and Gaussian emission models.

Subclasses implement :meth:`_emission_probabilities` (B matrix evaluated
on a concrete observation sequence) and :meth:`_update_emissions` (M-step
for the emission parameters).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.devtools import contracts
from repro.obs import get_obs
from repro.hmm.utils import (
    PROB_FLOOR,
    log_mask_zero,
    normalize_rows,
    normalize_vector,
    validate_distribution,
    validate_stochastic_matrix,
)

__all__ = ["BaseHMM", "FitResult", "ITERATION_BUCKETS"]

#: Histogram bounds for Baum-Welch iteration counts (EM converges in a
#: handful of iterations on clean data, tens on hard sequences).
ITERATION_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)


@dataclass(frozen=True, slots=True)
class FitResult:
    """Outcome of a Baum-Welch run."""

    log_likelihoods: tuple[float, ...]
    converged: bool
    iterations: int

    @property
    def final_log_likelihood(self) -> float:
        return self.log_likelihoods[-1]

    @property
    def convergence_reason(self) -> str:
        """``"tol"`` (log-likelihood plateaued) or ``"max_iter"``."""
        return "tol" if self.converged else "max_iter"


def _record_fit(result: FitResult) -> None:
    """Report one Baum-Welch run to the ambient recorder (if enabled)."""
    obs = get_obs()
    if not obs.enabled:
        return
    obs.metrics.inc("hmm.fits")
    obs.metrics.inc(
        "hmm.converged" if result.converged else "hmm.hit_max_iter"
    )
    obs.metrics.observe(
        "hmm.bw.iterations",
        float(result.iterations),
        bounds=ITERATION_BUCKETS,
    )
    obs.tracer.instant(
        "hmm.fit",
        track="hmm",
        iterations=result.iterations,
        reason=result.convergence_reason,
        log_likelihood=(
            round(result.final_log_likelihood, 6)
            if result.log_likelihoods
            else 0.0
        ),
    )


class BaseHMM(abc.ABC):
    """Abstract HMM over ``n_states`` hidden states.

    Parameters (paper Section III-C): transition matrix ``A``
    (``transmat``), initial distribution ``pi`` (``startprob``), and the
    emission model ``B`` supplied by the subclass.
    """

    def __init__(
        self,
        n_states: int,
        startprob: np.ndarray | None = None,
        transmat: np.ndarray | None = None,
    ) -> None:
        if n_states < 1:
            raise ValueError(f"n_states must be >= 1, got {n_states}")
        self.n_states = n_states
        if startprob is None:
            startprob = np.full(n_states, 1.0 / n_states)
        if transmat is None:
            transmat = np.full((n_states, n_states), 1.0 / n_states)
        self.startprob = validate_distribution(startprob, "startprob")
        self.transmat = validate_stochastic_matrix(transmat, "transmat")
        if self.startprob.size != n_states or self.transmat.shape[0] != n_states:
            raise ValueError("parameter shapes do not match n_states")

    # ------------------------------------------------------------------
    # Emission interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _emission_probabilities(self, observations: np.ndarray) -> np.ndarray:
        """Emission likelihoods, shape ``(T, n_states)``.

        Entry ``[t, i]`` is ``P(obs[t] | state i)`` — the ``b_{u,i,t}`` of
        the paper.  May contain densities > 1 for continuous emissions.
        """

    @abc.abstractmethod
    def _update_emissions(
        self, observations: np.ndarray, gamma: np.ndarray
    ) -> None:
        """M-step for the emission parameters given state posteriors."""

    @abc.abstractmethod
    def _init_emissions(
        self, observations: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Initialize emission parameters from data before EM."""

    def _validate_observations(self, observations: np.ndarray) -> np.ndarray:
        observations = np.asarray(observations)
        if observations.shape[0] == 0:
            raise ValueError("observation sequence is empty")
        return observations

    def _check_chain_contracts(self, where: str) -> None:
        """Runtime contracts on the Markov-chain parameters.

        Called at the E-step entry and after the final M-step of
        Baum-Welch so a corrupted ``startprob`` / ``transmat`` fails at
        the update that broke it (no-op unless contracts are enabled).
        """
        contracts.assert_probability_simplex(
            self.startprob, f"startprob ({where})"
        )
        contracts.assert_stochastic_matrix(self.transmat, f"transmat ({where})")

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _forward(
        self, emissions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Scaled forward pass.

        Returns ``(alpha, scales, log_likelihood)`` where ``alpha[t]`` is
        the scaled forward vector and ``scales[t]`` the per-step
        normalizer; ``sum(log(scales))`` is the sequence log-likelihood.
        """
        length = emissions.shape[0]
        alpha = np.empty((length, self.n_states))
        scales = np.empty(length)
        alpha[0] = self.startprob * emissions[0]
        scales[0] = alpha[0].sum()
        if scales[0] == 0:
            # Impossible first observation under the model; floor so the
            # recursion can continue (log-likelihood becomes very small).
            alpha[0] = np.full(self.n_states, 1.0 / self.n_states)
            scales[0] = PROB_FLOOR
        else:
            alpha[0] /= scales[0]
        for t in range(1, length):
            alpha[t] = (alpha[t - 1] @ self.transmat) * emissions[t]
            scales[t] = alpha[t].sum()
            if scales[t] == 0:
                alpha[t] = np.full(self.n_states, 1.0 / self.n_states)
                scales[t] = PROB_FLOOR
            else:
                alpha[t] /= scales[t]
        return alpha, scales, float(log_mask_zero(scales).sum())

    def _backward(self, emissions: np.ndarray, scales: np.ndarray) -> np.ndarray:
        """Scaled backward pass matching :meth:`_forward`'s scaling."""
        length = emissions.shape[0]
        beta = np.empty((length, self.n_states))
        beta[-1] = 1.0
        for t in range(length - 2, -1, -1):
            beta[t] = self.transmat @ (emissions[t + 1] * beta[t + 1])
            beta[t] /= scales[t + 1]
        return beta

    def log_likelihood(
        self,
        observations: np.ndarray,
        emissions: np.ndarray | None = None,
    ) -> float:
        """Log P(observations | model).

        ``emissions`` lets a caller that already evaluated the emission
        matrix (one ``_emission_probabilities`` call feeds decode,
        posteriors, and scoring) pass it in instead of recomputing it.
        """
        observations = self._validate_observations(observations)
        if emissions is None:
            emissions = self._emission_probabilities(observations)
        _, _, logprob = self._forward(emissions)
        return logprob

    def state_posteriors(
        self,
        observations: np.ndarray,
        emissions: np.ndarray | None = None,
    ) -> np.ndarray:
        """Posterior P(state_t = i | observations), shape ``(T, n)``."""
        observations = self._validate_observations(observations)
        if emissions is None:
            emissions = self._emission_probabilities(observations)
        alpha, scales, _ = self._forward(emissions)
        beta = self._backward(emissions, scales)
        gamma = alpha * beta
        return normalize_rows(gamma)

    def decode(
        self,
        observations: np.ndarray,
        emissions: np.ndarray | None = None,
    ) -> tuple[np.ndarray, float]:
        """Viterbi decoding (paper Eq. (6)-(8)).

        Returns ``(states, log_joint)``: the most probable hidden-state
        sequence and its joint log-probability with the observations.
        """
        observations = self._validate_observations(observations)
        if emissions is None:
            emissions = self._emission_probabilities(observations)
        log_emissions = log_mask_zero(np.maximum(emissions, 0.0))
        log_trans = log_mask_zero(self.transmat)
        log_start = log_mask_zero(self.startprob)
        length = emissions.shape[0]

        delta = np.empty((length, self.n_states))
        backpointer = np.zeros((length, self.n_states), dtype=int)
        delta[0] = log_start + log_emissions[0]
        for t in range(1, length):
            # candidates[i, j] = delta[t-1, i] + log A[i, j]
            candidates = delta[t - 1][:, None] + log_trans
            backpointer[t] = np.argmax(candidates, axis=0)
            delta[t] = candidates[backpointer[t], np.arange(self.n_states)]
            delta[t] += log_emissions[t]

        states = np.empty(length, dtype=int)
        states[-1] = int(np.argmax(delta[-1]))
        for t in range(length - 2, -1, -1):
            states[t] = backpointer[t + 1, states[t + 1]]
        return states, float(delta[-1, states[-1]])

    def filter_states(
        self,
        observations: np.ndarray,
        emissions: np.ndarray | None = None,
    ) -> np.ndarray:
        """Online (filtering) state estimates: argmax_i alpha_t(i).

        Unlike Viterbi this uses only observations up to ``t`` for the
        estimate at ``t``, which is what a streaming deployment reports
        before the sequence is complete.
        """
        observations = self._validate_observations(observations)
        if emissions is None:
            emissions = self._emission_probabilities(observations)
        alpha, _, _ = self._forward(emissions)
        return np.argmax(alpha, axis=1)

    # ------------------------------------------------------------------
    # Training (Baum-Welch)
    # ------------------------------------------------------------------
    def fit(
        self,
        observations: np.ndarray,
        max_iter: int = 50,
        tol: float = 1e-4,
        rng: np.random.Generator | int | None = None,
        init: bool = True,
    ) -> FitResult:
        """Unsupervised EM training on a single observation sequence.

        Args:
            observations: The sequence ``F(u)`` (paper Eq. (5)).
            max_iter: Maximum EM iterations.
            tol: Convergence threshold on the log-likelihood improvement.
            rng: Seed or generator for emission initialization.
            init: When False, EM starts from the current parameters
                (useful for incremental re-training on streams).

        Returns:
            A :class:`FitResult` with the log-likelihood trajectory.
        """
        observations = self._validate_observations(observations)
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        if init:
            self._init_emissions(observations, rng)

        history: list[float] = []
        converged = False
        for _ in range(max_iter):
            self._check_chain_contracts("Baum-Welch E-step")
            emissions = self._emission_probabilities(observations)
            alpha, scales, logprob = self._forward(emissions)
            beta = self._backward(emissions, scales)
            gamma = normalize_rows(alpha * beta)

            # xi[t, i, j] proportional to alpha_t(i) A_ij b_j(o_{t+1}) beta_{t+1}(j)
            length = emissions.shape[0]
            if length > 1:
                xi_num = (
                    alpha[:-1, :, None]
                    * self.transmat[None, :, :]
                    * (emissions[1:] * beta[1:])[:, None, :]
                )
                xi_sum = xi_num.sum(axis=0)
            else:
                xi_sum = np.zeros((self.n_states, self.n_states))

            # M-step
            self.startprob = normalize_vector(gamma[0] + PROB_FLOOR)
            self.transmat = normalize_rows(xi_sum + PROB_FLOOR)
            self._update_emissions(observations, gamma)

            history.append(logprob)
            if len(history) > 1 and abs(history[-1] - history[-2]) < tol:
                converged = True
                break
        self._check_chain_contracts("Baum-Welch M-step")
        result = FitResult(
            log_likelihoods=tuple(history),
            converged=converged,
            iterations=len(history),
        )
        _record_fit(result)
        return result

    def fit_sequences(
        self,
        sequences: list[np.ndarray],
        max_iter: int = 50,
        tol: float = 1e-4,
        rng: np.random.Generator | int | None = None,
        init: bool = True,
    ) -> FitResult:
        """Baum-Welch over multiple independent observation sequences.

        The E-step statistics (initial-state counts, transition counts,
        emission sufficient statistics) accumulate across sequences;
        the M-step is shared.  Used to train one truth-dynamics model
        across many claims of the same event class.
        """
        if not sequences:
            raise ValueError("need at least one sequence")
        validated = [self._validate_observations(obs) for obs in sequences]
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        if init:
            self._init_emissions(np.concatenate(validated), rng)

        history: list[float] = []
        converged = False
        for _ in range(max_iter):
            self._check_chain_contracts("Baum-Welch E-step")
            start_acc = np.zeros(self.n_states)
            xi_acc = np.zeros((self.n_states, self.n_states))
            gammas: list[np.ndarray] = []
            total_logprob = 0.0
            for observations in validated:
                emissions = self._emission_probabilities(observations)
                alpha, scales, logprob = self._forward(emissions)
                beta = self._backward(emissions, scales)
                gamma = normalize_rows(alpha * beta)
                total_logprob += logprob
                start_acc += gamma[0]
                if emissions.shape[0] > 1:
                    xi_acc += (
                        alpha[:-1, :, None]
                        * self.transmat[None, :, :]
                        * (emissions[1:] * beta[1:])[:, None, :]
                    ).sum(axis=0)
                gammas.append(gamma)

            self.startprob = normalize_vector(start_acc + PROB_FLOOR)
            self.transmat = normalize_rows(xi_acc + PROB_FLOOR)
            # Emission M-step over the concatenated statistics: rows are
            # independent in both emission families, so concatenation is
            # exact.
            self._update_emissions(
                np.concatenate(validated), np.concatenate(gammas, axis=0)
            )

            history.append(total_logprob)
            if len(history) > 1 and abs(history[-1] - history[-2]) < tol:
                converged = True
                break
        self._check_chain_contracts("Baum-Welch M-step")
        result = FitResult(
            log_likelihoods=tuple(history),
            converged=converged,
            iterations=len(history),
        )
        _record_fit(result)
        return result

    def sample(
        self, length: int, rng: np.random.Generator | int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Generate ``(states, observations)`` from the model."""
        if length < 1:
            raise ValueError(f"length must be >= 1, got {length}")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        states = np.empty(length, dtype=int)
        states[0] = rng.choice(self.n_states, p=self.startprob)
        for t in range(1, length):
            states[t] = rng.choice(self.n_states, p=self.transmat[states[t - 1]])
        observations = self._sample_emissions(states, rng)
        return states, observations

    @abc.abstractmethod
    def _sample_emissions(
        self, states: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw one observation per hidden state in ``states``."""
