"""Numeric helpers shared by the HMM implementations."""

from __future__ import annotations

import numpy as np

#: Floor used to keep probabilities strictly positive during EM.
PROB_FLOOR = 1e-12


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Normalize each row of ``matrix`` to sum to 1.

    Rows that sum to zero become uniform distributions (this happens in
    Baum-Welch when a state receives no expected visits).
    """
    matrix = np.asarray(matrix, dtype=float)
    sums = matrix.sum(axis=-1, keepdims=True)
    n = matrix.shape[-1]
    out = np.where(sums > 0, matrix / np.where(sums > 0, sums, 1.0), 1.0 / n)
    return out


def normalize_vector(vector: np.ndarray) -> np.ndarray:
    """Normalize a vector to sum to 1; zero vectors become uniform."""
    vector = np.asarray(vector, dtype=float)
    total = vector.sum()
    if total > 0:
        return vector / total
    return np.full(vector.shape, 1.0 / vector.size)


def validate_stochastic_matrix(matrix: np.ndarray, name: str) -> np.ndarray:
    """Check that ``matrix`` is square, non-negative and row-stochastic."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"{name} must be a square matrix, got {matrix.shape}")
    if (matrix < 0).any():
        raise ValueError(f"{name} must be non-negative")
    if not np.allclose(matrix.sum(axis=1), 1.0, atol=1e-6):
        raise ValueError(f"{name} rows must sum to 1, got {matrix.sum(axis=1)}")
    return matrix


def validate_distribution(vector: np.ndarray, name: str) -> np.ndarray:
    """Check that ``vector`` is a probability distribution."""
    vector = np.asarray(vector, dtype=float)
    if vector.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {vector.shape}")
    if (vector < 0).any():
        raise ValueError(f"{name} must be non-negative")
    if not np.isclose(vector.sum(), 1.0, atol=1e-6):
        raise ValueError(f"{name} must sum to 1, got {vector.sum()}")
    return vector


def log_mask_zero(values: np.ndarray) -> np.ndarray:
    """Elementwise log with ``log(0) = -inf`` and no warnings."""
    values = np.asarray(values, dtype=float)
    with np.errstate(divide="ignore"):
        return np.log(values)
