"""Numeric helpers shared by the HMM implementations.

This module is the *sanctioned* home for raw log/exp math on
probability arrays — lint rule SSTD005 forbids it everywhere else in
``repro.hmm`` / ``repro.core`` so that zero-handling, masking and
scaling decisions live in one audited place.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "LOG_2PI",
    "PROB_FLOOR",
    "batch_normal_densities",
    "log_mask_zero",
    "masked_row_sums",
    "normal_densities",
    "normal_log_densities",
    "normalize_rows",
    "normalize_vector",
    "validate_distribution",
    "validate_stochastic_matrix",
]

#: Floor used to keep probabilities strictly positive during EM.
PROB_FLOOR = 1e-12

#: log(2 pi), the normalization constant of the Gaussian log-density.
LOG_2PI = math.log(2.0 * math.pi)


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Normalize each row of ``matrix`` to sum to 1.

    Rows that sum to zero become uniform distributions (this happens in
    Baum-Welch when a state receives no expected visits).
    """
    matrix = np.asarray(matrix, dtype=float)
    sums = matrix.sum(axis=-1, keepdims=True)
    n = matrix.shape[-1]
    out = np.where(sums > 0, matrix / np.where(sums > 0, sums, 1.0), 1.0 / n)
    return out


def masked_row_sums(matrix: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Per-row sums over each row's first ``lengths[row]`` entries.

    Vectorized replacement for the per-row Python loop
    ``[matrix[row, :lengths[row]].sum() for row in range(n)]`` with a
    **bit-identity guarantee**: rows are grouped by equal length and
    each group reduced with one ``block[:, :length].sum(axis=1)`` call.
    numpy's pairwise summation partitions additions by the *reduction
    length*, so summing a row's exact prefix reproduces the per-row
    call's accumulation order (and therefore its bits) — unlike a
    zero-padded full-row masked sum, whose pairwise tree depends on the
    padded width and silently reorders the real additions.  Because
    each row's result depends only on its own ``lengths[row]`` entries,
    the value is also independent of batch composition (the shard
    determinism contract of :mod:`repro.hmm.batch`).

    Rows may appear in any length order; zero-length rows sum to 0.
    """
    matrix = np.asarray(matrix, dtype=float)
    lengths = np.asarray(lengths, dtype=int)
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
    if lengths.shape != (matrix.shape[0],):
        raise ValueError(
            f"lengths must have shape ({matrix.shape[0]},), "
            f"got {lengths.shape}"
        )
    if (lengths < 0).any() or (lengths > matrix.shape[1]).any():
        raise ValueError("lengths must be in [0, T]")
    sums = np.zeros(matrix.shape[0])
    for length in np.unique(lengths):
        if length == 0:
            continue
        rows = lengths == length
        sums[rows] = matrix[rows, : int(length)].sum(axis=1)
    return sums


def normalize_vector(vector: np.ndarray) -> np.ndarray:
    """Normalize a vector to sum to 1; zero vectors become uniform."""
    vector = np.asarray(vector, dtype=float)
    total = vector.sum()
    if total > 0:
        return vector / total
    return np.full(vector.shape, 1.0 / vector.size)


def validate_stochastic_matrix(matrix: np.ndarray, name: str) -> np.ndarray:
    """Check that ``matrix`` is square, non-negative and row-stochastic."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"{name} must be a square matrix, got {matrix.shape}")
    if (matrix < 0).any():
        raise ValueError(f"{name} must be non-negative")
    if not np.allclose(matrix.sum(axis=1), 1.0, atol=1e-6):
        raise ValueError(f"{name} rows must sum to 1, got {matrix.sum(axis=1)}")
    return matrix


def validate_distribution(vector: np.ndarray, name: str) -> np.ndarray:
    """Check that ``vector`` is a probability distribution."""
    vector = np.asarray(vector, dtype=float)
    if vector.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {vector.shape}")
    if (vector < 0).any():
        raise ValueError(f"{name} must be non-negative")
    if not np.isclose(vector.sum(), 1.0, atol=1e-6):
        raise ValueError(f"{name} must sum to 1, got {vector.sum()}")
    return vector


def log_mask_zero(values: np.ndarray) -> np.ndarray:
    """Elementwise log with ``log(0) = -inf`` and no warnings.

    Negative inputs are a bug in the caller (probabilities cannot go
    below zero) and raise ``ValueError`` instead of silently producing
    NaN.
    """
    values = np.asarray(values, dtype=float)
    if (values < 0).any():
        raise ValueError(
            f"log_mask_zero expects non-negative input, got min {values.min()!r}"
        )
    with np.errstate(divide="ignore"):
        return np.log(values)


def normal_log_densities(
    values: np.ndarray, means: np.ndarray, variances: np.ndarray
) -> np.ndarray:
    """Gaussian log-density matrix ``L[t, i] = log N(values[t]; means[i], variances[i])``.

    Variances must be strictly positive — EM callers enforce a variance
    floor, and a zero/denormal variance here would silently overflow the
    density, so it raises instead.
    """
    values = np.asarray(values, dtype=float)
    means = np.asarray(means, dtype=float)
    variances = np.asarray(variances, dtype=float)
    if (variances <= 0).any() or not np.isfinite(variances).all():
        raise ValueError(
            f"variances must be strictly positive and finite, got {variances!r}"
        )
    diff = values[:, None] - means[None, :]
    return -0.5 * (LOG_2PI + np.log(variances)[None, :] + diff**2 / variances)


def normal_densities(
    values: np.ndarray, means: np.ndarray, variances: np.ndarray
) -> np.ndarray:
    """Gaussian density matrix, ``exp`` of :func:`normal_log_densities`."""
    return np.exp(normal_log_densities(values, means, variances))


def batch_normal_densities(
    values: np.ndarray, means: np.ndarray, variances: np.ndarray
) -> np.ndarray:
    """Per-sequence Gaussian density stack ``D[n, t, i]``.

    ``values`` is a ``(N, T)`` stack of observation sequences and
    ``means`` / ``variances`` hold one ``(N, K)`` parameter set per
    sequence; the result is ``(N, T, K)`` with
    ``D[n, t, i] = N(values[n, t]; means[n, i], variances[n, i])``.
    Every arithmetic step is the elementwise operation of
    :func:`normal_log_densities`, so each row matches the per-sequence
    call bit for bit.
    """
    values = np.asarray(values, dtype=float)
    means = np.asarray(means, dtype=float)
    variances = np.asarray(variances, dtype=float)
    if (variances <= 0).any() or not np.isfinite(variances).all():
        raise ValueError(
            f"variances must be strictly positive and finite, got {variances!r}"
        )
    diff = values[:, :, None] - means[:, None, :]
    return np.exp(
        -0.5
        * (
            LOG_2PI
            + np.log(variances)[:, None, :]
            + diff**2 / variances[:, None, :]
        )
    )
