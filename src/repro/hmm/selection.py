"""HMM model selection: information criteria over the state count.

The paper fixes two hidden states because claims are binary (§II); a
release should let users *verify* that choice on their own data.  This
module scores fitted models with AIC/BIC and fits a sweep of state
counts, reporting which the data supports.

Parameter counts: an ``n``-state model has ``n - 1`` free initial
probabilities, ``n * (n - 1)`` free transition probabilities, and the
emission parameters (``n * (m - 1)`` for ``m`` symbols, ``2n`` for
univariate Gaussians).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.hmm.base import BaseHMM
from repro.hmm.discrete import DiscreteHMM
from repro.hmm.gaussian import GaussianHMM

__all__ = [
    "SelectionEntry",
    "SelectionResult",
    "aic",
    "bic",
    "n_parameters",
    "select_n_states",
]


def n_parameters(hmm: BaseHMM) -> int:
    """Free parameters of a fitted model."""
    n = hmm.n_states
    count = (n - 1) + n * (n - 1)
    if isinstance(hmm, DiscreteHMM):
        count += n * (hmm.n_symbols - 1)
    elif isinstance(hmm, GaussianHMM):
        count += 2 * n
    else:  # pragma: no cover - future emission families
        raise TypeError(f"unknown emission family: {type(hmm).__name__}")
    return count


def aic(hmm: BaseHMM, observations: np.ndarray) -> float:
    """Akaike information criterion (lower is better)."""
    return 2.0 * n_parameters(hmm) - 2.0 * hmm.log_likelihood(observations)


def bic(hmm: BaseHMM, observations: np.ndarray) -> float:
    """Bayesian information criterion (lower is better)."""
    length = np.asarray(observations).shape[0]
    return (
        # log of a sample count (BIC penalty), not of probability mass.
        n_parameters(hmm) * math.log(max(length, 1))  # noqa: SSTD005
        - 2.0 * hmm.log_likelihood(observations)
    )


@dataclass(frozen=True, slots=True)
class SelectionEntry:
    """One candidate in a state-count sweep."""

    n_states: int
    log_likelihood: float
    aic: float
    bic: float


@dataclass(frozen=True, slots=True)
class SelectionResult:
    """Outcome of :func:`select_n_states`."""

    entries: tuple[SelectionEntry, ...]

    @property
    def best_by_aic(self) -> int:
        return min(self.entries, key=lambda e: e.aic).n_states

    @property
    def best_by_bic(self) -> int:
        return min(self.entries, key=lambda e: e.bic).n_states


def select_n_states(
    observations: np.ndarray,
    candidates: Sequence[int] = (1, 2, 3, 4),
    factory: Callable[[int], BaseHMM] | None = None,
    max_iter: int = 40,
    seed: int = 0,
) -> SelectionResult:
    """Fit each candidate state count and score it.

    Args:
        observations: One observation sequence.
        candidates: State counts to try.
        factory: ``n_states -> model``; defaults to a GaussianHMM (the
            SSTD emission family).
        max_iter: Baum-Welch iterations per candidate.
        seed: EM initialization seed.
    """
    if not candidates:
        raise ValueError("need at least one candidate state count")
    if factory is None:
        factory = GaussianHMM
    entries = []
    for n_states in candidates:
        if n_states < 1:
            raise ValueError("state counts must be >= 1")
        model = factory(n_states)
        model.fit(observations, max_iter=max_iter, rng=seed)
        entries.append(
            SelectionEntry(
                n_states=n_states,
                log_likelihood=model.log_likelihood(observations),
                aic=aic(model, observations),
                bic=bic(model, observations),
            )
        )
    return SelectionResult(entries=tuple(entries))
