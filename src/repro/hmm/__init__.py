"""From-scratch Hidden Markov Model library (SSTD inference substrate).

Public surface:

- :class:`~repro.hmm.base.BaseHMM` -- scaled forward-backward, Viterbi
  decoding, Baum-Welch EM training.
- :class:`~repro.hmm.discrete.DiscreteHMM` -- categorical emissions.
- :class:`~repro.hmm.gaussian.GaussianHMM` -- univariate Gaussian
  emissions (used by SSTD on ACS sequences).
- :class:`~repro.hmm.batch.BatchGaussianHMM` -- the same Gaussian model
  over a stack of N independent sequences at once (SSTD's batched
  multi-claim kernel).
- :mod:`~repro.hmm.kernels` -- pluggable backends (reference numpy /
  fused numba) running the batched time recursions, selected by
  :func:`~repro.hmm.kernels.resolve_kernel`.
"""

from repro.hmm.base import BaseHMM, FitResult
from repro.hmm.batch import BatchGaussianHMM, stack_ragged
from repro.hmm.discrete import DiscreteHMM
from repro.hmm.gaussian import GaussianHMM
from repro.hmm.kernels import (
    KernelOps,
    available_backends,
    kernel_parity_ok,
    resolve_kernel,
)
from repro.hmm.selection import (
    SelectionEntry,
    SelectionResult,
    aic,
    bic,
    n_parameters,
    select_n_states,
)

__all__ = [
    "BaseHMM",
    "BatchGaussianHMM",
    "DiscreteHMM",
    "FitResult",
    "GaussianHMM",
    "KernelOps",
    "SelectionEntry",
    "SelectionResult",
    "aic",
    "available_backends",
    "bic",
    "kernel_parity_ok",
    "n_parameters",
    "resolve_kernel",
    "select_n_states",
    "stack_ragged",
]
