"""Batched multi-claim Gaussian-HMM kernels.

SSTD decomposes truth discovery per claim (paper Section III-E), but the
per-claim implementation pays the Python interpreter once per *timestep
per claim per EM iteration*: ``BaseHMM._forward`` / ``_backward`` are
O(T) Python loops over tiny ``(K,)`` vectors.  This module runs the same
recursions over a *stack* of N independent claim sequences at once: the
time recursion stays O(T), but each step becomes one ``(N, K)`` einsum
against the per-claim ``(N, K, K)`` transition stack, amortizing the
interpreter cost across all claims in the batch.

Semantics are pinned to the per-claim path:

- **Missing observations** (``NaN``) get emission likelihood 1 for every
  state, exactly like :class:`repro.hmm.gaussian.GaussianHMM`.
- **Ragged stacks**: sequences of different lengths batch together.  The
  stack is NaN-padded to the longest sequence and must be sorted by
  length descending; at timestep ``t`` only the prefix of rows still
  inside their sequence participates, so padding never enters any
  recursion or reduction.
- **Per-claim convergence freezing**: Baum-Welch drops a claim out of
  the E-step the iteration its log-likelihood plateaus; the remaining
  claims keep iterating.  Each claim gets its own
  :class:`~repro.hmm.base.FitResult`.
- **Row-wise determinism**: every per-claim quantity is computed either
  elementwise or as a reduction over that claim's own contiguous slice,
  so a claim's result is bit-identical no matter which batch it rides in
  (a shard of 4 and a batch of 32 agree exactly).  Reductions whose
  order matters (log-likelihoods, xi sums, emission sufficient
  statistics) therefore run per row, never across padding.

Only the time recursions are batched; initialisation and the emission
M-step replicate :class:`~repro.hmm.gaussian.GaussianHMM` line for line
(tested against it) because they are O(N) per iteration, not O(N * T).

The time recursions themselves execute through a pluggable kernel layer
(:mod:`repro.hmm.kernels`): the ``numpy`` reference backend (the einsum
recursions) or the ``numba`` backend (each whole recursion fused into
one compiled, GIL-free loop).  Backends are bit-identical — selection
(``kernel=`` / ``REPRO_KERNEL``) never changes a result, only its cost.
"""

from __future__ import annotations

import numpy as np

from repro.devtools import contracts
from repro.hmm.base import FitResult, _record_fit
from repro.hmm.gaussian import MIN_VARIANCE, GaussianHMM
from repro.hmm.kernels import resolve_kernel
from repro.hmm.utils import (
    PROB_FLOOR,
    batch_normal_densities,
    log_mask_zero,
    masked_row_sums,
    normalize_rows,
)

__all__ = ["BatchGaussianHMM", "ragged_views", "stack_ragged"]


def stack_ragged(
    sequences: list[np.ndarray],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stack 1-D sequences into a NaN-padded, length-sorted matrix.

    Returns ``(observations, lengths, order)``: ``observations[i]`` is
    ``sequences[order[i]]`` padded with NaN to the longest length,
    ``lengths[i]`` its true length, and ``order`` the stable permutation
    sorting the input by length descending (the layout
    :class:`BatchGaussianHMM` requires).  Undo with
    ``result[order[i]] -> original position``.
    """
    if not sequences:
        raise ValueError("need at least one sequence")
    arrays = [np.asarray(seq, dtype=float) for seq in sequences]
    for arr in arrays:
        if arr.ndim != 1:
            raise ValueError(f"sequences must be 1-D, got shape {arr.shape}")
        if arr.shape[0] == 0:
            raise ValueError("observation sequence is empty")
    sizes = np.array([arr.shape[0] for arr in arrays])
    order = np.argsort(-sizes, kind="stable")
    t_max = int(sizes.max())
    observations = np.full((len(arrays), t_max), np.nan)
    for row, src in enumerate(order):
        observations[row, : sizes[src]] = arrays[src]
    return observations, sizes[order], order


def ragged_views(stack: np.ndarray, lengths: np.ndarray) -> list[np.ndarray]:
    """Zero-copy per-row views over an externally owned padded stack.

    ``stack`` is an ``(N, T)`` NaN-padded matrix whose rows belong to
    sequences of ``lengths[row]`` real entries — the layout the
    shared-memory data plane publishes.  Returns ``stack[row,
    :lengths[row]]`` for every row *without copying*: the views alias
    the caller's buffer (shared memory included) and inherit its
    read-only flag, which every kernel in this module accepts — the
    first thing :func:`stack_ragged` / the recursions do with input is
    copy into their own working layout.  Rows may be any length order
    here; zero-length rows yield empty views.
    """
    stack = np.asarray(stack)
    if stack.ndim != 2:
        raise ValueError(f"stack must be (N, T), got shape {stack.shape}")
    lengths = np.asarray(lengths, dtype=int)
    if lengths.shape != (stack.shape[0],):
        raise ValueError(
            f"lengths must have shape ({stack.shape[0]},), got {lengths.shape}"
        )
    if (lengths < 0).any() or (lengths > stack.shape[1]).any():
        raise ValueError("lengths must be in [0, T]")
    return [stack[row, : int(lengths[row])] for row in range(stack.shape[0])]


class BatchGaussianHMM:
    """N independent K-state Gaussian HMMs advanced in lockstep.

    Parameters are stacked per sequence: ``startprob`` is ``(N, K)``,
    ``transmat`` ``(N, K, K)``, ``means`` / ``variances`` ``(N, K)``.
    Scalars-per-model inputs (a single ``(K,)`` / ``(K, K)``) broadcast
    to every row, which is how SSTD seeds all claims with the same
    sticky prior before EM specialises them.

    Observations are ``(N, T)`` stacks; pass ``lengths`` (sorted
    descending) for ragged stacks, else every row spans the full T.

    ``kernel`` picks the backend running the time recursions (``None``
    defers to ``REPRO_KERNEL``, default ``auto`` — see
    :func:`repro.hmm.kernels.resolve_kernel`); the resolved backend is
    exposed as :attr:`kernel_name`.
    """

    def __init__(
        self,
        n_seqs: int,
        n_states: int = 2,
        startprob: np.ndarray | None = None,
        transmat: np.ndarray | None = None,
        means: np.ndarray | None = None,
        variances: np.ndarray | None = None,
        kernel: str | None = None,
    ) -> None:
        if n_seqs < 1:
            raise ValueError(f"n_seqs must be >= 1, got {n_seqs}")
        if n_states < 1:
            raise ValueError(f"n_states must be >= 1, got {n_states}")
        self.n_seqs = n_seqs
        self.n_states = n_states
        self._requested_kernel = kernel
        self._ops = resolve_kernel(kernel, n_states=n_states)
        if startprob is None:
            startprob = np.full(n_states, 1.0 / n_states)
        if transmat is None:
            transmat = np.full((n_states, n_states), 1.0 / n_states)
        self.startprob = self._stack_param(startprob, (n_states,), "startprob")
        self.transmat = self._stack_param(
            transmat, (n_states, n_states), "transmat"
        )
        if means is None:
            means = np.zeros(n_states)
        if variances is None:
            variances = np.ones(n_states)
        self.means = self._stack_param(means, (n_states,), "means")
        self.variances = self._stack_param(variances, (n_states,), "variances")
        if (self.variances <= 0).any():
            raise ValueError("variances must be strictly positive")

    def _stack_param(
        self, value: np.ndarray, row_shape: tuple[int, ...], name: str
    ) -> np.ndarray:
        """Broadcast a shared parameter to all rows, or validate a stack."""
        value = np.asarray(value, dtype=float)
        if value.shape == row_shape:
            return np.tile(value, (self.n_seqs,) + (1,) * len(row_shape))
        if value.shape == (self.n_seqs,) + row_shape:
            return value.copy()
        raise ValueError(
            f"{name} must have shape {row_shape} or "
            f"{(self.n_seqs,) + row_shape}, got {value.shape}"
        )

    # ------------------------------------------------------------------
    # Observation plumbing
    # ------------------------------------------------------------------
    def _validate(
        self, observations: np.ndarray, lengths: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray]:
        observations = np.asarray(observations, dtype=float)
        if observations.ndim != 2:
            raise ValueError(
                f"observations must be (N, T), got shape {observations.shape}"
            )
        if observations.shape[0] != self.n_seqs:
            raise ValueError(
                f"expected {self.n_seqs} rows, got {observations.shape[0]}"
            )
        if observations.shape[1] == 0:
            raise ValueError("observation sequences are empty")
        if np.isinf(observations).any():
            raise ValueError("observations must not be infinite")
        if lengths is None:
            lengths = np.full(self.n_seqs, observations.shape[1], dtype=int)
        else:
            lengths = np.asarray(lengths, dtype=int)
            if lengths.shape != (self.n_seqs,):
                raise ValueError(
                    f"lengths must have shape ({self.n_seqs},), "
                    f"got {lengths.shape}"
                )
            if (lengths < 1).any() or (lengths > observations.shape[1]).any():
                raise ValueError("lengths must be in [1, T]")
            if (np.diff(lengths) > 0).any():
                raise ValueError(
                    "rows must be sorted by length descending "
                    "(see stack_ragged)"
                )
        return observations, lengths

    @property
    def kernel_name(self) -> str:
        """The resolved kernel backend running this model's recursions."""
        return self._ops.name

    def emission_probabilities(self, observations: np.ndarray) -> np.ndarray:
        """Emission stack ``(N, T, K)``; NaN rows get likelihood 1."""
        observations = np.asarray(observations, dtype=float)
        missing = np.isnan(observations)
        filled = np.where(missing, 0.0, observations)
        densities = batch_normal_densities(filled, self.means, self.variances)
        densities[missing] = 1.0
        return densities

    # ------------------------------------------------------------------
    # Inference kernels
    # ------------------------------------------------------------------
    def forward(
        self,
        emissions: np.ndarray,
        lengths: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Scaled forward pass over the stack.

        Returns ``(alpha, scales, log_likelihoods)``; padded cells hold
        the neutral values ``1/K`` / ``1.0`` and are never read by the
        recursions.  Log-likelihoods are summed per row over the row's
        own slice (:func:`~repro.hmm.utils.masked_row_sums` groups rows
        of equal length into one vectorized reduction), so they match
        the per-claim pass bit for bit.
        """
        alpha, scales = self._ops.forward(
            self.startprob, self.transmat, emissions, lengths
        )
        log_likelihoods = masked_row_sums(log_mask_zero(scales), lengths)
        return alpha, scales, log_likelihoods

    def backward(
        self,
        emissions: np.ndarray,
        scales: np.ndarray,
        lengths: np.ndarray,
    ) -> np.ndarray:
        """Scaled backward pass matching :meth:`forward`'s scaling."""
        return self._ops.backward(self.transmat, emissions, scales, lengths)

    def viterbi(
        self,
        emissions: np.ndarray,
        lengths: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched log-space Viterbi.

        Returns ``(states, log_joints)``: ``states[n, :lengths[n]]`` is
        row n's most probable hidden path (padding is 0) and
        ``log_joints[n]`` its joint log-probability.

        The log transforms stay here (``repro.hmm.utils`` is the
        sanctioned home for them) so both kernel backends receive
        identical log-space inputs — transcendental bit-portability is
        never the backends' problem.
        """
        log_emissions = log_mask_zero(np.maximum(emissions, 0.0))
        log_trans = log_mask_zero(self.transmat)
        log_start = log_mask_zero(self.startprob)
        return self._ops.viterbi(log_start, log_trans, log_emissions, lengths)

    def filter_states(self, alpha: np.ndarray) -> np.ndarray:
        """Online state estimates: per-row ``argmax_i alpha[n, t, i]``."""
        return np.argmax(alpha, axis=2)

    def state_posteriors(
        self,
        observations: np.ndarray,
        lengths: np.ndarray | None = None,
        emissions: np.ndarray | None = None,
    ) -> np.ndarray:
        """Posterior stack ``P(state_t = i | row n)``, shape ``(N, T, K)``."""
        observations, lengths = self._validate(observations, lengths)
        if emissions is None:
            emissions = self.emission_probabilities(observations)
        alpha, scales, _ = self.forward(emissions, lengths)
        beta = self.backward(emissions, scales, lengths)
        return normalize_rows(alpha * beta)

    def decode(
        self,
        observations: np.ndarray,
        lengths: np.ndarray | None = None,
        emissions: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Viterbi-decode every row; see :meth:`viterbi`."""
        observations, lengths = self._validate(observations, lengths)
        if emissions is None:
            emissions = self.emission_probabilities(observations)
        return self.viterbi(emissions, lengths)

    def extract(self, row: int) -> GaussianHMM:
        """Materialise row ``row`` as a standalone :class:`GaussianHMM`."""
        return GaussianHMM(
            self.n_states,
            startprob=self.startprob[row],
            transmat=self.transmat[row],
            means=self.means[row],
            variances=self.variances[row],
        )

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def _init_emissions(
        self, observations: np.ndarray, lengths: np.ndarray, seed
    ) -> None:
        """Quantile initialisation, one fresh RNG per row.

        Replicates :meth:`GaussianHMM._init_emissions` per row with
        ``default_rng(seed)`` re-created per claim, exactly like the
        per-claim engine seeds each claim's fit.
        """
        quantiles = np.linspace(0.0, 1.0, self.n_states + 2)[1:-1]
        for row in range(self.n_seqs):
            values = observations[row, : lengths[row]]
            present = values[~np.isnan(values)]
            if present.size == 0:
                raise ValueError(
                    "cannot initialize from all-missing observations"
                )
            means = np.quantile(present, quantiles)
            spread = float(np.var(present))
            if spread < MIN_VARIANCE:
                spread = 1.0
                rng = np.random.default_rng(seed)
                means = means + rng.normal(0.0, 0.1, size=self.n_states)
            self.means[row] = means
            self.variances[row] = np.full(
                self.n_states, max(spread, MIN_VARIANCE)
            )

    def _update_emissions_row(
        self,
        row: int,
        values: np.ndarray,
        gamma: np.ndarray,
    ) -> None:
        """Emission M-step for one row (GaussianHMM._update_emissions)."""
        present = ~np.isnan(values)
        gamma = gamma[present]
        values = values[present]
        if values.size == 0:
            return
        weights = gamma.sum(axis=0)
        safe = np.where(weights > 0, weights, 1.0)
        means = (gamma * values[:, None]).sum(axis=0) / safe
        diff = values[:, None] - means[None, :]
        variances = (gamma * diff**2).sum(axis=0) / safe
        keep = weights <= 0
        means[keep] = self.means[row][keep]
        variances[keep] = self.variances[row][keep]
        self.means[row] = means
        self.variances[row] = np.maximum(variances, MIN_VARIANCE)

    def _check_contracts(self, where: str) -> None:
        contracts.assert_probability_simplex(
            self.startprob, f"batch startprob ({where})"
        )
        contracts.assert_probability_simplex(
            self.transmat, f"batch transmat ({where})"
        )
        contracts.assert_finite(self.means, f"batch means ({where})")
        contracts.assert_finite(self.variances, f"batch variances ({where})")

    def fit(
        self,
        observations: np.ndarray,
        lengths: np.ndarray | None = None,
        max_iter: int = 50,
        tol: float = 1e-4,
        seed=None,
        init: bool = True,
    ) -> list[FitResult]:
        """Baum-Welch over the stack with per-row convergence freezing.

        Each row trains its own chain; a row whose log-likelihood
        improvement drops below ``tol`` is frozen (its parameters stop
        updating, it leaves the E-step) while the rest keep iterating,
        exactly matching N independent per-claim ``fit`` calls.
        """
        observations, lengths = self._validate(observations, lengths)
        if init:
            self._init_emissions(observations, lengths, seed)

        histories: list[list[float]] = [[] for _ in range(self.n_seqs)]
        converged = np.zeros(self.n_seqs, dtype=bool)
        active = np.arange(self.n_seqs)
        k = self.n_states
        for _ in range(max_iter):
            self._check_contracts("Baum-Welch E-step")
            obs_a = observations[active]
            len_a = lengths[active]
            t_max = int(len_a[0])
            obs_a = obs_a[:, :t_max]
            sub = BatchGaussianHMM(
                active.size,
                k,
                startprob=self.startprob[active],
                transmat=self.transmat[active],
                means=self.means[active],
                variances=self.variances[active],
                kernel=self._requested_kernel,
            )
            emissions = sub.emission_probabilities(obs_a)
            alpha, scales, log_likelihoods = sub.forward(emissions, len_a)
            beta = sub.backward(emissions, scales, len_a)
            gamma = normalize_rows(alpha * beta)
            xi_sum = sub._ops.estep_xi_sum(
                sub.transmat, emissions, alpha, beta, len_a
            )

            # M-step (chain parameters batched, emissions per row).
            self.startprob[active] = normalize_rows(
                gamma[:, 0, :] + PROB_FLOOR
            )
            self.transmat[active] = normalize_rows(xi_sum + PROB_FLOOR)
            for idx, row in enumerate(active):
                stop = int(len_a[idx])
                self._update_emissions_row(
                    row, obs_a[idx, :stop], gamma[idx, :stop]
                )

            for idx, row in enumerate(active):
                history = histories[row]
                history.append(float(log_likelihoods[idx]))
                if len(history) > 1 and abs(history[-1] - history[-2]) < tol:
                    converged[row] = True
            active = active[~converged[active]]
            if active.size == 0:
                break
        self._check_contracts("Baum-Welch M-step")
        results = [
            FitResult(
                log_likelihoods=tuple(histories[row]),
                converged=bool(converged[row]),
                iterations=len(histories[row]),
            )
            for row in range(self.n_seqs)
        ]
        for result in results:
            _record_fit(result)
        return results
