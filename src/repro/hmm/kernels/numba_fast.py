"""Fused numba kernels for the batched HMM time recursions.

Each op compiles one whole time recursion — forward scaling, backward,
Viterbi + backtrace, Baum-Welch xi accumulation — into a single
``@njit(cache=True, nogil=True)`` loop nest with **no per-timestep
temporaries**: where the numpy reference allocates several ``(m, K)``
arrays (and a whole ``(N, T, K, K)`` xi numerator) per EM iteration,
these kernels stream through the stack with scalar accumulators.

Bit-identity with :mod:`repro.hmm.kernels.numpy_ref` is a hard
contract, not an aspiration: every reduction iterates in exactly the
order the reference's numpy calls accumulate (``k``-sequential einsum
contraction, ``j``-sequential last-axis sums below 8 states,
``t``-sequential leading-axis sums — see the reference module's
docstring), every compound product keeps the reference's association
(``(alpha * A) * (em * beta)``), and numba compiles with default strict
IEEE-754 semantics (no ``fastmath``, so no FMA contraction or
reordering).  The parity suite in ``tests/hmm/test_kernels.py`` and the
runtime probe in :func:`repro.hmm.kernels.kernel_parity_ok` enforce it.

When numba is not installed the module still imports and every kernel
runs *interpreted* — the loops are plain Python over float64 scalars,
which follow the same IEEE-754 order — so the backend's semantics are
testable (slowly) everywhere; only :data:`AVAILABLE` decides whether
the selection layer will ever pick it for real work.

Because the compiled kernels release the GIL (``nogil=True``), shards
decoded on the ``threads`` backend run genuinely in parallel — the one
configuration where the thread pool was previously serialized by
CPU-bound Python (``benchmarks/bench_kernels.py`` charts the scaling).
"""

from __future__ import annotations

import numpy as np

from repro.hmm.kernels.numpy_ref import active_counts
from repro.hmm.utils import PROB_FLOOR

try:  # numba is an optional accelerator, never a hard dependency
    import numba as _numba
except ImportError:  # pragma: no cover - exercised on numba-less installs
    _numba = None

AVAILABLE = _numba is not None
NUMBA_VERSION = _numba.__version__ if AVAILABLE else None

__all__ = [
    "AVAILABLE",
    "NUMBA_VERSION",
    "backward",
    "estep_xi_sum",
    "forward",
    "viterbi",
]


def _compile(fn):
    """JIT when numba exists; otherwise run the loops interpreted."""
    if not AVAILABLE:
        return fn
    return _numba.njit(cache=True, nogil=True)(fn)


def _f64(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.float64)


def _i64(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.int64)


def _forward_impl(startprob, transmat, emissions, lengths, counts):
    n_seqs, t_max, k = emissions.shape
    alpha = np.full((n_seqs, t_max, k), 1.0 / k)
    scales = np.ones((n_seqs, t_max))
    for n in range(n_seqs):
        total = 0.0
        for j in range(k):
            value = startprob[n, j] * emissions[n, 0, j]
            alpha[n, 0, j] = value
            total += value
        if total == 0.0:
            for j in range(k):
                alpha[n, 0, j] = 1.0 / k
            scales[n, 0] = PROB_FLOOR
        else:
            for j in range(k):
                alpha[n, 0, j] = alpha[n, 0, j] / total
            scales[n, 0] = total
    for t in range(1, t_max):
        m = counts[t]
        if m == 0:
            break
        for n in range(m):
            total = 0.0
            for j in range(k):
                acc = 0.0
                for i in range(k):
                    acc += alpha[n, t - 1, i] * transmat[n, i, j]
                value = acc * emissions[n, t, j]
                alpha[n, t, j] = value
                total += value
            if total == 0.0:
                for j in range(k):
                    alpha[n, t, j] = 1.0 / k
                scales[n, t] = PROB_FLOOR
            else:
                for j in range(k):
                    alpha[n, t, j] = alpha[n, t, j] / total
                scales[n, t] = total
    return alpha, scales


def _backward_impl(transmat, emissions, scales, lengths, counts):
    n_seqs, t_max, k = emissions.shape
    beta = np.ones((n_seqs, t_max, k))
    tail = np.empty(k)
    for t in range(t_max - 2, -1, -1):
        m = counts[t + 1]
        if m == 0:
            continue
        for n in range(m):
            for j in range(k):
                tail[j] = emissions[n, t + 1, j] * beta[n, t + 1, j]
            scale = scales[n, t + 1]
            for i in range(k):
                acc = 0.0
                for j in range(k):
                    acc += transmat[n, i, j] * tail[j]
                beta[n, t, i] = acc / scale
    return beta


def _viterbi_impl(log_startprob, log_transmat, log_emissions, lengths, counts):
    n_seqs, t_max, k = log_emissions.shape
    delta = np.zeros((n_seqs, t_max, k))
    backpointer = np.zeros((n_seqs, t_max, k), dtype=np.int64)
    for n in range(n_seqs):
        for j in range(k):
            delta[n, 0, j] = log_startprob[n, j] + log_emissions[n, 0, j]
    for t in range(1, t_max):
        m = counts[t]
        if m == 0:
            break
        for n in range(m):
            for j in range(k):
                best_i = 0
                best = delta[n, t - 1, 0] + log_transmat[n, 0, j]
                for i in range(1, k):
                    cand = delta[n, t - 1, i] + log_transmat[n, i, j]
                    if cand > best:
                        best = cand
                        best_i = i
                backpointer[n, t, j] = best_i
                delta[n, t, j] = best + log_emissions[n, t, j]
    states = np.zeros((n_seqs, t_max), dtype=np.int64)
    log_joints = np.empty(n_seqs)
    for n in range(n_seqs):
        last = lengths[n] - 1
        best_j = 0
        best = delta[n, last, 0]
        for j in range(1, k):
            if delta[n, last, j] > best:
                best = delta[n, last, j]
                best_j = j
        states[n, last] = best_j
    for t in range(t_max - 2, -1, -1):
        m = counts[t + 1]
        if m == 0:
            continue
        for n in range(m):
            states[n, t] = backpointer[n, t + 1, states[n, t + 1]]
    for n in range(n_seqs):
        last = lengths[n] - 1
        log_joints[n] = delta[n, last, states[n, last]]
    return states, log_joints


def _estep_xi_sum_impl(transmat, emissions, alpha, beta, lengths):
    n_seqs, t_max, k = emissions.shape
    xi_sum = np.zeros((n_seqs, k, k))
    for n in range(n_seqs):
        steps = lengths[n] - 1
        for t in range(steps):
            for i in range(k):
                for j in range(k):
                    xi_sum[n, i, j] += (
                        alpha[n, t, i] * transmat[n, i, j]
                    ) * (emissions[n, t + 1, j] * beta[n, t + 1, j])
    return xi_sum


_forward_jit = _compile(_forward_impl)
_backward_jit = _compile(_backward_impl)
_viterbi_jit = _compile(_viterbi_impl)
_estep_xi_sum_jit = _compile(_estep_xi_sum_impl)


def forward(
    startprob: np.ndarray,
    transmat: np.ndarray,
    emissions: np.ndarray,
    lengths: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Fused scaled forward pass; see :func:`numpy_ref.forward`."""
    emissions = _f64(emissions)
    lengths = _i64(lengths)
    counts = _i64(active_counts(lengths, emissions.shape[1]))
    return _forward_jit(
        _f64(startprob), _f64(transmat), emissions, lengths, counts
    )


def backward(
    transmat: np.ndarray,
    emissions: np.ndarray,
    scales: np.ndarray,
    lengths: np.ndarray,
) -> np.ndarray:
    """Fused scaled backward pass; see :func:`numpy_ref.backward`."""
    emissions = _f64(emissions)
    lengths = _i64(lengths)
    counts = _i64(active_counts(lengths, emissions.shape[1]))
    return _backward_jit(
        _f64(transmat), emissions, _f64(scales), lengths, counts
    )


def viterbi(
    log_startprob: np.ndarray,
    log_transmat: np.ndarray,
    log_emissions: np.ndarray,
    lengths: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Fused log-space Viterbi + backtrace; see :func:`numpy_ref.viterbi`."""
    log_emissions = _f64(log_emissions)
    lengths = _i64(lengths)
    counts = _i64(active_counts(lengths, log_emissions.shape[1]))
    return _viterbi_jit(
        _f64(log_startprob), _f64(log_transmat), log_emissions, lengths, counts
    )


def estep_xi_sum(
    transmat: np.ndarray,
    emissions: np.ndarray,
    alpha: np.ndarray,
    beta: np.ndarray,
    lengths: np.ndarray,
) -> np.ndarray:
    """Fused xi accumulation; see :func:`numpy_ref.estep_xi_sum`."""
    return _estep_xi_sum_jit(
        _f64(transmat), _f64(emissions), _f64(alpha), _f64(beta), _i64(lengths)
    )
